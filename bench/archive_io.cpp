/**
 * @file
 * archive_io: data-plane throughput ledger -> BENCH_archive.json.
 *
 * Times the raw-speed pass over the archive (.dla) data plane:
 *
 *   - container write (segment build + hash-chain LZ77 + CRC) at
 *     ioThreads in {1, 2, 4, 8};
 *   - full readAll (decompress + CRC + reassembly) at the same
 *     thread counts, through both the mmap and the buffered file
 *     path;
 *   - seek-to-replay latency: readInterval from the last checkpoint
 *     off both read paths;
 *   - the serial baseline this PR replaced: lz77_reference (the old
 *     O(window * len) scalar matcher and bit-at-a-time decoder) over
 *     the same serialized bytes.
 *
 * The headline number is aggregate (compress + decompress) MB/s at
 * ioThreads = 4 versus the reference serial codec. On a single-core
 * host the pool adds nothing, so the gate is carried by the
 * single-thread codec wins (hash-chain search, word-wise BitReader,
 * block-copy literals/matches); on multi-core hosts the pool stacks
 * on top. Timings are best-of-kReps; stdout carries only
 * deterministic facts, wall-clock goes to the JSON and stderr. Exit
 * status reflects byte-identity across every thread count and read
 * path, never the speedup. Path override: DELOREAN_ARCHIVE_JSON.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "compress/lz77.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "ledger.hpp"
#include "store/archive.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr std::uint64_t kCheckpointPeriod = 30;
constexpr int kReps = 3;
constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

using Clock = std::chrono::steady_clock;

/** Best-of-kReps wall time for @p fn, in seconds. */
template <typename Fn>
double
timeBest(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (s < best)
            best = s;
    }
    return best;
}

double
mbps(std::size_t bytes, double seconds)
{
    return seconds > 0
               ? static_cast<double>(bytes) / seconds / 1e6
               : 0.0;
}

std::string
archivedWith(const Recording &rec, unsigned io_threads)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out, ArchiveIoOptions{io_threads, true});
    return std::move(out).str();
}

std::string
savedBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

} // namespace

int
main()
{
    header("archive_io: data-plane throughput (write / read / seek)",
           "aggregate codec throughput at ioThreads=4 >= 2x the "
           "retired lz77_reference serial scan");

    const unsigned scale = benchScale(40);
    MachineConfig machine;
    machine.numProcs = 8;
    const Workload workload("ocean", machine.numProcs, kSeed,
                            WorkloadScale{scale});
    const Recording rec =
        Recorder(ModeConfig::orderAndSize(), machine)
            .record(workload, /*env_seed=*/1, true, {},
                    kCheckpointPeriod);

    const std::string raw = savedBytes(rec);
    const std::string container = archivedWith(rec, 1);
    const std::vector<std::uint8_t> container_bytes(container.begin(),
                                                    container.end());
    const ArchiveReader probe = ArchiveReader::fromBytes(container_bytes);
    std::printf("corpus: %s x%u procs, scale %u%% -> %zu raw bytes, "
                "%zu archived, %zu segments\n",
                "ocean", machine.numProcs, scale, raw.size(),
                container.size(), probe.segments().size());

    JsonLedger ledger("archive_io");
    ledger.open("config");
    ledger.field("app", "ocean");
    ledger.field("procs", machine.numProcs);
    ledger.field("scalePercent", scale);
    ledger.field("checkpointPeriod", kCheckpointPeriod);
    ledger.field("rawBytes", raw.size());
    ledger.field("archiveBytes", container.size());
    ledger.field("segments", probe.segments().size());
    ledger.field("mmapSupported", MappedFile::supported());
    ledger.close();

    // --- Serial baseline: the codec this PR retired, timed on the
    // same serialized bytes the writer feeds through LZ77.
    const std::vector<std::uint8_t> corpus(raw.begin(), raw.end());
    std::vector<std::uint8_t> ref_packed;
    const double ref_compress = timeBest(
        [&] { ref_packed = lz77_reference::compress(corpus); });
    std::vector<std::uint8_t> ref_round;
    const double ref_decompress = timeBest(
        [&] { ref_round = lz77_reference::decompress(ref_packed); });
    bool ok = ref_round == corpus;
    const double ref_aggregate =
        mbps(2 * corpus.size(), ref_compress + ref_decompress);
    ledger.open("referenceSerial");
    ledger.field("compressSeconds", ref_compress);
    ledger.field("decompressSeconds", ref_decompress);
    ledger.field("compressMBps", mbps(corpus.size(), ref_compress));
    ledger.field("decompressMBps", mbps(corpus.size(), ref_decompress));
    ledger.field("aggregateMBps", ref_aggregate);
    ledger.close();
    std::fprintf(stderr,
                 "reference serial: %.1f MB/s compress, %.1f MB/s "
                 "decompress\n",
                 mbps(corpus.size(), ref_compress),
                 mbps(corpus.size(), ref_decompress));

    // --- Container write across the ioThreads sweep. Byte-identity
    // across thread counts is the invariant the exit status guards.
    double write_seconds_at[9] = {};
    ledger.open("write");
    for (const unsigned threads : kThreadSweep) {
        std::string bytes;
        const double s = timeBest(
            [&] { bytes = archivedWith(rec, threads); });
        if (bytes != container) {
            std::fprintf(stderr,
                         "FAIL: ioThreads=%u container differs\n",
                         threads);
            ok = false;
        }
        write_seconds_at[threads] = s;
        ledger.open("ioThreads" + std::to_string(threads));
        ledger.field("seconds", s);
        ledger.field("MBps", mbps(raw.size(), s));
        ledger.close();
    }
    ledger.close();

    // --- readAll across ioThreads x {mmap, buffered}. The mmap path
    // needs a real file; reuse one temp container for the sweep.
    std::string path = "archive_io.dla";
#if defined(__unix__) || defined(__APPLE__)
    path = "/tmp/archive_io." + std::to_string(::getpid()) + ".dla";
#endif
    writeArchiveFile(rec, path);
    double read_seconds_at[2][9] = {};
    for (const bool mmap_reads : {true, false}) {
        ledger.open(mmap_reads ? "readMmap" : "readBuffered");
        for (const unsigned threads : kThreadSweep) {
            const ArchiveIoOptions io{threads, mmap_reads};
            std::string round;
            const double s = timeBest([&] {
                round = savedBytes(
                    ArchiveReader::fromFile(path, io).readAll());
            });
            if (round != raw) {
                std::fprintf(stderr,
                             "FAIL: readAll(mmap=%d, threads=%u) not "
                             "byte-identical\n",
                             mmap_reads ? 1 : 0, threads);
                ok = false;
            }
            read_seconds_at[mmap_reads ? 0 : 1][threads] = s;
            ledger.open("ioThreads" + std::to_string(threads));
            ledger.field("seconds", s);
            ledger.field("MBps", mbps(raw.size(), s));
            ledger.close();
        }
        ledger.close();
    }

    // --- Seek-to-replay: decode only the segments covering the tail
    // interval, off both read paths.
    const ArchiveReader mapped =
        ArchiveReader::fromFile(path, ArchiveIoOptions{4, true});
    const ArchiveReader buffered =
        ArchiveReader::fromFile(path, ArchiveIoOptions{4, false});
    const std::size_t last = mapped.checkpointCount() - 1;
    std::string seek_mapped_bytes;
    const double seek_mapped = timeBest([&] {
        seek_mapped_bytes = savedBytes(mapped.readInterval(last));
    });
    std::string seek_buffered_bytes;
    const double seek_buffered = timeBest([&] {
        seek_buffered_bytes = savedBytes(buffered.readInterval(last));
    });
    if (seek_mapped_bytes != seek_buffered_bytes) {
        std::fprintf(stderr,
                     "FAIL: tail interval differs across read paths\n");
        ok = false;
    }
    ledger.open("seekToReplay");
    ledger.field("fromCheckpoint", last);
    ledger.field("mmapSeconds", seek_mapped);
    ledger.field("bufferedSeconds", seek_buffered);
    ledger.close();
    std::remove(path.c_str());

    // --- The gate: aggregate (write + read) throughput at
    // ioThreads=4, mmap on, vs the reference serial codec.
    const double par_aggregate =
        mbps(2 * raw.size(),
             write_seconds_at[4] + read_seconds_at[0][4]);
    const double speedup =
        ref_aggregate > 0 ? par_aggregate / ref_aggregate : 0.0;
    ledger.open("speedup");
    ledger.field("aggregateMBpsAt4", par_aggregate);
    ledger.field("vsReferenceSerial", speedup);
    ledger.field("writeAt4VsAt1",
                 write_seconds_at[4] > 0
                     ? write_seconds_at[1] / write_seconds_at[4]
                     : 0.0);
    ledger.field("readMmapAt4VsAt1",
                 read_seconds_at[0][4] > 0
                     ? read_seconds_at[0][1] / read_seconds_at[0][4]
                     : 0.0);
    ledger.close();
    ledger.open("invariants");
    ledger.field("bytesIdenticalAcrossThreadsAndPaths", ok);
    ledger.field("meetsTwoXGate", speedup >= 2.0);
    ledger.close();

    std::fprintf(stderr,
                 "aggregate at ioThreads=4: %.1f MB/s vs reference "
                 "%.1f MB/s -> %.2fx\n",
                 par_aggregate, ref_aggregate, speedup);
    if (!ledger.writeTo(JsonLedger::path("DELOREAN_ARCHIVE_JSON",
                                         "BENCH_archive.json")))
        ok = false;
    std::printf("archive_io: byte-identity %s\n",
                ok ? "HELD" : "BROKEN");
    return ok ? 0 : 1;
}
