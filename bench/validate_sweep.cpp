/**
 * @file
 * validate_sweep: the exhaustive version of validate_smoke.
 *
 * Runs the cross-mode differential check on every SPLASH-2
 * application and a >=600-mutant fault-injection sweep (all five
 * mutation kinds x all three modes), fanning mutants across host
 * cores. Results land in BENCH_validate.json (override the path with
 * DELOREAN_VALIDATE_JSON); campaign throughput is merged into
 * BENCH_campaign.json like every other harness.
 *
 * This is the acceptance gate the PR's ISSUE names: the sweep must
 * complete — under ASan+UBSan in CI — with zero crashes, hangs or
 * silent wrong answers, and the differential check must pass on all
 * eleven applications.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "ledger.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"

using namespace delorean;
using delorean_bench::BenchCampaign;

namespace
{

constexpr unsigned kMutantsPerKind = 40; // x5 kinds x3 modes = 600

void
writeReport(const std::vector<DifferentialResult> &diffs,
            const FaultSweepSummary &sweep, bool ok)
{
    delorean_bench::JsonLedger ledger("validate_sweep");
    ledger.open("differential");
    for (const DifferentialResult &d : diffs) {
        ledger.open(d.job.app);
        ledger.field("ok", d.ok());
        for (const DifferentialRun &r : d.runs)
            ledger.field(r.label + "_bits", r.totalLogBits());
        ledger.close();
    }
    ledger.close();
    ledger.open("fault_sweep");
    ledger.field("total", sweep.total);
    ledger.field("rejected_at_load", sweep.rejectedAtLoad);
    ledger.field("replayed_identically", sweep.replayedIdentically);
    ledger.field("divergence_detected", sweep.divergenceDetected);
    ledger.field("replay_error_reported", sweep.replayErrorReported);
    ledger.field("unexpected", sweep.unexpected);
    ledger.close();
    ledger.field("ok", ok);
    ledger.writeTo(delorean_bench::JsonLedger::path(
        "DELOREAN_VALIDATE_JSON", "BENCH_validate.json"));
}

} // namespace

int
main()
{
    DifferentialJob base;
    base.scalePercent = delorean_bench::benchScale(base.scalePercent);

    delorean_bench::header(
        "validate_sweep",
        "replay of any mode reproduces the recording; corrupt logs "
        "are rejected or produce a localized divergence, never a "
        "crash or hang");

    // Differential check, all applications. The checker fans each
    // job's four mode runs across the worker pool itself.
    const DifferentialChecker checker;
    const std::vector<DifferentialResult> diffs =
        checker.checkAllApps(base);
    bool ok = true;
    unsigned diff_ok = 0;
    for (const DifferentialResult &d : diffs) {
        std::puts(d.describe().c_str());
        ok = ok && d.ok();
        diff_ok += d.ok();
    }
    std::printf("\ndifferential: %u/%zu applications OK\n", diff_ok,
                diffs.size());

    // Fault-injection sweep: record once per mode, then fan every
    // mutant across the campaign pool.
    BenchCampaign campaign("validate_sweep");
    MachineConfig machine;
    machine.numProcs = base.numProcs;
    Workload workload(base.app, base.numProcs, base.workloadSeed,
                      WorkloadScale{base.scalePercent});

    std::vector<std::function<MutantResult()>> tasks;
    for (const ModeConfig &mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        const Recording rec = Recorder(mode, machine)
                                  .record(workload, base.recordEnvSeed);
        campaign.account(rec.stats);
        std::ostringstream buf;
        saveRecording(rec, buf);
        const auto serialized =
            std::make_shared<const std::string>(buf.str());
        for (unsigned k = 0; k < kMutationKinds; ++k) {
            for (unsigned i = 0; i < kMutantsPerKind; ++i) {
                const std::uint64_t seed =
                    base.workloadSeed * 1'000'003ull + k * 7919ull + i;
                tasks.push_back([serialized, k, seed] {
                    return runMutant(*serialized,
                                     static_cast<MutationKind>(k),
                                     seed);
                });
            }
        }
    }
    const std::vector<MutantResult> mutants =
        campaign.map(std::move(tasks));

    FaultSweepSummary sweep;
    for (const MutantResult &m : mutants)
        sweep.add(m);
    std::printf("%s\n", sweep.describe().c_str());
    ok = ok && sweep.ok();

    writeReport(diffs, sweep, ok);
    std::printf("\nvalidate_sweep: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
