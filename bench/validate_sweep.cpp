/**
 * @file
 * validate_sweep: the exhaustive version of validate_smoke.
 *
 * Runs the cross-mode differential check on every SPLASH-2
 * application and a >=600-mutant fault-injection sweep (all five
 * mutation kinds x all three modes), fanning mutants across host
 * cores. Results land in BENCH_validate.json (override the path with
 * DELOREAN_VALIDATE_JSON); campaign throughput is merged into
 * BENCH_campaign.json like every other harness.
 *
 * This is the acceptance gate the PR's ISSUE names: the sweep must
 * complete — under ASan+UBSan in CI — with zero crashes, hangs or
 * silent wrong answers, and the differential check must pass on all
 * eleven applications.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"

using namespace delorean;
using delorean_bench::BenchCampaign;

namespace
{

constexpr unsigned kMutantsPerKind = 40; // x5 kinds x3 modes = 600

std::string
validateReportPath()
{
    if (const char *env = std::getenv("DELOREAN_VALIDATE_JSON"))
        return env;
    return "BENCH_validate.json";
}

void
writeReport(const std::vector<DifferentialResult> &diffs,
            const FaultSweepSummary &sweep, bool ok)
{
    std::ostringstream out;
    out << "{\n  \"differential\": {\n";
    for (std::size_t i = 0; i < diffs.size(); ++i) {
        const DifferentialResult &d = diffs[i];
        out << "    \"" << d.job.app << "\": {\"ok\": "
            << (d.ok() ? "true" : "false");
        for (const DifferentialRun &r : d.runs)
            out << ", \"" << r.label
                << "_bits\": " << r.totalLogBits();
        out << "}" << (i + 1 < diffs.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"fault_sweep\": {\n"
        << "    \"total\": " << sweep.total << ",\n"
        << "    \"rejected_at_load\": " << sweep.rejectedAtLoad << ",\n"
        << "    \"replayed_identically\": " << sweep.replayedIdentically
        << ",\n"
        << "    \"divergence_detected\": " << sweep.divergenceDetected
        << ",\n"
        << "    \"replay_error_reported\": " << sweep.replayErrorReported
        << ",\n"
        << "    \"unexpected\": " << sweep.unexpected << "\n"
        << "  },\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";

    const std::string path = validateReportPath();
    std::ofstream file(path, std::ios::trunc);
    if (file)
        file << out.str();
    else
        std::fprintf(stderr, "validate_sweep: cannot write %s\n",
                     path.c_str());
}

} // namespace

int
main()
{
    DifferentialJob base;
    base.scalePercent = delorean_bench::benchScale(base.scalePercent);

    delorean_bench::header(
        "validate_sweep",
        "replay of any mode reproduces the recording; corrupt logs "
        "are rejected or produce a localized divergence, never a "
        "crash or hang");

    // Differential check, all applications. The checker fans each
    // job's four mode runs across the worker pool itself.
    const DifferentialChecker checker;
    const std::vector<DifferentialResult> diffs =
        checker.checkAllApps(base);
    bool ok = true;
    unsigned diff_ok = 0;
    for (const DifferentialResult &d : diffs) {
        std::puts(d.describe().c_str());
        ok = ok && d.ok();
        diff_ok += d.ok();
    }
    std::printf("\ndifferential: %u/%zu applications OK\n", diff_ok,
                diffs.size());

    // Fault-injection sweep: record once per mode, then fan every
    // mutant across the campaign pool.
    BenchCampaign campaign("validate_sweep");
    MachineConfig machine;
    machine.numProcs = base.numProcs;
    Workload workload(base.app, base.numProcs, base.workloadSeed,
                      WorkloadScale{base.scalePercent});

    std::vector<std::function<MutantResult()>> tasks;
    for (const ModeConfig &mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        const Recording rec = Recorder(mode, machine)
                                  .record(workload, base.recordEnvSeed);
        campaign.account(rec.stats);
        std::ostringstream buf;
        saveRecording(rec, buf);
        const auto serialized =
            std::make_shared<const std::string>(buf.str());
        for (unsigned k = 0; k < kMutationKinds; ++k) {
            for (unsigned i = 0; i < kMutantsPerKind; ++i) {
                const std::uint64_t seed =
                    base.workloadSeed * 1'000'003ull + k * 7919ull + i;
                tasks.push_back([serialized, k, seed] {
                    return runMutant(*serialized,
                                     static_cast<MutationKind>(k),
                                     seed);
                });
            }
        }
    }
    const std::vector<MutantResult> mutants =
        campaign.map(std::move(tasks));

    FaultSweepSummary sweep;
    for (const MutantResult &m : mutants)
        sweep.add(m);
    std::printf("%s\n", sweep.describe().c_str());
    ok = ok && sweep.ok();

    writeReport(diffs, sweep, ok);
    std::printf("\nvalidate_sweep: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
