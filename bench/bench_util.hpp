/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench prints the paper's expected values next to our measured
 * ones. Absolute cycle counts are not expected to match (the substrate
 * is a from-scratch simulator, see DESIGN.md); the *shape* — who wins,
 * by roughly what factor, where crossovers fall — is the target.
 *
 * Run length scales with the DELOREAN_SCALE environment variable
 * (percent of each application's nominal iteration count).
 */

#ifndef DELOREAN_BENCH_BENCH_UTIL_HPP_
#define DELOREAN_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/delorean.hpp"

namespace delorean_bench
{

/** Workload seed shared by all harnesses (arbitrary, fixed). */
constexpr std::uint64_t kSeed = 20080621; // ISCA 2008

/** Scale (percent) for bench runs; override with DELOREAN_SCALE. */
inline unsigned
benchScale(unsigned default_percent)
{
    if (const char *env = std::getenv("DELOREAN_SCALE"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return default_percent;
}

/** Short display label (matches the paper's figure captions). */
inline std::string
appLabel(const std::string &name)
{
    return name;
}

/** Print a section header. */
inline void
header(const std::string &title, const std::string &paper_note)
{
    std::printf("\n==== %s ====\n", title.c_str());
    std::printf("paper: %s\n\n", paper_note.c_str());
}

/** Geometric mean helper re-exported for harnesses. */
inline double
geoMean(const std::vector<double> &v)
{
    return delorean::geometricMean(v);
}

} // namespace delorean_bench

#endif // DELOREAN_BENCH_BENCH_UTIL_HPP_
