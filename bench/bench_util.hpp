/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench prints the paper's expected values next to our measured
 * ones. Absolute cycle counts are not expected to match (the substrate
 * is a from-scratch simulator, see DESIGN.md); the *shape* — who wins,
 * by roughly what factor, where crossovers fall — is the target.
 *
 * Run length scales with the DELOREAN_SCALE environment variable
 * (percent of each application's nominal iteration count); the worker
 * count with DELOREAN_JOBS (default: all host cores). Harness stdout
 * is byte-identical at any worker count — only the throughput summary
 * on stderr and BENCH_campaign.json mention wall-clock time.
 */

#ifndef DELOREAN_BENCH_BENCH_UTIL_HPP_
#define DELOREAN_BENCH_BENCH_UTIL_HPP_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/delorean.hpp"
#include "sim/campaign.hpp"

namespace delorean_bench
{

/** Workload seed shared by all harnesses (arbitrary, fixed). */
constexpr std::uint64_t kSeed = 20080621; // ISCA 2008

/**
 * Scale (percent) for bench runs; override with DELOREAN_SCALE.
 * An unparsable or zero value (e.g. a typo like DELOREAN_SCALE=x,
 * which strtoul turns into 0) falls back to the harness default
 * instead of silently degenerating every run to zero iterations.
 */
inline unsigned
benchScale(unsigned default_percent)
{
    if (const char *env = std::getenv("DELOREAN_SCALE")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        std::fprintf(stderr,
                     "bench: ignoring invalid DELOREAN_SCALE=\"%s\" "
                     "(using %u%%)\n",
                     env, default_percent);
    }
    return default_percent;
}

/** Print a section header. */
inline void
header(const std::string &title, const std::string &paper_note)
{
    std::printf("\n==== %s ====\n", title.c_str());
    std::printf("paper: %s\n\n", paper_note.c_str());
}

/** Geometric mean helper re-exported for harnesses. */
inline double
geoMean(const std::vector<double> &v)
{
    return delorean::geometricMean(v);
}

/**
 * One harness campaign: a deterministic parallel runner plus a
 * recording cache plus throughput accounting.
 *
 * Usage: build a job list (each job a closure returning a row
 * struct), run it through map(), then print rows in submission
 * order. Jobs obtain initial executions through record() so
 * identical recordings are shared, and report extra simulated work
 * (replays, interleaved baselines) through account()/addSim().
 * finish() — also run by the destructor — prints a wall-clock
 * summary to stderr and merges the figures into BENCH_campaign.json.
 */
class BenchCampaign
{
  public:
    explicit BenchCampaign(std::string harness)
        : harness_(std::move(harness)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~BenchCampaign() { finish(); }

    BenchCampaign(const BenchCampaign &) = delete;
    BenchCampaign &operator=(const BenchCampaign &) = delete;

    unsigned jobs() const { return runner_.jobs(); }

    /** Run tasks in parallel, collecting results by job index. */
    template <typename R>
    std::vector<R>
    map(std::vector<std::function<R()>> tasks)
    {
        job_count_ += tasks.size();
        return runner_.map(std::move(tasks));
    }

    /** Run tasks in parallel (results handled by the closures). */
    void
    run(std::vector<std::function<void()>> tasks)
    {
        job_count_ += tasks.size();
        runner_.run(std::move(tasks));
    }

    /**
     * Cached initial execution: records on first use, reuses the
     * recording afterwards. Simulated work is accounted only for the
     * call that actually recorded. Safe from worker threads; the
     * returned reference stays valid for the campaign's lifetime.
     */
    const delorean::Recording &
    record(const delorean::RecordJob &job)
    {
        bool fresh = false;
        const delorean::Recording &rec = cache_.record(job, &fresh);
        if (fresh)
            account(rec.stats);
        return rec;
    }

    /** Account one engine run's simulated work (record or replay). */
    void
    account(const delorean::EngineStats &stats)
    {
        addSim(stats.totalCycles, stats.generatedInstrs);
    }

    /** Account simulated work not expressed as EngineStats. */
    void
    addSim(std::uint64_t cycles, std::uint64_t instrs)
    {
        sim_cycles_.fetch_add(cycles, std::memory_order_relaxed);
        sim_instrs_.fetch_add(instrs, std::memory_order_relaxed);
    }

    /**
     * Emit the throughput summary (stderr + BENCH_campaign.json).
     * Idempotent; called automatically on destruction.
     */
    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;

        delorean::CampaignReport report;
        report.harness = harness_;
        report.jobs = runner_.jobs();
        report.jobCount = job_count_;
        report.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        report.simCycles = sim_cycles_.load();
        report.simInstrs = sim_instrs_.load();
        report.cacheHits = cache_.hits();
        report.cacheMisses = cache_.misses();
        delorean::writeCampaignReport(report);

        std::fprintf(stderr,
                     "[%s] %llu jobs on %u workers: %.2fs wall, "
                     "%.2fM sim-cycles/s, %.2fM sim-instrs/s "
                     "(cache: %llu hits, %llu misses)\n",
                     harness_.c_str(),
                     static_cast<unsigned long long>(report.jobCount),
                     report.jobs, report.wallSeconds,
                     report.simCyclesPerSecond() / 1e6,
                     report.simInstrsPerSecond() / 1e6,
                     static_cast<unsigned long long>(report.cacheHits),
                     static_cast<unsigned long long>(
                         report.cacheMisses));
    }

  private:
    std::string harness_;
    delorean::CampaignRunner runner_;
    delorean::RecordingCache cache_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t job_count_ = 0;
    std::atomic<std::uint64_t> sim_cycles_{0};
    std::atomic<std::uint64_t> sim_instrs_{0};
    bool finished_ = false;
};

} // namespace delorean_bench

#endif // DELOREAN_BENCH_BENCH_UTIL_HPP_
