/**
 * @file
 * Figure 9: size of the PI log in 2000-instruction OrderOnly without
 * and with stratification, for 1, 3 and 7 committed chunks per
 * processor per stratum, normalized to the non-stratified design.
 *
 * Paper reference points: 1 chunk/proc/stratum cuts the PI log by an
 * average of 54% (total OrderOnly log ~0.6 bits/proc/kilo-inst, 7.5%
 * of Basic RTR); 7 chunks/proc/stratum wastes space and can *grow*
 * the log (SPECweb2005).
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 9: stratified PI log size, normalized to OrderOnly",
           "1 chunk/stratum: PI log -54% avg => ~0.6 bits total "
           "(7.5% of RTR); 7 chunks/stratum can waste space");

    const unsigned scale = benchScale(30);
    const MachineConfig machine;
    const std::vector<unsigned> strat_configs{1, 3, 7};

    std::printf("%-10s | %10s | %8s %8s %8s  (normalized comp PI)\n",
                "app", "base comp", "s=1", "s=3", "s=7");

    std::vector<double> norm_s1, total_s1;

    for (const auto &app : AppTable::allNames()) {
        Workload w(app, machine.numProcs, kSeed, WorkloadScale{scale});

        ModeConfig base = ModeConfig::orderOnly();
        Recorder base_rec(base, machine);
        const Recording rec0 = base_rec.record(w, 1);
        const LogSizeReport s0 = rec0.logSizes();
        const double base_pi = s0.piBitsPerProcPerKiloInstr(true);

        std::printf("%-10s | %10.3f |", app.c_str(), base_pi);
        for (const unsigned chunks : strat_configs) {
            ModeConfig mode = ModeConfig::orderOnly();
            mode.stratifyChunksPerProc = chunks;
            Recorder recorder(mode, machine);
            const Recording rec = recorder.record(w, 1);
            const LogSizeReport s = rec.logSizes();
            const double pi = s.piBitsPerProcPerKiloInstr(true);
            const double norm = base_pi > 0 ? pi / base_pi : 0.0;
            std::printf(" %8.3f", norm);
            if (chunks == 1) {
                norm_s1.push_back(norm);
                total_s1.push_back(s.bitsPerProcPerKiloInstr(true));
            }
        }
        std::printf("\n");
    }

    std::printf("\n1 chunk/proc/stratum: mean normalized PI %.2f "
                "(paper: 0.46, i.e. -54%%); mean total log %.2f "
                "bits/proc/kilo-inst (paper: ~0.6)\n",
                geoMean(norm_s1), geoMean(total_s1));
    return 0;
}
