/**
 * @file
 * Figure 9: size of the PI log in 2000-instruction OrderOnly without
 * and with stratification, for 1, 3 and 7 committed chunks per
 * processor per stratum, normalized to the non-stratified design.
 *
 * Paper reference points: 1 chunk/proc/stratum cuts the PI log by an
 * average of 54% (total OrderOnly log ~0.6 bits/proc/kilo-inst, 7.5%
 * of Basic RTR); 7 chunks/proc/stratum wastes space and can *grow*
 * the log (SPECweb2005).
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 9: stratified PI log size, normalized to OrderOnly",
           "1 chunk/stratum: PI log -54% avg => ~0.6 bits total "
           "(7.5% of RTR); 7 chunks/stratum can waste space");

    const unsigned scale = benchScale(30);
    const MachineConfig machine;
    const std::vector<unsigned> strat_configs{1, 3, 7};
    const std::vector<std::string> apps = AppTable::allNames();

    // One job per (app, stratification) cell; stratification 0 is the
    // non-stratified baseline each row is normalized against.
    BenchCampaign campaign("fig9_stratified_pilog");
    std::vector<std::function<LogSizeReport()>> tasks;
    for (const auto &app : apps) {
        for (unsigned chunks :
             std::vector<unsigned>{0, strat_configs[0], strat_configs[1],
                                   strat_configs[2]}) {
            tasks.push_back([&campaign, &machine, app, chunks, scale] {
                ModeConfig mode = ModeConfig::orderOnly();
                mode.stratifyChunksPerProc = chunks;
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = mode;
                return campaign.record(job).logSizes();
            });
        }
    }
    const std::vector<LogSizeReport> rows = campaign.map(std::move(tasks));

    std::printf("%-10s | %10s | %8s %8s %8s  (normalized comp PI)\n",
                "app", "base comp", "s=1", "s=3", "s=7");

    std::vector<double> norm_s1, total_s1;
    std::size_t row = 0;
    for (const auto &app : apps) {
        const LogSizeReport &s0 = rows[row++];
        const double base_pi = s0.piBitsPerProcPerKiloInstr(true);

        std::printf("%-10s | %10.3f |", app.c_str(), base_pi);
        for (const unsigned chunks : strat_configs) {
            const LogSizeReport &s = rows[row++];
            const double pi = s.piBitsPerProcPerKiloInstr(true);
            const double norm = base_pi > 0 ? pi / base_pi : 0.0;
            std::printf(" %8.3f", norm);
            if (chunks == 1) {
                norm_s1.push_back(norm);
                total_s1.push_back(s.bitsPerProcPerKiloInstr(true));
            }
        }
        std::printf("\n");
    }

    std::printf("\n1 chunk/proc/stratum: mean normalized PI %.2f "
                "(paper: 0.46, i.e. -54%%); mean total log %.2f "
                "bits/proc/kilo-inst (paper: ~0.6)\n",
                geoMean(norm_s1), geoMean(total_s1));
    return 0;
}
