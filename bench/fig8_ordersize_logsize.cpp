/**
 * @file
 * Figure 8: size of the PI and CS logs in Order&Size mode, in bits per
 * processor per kilo-instruction, for maximum chunk sizes of
 * 1000/2000/3000, with and without compression.
 *
 * Paper reference points: Order&Size needs larger PI and CS logs than
 * OrderOnly — sometimes comparable to Basic RTR; the preferred
 * 2000-instruction compressed configuration averages 3.7 bits per
 * processor per kilo-instruction (46% of Basic RTR's ~8).
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 8: PI+CS log size in Order&Size (bits/proc/kilo-inst)",
           "preferred 2000-inst compressed config avg 3.7 "
           "(46% of Basic RTR)");

    const unsigned scale = benchScale(30);
    const MachineConfig machine;
    const std::vector<InstrCount> chunk_sizes{1000, 2000, 3000};
    const std::vector<std::string> apps = AppTable::allNames();

    BenchCampaign campaign("fig8_ordersize_logsize");
    std::vector<std::function<LogSizeReport()>> tasks;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            tasks.push_back([&campaign, &machine, app, cs, scale] {
                ModeConfig mode = ModeConfig::orderAndSize();
                mode.chunkSize = cs;
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = mode;
                return campaign.record(job).logSizes();
            });
        }
    }
    const std::vector<LogSizeReport> rows = campaign.map(std::move(tasks));

    std::printf("%-10s %6s | %9s %9s %9s %9s | %9s\n", "app", "max",
                "PI raw", "CS raw", "PI comp", "CS comp", "total comp");

    std::vector<double> preferred_totals;
    std::size_t row = 0;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            const LogSizeReport &sizes = rows[row++];
            std::printf("%-10s %6llu | %9.3f %9.3f %9.3f %9.3f | %9.3f\n",
                        app.c_str(), static_cast<unsigned long long>(cs),
                        sizes.piBitsPerProcPerKiloInstr(false),
                        sizes.csBitsPerProcPerKiloInstr(false),
                        sizes.piBitsPerProcPerKiloInstr(true),
                        sizes.csBitsPerProcPerKiloInstr(true),
                        sizes.bitsPerProcPerKiloInstr(true));
            if (cs == 2000)
                preferred_totals.push_back(
                    sizes.bitsPerProcPerKiloInstr(true));
        }
    }

    double mean = 0;
    for (const double t : preferred_totals)
        mean += t;
    mean /= static_cast<double>(preferred_totals.size());
    std::printf("\npreferred 2000-inst config: mean %.2f compressed "
                "bits/proc/kilo-inst (paper: 3.7; RTR ref ~8)\n",
                mean);
    return 0;
}
