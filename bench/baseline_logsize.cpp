/**
 * @file
 * Section 6.1 cross-scheme log-size comparison: our from-scratch FDR,
 * Basic RTR and Strata recorders (run on the SC interleaving of the
 * same workloads) against DeLorean's OrderOnly and PicoLog logs.
 *
 * Paper reference points: Basic RTR ~1 B (8 bits) per processor per
 * kilo-instruction compressed; 2000-inst OrderOnly is 16% of RTR (and
 * 7.5% with stratification); PicoLog is 0.6% of RTR; vs Strata's
 * published 2.2 KB per million memory ops (4 procs), DeLorean needs
 * 364 B (OrderOnly) and 13.7 B (PicoLog) per processor per million
 * memory operations.
 */

#include "baselines/fdr.hpp"
#include "baselines/multi_sink.hpp"
#include "baselines/rtr.hpp"
#include "baselines/strata.hpp"
#include "bench_util.hpp"
#include "compress/lz77.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Baseline log sizes: FDR / Basic RTR / Strata vs DeLorean",
           "RTR ~8 bits/proc/kinst; OrderOnly 16% of RTR (7.5% "
           "stratified); PicoLog 0.6%; Strata 2.2KB/M-memops@4p vs "
           "DeLorean 364B (OO) / 13.7B (Pico) per proc per M memops");

    const unsigned scale = benchScale(15);
    const MachineConfig machine;
    const Lz77 codec;

    std::printf("%-10s | %8s %8s %8s | %8s %8s %8s  "
                "(compressed bits/proc/kilo-inst)\n",
                "app", "FDR", "RTR", "Strata", "OO", "strOO", "Pico");

    std::vector<double> g_fdr, g_rtr, g_strata, g_oo, g_soo, g_pico;
    std::vector<double> oo_bytes_per_mops, pico_bytes_per_mops;

    for (const auto &app : AppTable::allNames()) {
        Workload w(app, machine.numProcs, kSeed, WorkloadScale{scale});

        // Conventional recorders observe the SC machine's access order.
        FdrRecorder fdr(machine.numProcs);
        RtrRecorder rtr(machine.numProcs);
        StrataRecorder strata(machine.numProcs, /*record_war=*/false);
        MultiSink sinks;
        sinks.add(&fdr);
        sinks.add(&rtr);
        sinks.add(&strata);
        InterleavedExecutor sc_exec(machine, ConsistencyModel::kSC);
        const InterleavedResult sc = sc_exec.run(w, 1, &sinks);
        rtr.finalize();

        const double kinst =
            static_cast<double>(sc.totalInstrs) / 1000.0;
        const double fdr_bits =
            static_cast<double>(codec.compressedBits(fdr.packedBytes()))
            / kinst;
        const double rtr_bits = static_cast<double>(codec.compressedBits(
                                    rtr.vectorPackedBytes()))
                                / kinst;
        const double strata_bits =
            static_cast<double>(
                codec.compressedBits(strata.packedBytes()))
            / kinst;

        auto delorean_bits = [&](ModeConfig mode, double *bytes_mops) {
            Recorder recorder(mode, machine);
            const Recording rec = recorder.record(w, 1);
            const LogSizeReport sizes = rec.logSizes();
            const double bits_per_kinst =
                sizes.bitsPerProcPerKiloInstr(true);
            if (bytes_mops) {
                // bits/proc/kilo-inst -> bytes/proc/M memory ops,
                // using the profile's memory-op density.
                const double memop_ratio =
                    w.profile().memOpPerMille / 1000.0;
                *bytes_mops = bits_per_kinst * 125.0 / memop_ratio;
            }
            return bits_per_kinst;
        };

        ModeConfig strat = ModeConfig::orderOnly();
        strat.stratifyChunksPerProc = 1;

        double oo_mops = 0, pico_mops = 0;
        const double oo = delorean_bits(ModeConfig::orderOnly(),
                                        &oo_mops);
        const double soo = delorean_bits(strat, nullptr);
        const double pico = delorean_bits(ModeConfig::picoLog(),
                                          &pico_mops);

        std::printf("%-10s | %8.2f %8.2f %8.2f | %8.3f %8.3f %8.4f\n",
                    app.c_str(), fdr_bits, rtr_bits, strata_bits, oo,
                    soo, pico);

        g_fdr.push_back(fdr_bits);
        g_rtr.push_back(rtr_bits);
        g_strata.push_back(strata_bits);
        g_oo.push_back(oo);
        g_soo.push_back(soo);
        g_pico.push_back(pico + 1e-6);
        oo_bytes_per_mops.push_back(oo_mops);
        pico_bytes_per_mops.push_back(pico_mops);
    }

    const double fdr_m = geoMean(g_fdr), rtr_m = geoMean(g_rtr);
    const double oo_m = geoMean(g_oo), soo_m = geoMean(g_soo);
    const double pico_m = geoMean(g_pico);
    std::printf("\ngeomeans: FDR %.2f, RTR %.2f, Strata %.2f, "
                "OO %.3f, strOO %.3f, Pico %.4f\n",
                fdr_m, rtr_m, geoMean(g_strata), oo_m, soo_m, pico_m);
    std::printf("OO/RTR = %.1f%% (paper 16%%), strOO/RTR = %.1f%% "
                "(paper 7.5%%), Pico/RTR = %.2f%% (paper 0.6%%)\n",
                100 * oo_m / rtr_m, 100 * soo_m / rtr_m,
                100 * pico_m / rtr_m);
    std::printf("bytes per proc per M memops: OO %.0f (paper 364), "
                "Pico %.1f (paper 13.7)\n",
                geoMean(oo_bytes_per_mops),
                geoMean(pico_bytes_per_mops));
    return 0;
}
