/**
 * @file
 * Section 6.1 cross-scheme log-size comparison: our from-scratch FDR,
 * Basic RTR and Strata recorders (run on the SC interleaving of the
 * same workloads) against DeLorean's OrderOnly and PicoLog logs.
 *
 * Paper reference points: Basic RTR ~1 B (8 bits) per processor per
 * kilo-instruction compressed; 2000-inst OrderOnly is 16% of RTR (and
 * 7.5% with stratification); PicoLog is 0.6% of RTR; vs Strata's
 * published 2.2 KB per million memory ops (4 procs), DeLorean needs
 * 364 B (OrderOnly) and 13.7 B (PicoLog) per processor per million
 * memory operations.
 */

#include "baselines/fdr.hpp"
#include "baselines/multi_sink.hpp"
#include "baselines/rtr.hpp"
#include "baselines/strata.hpp"
#include "bench_util.hpp"
#include "compress/lz77.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

/** SC run with the three conventional recorders attached. */
struct ScRow
{
    double fdrBits = 0;
    double rtrBits = 0;
    double strataBits = 0;
};

/** One DeLorean mode's compressed log size. */
struct ModeRow
{
    double bits = 0;
    double bytesPerMops = 0;
};

} // namespace

int
main()
{
    header("Baseline log sizes: FDR / Basic RTR / Strata vs DeLorean",
           "RTR ~8 bits/proc/kinst; OrderOnly 16% of RTR (7.5% "
           "stratified); PicoLog 0.6%; Strata 2.2KB/M-memops@4p vs "
           "DeLorean 364B (OO) / 13.7B (Pico) per proc per M memops");

    const unsigned scale = benchScale(15);
    const MachineConfig machine;
    const std::vector<std::string> apps = AppTable::allNames();

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;
    const std::vector<ModeConfig> modes{ModeConfig::orderOnly(), strat,
                                        ModeConfig::picoLog()};

    BenchCampaign campaign("baseline_logsize");

    std::vector<ScRow> sc_rows(apps.size());
    std::vector<std::vector<ModeRow>> mode_rows(
        apps.size(), std::vector<ModeRow>(modes.size()));
    {
        std::vector<std::function<void()>> tasks;
        for (std::size_t ai = 0; ai < apps.size(); ++ai) {
            const std::string &app = apps[ai];
            // Conventional recorders observe the SC machine's access
            // order.
            tasks.push_back([&campaign, &machine, &sc_rows, app, ai,
                             scale] {
                Workload w(app, machine.numProcs, kSeed,
                           WorkloadScale{scale});
                FdrRecorder fdr(machine.numProcs);
                RtrRecorder rtr(machine.numProcs);
                StrataRecorder strata(machine.numProcs,
                                      /*record_war=*/false);
                MultiSink sinks;
                sinks.add(&fdr);
                sinks.add(&rtr);
                sinks.add(&strata);
                InterleavedExecutor sc_exec(machine,
                                            ConsistencyModel::kSC);
                const InterleavedResult sc = sc_exec.run(w, 1, &sinks);
                rtr.finalize();
                campaign.addSim(sc.cycles, sc.totalInstrs);

                const Lz77 codec;
                const double kinst =
                    static_cast<double>(sc.totalInstrs) / 1000.0;
                sc_rows[ai].fdrBits =
                    static_cast<double>(
                        codec.compressedBits(fdr.packedBytes()))
                    / kinst;
                sc_rows[ai].rtrBits =
                    static_cast<double>(
                        codec.compressedBits(rtr.vectorPackedBytes()))
                    / kinst;
                sc_rows[ai].strataBits =
                    static_cast<double>(
                        codec.compressedBits(strata.packedBytes()))
                    / kinst;
            });
            for (std::size_t mi = 0; mi < modes.size(); ++mi) {
                tasks.push_back([&campaign, &machine, &mode_rows,
                                 mode = modes[mi], app, ai, mi, scale] {
                    RecordJob job;
                    job.app = app;
                    job.workloadSeed = kSeed;
                    job.scalePercent = scale;
                    job.machine = machine;
                    job.mode = mode;
                    const Recording &rec = campaign.record(job);
                    const LogSizeReport sizes = rec.logSizes();
                    const double bits_per_kinst =
                        sizes.bitsPerProcPerKiloInstr(true);
                    // bits/proc/kilo-inst -> bytes/proc/M memory ops,
                    // using the profile's memory-op density.
                    Workload w(app, machine.numProcs, kSeed,
                               WorkloadScale{scale});
                    const double memop_ratio =
                        w.profile().memOpPerMille / 1000.0;
                    mode_rows[ai][mi] =
                        ModeRow{bits_per_kinst,
                                bits_per_kinst * 125.0 / memop_ratio};
                });
            }
        }
        campaign.run(std::move(tasks));
    }

    std::printf("%-10s | %8s %8s %8s | %8s %8s %8s  "
                "(compressed bits/proc/kilo-inst)\n",
                "app", "FDR", "RTR", "Strata", "OO", "strOO", "Pico");

    std::vector<double> g_fdr, g_rtr, g_strata, g_oo, g_soo, g_pico;
    std::vector<double> oo_bytes_per_mops, pico_bytes_per_mops;

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const ScRow &sc = sc_rows[ai];
        const double oo = mode_rows[ai][0].bits;
        const double soo = mode_rows[ai][1].bits;
        const double pico = mode_rows[ai][2].bits;

        std::printf("%-10s | %8.2f %8.2f %8.2f | %8.3f %8.3f %8.4f\n",
                    apps[ai].c_str(), sc.fdrBits, sc.rtrBits,
                    sc.strataBits, oo, soo, pico);

        g_fdr.push_back(sc.fdrBits);
        g_rtr.push_back(sc.rtrBits);
        g_strata.push_back(sc.strataBits);
        g_oo.push_back(oo);
        g_soo.push_back(soo);
        g_pico.push_back(pico + 1e-6);
        oo_bytes_per_mops.push_back(mode_rows[ai][0].bytesPerMops);
        pico_bytes_per_mops.push_back(mode_rows[ai][2].bytesPerMops);
    }

    const double fdr_m = geoMean(g_fdr), rtr_m = geoMean(g_rtr);
    const double oo_m = geoMean(g_oo), soo_m = geoMean(g_soo);
    const double pico_m = geoMean(g_pico);
    std::printf("\ngeomeans: FDR %.2f, RTR %.2f, Strata %.2f, "
                "OO %.3f, strOO %.3f, Pico %.4f\n",
                fdr_m, rtr_m, geoMean(g_strata), oo_m, soo_m, pico_m);
    std::printf("OO/RTR = %.1f%% (paper 16%%), strOO/RTR = %.1f%% "
                "(paper 7.5%%), Pico/RTR = %.2f%% (paper 0.6%%)\n",
                100 * oo_m / rtr_m, 100 * soo_m / rtr_m,
                100 * pico_m / rtr_m);
    std::printf("bytes per proc per M memops: OO %.0f (paper 364), "
                "Pico %.1f (paper 13.7)\n",
                geoMean(oo_bytes_per_mops),
                geoMean(pico_bytes_per_mops));
    return 0;
}
