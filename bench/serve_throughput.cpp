/**
 * @file
 * serve_throughput: streaming service session throughput ->
 * BENCH_serve.json.
 *
 * The serving pitch (ISSUE 9) is that a long-lived multiplexer beats
 * one-shot tool invocations on a session stream: the recording cache
 * collapses duplicate record work across sessions that share a key,
 * archive compression/IO overlaps simulation via the streaming
 * writer, and the worker pool keeps heterogeneous sessions in flight
 * together.
 *
 * This harness drives the same 24-session mix (4 recording keys x
 * [1 record + 3 replay + 2 validate]) two ways:
 *
 *   - baseline: sequential one-shot loop — every session re-records
 *     its recording from scratch (no cache, batch archive write for
 *     record sessions), exactly what running one CLI per session
 *     costs today;
 *   - serve: ServeService at jobs {1, 2, 4, 8} with streamed
 *     archives.
 *
 * Acceptance: >= 1.5x sustained aggregate session throughput at
 * jobs >= 4 over the baseline. The exit status enforces it, plus the
 * usual determinism contract: the service ledger must be
 * byte-identical across every width. Wall-clock detail goes to
 * stderr and the JSON ledger (path override: DELOREAN_SERVE_JSON).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "core/recorder.hpp"
#include "ledger.hpp"
#include "serve/service.hpp"
#include "store/archive.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

std::vector<ServeJob>
sessionMix(unsigned scale)
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    struct Key
    {
        const char *app;
        ModeConfig mode;
    };
    const Key keys[4] = {
        {"radix", ModeConfig::orderAndSize()},
        {"fft", ModeConfig::orderOnly()},
        {"lu", strat},
        {"ocean", ModeConfig::picoLog()},
    };

    std::vector<ServeJob> jobs;
    for (const Key &key : keys) {
        const auto add = [&](ServeClass cls, std::uint64_t renv) {
            ServeJob job;
            job.cls = cls;
            job.record.app = key.app;
            job.record.workloadSeed = kSeed;
            job.record.scalePercent = scale;
            job.record.mode = key.mode;
            jobs.push_back(job);
            jobs.back().replayEnvSeed = renv;
        };
        add(ServeClass::kRecord, 0);
        add(ServeClass::kReplay, 5);
        add(ServeClass::kReplay, 6);
        add(ServeClass::kReplay, 7);
        add(ServeClass::kValidate, 8);
        add(ServeClass::kValidate, 9);
    }
    return jobs;
}

struct Figures
{
    double wallSeconds = 0;
    double sessionsPerSecond = 0;
    double archiveMb = 0;
    double mbPerSecond = 0;
};

Figures
figuresFor(double wall, std::size_t sessions, std::uint64_t bytes)
{
    Figures f;
    f.wallSeconds = wall;
    f.sessionsPerSecond = wall > 0 ? sessions / wall : 0;
    f.archiveMb = static_cast<double>(bytes) / 1e6;
    f.mbPerSecond = wall > 0 ? f.archiveMb / wall : 0;
    return f;
}

/**
 * Sequential one-shot baseline: each session stands alone, the way a
 * per-session CLI invocation would — re-record the recording it
 * depends on, then run its class. Record sessions pay the batch
 * archive write on top.
 */
Figures
runBaseline(const std::vector<ServeJob> &jobs, unsigned period,
            bool *ok)
{
    std::uint64_t archive_bytes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const ServeJob &job : jobs) {
        const Workload w(job.record.app,
                         job.record.machine.numProcs,
                         job.record.workloadSeed,
                         WorkloadScale{job.record.scalePercent});
        const Recorder recorder(job.record.mode, job.record.machine);
        const Recording rec = recorder.record(
            w, job.record.envSeed, job.record.logging, {}, period);
        switch (job.cls) {
        case ServeClass::kRecord: {
            std::ostringstream out(std::ios::binary);
            writeArchive(rec, out);
            archive_bytes += out.tellp();
            break;
        }
        case ServeClass::kReplay: {
            const Replayer replayer;
            const ReplayOutcome out = replayer.replay(
                rec, job.replayEnvSeed, {}, job.replayWindow);
            *ok = *ok
                  && (out.deterministicExact
                      || (rec.stratified()
                          && out.deterministicPerProc));
            break;
        }
        case ServeClass::kValidate: {
            ReplayCheckOptions vopts;
            vopts.envSeed = job.replayEnvSeed;
            vopts.replayWindow = job.replayWindow;
            *ok = *ok && checkedReplay(rec, vopts).ok;
            break;
        }
        }
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return figuresFor(wall, jobs.size(), archive_bytes);
}

void
removeArchives(const ServeReport &report, const std::string &dir)
{
    for (const ServeRecordingInfo &r : report.recordings)
        if (!r.archivePath.empty())
            std::remove(r.archivePath.c_str());
    ::rmdir(dir.c_str());
}

} // namespace

int
main()
{
    header("serve_throughput: multiplexed sessions vs one-shot loop",
           "cache dedupe + streamed archives should clear 1.5x "
           "aggregate throughput at jobs >= 4");

    const unsigned scale = benchScale(8);
    const unsigned period = 50;
    const std::vector<ServeJob> jobs = sessionMix(scale);
    const std::vector<unsigned> widths = {1, 2, 4, 8};

    bool ok = true;
    const Figures base = runBaseline(jobs, period, &ok);
    std::fprintf(stderr,
                 "[serve] baseline: %zu sessions in %.3fs "
                 "(%.2f sess/s, %.2f MB/s)\n",
                 jobs.size(), base.wallSeconds,
                 base.sessionsPerSecond, base.mbPerSecond);

    std::vector<Figures> serve(widths.size());
    std::vector<ServeReport> reports(widths.size());
    std::string ledger0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string dir =
            "serve_bench_j" + std::to_string(widths[i]) + "_"
            + std::to_string(::getpid());
        ServeOptions opts;
        opts.jobs = widths[i];
        opts.archiveDir = dir;
        opts.checkpointPeriod = period;
        ServeService service(opts);
        reports[i] = service.run(jobs);
        const ServeReport &r = reports[i];
        serve[i] = figuresFor(r.wallSeconds, r.sessions.size(),
                              r.archiveBytesTotal());
        ok = ok && r.okCount() == jobs.size();
        if (i == 0)
            ledger0 = r.ledgerJson();
        else if (r.ledgerJson() != ledger0) {
            std::fprintf(stderr,
                         "[serve] BUG: ledger differs at jobs=%u\n",
                         widths[i]);
            ok = false;
        }
        std::fprintf(stderr,
                     "[serve] jobs=%u: %.3fs (%.2f sess/s, %.2f "
                     "MB/s, %.2fx baseline, peak inflight %llu)\n",
                     widths[i], serve[i].wallSeconds,
                     serve[i].sessionsPerSecond,
                     serve[i].mbPerSecond,
                     serve[i].sessionsPerSecond
                         / base.sessionsPerSecond,
                     static_cast<unsigned long long>(r.peakInflight));
        removeArchives(r, dir);
    }

    double speedup_at_4plus = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        if (widths[i] >= 4)
            speedup_at_4plus =
                std::max(speedup_at_4plus,
                         serve[i].sessionsPerSecond
                             / base.sessionsPerSecond);
    const bool meets = speedup_at_4plus >= 1.5;
    ok = ok && meets;

    // Deterministic facts only on stdout.
    std::printf("sessions=%zu recordings=%zu dedupe=%llu->%llu "
                "ledger-identical-across-widths=%s\n",
                jobs.size(), reports[0].recordings.size(),
                static_cast<unsigned long long>(
                    reports[0].cacheHits + reports[0].cacheMisses),
                static_cast<unsigned long long>(
                    reports[0].cacheMisses),
                ok || ledger0.empty() ? "YES" : "NO");
    std::printf("throughput target (>=1.5x at jobs>=4): %s\n",
                meets ? "MET" : "MISSED");

    // ---- BENCH_serve.json -------------------------------------------
    JsonLedger ledger("serve_throughput");
    ledger.field("sessions", jobs.size());
    ledger.field("recordingKeys", reports[0].recordings.size());
    ledger.field("scalePercent", scale);
    ledger.field("checkpointPeriod", period);
    ledger.open("baseline");
    ledger.field("wallSeconds", base.wallSeconds);
    ledger.field("sessionsPerSecond", base.sessionsPerSecond);
    ledger.field("archiveMb", base.archiveMb);
    ledger.field("mbPerSecond", base.mbPerSecond);
    ledger.close();
    ledger.open("serve");
    for (std::size_t i = 0; i < widths.size(); ++i) {
        ledger.open("jobs" + std::to_string(widths[i]));
        ledger.field("wallSeconds", serve[i].wallSeconds);
        ledger.field("sessionsPerSecond", serve[i].sessionsPerSecond);
        ledger.field("archiveMb", serve[i].archiveMb);
        ledger.field("mbPerSecond", serve[i].mbPerSecond);
        ledger.field("speedupVsBaseline",
                     serve[i].sessionsPerSecond
                         / base.sessionsPerSecond);
        ledger.field("cacheHits", reports[i].cacheHits);
        ledger.field("cacheMisses", reports[i].cacheMisses);
        ledger.field("peakInflight", reports[i].peakInflight);
        ledger.close();
    }
    ledger.close();
    ledger.open("summary");
    ledger.field("speedupAtJobs4Plus", speedup_at_4plus);
    ledger.field("meets1p5x", meets);
    ledger.field("allSessionsOk", ok);
    if (!ledger.writeTo(JsonLedger::path("DELOREAN_SERVE_JSON",
                                         "BENCH_serve.json")))
        return 2;

    return ok ? 0 : 1;
}
