/**
 * @file
 * Ablation (DESIGN.md Section 7): exact vs Bloom-banked signature
 * disambiguation at the arbiter, and the chunk-size squash trade-off.
 *
 * BulkSC's tuned hardware signatures have a small aliasing rate; our
 * default configuration idealizes them (exact line sets). This bench
 * quantifies what the banked Signature model costs in spurious
 * squashes and execution speed, and how both disambiguation flavours
 * scale with chunk size.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

struct Cell
{
    std::uint64_t squashes = 0;
    std::uint64_t cycles = 0;
};

} // namespace

int
main()
{
    header("Ablation: arbiter disambiguation (exact vs signatures) "
           "and chunk size",
           "signatures add false-positive squashes; bigger chunks "
           "conflict more");

    const unsigned scale = benchScale(25);
    const std::vector<InstrCount> chunk_sizes{1000, 2000, 3000};
    const std::vector<std::string> apps{"barnes", "radix", "raytrace",
                                        "sjbb2k"};

    BenchCampaign campaign("ablation_disambiguation");
    std::vector<std::function<Cell()>> tasks;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            for (const bool exact : {true, false}) {
                tasks.push_back([&campaign, app, cs, exact, scale] {
                    ModeConfig mode = ModeConfig::orderOnly();
                    mode.chunkSize = cs;
                    MachineConfig machine;
                    machine.bulk.exactDisambiguation = exact;

                    RecordJob job;
                    job.app = app;
                    job.workloadSeed = kSeed;
                    job.scalePercent = scale;
                    job.machine = machine;
                    job.mode = mode;
                    const Recording &rec = campaign.record(job);
                    return Cell{rec.stats.squashes,
                                rec.stats.totalCycles};
                });
            }
        }
    }
    const std::vector<Cell> cells = campaign.map(std::move(tasks));

    std::printf("%-10s %6s | %10s %10s | %10s %10s  (squashes | "
                "speed vs exact)\n",
                "app", "chunk", "exact-sq", "sig-sq", "exact-cyc",
                "sig-cyc");

    std::size_t idx = 0;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            const Cell &a = cells[idx++]; // exact
            const Cell &b = cells[idx++]; // signatures
            std::printf("%-10s %6llu | %10llu %10llu | %10llu %10llu\n",
                        app.c_str(),
                        static_cast<unsigned long long>(cs),
                        static_cast<unsigned long long>(a.squashes),
                        static_cast<unsigned long long>(b.squashes),
                        static_cast<unsigned long long>(a.cycles),
                        static_cast<unsigned long long>(b.cycles));
        }
    }
    return 0;
}
