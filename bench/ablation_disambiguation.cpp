/**
 * @file
 * Ablation (DESIGN.md Section 7): exact vs Bloom-banked signature
 * disambiguation at the arbiter, and the chunk-size squash trade-off.
 *
 * BulkSC's tuned hardware signatures have a small aliasing rate; our
 * default configuration idealizes them (exact line sets). This bench
 * quantifies what the banked Signature model costs in spurious
 * squashes and execution speed, and how both disambiguation flavours
 * scale with chunk size.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Ablation: arbiter disambiguation (exact vs signatures) "
           "and chunk size",
           "signatures add false-positive squashes; bigger chunks "
           "conflict more");

    const unsigned scale = benchScale(25);
    const std::vector<InstrCount> chunk_sizes{1000, 2000, 3000};

    std::printf("%-10s %6s | %10s %10s | %10s %10s  (squashes | "
                "speed vs exact)\n",
                "app", "chunk", "exact-sq", "sig-sq", "exact-cyc",
                "sig-cyc");

    for (const char *app : {"barnes", "radix", "raytrace", "sjbb2k"}) {
        for (const InstrCount cs : chunk_sizes) {
            ModeConfig mode = ModeConfig::orderOnly();
            mode.chunkSize = cs;

            MachineConfig exact;
            exact.bulk.exactDisambiguation = true;
            MachineConfig bloom;
            bloom.bulk.exactDisambiguation = false;

            Workload w(std::string(app), exact.numProcs, kSeed,
                       WorkloadScale{scale});
            const Recording a =
                Recorder(mode, exact).record(w, 1);
            const Recording b =
                Recorder(mode, bloom).record(w, 1);

            std::printf("%-10s %6llu | %10llu %10llu | %10llu %10llu\n",
                        app,
                        static_cast<unsigned long long>(cs),
                        static_cast<unsigned long long>(
                            a.stats.squashes),
                        static_cast<unsigned long long>(
                            b.stats.squashes),
                        static_cast<unsigned long long>(
                            a.stats.totalCycles),
                        static_cast<unsigned long long>(
                            b.stats.totalCycles));
        }
    }
    return 0;
}
