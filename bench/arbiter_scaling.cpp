/**
 * @file
 * arbiter_scaling: sharded-arbitration benchmark -> BENCH_arbiter.json.
 *
 * For every SPLASH-2-style application the harness records under
 * OrderOnly across a (simulated cores x arbiter shards) grid and
 * replays each recording two ways:
 *
 *   serial   — the cycle-accurate engine, replayWindow 1, honoring
 *              the recorded partial order (a no-op at shards=1);
 *   parallel — the host-parallel chunk-body replayer at the recorded
 *              partial order, best-of-3 wall throughput.
 *
 * Reported per cell: commit-serialization stalls (the mean fraction
 * of a processor's cycles spent stalled waiting for a commit grant —
 * the contention the shard hierarchy exists to relieve), the
 * cross-shard edge rate (fraction of commits whose address footprint
 * spans shards and therefore still serializes through the root
 * arbiter), partial-order relaxed retires during parallel replay, and
 * host replay throughput serial vs parallel plus their speedup.
 *
 * Every cell also asserts that the partial-order serial replay, the
 * total-order serial replay (honorPartialOrder=false), and the
 * partial-order and total-order parallel replays all produce
 * byte-identical fingerprints — the exit status reflects that
 * invariant, not the speedup.
 *
 * Output: stdout table plus BENCH_arbiter.json (path override:
 * DELOREAN_ARBITER_JSON).
 */

#include <algorithm>

#include "bench_util.hpp"
#include "ledger.hpp"
#include "sim/parallel_replay.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr unsigned kParallelReps = 3; // best-of for wall timings

struct GridPoint
{
    unsigned cores;
    unsigned shards;
};

// 8-core/1-shard is the unsharded baseline every other point is
// compared against; 16 and 32 cores run sharded (and 16 also
// unsharded, to separate the core-count effect from the shard
// hierarchy's).
constexpr GridPoint kGrid[] = {
    {8, 1}, {8, 4}, {16, 1}, {16, 8}, {32, 8},
};

struct Cell
{
    double recordCycles = 0;
    double stallFraction = 0;      // mean per-proc commit-stall share
    std::uint64_t shardLocalCommits = 0;
    std::uint64_t crossShardCommits = 0;
    std::uint64_t poRelaxedRetires = 0;
    double serialThroughput = 0;   // retired instrs / wall second
    double parallelThroughput = 0; // ditto, chunk-parallel replayer
    bool fingerprintsIdentical = false;

    double
    crossShardRate() const
    {
        const std::uint64_t total =
            shardLocalCommits + crossShardCommits;
        return total ? static_cast<double>(crossShardCommits)
                           / static_cast<double>(total)
                     : 0.0;
    }

    double
    speedup() const
    {
        return serialThroughput > 0
                   ? parallelThroughput / serialThroughput
                   : 0.0;
    }
};

double
throughput(const EngineStats &stats)
{
    return stats.wallSeconds > 0
               ? static_cast<double>(stats.retiredInstrs)
                     / stats.wallSeconds
               : 0.0;
}

} // namespace

int
main()
{
    header("arbiter_scaling: sharded arbitration vs core count",
           "partial-order parallel replay at 16+ cores should beat "
           "the 8-core unsharded speedup; fingerprints byte-identical "
           "to total-order replay everywhere");

    const unsigned scale = benchScale(10);
    const unsigned jobs = std::max(4u, campaignJobs());
    const std::vector<std::string> &apps = AppTable::splash2Names();

    BenchCampaign campaign("arbiter_scaling");
    std::vector<std::function<std::vector<Cell>()>> tasks;
    for (const std::string &app : apps) {
        tasks.push_back([&campaign, app, scale, jobs]() {
            std::vector<Cell> row;
            for (const GridPoint &g : kGrid) {
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine.numProcs = g.cores;
                job.machine.bulk.numArbiters = g.shards;
                job.mode = ModeConfig::orderOnly();
                const Recording &rec = campaign.record(job);

                Workload w(app, g.cores, kSeed, WorkloadScale{scale});
                Cell cell;
                cell.recordCycles =
                    static_cast<double>(rec.stats.totalCycles);
                cell.stallFraction = rec.stats.stallFraction();
                cell.shardLocalCommits = rec.stats.shardLocalCommits;
                cell.crossShardCommits = rec.stats.crossShardCommits;

                Replayer replayer;
                const ReplayOutcome serial =
                    replayer.replay(rec, w, /*env_seed=*/77);
                campaign.account(serial.stats);
                cell.serialThroughput = throughput(serial.stats);

                ReplayCheckOptions topts;
                topts.honorPartialOrder = false;
                const ReplayCheckResult total = checkedReplay(rec, topts);
                campaign.account(total.outcome.stats);

                const unsigned window = std::max(8u, g.cores / 2);
                ParallelReplayOptions popts;
                popts.window = window;
                popts.jobs = jobs;
                const ParallelReplayer parallel(popts);
                ReplayOutcome par;
                for (unsigned rep = 0; rep < kParallelReps; ++rep) {
                    par = parallel.replay(rec, w);
                    campaign.addSim(0, par.stats.executedInstrs);
                    cell.parallelThroughput = std::max(
                        cell.parallelThroughput, throughput(par.stats));
                }
                cell.poRelaxedRetires = par.stats.poRelaxedRetires;

                ParallelReplayOptions tpopts = popts;
                tpopts.honorPartialOrder = false;
                const ReplayCheckResult ptotal =
                    checkedParallelReplay(rec, tpopts);
                campaign.addSim(0, ptotal.outcome.stats.executedInstrs);

                cell.fingerprintsIdentical =
                    serial.deterministicExact && par.deterministicExact
                    && total.ok && ptotal.ok
                    && total.outcome.fingerprint.matchesExact(
                        serial.fingerprint)
                    && par.fingerprint.matchesExact(serial.fingerprint)
                    && ptotal.outcome.fingerprint.matchesExact(
                        serial.fingerprint);
                row.push_back(cell);
            }
            return row;
        });
    }
    const std::vector<std::vector<Cell>> rows =
        campaign.map(std::move(tasks));

    std::printf("%-10s | %5s %6s | %6s | %6s | %8s | %9s | %s\n", "app",
                "cores", "shards", "stall", "xshard", "po-relax",
                "speedup", "fp");
    bool all_identical = true;
    std::vector<std::vector<double>> grid_speedups(std::size(kGrid));
    std::vector<unsigned> beats_baseline(std::size(kGrid), 0);
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const double base = rows[ai][0].speedup(); // 8 cores, 1 shard
        for (std::size_t gi = 0; gi < std::size(kGrid); ++gi) {
            const Cell &cell = rows[ai][gi];
            std::printf("%-10s | %5u %6u | %5.1f%% | %5.1f%% | %8llu | "
                        "%8.2fx | %s\n",
                        apps[ai].c_str(), kGrid[gi].cores,
                        kGrid[gi].shards, 100.0 * cell.stallFraction,
                        100.0 * cell.crossShardRate(),
                        static_cast<unsigned long long>(
                            cell.poRelaxedRetires),
                        cell.speedup(),
                        cell.fingerprintsIdentical ? "ok" : "MISMATCH");
            all_identical = all_identical && cell.fingerprintsIdentical;
            grid_speedups[gi].push_back(cell.speedup());
            if (cell.speedup() > base)
                ++beats_baseline[gi];
        }
    }

    std::printf("\n%-14s | %9s | %s\n", "configuration", "geomean",
                "apps beating their 8-core/1-shard speedup");
    for (std::size_t gi = 0; gi < std::size(kGrid); ++gi)
        std::printf("%3u cores /%3u | %8.2fx | %u/%zu\n",
                    kGrid[gi].cores, kGrid[gi].shards,
                    geoMean(grid_speedups[gi]), beats_baseline[gi],
                    apps.size());
    std::printf("partial-order == total-order fingerprints everywhere: "
                "%s\n",
                all_identical ? "YES" : "NO (BUG)");

    // ---- BENCH_arbiter.json -----------------------------------------
    delorean_bench::JsonLedger ledger("arbiter_scaling");
    ledger.field("jobs", jobs);
    ledger.field("scalePercent", scale);
    ledger.open("apps");
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ledger.open(apps[ai]);
        for (std::size_t gi = 0; gi < std::size(kGrid); ++gi) {
            const Cell &cell = rows[ai][gi];
            ledger.open("c" + std::to_string(kGrid[gi].cores) + "s"
                        + std::to_string(kGrid[gi].shards));
            ledger.field("cores", kGrid[gi].cores);
            ledger.field("shards", kGrid[gi].shards);
            ledger.field("recordCycles", cell.recordCycles);
            ledger.field("commitStallFraction", cell.stallFraction);
            ledger.field("shardLocalCommits", cell.shardLocalCommits);
            ledger.field("crossShardCommits", cell.crossShardCommits);
            ledger.field("crossShardRate", cell.crossShardRate());
            ledger.field("poRelaxedRetires", cell.poRelaxedRetires);
            ledger.field("serialThroughput", cell.serialThroughput);
            ledger.field("parallelThroughput", cell.parallelThroughput);
            ledger.field("parallelSpeedup", cell.speedup());
            ledger.field("fingerprintsIdentical",
                         cell.fingerprintsIdentical);
            ledger.close();
        }
        ledger.close();
    }
    ledger.close();
    ledger.open("summary");
    for (std::size_t gi = 0; gi < std::size(kGrid); ++gi) {
        ledger.open("c" + std::to_string(kGrid[gi].cores) + "s"
                    + std::to_string(kGrid[gi].shards));
        ledger.field("speedupGeomean", geoMean(grid_speedups[gi]));
        ledger.field("appsBeatingBaseline", beats_baseline[gi]);
        ledger.close();
    }
    ledger.field("appCount", apps.size());
    ledger.field("fingerprintsIdenticalEverywhere", all_identical);
    if (!ledger.writeTo(delorean_bench::JsonLedger::path(
            "DELOREAN_ARBITER_JSON", "BENCH_arbiter.json")))
        return 2;

    return all_identical ? 0 : 1;
}
