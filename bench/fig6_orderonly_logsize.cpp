/**
 * @file
 * Figure 6: size of the PI and CS logs in OrderOnly, in bits per
 * processor per kilo-instruction, for standard chunk sizes of 1000,
 * 2000 and 3000 instructions, with and without LZ77 compression.
 *
 * Paper reference points: the preferred 2000-instruction OrderOnly
 * configuration uses on average 2.1 bits (1.3 compressed) per
 * processor per kilo-instruction; the Basic RTR reference line is
 * ~8 bits (1 byte) compressed; the CS log contribution is negligible;
 * the PI log shrinks as the chunk size grows.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 6: PI+CS log size in OrderOnly (bits/proc/kilo-inst)",
           "2000-inst config avg: 2.1 raw / 1.3 compressed; "
           "Basic RTR reference ~8 bits compressed; CS log negligible");

    const unsigned scale = benchScale(30);
    const MachineConfig machine;
    const std::vector<InstrCount> chunk_sizes{1000, 2000, 3000};

    std::vector<std::pair<std::string, bool>> apps; // (name, is_sp2)
    for (const auto &app : AppTable::splash2Names())
        apps.emplace_back(app, true);
    apps.emplace_back("sjbb2k", false);
    apps.emplace_back("sweb2005", false);

    BenchCampaign campaign("fig6_orderonly_logsize");
    std::vector<std::function<LogSizeReport()>> tasks;
    for (const auto &[app, is_sp2] : apps) {
        for (const InstrCount cs : chunk_sizes) {
            tasks.push_back([&campaign, &machine, app = app, cs, scale] {
                ModeConfig mode = ModeConfig::orderOnly();
                mode.chunkSize = cs;
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = mode;
                return campaign.record(job).logSizes();
            });
        }
    }
    const std::vector<LogSizeReport> rows = campaign.map(std::move(tasks));

    std::printf("%-10s %6s | %9s %9s %9s %9s\n", "app", "chunk",
                "PI raw", "CS raw", "PI comp", "CS comp");

    std::vector<std::vector<double>> sp2_raw(chunk_sizes.size());
    std::vector<std::vector<double>> sp2_comp(chunk_sizes.size());

    std::size_t row = 0;
    for (const auto &[app, is_sp2] : apps) {
        for (std::size_t ci = 0; ci < chunk_sizes.size(); ++ci) {
            const LogSizeReport &sizes = rows[row++];
            std::printf("%-10s %6llu | %9.3f %9.3f %9.3f %9.3f\n",
                        app.c_str(),
                        static_cast<unsigned long long>(chunk_sizes[ci]),
                        sizes.piBitsPerProcPerKiloInstr(false),
                        sizes.csBitsPerProcPerKiloInstr(false),
                        sizes.piBitsPerProcPerKiloInstr(true),
                        sizes.csBitsPerProcPerKiloInstr(true));
            if (is_sp2) {
                sp2_raw[ci].push_back(
                    sizes.bitsPerProcPerKiloInstr(false));
                sp2_comp[ci].push_back(
                    sizes.bitsPerProcPerKiloInstr(true));
            }
        }
    }

    std::printf("\nSP2 geometric means (PI+CS total):\n");
    for (std::size_t ci = 0; ci < chunk_sizes.size(); ++ci) {
        std::printf("  chunk %4llu: %.2f raw, %.2f compressed "
                    "bits/proc/kilo-inst\n",
                    static_cast<unsigned long long>(chunk_sizes[ci]),
                    geoMean(sp2_raw[ci]), geoMean(sp2_comp[ci]));
    }
    std::printf("paper (2000): 2.1 raw, 1.3 compressed; RTR ref ~8.\n");
    return 0;
}
