/**
 * @file
 * JsonLedger: the one JSON-emission helper for every bench harness.
 *
 * Each harness used to hand-roll its BENCH_*.json writer (ofstream
 * string-soup in replay_speed, a private JsonWriter in micro_hotpath,
 * an ostringstream in validate_sweep). This header replaces all of
 * them with a single streaming writer: nested objects via
 * open()/close(), typed field() overloads, comma/indent bookkeeping,
 * and a writeTo() that closes any scopes still open. Values are
 * emitted in call order, so harness output stays deterministic at any
 * worker count as long as fields are written from the collection
 * loop, not the workers.
 */

#ifndef DELOREAN_BENCH_LEDGER_HPP_
#define DELOREAN_BENCH_LEDGER_HPP_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <vector>

namespace delorean_bench
{

class JsonLedger
{
  public:
    /** Starts the document and stamps the harness name. */
    explicit JsonLedger(std::string harness)
        : harness_(std::move(harness))
    {
        out_ = "{";
        first_.push_back(true);
        field("harness", harness_);
    }

    /** Open a nested object under @p key. */
    void
    open(const std::string &key)
    {
        emitKey(key);
        out_ += '{';
        first_.push_back(true);
    }

    /** Close the innermost object opened with open(). */
    void
    close()
    {
        if (first_.size() <= 1)
            return;
        const bool empty = first_.back();
        first_.pop_back();
        if (!empty) {
            out_ += '\n';
            out_.append(2 * first_.size(), ' ');
        }
        out_ += '}';
    }

    /**
     * Flat-section sugar (micro_hotpath style): closes the previous
     * section, if any, and opens a new top-level one.
     */
    void
    section(const std::string &key)
    {
        while (first_.size() > 1)
            close();
        open(key);
    }

    void
    field(const std::string &key, const std::string &value)
    {
        emitKey(key);
        out_ += '"';
        appendEscaped(value);
        out_ += '"';
    }

    void
    field(const std::string &key, const char *value)
    {
        field(key, std::string(value));
    }

    void
    field(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        rawField(key, buf);
    }

    void
    field(const std::string &key, bool value)
    {
        rawField(key, value ? "true" : "false");
    }

    template <typename T,
              typename std::enable_if<std::is_integral<T>::value
                                          && !std::is_same<T, bool>::value,
                                      int>::type = 0>
    void
    field(const std::string &key, T value)
    {
        char buf[32];
        if (std::is_signed<T>::value)
            std::snprintf(buf, sizeof buf, "%" PRId64,
                          static_cast<std::int64_t>(value));
        else
            std::snprintf(buf, sizeof buf, "%" PRIu64,
                          static_cast<std::uint64_t>(value));
        rawField(key, buf);
    }

    /** Emit @p json_value verbatim (caller guarantees valid JSON). */
    void
    rawField(const std::string &key, const std::string &json_value)
    {
        emitKey(key);
        out_ += json_value;
    }

    /**
     * Close every open scope, terminate the document and write it.
     * Returns false (with a stderr note) when the file can't be
     * opened. Call once; the ledger is spent afterwards.
     */
    bool
    writeTo(const std::string &path)
    {
        while (first_.size() > 1)
            close();
        out_ += "\n}\n";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "%s: cannot write %s\n",
                         harness_.c_str(), path.c_str());
            return false;
        }
        std::fwrite(out_.data(), 1, out_.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "%s: wrote %s\n", harness_.c_str(),
                     path.c_str());
        return true;
    }

    /** Report destination: @p env_var if set, else @p fallback. */
    static std::string
    path(const char *env_var, const char *fallback)
    {
        if (const char *env = std::getenv(env_var))
            return env;
        return fallback;
    }

  private:
    void
    emitKey(const std::string &key)
    {
        out_ += first_.back() ? "\n" : ",\n";
        first_.back() = false;
        out_.append(2 * first_.size(), ' ');
        out_ += '"';
        appendEscaped(key);
        out_ += "\": ";
    }

    void
    appendEscaped(const std::string &s)
    {
        for (const char c : s) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            out_ += c;
        }
    }

    std::string harness_;
    std::string out_;
    std::vector<bool> first_;
};

} // namespace delorean_bench

#endif // DELOREAN_BENCH_LEDGER_HPP_
