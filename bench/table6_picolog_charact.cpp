/**
 * @file
 * Table 6: PicoLog characterization at 8 processors — parallel-commit
 * behaviour and commit-token passing.
 *
 * Columns (paper averages): Ready Procs 4.2-5.2; Actual Commit
 * 2.6-3.0; Proc Ready 77-84%; Wait-for-Token / Wait-for-Complete
 * hundreds of cycles; Token Roundtrip ~600-3300 cycles; Stall Cycles
 * 6-9% on average, with raytrace worst (34%) and radix best (0.3%).
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Table 6: PicoLog characterization (8 processors)",
           "ReadyProcs 4.2-5.2 | ActualCommit 2.6-3.0 | ProcReady "
           "77-84% | Roundtrip 600-3300cyc | Stall 6-9% avg");

    const unsigned scale = benchScale(35);
    const MachineConfig machine;
    const std::vector<std::string> apps = AppTable::allNames();

    BenchCampaign campaign("table6_picolog_charact");
    std::vector<std::function<EngineStats()>> tasks;
    for (const auto &app : apps) {
        tasks.push_back([&campaign, &machine, app, scale] {
            RecordJob job;
            job.app = app;
            job.workloadSeed = kSeed;
            job.scalePercent = scale;
            job.machine = machine;
            job.mode = ModeConfig::picoLog();
            return campaign.record(job).stats;
        });
    }
    const std::vector<EngineStats> rows = campaign.map(std::move(tasks));

    std::printf("%-10s %6s %7s %7s %8s %8s %8s %7s\n", "app", "Ready",
                "Commit", "Rdy%", "WaitTok", "WaitCpl", "Rndtrip",
                "Stall%");

    std::vector<double> g_ready, g_commit;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const EngineStats &s = rows[ai];
        std::printf("%-10s %6.1f %7.1f %7.1f %8.0f %8.0f %8.0f %7.1f\n",
                    apps[ai].c_str(), s.readyProcsAtCommit.mean(),
                    s.parallelCommits.mean(), s.procReadyPercent(),
                    s.waitForTokenCycles.mean(),
                    s.waitForCompleteCycles.mean(),
                    s.tokenRoundtripCycles.mean(),
                    100.0 * s.stallFraction());
        g_ready.push_back(s.readyProcsAtCommit.mean());
        g_commit.push_back(s.parallelCommits.mean());
    }

    std::printf("\nmeans: ready=%.1f commit=%.1f (paper: 4.2-5.2 / "
                "2.6-3.0)\n",
                geoMean(g_ready), geoMean(g_commit));
    return 0;
}
