/**
 * @file
 * Figure 12: PicoLog performance relative to RC for (a) 4, (b) 8 and
 * (c) 16 processors, sweeping the standard chunk size
 * {500,1000,2000,3000} and the number of simultaneous chunks per
 * processor {1,2,3,4,8,16}. SPLASH-2 only (the paper's infrastructure
 * could not run the commercial workloads at 16 processors).
 *
 * Paper reference points: more processors lower PicoLog's relative
 * performance (87% at 4 procs -> 77% at 16, for 1000-inst chunks and
 * 1 simultaneous chunk); extra simultaneous chunks help but quickly
 * hit diminishing returns; large chunks hurt at 16 processors.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 12: PicoLog speedup vs RC (SPLASH-2 G.M.)",
           "drops with processor count; saturates with simultaneous "
           "chunks; big chunks hurt at 16 procs");

    const unsigned scale = benchScale(12);
    const std::vector<unsigned> procs{4, 8, 16};
    const std::vector<InstrCount> chunk_sizes{500, 1000, 2000, 3000};
    const std::vector<unsigned> sim_chunks{1, 2, 3, 4, 8, 16};
    const std::vector<std::string> apps = AppTable::splash2Names();

    // Per processor count: one RC baseline job per app, then one job
    // per (chunk size, simultaneous chunks, app) cell.
    BenchCampaign campaign("fig12_picolog_sensitivity");
    std::vector<std::function<double()>> tasks;
    for (const unsigned n : procs) {
        MachineConfig machine;
        machine.numProcs = n;
        for (const auto &app : apps) {
            tasks.push_back([&campaign, machine, app, n, scale] {
                Workload w(app, n, kSeed, WorkloadScale{scale});
                InterleavedExecutor rc_exec(machine,
                                            ConsistencyModel::kRC);
                const InterleavedResult res = rc_exec.run(w, 1);
                campaign.addSim(res.cycles, res.totalInstrs);
                return static_cast<double>(res.cycles);
            });
        }
        for (const InstrCount cs : chunk_sizes) {
            for (const unsigned sim : sim_chunks) {
                MachineConfig m = machine;
                m.bulk.simultaneousChunks = sim;
                ModeConfig mode = ModeConfig::picoLog();
                mode.chunkSize = cs;
                for (const auto &app : apps) {
                    tasks.push_back([&campaign, m, mode, app, scale] {
                        RecordJob job;
                        job.app = app;
                        job.workloadSeed = kSeed;
                        job.scalePercent = scale;
                        job.machine = m;
                        job.mode = mode;
                        return static_cast<double>(
                            campaign.record(job).stats.totalCycles);
                    });
                }
            }
        }
    }
    const std::vector<double> cycles = campaign.map(std::move(tasks));

    const std::size_t na = apps.size();
    const std::size_t block =
        na + chunk_sizes.size() * sim_chunks.size() * na;

    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        const unsigned n = procs[pi];
        std::printf("(%u processors)\n%8s |", n, "chunk");
        for (const unsigned sc : sim_chunks)
            std::printf(" sim=%-2u", sc);
        std::printf("\n");

        const double *base = &cycles[pi * block];
        const double *rc_cycles = base;
        const double *cells = base + na;

        for (std::size_t ci = 0; ci < chunk_sizes.size(); ++ci) {
            std::printf("%8llu |", static_cast<unsigned long long>(
                                       chunk_sizes[ci]));
            for (std::size_t si = 0; si < sim_chunks.size(); ++si) {
                const double *cell =
                    &cells[(ci * sim_chunks.size() + si) * na];
                std::vector<double> speedups;
                for (std::size_t ai = 0; ai < na; ++ai)
                    speedups.push_back(rc_cycles[ai] / cell[ai]);
                std::printf(" %6.2f", geoMean(speedups));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("paper anchors: 4p/1000/sim1 ~0.87; 16p/1000/sim1 "
                "~0.77; diminishing returns beyond sim~4.\n");
    return 0;
}
