/**
 * @file
 * Figure 12: PicoLog performance relative to RC for (a) 4, (b) 8 and
 * (c) 16 processors, sweeping the standard chunk size
 * {500,1000,2000,3000} and the number of simultaneous chunks per
 * processor {1,2,3,4,8,16}. SPLASH-2 only (the paper's infrastructure
 * could not run the commercial workloads at 16 processors).
 *
 * Paper reference points: more processors lower PicoLog's relative
 * performance (87% at 4 procs -> 77% at 16, for 1000-inst chunks and
 * 1 simultaneous chunk); extra simultaneous chunks help but quickly
 * hit diminishing returns; large chunks hurt at 16 processors.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 12: PicoLog speedup vs RC (SPLASH-2 G.M.)",
           "drops with processor count; saturates with simultaneous "
           "chunks; big chunks hurt at 16 procs");

    const unsigned scale = benchScale(12);
    const std::vector<unsigned> procs{4, 8, 16};
    const std::vector<InstrCount> chunk_sizes{500, 1000, 2000, 3000};
    const std::vector<unsigned> sim_chunks{1, 2, 3, 4, 8, 16};

    for (const unsigned n : procs) {
        std::printf("(%u processors)\n%8s |", n, "chunk");
        for (const unsigned sc : sim_chunks)
            std::printf(" sim=%-2u", sc);
        std::printf("\n");

        MachineConfig machine;
        machine.numProcs = n;

        // RC reference per app, shared across the sweep.
        std::vector<double> rc_cycles;
        for (const auto &app : AppTable::splash2Names()) {
            Workload w(app, n, kSeed, WorkloadScale{scale});
            InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
            rc_cycles.push_back(
                static_cast<double>(rc_exec.run(w, 1).cycles));
        }

        for (const InstrCount cs : chunk_sizes) {
            std::printf("%8llu |", static_cast<unsigned long long>(cs));
            for (const unsigned sim : sim_chunks) {
                MachineConfig m = machine;
                m.bulk.simultaneousChunks = sim;
                ModeConfig mode = ModeConfig::picoLog();
                mode.chunkSize = cs;

                std::vector<double> speedups;
                std::size_t ai = 0;
                for (const auto &app : AppTable::splash2Names()) {
                    Workload w(app, n, kSeed, WorkloadScale{scale});
                    Recorder recorder(mode, m);
                    const Recording rec = recorder.record(w, 1);
                    speedups.push_back(
                        rc_cycles[ai]
                        / static_cast<double>(rec.stats.totalCycles));
                    ++ai;
                }
                std::printf(" %6.2f", geoMean(speedups));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("paper anchors: 4p/1000/sim1 ~0.87; 16p/1000/sim1 "
                "~0.77; diminishing returns beyond sim~4.\n");
    return 0;
}
