/**
 * @file
 * Component micro-benchmarks (google-benchmark): signature operations
 * at several widths, LZ77 throughput, bit-packing, and log appends.
 * Also reports signature false-conflict rates across widths, backing
 * the Table 5 choice of 2 Kbit signatures.
 */

#include <benchmark/benchmark.h>

#include "common/bitstream.hpp"
#include "common/rng.hpp"
#include "compress/lz77.hpp"
#include "core/cs_log.hpp"
#include "core/pi_log.hpp"
#include "signature/signature.hpp"

namespace
{

using namespace delorean;

template <unsigned Bits>
void
BM_SignatureInsert(benchmark::State &state)
{
    Xoshiro256ss rng(1);
    SignatureT<Bits> sig;
    for (auto _ : state) {
        sig.insert(rng.next() >> 6);
        benchmark::DoNotOptimize(sig);
    }
}
BENCHMARK(BM_SignatureInsert<512>);
BENCHMARK(BM_SignatureInsert<1024>);
BENCHMARK(BM_SignatureInsert<2048>);

template <unsigned Bits>
void
BM_SignatureIntersect(benchmark::State &state)
{
    Xoshiro256ss rng(2);
    SignatureT<Bits> a, b;
    for (int i = 0; i < 64; ++i) {
        a.insert(rng.next() >> 6);
        b.insert(rng.next() >> 6);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.intersects(b));
}
BENCHMARK(BM_SignatureIntersect<512>);
BENCHMARK(BM_SignatureIntersect<2048>);

/** False-conflict rate of disjoint local chunks, per width. */
template <unsigned Bits>
void
BM_SignatureFalseConflict(benchmark::State &state)
{
    Xoshiro256ss rng(3);
    std::uint64_t conflicts = 0, trials = 0;
    for (auto _ : state) {
        SignatureT<Bits> a, b;
        const Addr base_a = 0x100000 + (rng.next() & 0xFFF0);
        const Addr base_b = 0x900000 + (rng.next() & 0xFFF0);
        for (Addr k = 0; k < 128; ++k) {
            a.insert(base_a + k);
            b.insert(base_b + k);
        }
        conflicts += a.intersects(b);
        ++trials;
    }
    state.counters["false_conflict_rate"] =
        static_cast<double>(conflicts) / static_cast<double>(trials);
}
BENCHMARK(BM_SignatureFalseConflict<512>);
BENCHMARK(BM_SignatureFalseConflict<1024>);
BENCHMARK(BM_SignatureFalseConflict<2048>);

void
BM_Lz77Compress(benchmark::State &state)
{
    Xoshiro256ss rng(4);
    std::vector<std::uint8_t> input(static_cast<std::size_t>(state.range(0)));
    for (auto &b : input)
        b = rng.chancePerMille(700)
                ? static_cast<std::uint8_t>(rng.below(8))
                : static_cast<std::uint8_t>(rng.next());
    const Lz77 codec;
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.compressedBits(input));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Lz77Compress)->Arg(4096)->Arg(65536);

void
BM_BitWriterPack(benchmark::State &state)
{
    Xoshiro256ss rng(5);
    for (auto _ : state) {
        BitWriter w;
        for (int i = 0; i < 1000; ++i)
            w.write(rng.next() & 0xF, 4);
        benchmark::DoNotOptimize(w.bitCount());
    }
}
BENCHMARK(BM_BitWriterPack);

void
BM_PiLogAppend(benchmark::State &state)
{
    Xoshiro256ss rng(6);
    for (auto _ : state) {
        PiLog log(8);
        for (int i = 0; i < 1000; ++i)
            log.append(static_cast<ProcId>(rng.below(8)));
        benchmark::DoNotOptimize(log.sizeBits());
    }
}
BENCHMARK(BM_PiLogAppend);

void
BM_CsLogPack(benchmark::State &state)
{
    ModeConfig mode = ModeConfig::orderOnly();
    CsLog log(mode);
    for (ChunkSeq s = 0; s < 500; ++s)
        log.appendTruncation(s * 7, 100 + s % 900);
    for (auto _ : state)
        benchmark::DoNotOptimize(log.packedBytes());
}
BENCHMARK(BM_CsLogPack);

} // namespace

BENCHMARK_MAIN();
