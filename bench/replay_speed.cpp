/**
 * @file
 * replay_speed: chunk-parallel replay benchmark -> BENCH_replay.json.
 *
 * For every SPLASH-2-style application and each of the three modes
 * (Order&Size, OrderOnly, PicoLog) this harness records once and then
 * replays three ways:
 *
 *   serial   — the cycle-accurate engine, replayWindow 1 (the paper's
 *              replay configuration);
 *   windowed — the same engine with an 8-slot lookahead window, for
 *              the simulated-cycle effect of overlapping commit slots;
 *   parallel — the host-parallel chunk-body replayer (ParallelReplayer,
 *              jobs >= 4, window 8), which drops the timing model and
 *              executes chunk bodies concurrently.
 *
 * Reported per cell: replay-cycles/record-cycles ratios (serial and
 * windowed), window-overlap counters, and host replay throughput
 * (retired instructions per wall second) for the serial engine vs.
 * the parallel replayer, plus their speedup ratio. Every cell also
 * asserts that serial, windowed and parallel replays produce
 * byte-identical fingerprints and interval fingerprints — the exit
 * status reflects that invariant, not the speedup.
 *
 * Output: stdout table (byte-identical at any DELOREAN_JOBS) plus
 * BENCH_replay.json (path override: DELOREAN_REPLAY_JSON).
 */

#include <algorithm>

#include "bench_util.hpp"
#include "ledger.hpp"
#include "sim/parallel_replay.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr unsigned kWindow = 8;
constexpr unsigned kParallelReps = 3; // best-of for wall timings

struct ModeRow
{
    const char *label;
    ModeConfig mode;
};

struct Cell
{
    double recordCycles = 0;
    double serialReplayCycles = 0;
    double windowedReplayCycles = 0;
    double windowOccupancyMean = 0;
    std::uint64_t headStallCycles = 0;
    std::uint64_t strataRelaxedRetires = 0;
    double serialThroughput = 0;   // retired instrs / wall second
    double parallelThroughput = 0; // ditto, chunk-parallel replayer
    bool fingerprintsIdentical = false;

    /** Replay-cycles / record-cycles (1.0 = replay as fast). */
    double
    serialRatio() const
    {
        return recordCycles > 0 ? serialReplayCycles / recordCycles
                                : 0.0;
    }

    double
    windowedRatio() const
    {
        return recordCycles > 0 ? windowedReplayCycles / recordCycles
                                : 0.0;
    }

    double
    speedup() const
    {
        return serialThroughput > 0
                   ? parallelThroughput / serialThroughput
                   : 0.0;
    }
};

double
throughput(const EngineStats &stats)
{
    return stats.wallSeconds > 0
               ? static_cast<double>(stats.retiredInstrs)
                     / stats.wallSeconds
               : 0.0;
}

bool
identicalFingerprints(const ExecutionFingerprint &serial,
                      const ExecutionFingerprint &other,
                      std::uint64_t period = 64)
{
    // All three bench modes use flat logs, so the comparison is the
    // strict one: identical commit streams and identical interval
    // fingerprints at every boundary.
    return other.matchesExact(serial)
           && IntervalFingerprints::build(serial, period).prefixes
                  == IntervalFingerprints::build(other, period).prefixes;
}

} // namespace

int
main()
{
    header("replay_speed: serial vs chunk-parallel replay",
           "replay/record cycle ratios ~0.82-1.0x; parallel replay "
           ">=1.5x serial replay throughput");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;
    const unsigned jobs = std::max(4u, campaignJobs());

    const ModeRow modes[] = {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"picolog", ModeConfig::picoLog()},
    };
    const std::vector<std::string> &apps = AppTable::splash2Names();

    BenchCampaign campaign("replay_speed");
    std::vector<std::function<std::vector<Cell>()>> tasks;
    for (const std::string &app : apps) {
        tasks.push_back([&campaign, &machine, &modes, app, scale,
                         jobs]() {
            std::vector<Cell> row;
            for (const ModeRow &m : modes) {
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = m.mode;
                const Recording &rec = campaign.record(job);

                Workload w(app, machine.numProcs, kSeed,
                           WorkloadScale{scale});
                Cell cell;
                cell.recordCycles =
                    static_cast<double>(rec.stats.totalCycles);

                Replayer replayer;
                const ReplayOutcome serial =
                    replayer.replay(rec, w, /*env_seed=*/77);
                campaign.account(serial.stats);
                cell.serialReplayCycles =
                    static_cast<double>(serial.stats.totalCycles);
                cell.serialThroughput = throughput(serial.stats);

                const ReplayOutcome windowed = replayer.replay(
                    rec, w, /*env_seed=*/77, {}, kWindow);
                campaign.account(windowed.stats);
                cell.windowedReplayCycles =
                    static_cast<double>(windowed.stats.totalCycles);
                cell.windowOccupancyMean =
                    windowed.stats.replayWindowOccupancy.mean();
                cell.headStallCycles =
                    windowed.stats.replayHeadStallCycles;
                cell.strataRelaxedRetires =
                    windowed.stats.strataRelaxedRetires;

                ParallelReplayOptions popts;
                popts.window = kWindow;
                popts.jobs = jobs;
                const ParallelReplayer parallel(popts);
                ReplayOutcome par;
                for (unsigned rep = 0; rep < kParallelReps; ++rep) {
                    par = parallel.replay(rec, w);
                    campaign.addSim(0, par.stats.executedInstrs);
                    cell.parallelThroughput = std::max(
                        cell.parallelThroughput, throughput(par.stats));
                }

                cell.fingerprintsIdentical =
                    serial.deterministicExact
                    && windowed.deterministicExact
                    && par.deterministicExact
                    && identicalFingerprints(serial.fingerprint,
                                             windowed.fingerprint)
                    && identicalFingerprints(serial.fingerprint,
                                             par.fingerprint);
                row.push_back(cell);
            }
            return row;
        });
    }
    const std::vector<std::vector<Cell>> rows =
        campaign.map(std::move(tasks));

    std::printf("%-10s | %-15s | %7s %7s | %6s | %9s | %s\n", "app",
                "mode", "ser-r", "win-r", "occ", "speedup", "fp");
    unsigned apps_at_speedup = 0;
    bool all_identical = true;
    std::vector<double> all_speedups;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        std::vector<double> app_speedups;
        for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
            const Cell &cell = rows[ai][mi];
            std::printf("%-10s | %-15s | %7.2f %7.2f | %6.2f | %8.2fx "
                        "| %s\n",
                        apps[ai].c_str(), modes[mi].label,
                        cell.serialRatio(), cell.windowedRatio(),
                        cell.windowOccupancyMean, cell.speedup(),
                        cell.fingerprintsIdentical ? "ok" : "MISMATCH");
            all_identical =
                all_identical && cell.fingerprintsIdentical;
            app_speedups.push_back(cell.speedup());
            all_speedups.push_back(cell.speedup());
        }
        if (geoMean(app_speedups) >= 1.5)
            ++apps_at_speedup;
    }
    std::printf("\napps with geomean parallel speedup >= 1.5x: %u/%zu "
                "(jobs=%u, window=%u)\n",
                apps_at_speedup, apps.size(), jobs, kWindow);
    std::printf("serial==windowed==parallel fingerprints: %s\n",
                all_identical ? "YES" : "NO (BUG)");

    // ---- BENCH_replay.json ------------------------------------------
    delorean_bench::JsonLedger ledger("replay_speed");
    ledger.field("jobs", jobs);
    ledger.field("window", kWindow);
    ledger.field("scalePercent", scale);
    ledger.open("apps");
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ledger.open(apps[ai]);
        for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
            const Cell &cell = rows[ai][mi];
            ledger.open(modes[mi].label);
            ledger.field("recordCycles", cell.recordCycles);
            ledger.field("serialReplayCycles", cell.serialReplayCycles);
            ledger.field("windowedReplayCycles",
                         cell.windowedReplayCycles);
            ledger.field("serialReplayRatio", cell.serialRatio());
            ledger.field("windowedReplayRatio", cell.windowedRatio());
            ledger.field("windowOccupancyMean",
                         cell.windowOccupancyMean);
            ledger.field("headStallCycles", cell.headStallCycles);
            ledger.field("strataRelaxedRetires",
                         cell.strataRelaxedRetires);
            ledger.field("serialThroughput", cell.serialThroughput);
            ledger.field("parallelThroughput", cell.parallelThroughput);
            ledger.field("parallelSpeedup", cell.speedup());
            ledger.field("fingerprintsIdentical",
                         cell.fingerprintsIdentical);
            ledger.close();
        }
        ledger.close();
    }
    ledger.close();
    ledger.open("summary");
    ledger.field("appsAtOrAbove1.5x", apps_at_speedup);
    ledger.field("appCount", apps.size());
    ledger.field("speedupGeomean", geoMean(all_speedups));
    ledger.field("fingerprintsIdenticalEverywhere", all_identical);
    if (!ledger.writeTo(delorean_bench::JsonLedger::path(
            "DELOREAN_REPLAY_JSON", "BENCH_replay.json")))
        return 2;

    return all_identical ? 0 : 1;
}
