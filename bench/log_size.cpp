/**
 * @file
 * log_size: the bits-per-kilo-instruction ledger -> BENCH_logsize.json.
 *
 * For every SPLASH-2-style application and all four recording
 * configurations (Order&Size, OrderOnly flat, OrderOnly stratified,
 * PicoLog) this harness records once with periodic checkpoints and
 * measures the durable-storage story end to end:
 *
 *   - the paper's Figs. 9-10 metric: memory-ordering log bits per
 *     processor per kilo-instruction, raw and compressed, asserting
 *     the ordering PicoLog < OrderOnly < Order&Size per application;
 *   - container sizes: the serialized recording (.dlr) vs the
 *     segmented archive (.dla, src/store), asserting archived <= raw
 *     for every app/mode, plus the compression ratio;
 *   - seek-vs-full-replay: wall time to replay the tail interval
 *     I(last checkpoint, end) straight off the archive (decode only
 *     the covering segments, resume from the checkpoint) vs a full
 *     replay of the whole recording.
 *
 * Stdout carries only deterministic facts (bits, sizes, ratios); the
 * wall-clock seek/full timings go to the JSON and stderr. Exit status
 * reflects the two invariants, not the speedup. Path override:
 * DELOREAN_LOGSIZE_JSON.
 */

#include <chrono>
#include <sstream>

#include "bench_util.hpp"
#include "core/serialize.hpp"
#include "ledger.hpp"
#include "store/archive.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr std::uint64_t kCheckpointPeriod = 40;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModeRow
{
    const char *label;
    ModeConfig mode;
};

struct Cell
{
    LogSizeReport sizes;
    std::uint64_t rawBytes = 0;     // serialized .dlr
    std::uint64_t archiveBytes = 0; // segmented .dla
    std::size_t checkpoints = 0;
    double fullReplaySeconds = 0;
    double seekReplaySeconds = 0;
    bool replaysOk = false;

    double
    compressionRatio() const
    {
        return archiveBytes > 0 ? static_cast<double>(rawBytes)
                                      / static_cast<double>(archiveBytes)
                                : 0.0;
    }

    double
    seekSpeedup() const
    {
        return seekReplaySeconds > 0
                   ? fullReplaySeconds / seekReplaySeconds
                   : 0.0;
    }
};

std::uint64_t
serializedBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return static_cast<std::uint64_t>(out.str().size());
}

} // namespace

int
main()
{
    header("log_size: bits/kilo-instruction and archive sizes",
           "Figs. 9-10 ordering PicoLog < OrderOnly < Order&Size; "
           "archived container never larger than the raw recording");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    const ModeRow modes[] = {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"order-only-strat", strat},
        {"picolog", ModeConfig::picoLog()},
    };
    const std::vector<std::string> &apps = AppTable::splash2Names();

    BenchCampaign campaign("log_size");
    std::vector<std::function<std::vector<Cell>()>> tasks;
    for (const std::string &app : apps) {
        tasks.push_back([&campaign, &machine, &modes, app, scale]() {
            std::vector<Cell> row;
            for (const ModeRow &m : modes) {
                Workload w(app, machine.numProcs, kSeed,
                           WorkloadScale{scale});
                const Recording rec =
                    Recorder(m.mode, machine)
                        .record(w, /*env_seed=*/1, true, {},
                                kCheckpointPeriod);
                campaign.account(rec.stats);

                Cell cell;
                cell.sizes = rec.logSizes();
                cell.rawBytes = serializedBytes(rec);
                cell.checkpoints = rec.checkpoints.size();

                std::ostringstream arch(std::ios::binary);
                writeArchive(rec, arch);
                const std::string blob = std::move(arch).str();
                cell.archiveBytes =
                    static_cast<std::uint64_t>(blob.size());

                // Full replay of the whole recording...
                const Clock::time_point t_full = Clock::now();
                const ReplayOutcome full =
                    Replayer().replay(rec, w, /*env_seed=*/77);
                cell.fullReplaySeconds = secondsSince(t_full);
                campaign.account(full.stats);

                // ...vs seek to the last checkpoint and replay only
                // the tail interval off the archive (parse + decode
                // of the covering segments included in the timing —
                // that is the cost a consumer actually pays).
                const Clock::time_point t_seek = Clock::now();
                const ArchiveReader reader = ArchiveReader::fromBytes(
                    std::vector<std::uint8_t>(blob.begin(),
                                              blob.end()));
                const Recording view = reader.readInterval(
                    reader.checkpointCount() - 1);
                const ReplayOutcome tail = Replayer().replayInterval(
                    view, 0, w, /*env_seed=*/78);
                cell.seekReplaySeconds = secondsSince(t_seek);
                campaign.account(tail.stats);

                const bool strat_mode = rec.stratified();
                cell.replaysOk =
                    (strat_mode ? full.deterministicPerProc
                                : full.deterministicExact)
                    && (strat_mode ? tail.deterministicPerProc
                                   : tail.deterministicExact);
                row.push_back(cell);
            }
            return row;
        });
    }
    const std::vector<std::vector<Cell>> rows =
        campaign.map(std::move(tasks));

    std::printf("%-10s | %-15s | %9s %9s | %8s %8s | %5s | %s\n",
                "app", "mode", "bits/kI", "comp'd", "raw-B",
                "arch-B", "ckpts", "replays");
    bool ordering_ok = true;
    bool archived_leq_raw = true;
    bool replays_ok = true;
    std::vector<double> ratios;
    std::vector<double> speedups;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
            const Cell &cell = rows[ai][mi];
            std::printf("%-10s | %-15s | %9.3f %9.3f | %8llu %8llu "
                        "| %5zu | %s\n",
                        apps[ai].c_str(), modes[mi].label,
                        cell.sizes.bitsPerProcPerKiloInstr(false),
                        cell.sizes.bitsPerProcPerKiloInstr(true),
                        static_cast<unsigned long long>(cell.rawBytes),
                        static_cast<unsigned long long>(
                            cell.archiveBytes),
                        cell.checkpoints,
                        cell.replaysOk ? "ok" : "DIVERGED");
            archived_leq_raw = archived_leq_raw
                               && cell.archiveBytes <= cell.rawBytes;
            replays_ok = replays_ok && cell.replaysOk;
            ratios.push_back(cell.compressionRatio());
            speedups.push_back(cell.seekSpeedup());
        }
        // Paper ordering per application, on the Figs. 9-10 metric
        // (raw memory-ordering bits; modes[0]=O&S, [1]=OrderOnly
        // flat, [3]=PicoLog).
        const double os =
            rows[ai][0].sizes.bitsPerProcPerKiloInstr(false);
        const double oo =
            rows[ai][1].sizes.bitsPerProcPerKiloInstr(false);
        const double pico =
            rows[ai][3].sizes.bitsPerProcPerKiloInstr(false);
        if (!(pico < oo && oo < os)) {
            std::printf("%-10s | ORDERING VIOLATED: picolog %.3f, "
                        "order-only %.3f, order-and-size %.3f\n",
                        apps[ai].c_str(), pico, oo, os);
            ordering_ok = false;
        }
    }
    std::printf("\npaper ordering (PicoLog < OrderOnly < Order&Size): "
                "%s\n",
                ordering_ok ? "preserved on all apps" : "VIOLATED");
    std::printf("archived <= raw for every app/mode: %s\n",
                archived_leq_raw ? "yes" : "NO (BUG)");
    std::printf("full + tail-interval replays deterministic: %s\n",
                replays_ok ? "yes" : "NO (BUG)");

    // ---- BENCH_logsize.json -----------------------------------------
    JsonLedger ledger("log_size");
    ledger.field("scalePercent", scale);
    ledger.field("checkpointPeriod", kCheckpointPeriod);
    ledger.field("numProcs", machine.numProcs);
    ledger.open("apps");
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ledger.open(apps[ai]);
        for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
            const Cell &cell = rows[ai][mi];
            ledger.open(modes[mi].label);
            ledger.field("piBits", cell.sizes.pi.rawBits);
            ledger.field("csBits", cell.sizes.cs.rawBits);
            ledger.field("bitsPerProcPerKiloInstr",
                         cell.sizes.bitsPerProcPerKiloInstr(false));
            ledger.field("compressedBitsPerProcPerKiloInstr",
                         cell.sizes.bitsPerProcPerKiloInstr(true));
            ledger.field("rawBytes", cell.rawBytes);
            ledger.field("archiveBytes", cell.archiveBytes);
            ledger.field("compressionRatio", cell.compressionRatio());
            ledger.field("checkpoints", cell.checkpoints);
            ledger.field("fullReplaySeconds", cell.fullReplaySeconds);
            ledger.field("seekReplaySeconds", cell.seekReplaySeconds);
            ledger.field("seekSpeedup", cell.seekSpeedup());
            ledger.field("replaysOk", cell.replaysOk);
            ledger.close();
        }
        ledger.close();
    }
    ledger.close();
    ledger.open("summary");
    ledger.field("orderingPreserved", ordering_ok);
    ledger.field("archivedLeqRawEverywhere", archived_leq_raw);
    ledger.field("replaysDeterministicEverywhere", replays_ok);
    ledger.field("compressionRatioGeomean", geoMean(ratios));
    ledger.field("seekSpeedupGeomean", geoMean(speedups));
    if (!ledger.writeTo(JsonLedger::path("DELOREAN_LOGSIZE_JSON",
                                         "BENCH_logsize.json")))
        return 2;

    return ordering_ok && archived_leq_raw && replays_ok ? 0 : 1;
}
