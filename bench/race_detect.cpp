/**
 * @file
 * race_detect: replay-time race-detector overhead -> BENCH_race.json.
 *
 * The pitch of replay-time analysis is that heavyweight instrumentation
 * costs nothing at record time — the detector rides the replay. This
 * harness quantifies the replay-side cost: for every SPLASH-2-style
 * application plus three seeded-race variants it records once
 * (OrderOnly), then replays four ways — serial and chunk-parallel,
 * each with the happens-before detector off and on — and reports the
 * wall-clock overhead ratio of detection per replayer.
 *
 * Every cell also asserts the analysis contract while it measures:
 *
 *   - serial and parallel detector reports are byte-identical,
 *   - seeded variants detect their manifest exactly,
 *   - race-free applications produce a clean report.
 *
 * The exit status reflects those invariants, not the overhead.
 * Timings are best-of-kReps; stdout carries only deterministic facts
 * (byte-identical at any DELOREAN_JOBS), wall-clock overheads go to
 * stderr and BENCH_race.json (path override: DELOREAN_RACE_JSON).
 */

#include <algorithm>
#include <chrono>
#include <set>

#include "analysis/race_detector.hpp"
#include "bench_util.hpp"
#include "ledger.hpp"
#include "sim/parallel_replay.hpp"
#include "trace/app_profile.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr unsigned kWindow = 8;
constexpr unsigned kReps = 2; // best-of for wall timings

struct Cell
{
    std::string app;
    bool seeded = false;
    double serialPlainSec = 0;
    double serialDetectSec = 0;
    double parallelPlainSec = 0;
    double parallelDetectSec = 0;
    std::uint64_t accessesChecked = 0;
    std::uint64_t wordsTracked = 0;
    std::size_t racesFound = 0;
    std::size_t manifestSize = 0;
    bool contractOk = false;

    double
    serialOverhead() const
    {
        return serialPlainSec > 0 ? serialDetectSec / serialPlainSec
                                  : 0.0;
    }

    double
    parallelOverhead() const
    {
        return parallelPlainSec > 0
                   ? parallelDetectSec / parallelPlainSec
                   : 0.0;
    }
};

/** Best wall time of kReps runs of @p fn (which returns ok). */
template <typename Fn>
double
bestOf(Fn &&fn, bool *ok)
{
    double best = 0;
    for (unsigned rep = 0; rep < kReps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const bool run_ok = fn();
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        *ok = *ok && run_ok;
        best = rep == 0 ? sec : std::min(best, sec);
    }
    return best;
}

} // namespace

int
main()
{
    header("race_detect: happens-before detector overhead on replay",
           "record-time cost is zero by construction; replay-side "
           "overhead expected well under 2x either replayer");

    const unsigned scale = benchScale(20);
    const MachineConfig machine;
    const unsigned jobs = std::max(4u, campaignJobs());

    std::vector<std::string> apps = AppTable::splash2Names();
    const std::size_t race_free_count = apps.size();
    for (const char *seeded : {"fft~r4", "lu~r4", "radix~r4"})
        apps.push_back(seeded);

    BenchCampaign campaign("race_detect");
    std::vector<std::function<Cell()>> tasks;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::string app = apps[ai];
        const bool seeded = ai >= race_free_count;
        tasks.push_back([&campaign, &machine, app, seeded, scale,
                         jobs]() {
            RecordJob job;
            job.app = app;
            job.workloadSeed = kSeed;
            job.scalePercent = scale;
            job.machine = machine;
            job.mode = ModeConfig::orderOnly();
            const Recording &rec = campaign.record(job);

            Cell cell;
            cell.app = app;
            cell.seeded = seeded;
            cell.contractOk = true;

            ReplayCheckOptions plain;
            ReplayCheckOptions detect;
            detect.detectRaces = true;
            ParallelReplayOptions popts;
            popts.window = kWindow;
            popts.jobs = jobs;

            RaceReport serial_races;
            cell.serialPlainSec = bestOf(
                [&]() {
                    const ReplayCheckResult r = checkedReplay(rec, plain);
                    campaign.account(r.outcome.stats);
                    return r.ok;
                },
                &cell.contractOk);
            cell.serialDetectSec = bestOf(
                [&]() {
                    const ReplayCheckResult r =
                        checkedReplay(rec, detect);
                    campaign.account(r.outcome.stats);
                    serial_races = r.races;
                    return r.ok;
                },
                &cell.contractOk);

            RaceReport parallel_races;
            cell.parallelPlainSec = bestOf(
                [&]() {
                    const ReplayCheckResult r =
                        checkedParallelReplay(rec, popts, plain);
                    campaign.addSim(0, r.outcome.stats.executedInstrs);
                    return r.ok;
                },
                &cell.contractOk);
            cell.parallelDetectSec = bestOf(
                [&]() {
                    const ReplayCheckResult r =
                        checkedParallelReplay(rec, popts, detect);
                    campaign.addSim(0, r.outcome.stats.executedInstrs);
                    parallel_races = r.races;
                    return r.ok;
                },
                &cell.contractOk);

            // Analysis contract, asserted alongside the measurement.
            cell.contractOk =
                cell.contractOk
                && serial_races.describe() == parallel_races.describe();
            cell.accessesChecked = serial_races.accessesChecked;
            cell.wordsTracked = serial_races.wordsTracked;
            cell.racesFound = serial_races.findings.size();
            const std::vector<Addr> manifest =
                seededRaceManifest(AppTable::byName(app));
            cell.manifestSize = manifest.size();
            std::set<Addr> found;
            for (const RaceFinding &f : serial_races.findings)
                found.insert(f.word);
            cell.contractOk =
                cell.contractOk
                && found
                       == std::set<Addr>(manifest.begin(),
                                         manifest.end())
                && cell.racesFound == cell.manifestSize;
            return cell;
        });
    }
    const std::vector<Cell> cells = campaign.map(std::move(tasks));

    std::printf("%-12s | %8s %8s | %5s/%-5s | %s\n", "app",
                "accesses", "words", "races", "manif", "ok");
    bool all_ok = true;
    std::vector<double> serial_overheads;
    std::vector<double> parallel_overheads;
    for (const Cell &cell : cells) {
        std::printf("%-12s | %8llu %8llu | %5zu/%-5zu | %s\n",
                    cell.app.c_str(),
                    static_cast<unsigned long long>(
                        cell.accessesChecked),
                    static_cast<unsigned long long>(cell.wordsTracked),
                    cell.racesFound, cell.manifestSize,
                    cell.contractOk ? "ok" : "FAILED");
        // Wall-clock detail stays off stdout (determinism contract).
        std::fprintf(stderr,
                     "[race_detect] %-12s detector overhead: serial "
                     "%.2fx, chunk-parallel %.2fx\n",
                     cell.app.c_str(), cell.serialOverhead(),
                     cell.parallelOverhead());
        all_ok = all_ok && cell.contractOk;
        serial_overheads.push_back(cell.serialOverhead());
        parallel_overheads.push_back(cell.parallelOverhead());
    }
    std::fprintf(stderr,
                 "[race_detect] geomean detector overhead: serial "
                 "%.2fx, chunk-parallel %.2fx (jobs=%u, window=%u)\n",
                 geoMean(serial_overheads),
                 geoMean(parallel_overheads), jobs, kWindow);
    std::printf("\nmanifest-exact + zero-FP + serial==parallel "
                "reports: %s\n",
                all_ok ? "YES" : "NO (BUG)");

    // ---- BENCH_race.json --------------------------------------------
    delorean_bench::JsonLedger ledger("race_detect");
    ledger.field("jobs", jobs);
    ledger.field("window", kWindow);
    ledger.field("scalePercent", scale);
    ledger.open("apps");
    for (const Cell &cell : cells) {
        ledger.open(cell.app);
        ledger.field("seeded", cell.seeded);
        ledger.field("serialPlainSec", cell.serialPlainSec);
        ledger.field("serialDetectSec", cell.serialDetectSec);
        ledger.field("serialOverhead", cell.serialOverhead());
        ledger.field("parallelPlainSec", cell.parallelPlainSec);
        ledger.field("parallelDetectSec", cell.parallelDetectSec);
        ledger.field("parallelOverhead", cell.parallelOverhead());
        ledger.field("accessesChecked", cell.accessesChecked);
        ledger.field("wordsTracked", cell.wordsTracked);
        ledger.field("racesFound", cell.racesFound);
        ledger.field("manifestSize", cell.manifestSize);
        ledger.field("contractOk", cell.contractOk);
        ledger.close();
    }
    ledger.close();
    ledger.open("summary");
    ledger.field("serialOverheadGeomean", geoMean(serial_overheads));
    ledger.field("parallelOverheadGeomean",
                 geoMean(parallel_overheads));
    ledger.field("contractOkEverywhere", all_ok);
    if (!ledger.writeTo(delorean_bench::JsonLedger::path(
            "DELOREAN_RACE_JSON", "BENCH_race.json")))
        return 2;

    return all_ok ? 0 : 1;
}
