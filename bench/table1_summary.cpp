/**
 * @file
 * Table 1: comparison of hardware-assisted full-system replay schemes
 * — the qualitative rows of the paper plus our measured quantities for
 * the DeLorean columns (and measured log sizes for the baselines).
 */

#include "baselines/fdr.hpp"
#include "baselines/multi_sink.hpp"
#include "baselines/rtr.hpp"
#include "baselines/strata.hpp"
#include "bench_util.hpp"
#include "compress/lz77.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Table 1: hardware-assisted full-system replay schemes",
           "DeLorean records at ~RC speed with a very small (OrderOnly)"
           " or tiny (PicoLog) log; others record at SC speed");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;
    const Lz77 codec;

    // Measure averages over SPLASH-2.
    std::vector<double> sc_speed, oo_speed, pico_speed;
    std::vector<double> oo_rec_speed, pico_rec_speed;
    std::vector<double> fdr_bits, rtr_bits, strata_bits, oo_bits,
        pico_bits;
    std::vector<double> oo_replay, pico_replay;

    for (const auto &app : AppTable::splash2Names()) {
        Workload w(app, machine.numProcs, kSeed, WorkloadScale{scale});

        InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
        InterleavedExecutor sc_exec(machine, ConsistencyModel::kSC);
        FdrRecorder fdr(machine.numProcs);
        RtrRecorder rtr(machine.numProcs);
        StrataRecorder strata(machine.numProcs, false);
        MultiSink sinks;
        sinks.add(&fdr);
        sinks.add(&rtr);
        sinks.add(&strata);

        const double rc = static_cast<double>(rc_exec.run(w, 1).cycles);
        const InterleavedResult sc = sc_exec.run(w, 1, &sinks);
        rtr.finalize();
        sc_speed.push_back(rc / static_cast<double>(sc.cycles));

        const double kinst =
            static_cast<double>(sc.totalInstrs) / 1000.0;
        fdr_bits.push_back(
            codec.compressedBits(fdr.packedBytes()) / kinst);
        rtr_bits.push_back(
            codec.compressedBits(rtr.vectorPackedBytes()) / kinst);
        strata_bits.push_back(
            codec.compressedBits(strata.packedBytes()) / kinst);

        Replayer replayer;
        ReplayPerturbation perturb;
        perturb.enabled = true;
        perturb.seed = 3;

        {
            Recorder r(ModeConfig::orderOnly(), machine);
            const Recording rec = r.record(w, 1);
            oo_speed.push_back(
                rc / static_cast<double>(rec.stats.totalCycles));
            oo_bits.push_back(
                rec.logSizes().bitsPerProcPerKiloInstr(true));
            const ReplayOutcome out = replayer.replay(rec, w, 9, perturb);
            oo_replay.push_back(
                rc / static_cast<double>(out.stats.totalCycles));
        }
        {
            Recorder r(ModeConfig::picoLog(), machine);
            const Recording rec = r.record(w, 1);
            pico_speed.push_back(
                rc / static_cast<double>(rec.stats.totalCycles));
            pico_bits.push_back(
                rec.logSizes().bitsPerProcPerKiloInstr(true) + 1e-6);
            const ReplayOutcome out = replayer.replay(rec, w, 9, perturb);
            pico_replay.push_back(
                rc / static_cast<double>(out.stats.totalCycles));
        }
    }

    std::printf("%-28s %-14s %-20s %-12s %s\n", "Property", "FDR/RTR/Strata",
                "DeLorean-OrderOnly", "DeLorean-PicoLog", "");
    std::printf("%-28s %-14s %-20.2f %-12.2f (xRC, measured)\n",
                "Initial execution speed",
                "SC (meas. ", geoMean(oo_speed), geoMean(pico_speed));
    std::printf("%-28s  SC = %.2fxRC\n", "", geoMean(sc_speed));
    std::printf("%-28s %-14s %-20.2f %-12.2f (xRC, measured)\n",
                "Replay speed", "not reported", geoMean(oo_replay),
                geoMean(pico_replay));
    std::printf("%-28s FDR %.1f / RTR %.1f / Strata %.1f vs OO %.2f / "
                "Pico %.3f bits/proc/kinst\n",
                "Memory-ordering log",
                geoMean(fdr_bits), geoMean(rtr_bits),
                geoMean(strata_bits), geoMean(oo_bits),
                geoMean(pico_bits));
    std::printf("%-28s %-14s %-20s %-12s\n", "Hardware needed",
                "cache hier", "BulkSC/IT/TCC", "BulkSC/IT/TCC");
    std::printf("\npaper: OrderOnly records at ~RC and replays at "
                "0.82xRC; PicoLog records at 0.86xRC, replays at "
                "0.72xRC; both beat SC (~0.79xRC).\n");
    return 0;
}
