/**
 * @file
 * Table 1: comparison of hardware-assisted full-system replay schemes
 * — the qualitative rows of the paper plus our measured quantities for
 * the DeLorean columns (and measured log sizes for the baselines).
 */

#include "baselines/fdr.hpp"
#include "baselines/multi_sink.hpp"
#include "baselines/rtr.hpp"
#include "baselines/strata.hpp"
#include "bench_util.hpp"
#include "compress/lz77.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

/** SC run with the baseline recorders attached. */
struct ScRow
{
    double scCycles = 0;
    double fdrBits = 0;
    double rtrBits = 0;
    double strataBits = 0;
};

/** One DeLorean mode: cached record + one perturbed replay. */
struct ModeCell
{
    double recCycles = 0;
    double bits = 0;
    double replayCycles = 0;
};

} // namespace

int
main()
{
    header("Table 1: hardware-assisted full-system replay schemes",
           "DeLorean records at ~RC speed with a very small (OrderOnly)"
           " or tiny (PicoLog) log; others record at SC speed");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;
    const std::vector<std::string> apps = AppTable::splash2Names();

    // Per app: RC baseline, SC+baseline-recorders, and one job per
    // DeLorean mode (record + perturbed replay).
    BenchCampaign campaign("table1_summary");

    auto mode_task = [&campaign, &machine, scale](const std::string &app,
                                                  const ModeConfig &mode) {
        return [&campaign, &machine, app, mode, scale] {
            RecordJob job;
            job.app = app;
            job.workloadSeed = kSeed;
            job.scalePercent = scale;
            job.machine = machine;
            job.mode = mode;
            const Recording &rec = campaign.record(job);

            Workload w(app, machine.numProcs, kSeed,
                       WorkloadScale{scale});
            Replayer replayer;
            ReplayPerturbation perturb;
            perturb.enabled = true;
            perturb.seed = 3;
            const ReplayOutcome out = replayer.replay(rec, w, 9, perturb);
            campaign.account(out.stats);

            ModeCell cell;
            cell.recCycles = static_cast<double>(rec.stats.totalCycles);
            cell.bits = rec.logSizes().bitsPerProcPerKiloInstr(true);
            cell.replayCycles =
                static_cast<double>(out.stats.totalCycles);
            return cell;
        };
    };

    std::vector<std::function<double()>> rc_tasks;
    std::vector<std::function<ScRow()>> sc_tasks;
    std::vector<std::function<ModeCell()>> oo_tasks, pico_tasks;
    for (const auto &app : apps) {
        rc_tasks.push_back([&campaign, &machine, app, scale] {
            Workload w(app, machine.numProcs, kSeed,
                       WorkloadScale{scale});
            InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
            const InterleavedResult res = rc_exec.run(w, 1);
            campaign.addSim(res.cycles, res.totalInstrs);
            return static_cast<double>(res.cycles);
        });
        sc_tasks.push_back([&campaign, &machine, app, scale] {
            Workload w(app, machine.numProcs, kSeed,
                       WorkloadScale{scale});
            InterleavedExecutor sc_exec(machine, ConsistencyModel::kSC);
            FdrRecorder fdr(machine.numProcs);
            RtrRecorder rtr(machine.numProcs);
            StrataRecorder strata(machine.numProcs, false);
            MultiSink sinks;
            sinks.add(&fdr);
            sinks.add(&rtr);
            sinks.add(&strata);

            const InterleavedResult sc = sc_exec.run(w, 1, &sinks);
            rtr.finalize();
            campaign.addSim(sc.cycles, sc.totalInstrs);

            const Lz77 codec;
            const double kinst =
                static_cast<double>(sc.totalInstrs) / 1000.0;
            ScRow row;
            row.scCycles = static_cast<double>(sc.cycles);
            row.fdrBits = codec.compressedBits(fdr.packedBytes()) / kinst;
            row.rtrBits =
                codec.compressedBits(rtr.vectorPackedBytes()) / kinst;
            row.strataBits =
                codec.compressedBits(strata.packedBytes()) / kinst;
            return row;
        });
        oo_tasks.push_back(mode_task(app, ModeConfig::orderOnly()));
        pico_tasks.push_back(mode_task(app, ModeConfig::picoLog()));
    }

    // One fused task list so all four columns share the worker pool.
    const std::size_t na = apps.size();
    std::vector<double> rc(na);
    std::vector<ScRow> sc_rows(na);
    std::vector<ModeCell> oo_cells(na), pico_cells(na);
    {
        std::vector<std::function<void()>> tasks;
        for (std::size_t ai = 0; ai < na; ++ai) {
            tasks.push_back(
                [&rc, &rc_tasks, ai] { rc[ai] = rc_tasks[ai](); });
            tasks.push_back([&sc_rows, &sc_tasks, ai] {
                sc_rows[ai] = sc_tasks[ai]();
            });
            tasks.push_back([&oo_cells, &oo_tasks, ai] {
                oo_cells[ai] = oo_tasks[ai]();
            });
            tasks.push_back([&pico_cells, &pico_tasks, ai] {
                pico_cells[ai] = pico_tasks[ai]();
            });
        }
        campaign.run(std::move(tasks));
    }

    // Measure averages over SPLASH-2.
    std::vector<double> sc_speed, oo_speed, pico_speed;
    std::vector<double> fdr_bits, rtr_bits, strata_bits, oo_bits,
        pico_bits;
    std::vector<double> oo_replay, pico_replay;
    for (std::size_t ai = 0; ai < na; ++ai) {
        sc_speed.push_back(rc[ai] / sc_rows[ai].scCycles);
        fdr_bits.push_back(sc_rows[ai].fdrBits);
        rtr_bits.push_back(sc_rows[ai].rtrBits);
        strata_bits.push_back(sc_rows[ai].strataBits);
        oo_speed.push_back(rc[ai] / oo_cells[ai].recCycles);
        oo_bits.push_back(oo_cells[ai].bits);
        oo_replay.push_back(rc[ai] / oo_cells[ai].replayCycles);
        pico_speed.push_back(rc[ai] / pico_cells[ai].recCycles);
        pico_bits.push_back(pico_cells[ai].bits + 1e-6);
        pico_replay.push_back(rc[ai] / pico_cells[ai].replayCycles);
    }

    std::printf("%-28s %-14s %-20s %-12s %s\n", "Property", "FDR/RTR/Strata",
                "DeLorean-OrderOnly", "DeLorean-PicoLog", "");
    std::printf("%-28s %-14s %-20.2f %-12.2f (xRC, measured)\n",
                "Initial execution speed",
                "SC (meas. ", geoMean(oo_speed), geoMean(pico_speed));
    std::printf("%-28s  SC = %.2fxRC\n", "", geoMean(sc_speed));
    std::printf("%-28s %-14s %-20.2f %-12.2f (xRC, measured)\n",
                "Replay speed", "not reported", geoMean(oo_replay),
                geoMean(pico_replay));
    std::printf("%-28s FDR %.1f / RTR %.1f / Strata %.1f vs OO %.2f / "
                "Pico %.3f bits/proc/kinst\n",
                "Memory-ordering log",
                geoMean(fdr_bits), geoMean(rtr_bits),
                geoMean(strata_bits), geoMean(oo_bits),
                geoMean(pico_bits));
    std::printf("%-28s %-14s %-20s %-12s\n", "Hardware needed",
                "cache hier", "BulkSC/IT/TCC", "BulkSC/IT/TCC");
    std::printf("\npaper: OrderOnly records at ~RC and replays at "
                "0.82xRC; PicoLog records at 0.86xRC, replays at "
                "0.72xRC; both beat SC (~0.79xRC).\n");
    return 0;
}
