/**
 * @file
 * Commit fast-path micro-harness: before/after numbers for the
 * arbiter hot-path work (summary-filtered signature intersection,
 * epoch-versioned clearing, batched log emission) plus an end-to-end
 * record with the filter toggled via DELOREAN_NO_SUMMARY_FILTER.
 *
 * Unlike the figure harnesses, this bench measures *host* throughput,
 * so its stdout carries only deterministic facts (counts, rates,
 * identity checks); every wall-clock number goes to stderr and to
 * BENCH_hotpath.json (path overridable with DELOREAN_HOTPATH_JSON).
 */

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ledger.hpp"
#include "common/bitstream.hpp"
#include "common/rng.hpp"
#include "compress/lz77.hpp"
#include "core/recorder.hpp"
#include "signature/signature.hpp"

namespace
{

using namespace delorean;
using delorean_bench::kSeed;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * The historical bit-at-a-time writer, kept here verbatim as the
 * "before" reference for the BitWriter comparison. Appends one bit
 * per loop iteration into the byte tail.
 */
class BitAtATimeWriter
{
  public:
    void
    write(std::uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i) {
            if (bits_ % 8 == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1ull)
                bytes_.back() |=
                    static_cast<std::uint8_t>(1u << (bits_ % 8));
            ++bits_;
        }
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::uint64_t bitCount() const { return bits_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bits_ = 0;
};

/** One chunk's worth of spatially local line addresses. */
std::vector<Addr>
chunkLines(Xoshiro256ss &rng, unsigned count)
{
    std::vector<Addr> lines;
    lines.reserve(count);
    const Addr base = rng.next() % (1u << 20);
    for (unsigned i = 0; i < count; ++i)
        lines.push_back(base + rng.next() % 64);
    return lines;
}

/** Record @p workload once; filter state is whatever the env says. */
Recording
recordOnce(const Workload &workload, double *wall_seconds)
{
    // Signature disambiguation (not the exact-set default) so commit
    // sweeps go through the summary-filtered signature path.
    MachineConfig machine;
    machine.bulk.exactDisambiguation = false;
    Recorder recorder(ModeConfig::orderOnly(), machine);
    const Clock::time_point t0 = Clock::now();
    Recording rec = recorder.record(workload, /*env_seed=*/7);
    *wall_seconds = secondsSince(t0);
    return rec;
}

} // namespace

int
main()
{
    const unsigned scale = delorean_bench::benchScale(10);
    delorean_bench::JsonLedger json("micro_hotpath");

    // ---- 1. Signature intersection: summary filter vs word walk ----
    // Pairs drawn from disjoint-by-construction chunk footprints, the
    // common case a commit sweep sees: most running chunks do not
    // touch the committing chunk's lines.
    {
        Xoshiro256ss rng(kSeed);
        constexpr unsigned kPairs = 4096;
        std::vector<Signature> lhs(kPairs), rhs(kPairs);
        for (unsigned i = 0; i < kPairs; ++i) {
            for (Addr a : chunkLines(rng, 24))
                lhs[i].insert(a);
            for (Addr a : chunkLines(rng, 24))
                rhs[i].insert(a);
        }

        const unsigned iters = 40 * scale;
        std::uint64_t hits_words = 0;
        Clock::time_point t0 = Clock::now();
        for (unsigned it = 0; it < iters; ++it)
            for (unsigned i = 0; i < kPairs; ++i)
                hits_words += lhs[i].intersectsWords(rhs[i]);
        const double words_s = secondsSince(t0);

        std::uint64_t hits_summary = 0;
        t0 = Clock::now();
        for (unsigned it = 0; it < iters; ++it)
            for (unsigned i = 0; i < kPairs; ++i)
                hits_summary += lhs[i].intersects(rhs[i]);
        const double summary_s = secondsSince(t0);

        std::uint64_t summary_rejects = 0;
        for (unsigned i = 0; i < kPairs; ++i)
            summary_rejects += !lhs[i].summaryIntersects(rhs[i]);

        const double total =
            static_cast<double>(iters) * kPairs;
        const bool identical = hits_words == hits_summary;
        std::printf("sig_filter: pairs=%u conflicts=%" PRIu64
                    " summary_rejects=%" PRIu64 " identical=%s\n",
                    kPairs, hits_words / iters, summary_rejects,
                    identical ? "yes" : "no");
        std::fprintf(stderr,
                     "sig_filter: word-walk %.1f Mops/s, "
                     "summary-filtered %.1f Mops/s (%.2fx)\n",
                     total / words_s / 1e6, total / summary_s / 1e6,
                     words_s / summary_s);

        json.section("sig_filter");
        json.field("pairs", std::uint64_t{kPairs});
        json.field("summary_rejects", summary_rejects);
        json.field("word_walk_mops", total / words_s / 1e6);
        json.field("summary_filtered_mops", total / summary_s / 1e6);
        json.field("speedup", words_s / summary_s);
        json.field("results_identical", identical);
    }

    // ---- 2. Signature clearing: epoch bump vs full zeroing ---------
    // One insert per cycle keeps the signature live (and defeats
    // dead-code elimination) while the clear itself dominates.
    {
        Xoshiro256ss rng(kSeed + 1);
        const std::vector<Addr> lines = chunkLines(rng, 24);
        const unsigned iters = 100000 * scale;

        Signature sig;
        Clock::time_point t0 = Clock::now();
        for (unsigned it = 0; it < iters; ++it) {
            sig.clear(); // epoch bump: O(banks)
            sig.insert(lines[it % lines.size()]);
        }
        const double epoch_s = secondsSince(t0);
        std::uint64_t guard = sig.popCount();

        t0 = Clock::now();
        for (unsigned it = 0; it < iters; ++it) {
            sig = Signature{}; // full state zeroing
            sig.insert(lines[it % lines.size()]);
        }
        const double zero_s = secondsSince(t0);
        guard ^= sig.popCount();

        std::printf("sig_clear: cycles=%u guard=%" PRIu64 "\n", iters,
                    guard);
        std::fprintf(stderr,
                     "sig_clear: epoch %.1f Mclears/s, "
                     "full-zero %.1f Mclears/s (%.2fx)\n",
                     iters / epoch_s / 1e6, iters / zero_s / 1e6,
                     zero_s / epoch_s);

        json.section("sig_clear");
        json.field("cycles", std::uint64_t{iters});
        json.field("epoch_clear_mops", iters / epoch_s / 1e6);
        json.field("full_zero_mops", iters / zero_s / 1e6);
        json.field("speedup", zero_s / epoch_s);
    }

    // ---- 3. BitWriter: batched accumulator vs bit-at-a-time --------
    {
        Xoshiro256ss rng(kSeed + 2);
        const unsigned values = 100000 * scale;
        std::vector<std::uint64_t> vals(values);
        std::vector<unsigned> widths(values);
        for (unsigned i = 0; i < values; ++i) {
            widths[i] = 1 + static_cast<unsigned>(rng.next() % 33);
            vals[i] = rng.next();
        }

        BitAtATimeWriter ref;
        Clock::time_point t0 = Clock::now();
        for (unsigned i = 0; i < values; ++i)
            ref.write(vals[i], widths[i]);
        const double ref_s = secondsSince(t0);

        BitWriter batched;
        t0 = Clock::now();
        for (unsigned i = 0; i < values; ++i)
            batched.write(vals[i], widths[i]);
        const double bat_s = secondsSince(t0);

        const bool identical = batched.bytes() == ref.bytes()
                               && batched.bitCount() == ref.bitCount();
        const double mb = static_cast<double>(ref.bitCount()) / 8e6;
        std::printf("bitwriter: values=%u bits=%" PRIu64
                    " word_flushes=%" PRIu64 " identical=%s\n",
                    values, ref.bitCount(), batched.wordFlushes(),
                    identical ? "yes" : "no");
        std::fprintf(stderr,
                     "bitwriter: bit-at-a-time %.1f MB/s, "
                     "batched %.1f MB/s (%.2fx)\n",
                     mb / ref_s, mb / bat_s, ref_s / bat_s);

        json.section("bitwriter");
        json.field("values", std::uint64_t{values});
        json.field("word_flushes", batched.wordFlushes());
        json.field("bit_at_a_time_mbps", mb / ref_s);
        json.field("batched_mbps", mb / bat_s);
        json.field("speedup", ref_s / bat_s);
        json.field("bytes_identical", identical);
    }

    // ---- 4. End-to-end record: summary filter forced/adaptive ------
    // Three policies via DELOREAN_SUMMARY_FILTER: forced on, forced
    // off, and the adaptive default that probes both and keeps the
    // winner. None may change architecture: fingerprints and commit
    // counts are asserted identical; only the counters and wall clock
    // may differ. Adaptive must land within noise of the better
    // forced policy — that is the fix for the old always-on filter
    // losing to the plain word walk on filter-hostile workloads.
    Recording rec_on;
    {
        const Workload workload("radix", 8, kSeed,
                                WorkloadScale{scale});
        unsetenv("DELOREAN_NO_SUMMARY_FILTER");
        setenv("DELOREAN_SUMMARY_FILTER", "on", 1);
        double on_s = 0.0;
        rec_on = recordOnce(workload, &on_s);

        setenv("DELOREAN_SUMMARY_FILTER", "off", 1);
        double off_s = 0.0;
        const Recording rec_off = recordOnce(workload, &off_s);

        unsetenv("DELOREAN_SUMMARY_FILTER");
        double adaptive_s = 0.0;
        const Recording rec_adaptive =
            recordOnce(workload, &adaptive_s);

        const bool identical =
            rec_on.fingerprint.matchesExact(rec_off.fingerprint)
            && rec_on.fingerprint.matchesExact(
                rec_adaptive.fingerprint)
            && rec_on.stats.committedChunks
                   == rec_off.stats.committedChunks
            && rec_on.stats.committedChunks
                   == rec_adaptive.stats.committedChunks;
        const EngineStats &st = rec_on.stats;
        std::printf("engine: commits=%" PRIu64 " squashes=%" PRIu64
                    " summary_rejects=%" PRIu64
                    " union_sweep_skips=%" PRIu64
                    " conflict_sweeps=%" PRIu64
                    " wakeups_coalesced=%" PRIu64
                    " log_word_flushes=%" PRIu64 " identical=%s\n",
                    st.committedChunks, st.squashes,
                    st.sigSummaryRejects, st.unionSweepSkips,
                    st.conflictSweeps, st.arbiterWakeupsCoalesced,
                    st.logWordFlushes, identical ? "yes" : "no");
        std::fprintf(stderr,
                     "engine: filter on %.3fs (%.0f commits/s), "
                     "off %.3fs (%.0f commits/s), adaptive %.3fs "
                     "(%.0f commits/s, %" PRIu64 " deactivations)\n",
                     on_s, st.committedChunks / on_s, off_s,
                     rec_off.stats.committedChunks / off_s,
                     adaptive_s,
                     rec_adaptive.stats.committedChunks / adaptive_s,
                     rec_adaptive.stats.sigFilterDeactivations);

        json.section("engine");
        json.field("commits", st.committedChunks);
        json.field("squashes", st.squashes);
        json.field("summary_rejects", st.sigSummaryRejects);
        json.field("union_sweep_skips", st.unionSweepSkips);
        json.field("conflict_sweeps", st.conflictSweeps);
        json.field("wakeups_coalesced", st.arbiterWakeupsCoalesced);
        json.field("log_word_flushes", st.logWordFlushes);
        json.field("filter_on_seconds", on_s);
        json.field("filter_off_seconds", off_s);
        json.field("filter_adaptive_seconds", adaptive_s);
        json.field("filter_adaptive_deactivations",
                   rec_adaptive.stats.sigFilterDeactivations);
        json.field("filter_on_commits_per_sec",
                   st.committedChunks / on_s);
        json.field("filter_adaptive_commits_per_sec",
                   rec_adaptive.stats.committedChunks / adaptive_s);
        json.field("fingerprint_identical", identical);
    }

    // ---- 5. LZ77 over real log bytes -------------------------------
    {
        std::vector<std::uint8_t> input = rec_on.pi.packedBytes();
        for (const CsLog &log : rec_on.cs) {
            const std::vector<std::uint8_t> &b = log.packedBytes();
            input.insert(input.end(), b.begin(), b.end());
        }
        while (input.size() < (std::size_t{1} << 20))
            input.insert(input.end(), input.begin(),
                         input.begin()
                             + static_cast<std::ptrdiff_t>(std::min(
                                 input.size(),
                                 (std::size_t{1} << 20) - input.size())));

        const Lz77 codec{Lz77Config{}};
        const Clock::time_point t0 = Clock::now();
        const std::vector<std::uint8_t> packed =
            codec.compress(input);
        const double comp_s = secondsSince(t0);
        const bool roundtrip = codec.decompress(packed) == input;

        std::printf("lz77: input=%zu packed=%zu roundtrip=%s\n",
                    input.size(), packed.size(),
                    roundtrip ? "yes" : "no");
        std::fprintf(stderr, "lz77: compress %.1f MB/s\n",
                     input.size() / comp_s / 1e6);

        json.section("lz77");
        json.field("input_bytes",
                   static_cast<std::uint64_t>(input.size()));
        json.field("packed_bytes",
                   static_cast<std::uint64_t>(packed.size()));
        json.field("compress_mbps", input.size() / comp_s / 1e6);
        json.field("roundtrip_ok", roundtrip);
    }

    json.writeTo(delorean_bench::JsonLedger::path(
        "DELOREAN_HOTPATH_JSON", "BENCH_hotpath.json"));
    return 0;
}
