/**
 * @file
 * Figure 7: size of the CS log in PicoLog (which has no PI log), in
 * bits per processor per kilo-instruction, for standard chunk sizes
 * 1000/2000/3000, with and without compression.
 *
 * Paper reference points: at most ~0.37 bits uncompressed anywhere;
 * the preferred 1000-instruction configuration averages 0.05 bits
 * compressed — about 20 GB/day for eight 5 GHz processors at IPC 1 —
 * and CS entries (overflow truncations) are rare.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

struct Row
{
    LogSizeReport sizes;
    std::uint64_t overflow = 0;
    std::uint64_t collision = 0;
};

} // namespace

int
main()
{
    header("Figure 7: CS log size in PicoLog (bits/proc/kilo-inst)",
           "<= ~0.37 raw everywhere; preferred 1000-inst config avg "
           "0.05 compressed => ~20GB/day for 8x5GHz procs");

    const unsigned scale = benchScale(30);
    const MachineConfig machine;
    const std::vector<InstrCount> chunk_sizes{1000, 2000, 3000};
    const std::vector<std::string> apps = AppTable::allNames();

    BenchCampaign campaign("fig7_picolog_logsize");
    std::vector<std::function<Row()>> tasks;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            tasks.push_back([&campaign, &machine, app, cs, scale] {
                ModeConfig mode = ModeConfig::picoLog();
                mode.chunkSize = cs;
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = mode;
                const Recording &rec = campaign.record(job);
                return Row{rec.logSizes(),
                           rec.stats.overflowTruncations,
                           rec.stats.collisionTruncations};
            });
        }
    }
    const std::vector<Row> rows = campaign.map(std::move(tasks));

    std::printf("%-10s %6s | %9s %9s | %s\n", "app", "chunk", "CS raw",
                "CS comp", "truncations");

    std::vector<double> preferred_comp;
    std::size_t row = 0;
    for (const auto &app : apps) {
        for (const InstrCount cs : chunk_sizes) {
            const Row &r = rows[row++];
            std::printf("%-10s %6llu | %9.4f %9.4f | %llu overflow, "
                        "%llu collision\n",
                        app.c_str(), static_cast<unsigned long long>(cs),
                        r.sizes.csBitsPerProcPerKiloInstr(false),
                        r.sizes.csBitsPerProcPerKiloInstr(true),
                        static_cast<unsigned long long>(r.overflow),
                        static_cast<unsigned long long>(r.collision));
            if (cs == 1000)
                preferred_comp.push_back(
                    r.sizes.csBitsPerProcPerKiloInstr(true) + 1e-6);
        }
    }

    // 20 GB/day estimate (Section 6.1): bits/proc/kilo-inst * IPC 1 *
    // 5 GHz * 8 procs * 86400 s.
    double mean_bits = 0;
    for (const double b : preferred_comp)
        mean_bits += b;
    mean_bits /= static_cast<double>(preferred_comp.size());
    const double gb_per_day =
        mean_bits / 1000.0 * 5e9 * 8 * 86400.0 / 8.0 / 1e9;
    std::printf("\npreferred 1000-inst config: mean %.4f compressed "
                "bits/proc/kilo-inst => %.1f GB/day (paper: 0.05 => "
                "~20 GB/day)\n",
                mean_bits, gb_per_day);
    return 0;
}
