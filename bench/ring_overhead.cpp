/**
 * @file
 * ring_overhead: always-on recording ledger -> BENCH_ring.json.
 *
 * Measures what the ring archive (src/store/ring) costs over the
 * batch pipeline it replaces in production, across a checkpointPeriod
 * x ringBudget grid:
 *
 *   - steady-state recording overhead: wall time of a record run that
 *     streams every checkpoint interval into a RingArchiveWriter
 *     (compression, eviction and index rewrites overlapped on the
 *     flusher) versus the batch baseline of the same record run plus
 *     a writeArchive() pass;
 *   - worst-case seek-to-replay latency, in both commits (the
 *     replay-start lag the availability contract bounds by T) and
 *     wall time (open + time-travel seek + bounded interval decode);
 *   - the contract checks themselves: writer worstStartLag <= T and
 *     the widest seekable gap <= T on every cell, clean recovery on
 *     every cell, eviction actually exercised on the tight cells, an
 *     infeasible (budget, period, T) rejected with a typed
 *     ConfigError, and ring interval views byte-identical to the
 *     batch archive's.
 *
 * The headline number is the overhead ratio at the default checkpoint
 * period (50) with nothing evicted; the gate in the JSON is <= 1.10x.
 * Timings are best-of-N; stdout carries only deterministic facts,
 * wall-clock goes to the JSON and stderr. Exit status reflects the
 * contract checks, never speed. Path override: DELOREAN_RING_JSON.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/errors.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "ledger.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace delorean;
using namespace delorean_bench;

namespace
{

constexpr std::uint64_t kPeriods[] = {25, 50, 100};
constexpr std::uint64_t kDefaultPeriod = 50;
constexpr int kCodecReps = 3;  ///< cheap codec/seek passes
constexpr int kRecordReps = 2; ///< full simulation passes
/// "No eviction" budget; still feasible for RingOptions::validate().
constexpr std::uint64_t kUnbounded = ~std::uint64_t{0} >> 1;

using Clock = std::chrono::steady_clock;

/** Best-of-@p reps wall time for @p fn, in seconds. */
template <typename Fn>
double
timeBestN(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (s < best)
            best = s;
    }
    return best;
}

std::string
savedBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

bool
fail(const char *what)
{
    std::fprintf(stderr, "FAIL: %s\n", what);
    return false;
}

/**
 * Widest gap a time-travel seek can land in: the replay-start lag of
 * the worst in-window cycle (commits re-executed from the checkpoint
 * the seek resolves to). Bounded by T when the placement contract
 * holds.
 */
std::uint64_t
worstSeekLag(const RingArchiveReader &ring)
{
    const std::vector<std::uint64_t> gccs = ring.checkpointGccs();
    if (gccs.empty())
        return ~std::uint64_t{0};
    std::uint64_t worst = ring.endGcc() - gccs.back();
    for (std::size_t i = 0; i + 1 < gccs.size(); ++i)
        worst = std::max(worst, gccs[i + 1] - gccs[i]);
    return worst;
}

} // namespace

int
main()
{
    header("ring_overhead: always-on ring vs batch archiving",
           "ring recording <= 1.10x (record + writeArchive) at the "
           "default period; replay-start lag <= T on every cell");

    const unsigned scale = benchScale(15);
    MachineConfig machine;
    machine.numProcs = 8;
    const Workload workload("ocean", machine.numProcs, kSeed,
                            WorkloadScale{scale});
    const Recorder recorder(ModeConfig::orderAndSize(), machine);
    const ArchiveIoOptions io{4, true};

    std::string base = "ring_overhead.tmp";
#if defined(__unix__) || defined(__APPLE__)
    base = "/tmp/ring_overhead." + std::to_string(::getpid());
#endif
    std::filesystem::create_directories(base);

    JsonLedger ledger("ring_overhead");
    ledger.open("config");
    ledger.field("app", "ocean");
    ledger.field("procs", machine.numProcs);
    ledger.field("scalePercent", scale);
    ledger.field("defaultPeriod", kDefaultPeriod);
    ledger.field("ioThreads", io.ioThreads);
    ledger.close();

    // Contract check 0: T < 2P has no valid checkpoint placement and
    // must be rejected before any work, with the typed error.
    bool infeasible_rejected = false;
    try {
        RingOptions bad;
        bad.checkpointPeriod = kDefaultPeriod;
        bad.maxReplayLag = 2 * kDefaultPeriod - 1;
        bad.validate();
    } catch (const ConfigError &) {
        infeasible_rejected = true;
    }

    bool ok = infeasible_rejected;
    if (!infeasible_rejected)
        fail("infeasible (T < 2P) config was not rejected");

    double default_overhead = 0.0;

    for (const std::uint64_t period : kPeriods) {
        // Batch baseline at this period: plain record, then the batch
        // container write the ring replaces.
        Recording rec;
        const double record_s = timeBestN(kRecordReps, [&] {
            rec = recorder.record(workload, /*env_seed=*/1, true, {},
                                  period);
        });
        std::string container;
        const double archive_s = timeBestN(kCodecReps, [&] {
            std::ostringstream out(std::ios::binary);
            writeArchive(rec, out, io);
            container = std::move(out).str();
        });
        const std::vector<std::uint8_t> container_bytes(
            container.begin(), container.end());
        const ArchiveReader batch =
            ArchiveReader::fromBytes(container_bytes);

        // Size one full ring to derive the evicting budgets.
        RingOptions probe_opts;
        probe_opts.budgetBytes = kUnbounded;
        probe_opts.checkpointPeriod = period;
        probe_opts.io = io;
        const std::string probe_dir =
            base + "/probe-p" + std::to_string(period);
        const RingWriterStats probe =
            writeRing(rec, probe_dir, probe_opts);
        std::filesystem::remove_all(probe_dir);

        std::printf("period %llu: %zu checkpoints, %zu archive "
                    "bytes, %llu ring bytes unbounded\n",
                    static_cast<unsigned long long>(period),
                    rec.checkpoints.size(), container.size(),
                    static_cast<unsigned long long>(probe.liveBytes));

        ledger.open("period" + std::to_string(period));
        ledger.field("recordSeconds", record_s);
        ledger.field("archiveSeconds", archive_s);
        ledger.field("archiveBytes", container.size());
        ledger.field("checkpoints", rec.checkpoints.size());

        const std::pair<const char *, std::uint64_t> budgets[] = {
            {"unbounded", kUnbounded},
            {"half", std::max<std::uint64_t>(1, probe.liveBytes / 2)},
            // Room for about four segments: eviction is exercised
            // hard but the retained window still has seek targets.
            {"tight",
             std::max<std::uint64_t>(
                 1, 4 * (probe.liveBytes / probe.segmentsCut))},
        };
        for (const auto &[label, budget] : budgets) {
            const std::string dir = base + "/p"
                                    + std::to_string(period) + "-"
                                    + label;
            RingOptions ropts;
            ropts.budgetBytes = budget;
            ropts.checkpointPeriod = period;
            ropts.io = io;

            // Steady state: the same record run, streaming into the
            // ring from the checkpoint hook.
            RingWriterStats stats;
            const double ring_s = timeBestN(kRecordReps, [&] {
                RingArchiveWriter ring(dir, ropts);
                const Recording r = recorder.record(
                    workload, /*env_seed=*/1, true, {}, period,
                    [&ring](const Recording &rr) {
                        ring.onCheckpoint(rr);
                    });
                ring.close(r);
                stats = ring.stats();
            });
            const double overhead =
                ring_s / (record_s + archive_s);
            if (period == kDefaultPeriod && budget == kUnbounded)
                default_overhead = overhead;

            if (stats.worstStartLag > ropts.resolvedLag())
                ok = fail("writer worstStartLag exceeded T");
            if (stats.maxCheckpointSpacing > period)
                ok = fail("checkpoint spacing exceeded the period");
            if (budget != kUnbounded && stats.segmentsEvicted == 0)
                ok = fail("bounded budget evicted nothing");

            const RingArchiveReader ring =
                RingArchiveReader::open(dir, io);
            if (!ring.recovery().clean || !ring.recovery().usedIndex)
                ok = fail("clean close did not recover cleanly");
            if (ring.checkpointCount() < 2)
                ok = fail("too few retained checkpoints to seek");
            const std::uint64_t seek_lag = worstSeekLag(ring);
            if (seek_lag > ropts.resolvedLag())
                ok = fail("worst-case seek lag exceeded T");

            // Byte-identity with the batch container (full history
            // retained): readAll and a couple of interval views.
            if (budget == kUnbounded) {
                if (ring.checkpointCount() != batch.checkpointCount())
                    ok = fail("ring lost checkpoints vs the archive");
                if (savedBytes(ring.readAll()) != savedBytes(rec))
                    ok = fail("ring readAll not byte-identical");
                const std::size_t mid = ring.checkpointCount() / 2;
                for (const std::size_t i : {std::size_t{0}, mid})
                    if (i + 1 < ring.checkpointCount()
                        && savedBytes(ring.readInterval(i, i + 1))
                               != savedBytes(
                                   batch.readInterval(i, i + 1)))
                        ok = fail("ring interval view diverged from "
                                  "the archive's");
            }

            // Seek-to-replay wall: open the directory cold, time-
            // travel to a mid-window cycle, decode one bounded
            // interval.
            std::size_t sink = 0;
            const double seek_s = timeBestN(kCodecReps, [&] {
                const RingArchiveReader r =
                    RingArchiveReader::open(dir, io);
                const std::vector<std::uint64_t> gccs =
                    r.checkpointGccs();
                const std::size_t from = r.newestCheckpointAtOrBefore(
                    gccs[gccs.size() / 2]);
                const Recording v = r.readInterval(
                    from, from + 1 < gccs.size()
                              ? from + 1
                              : RingArchiveReader::kToEnd);
                sink += v.checkpoints.size();
            });
            if (sink == 0)
                ok = fail("seek decoded an empty view");

            ledger.open(label);
            ledger.field("budgetBytes", budget);
            ledger.field("ringSeconds", ring_s);
            ledger.field("overheadVsBatch", overhead);
            ledger.field("segmentsCut", stats.segmentsCut);
            ledger.field("segmentsEvicted", stats.segmentsEvicted);
            ledger.field("liveBytes", stats.liveBytes);
            ledger.field("budgetOverruns", stats.budgetOverruns);
            ledger.field("retainedCheckpoints",
                         ring.checkpointCount());
            ledger.field("lagBoundCommits", ropts.resolvedLag());
            ledger.field("worstStartLagCommits", stats.worstStartLag);
            ledger.field("worstSeekLagCommits", seek_lag);
            ledger.field("seekToReplaySeconds", seek_s);
            ledger.close();

            std::fprintf(stderr,
                         "p=%llu %-9s ring %.3fs vs batch %.3fs "
                         "(%.2fx), seek %.4fs, lag %llu/%llu\n",
                         static_cast<unsigned long long>(period),
                         label, ring_s, record_s + archive_s,
                         overhead, seek_s,
                         static_cast<unsigned long long>(seek_lag),
                         static_cast<unsigned long long>(
                             ropts.resolvedLag()));
            std::filesystem::remove_all(dir);
        }
        ledger.close();
    }
    std::filesystem::remove_all(base);

    const bool meets_gate = default_overhead <= 1.10;
    ledger.open("gate");
    ledger.field("overheadAtDefaultPeriod", default_overhead);
    ledger.field("meetsOverheadGate", meets_gate);
    ledger.close();
    ledger.open("invariants");
    ledger.field("infeasibleConfigRejected", infeasible_rejected);
    ledger.field("contractsHeldEveryCell", ok);
    ledger.close();

    std::fprintf(stderr,
                 "steady-state overhead at period %llu: %.2fx "
                 "(gate 1.10x) -> %s\n",
                 static_cast<unsigned long long>(kDefaultPeriod),
                 default_overhead, meets_gate ? "MET" : "MISSED");
    if (!ledger.writeTo(
            JsonLedger::path("DELOREAN_RING_JSON", "BENCH_ring.json")))
        ok = false;
    std::printf("ring_overhead: contracts %s\n",
                ok ? "HELD" : "BROKEN");
    return ok ? 0 : 1;
}
