/**
 * @file
 * Figure 11: performance of OrderOnly, Stratified OrderOnly (1 chunk)
 * and PicoLog during initial execution AND during replay, normalized
 * to RC.
 *
 * Replay follows the paper's methodology (Section 6.2.1): parallel
 * commit disabled, commit arbitration raised from 30 to 50 cycles, and
 * 5 replay runs per recording with random 10-300 cycle stalls before
 * 30% of commits plus 1.5% hit<->miss latency swaps; the average of
 * the 5 runs is reported. Every replay run is additionally checked to
 * be deterministic.
 *
 * Paper reference points: OrderOnly and Stratified OrderOnly replay at
 * ~0.82x RC; PicoLog replays at ~0.72x RC.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

struct ModeRow
{
    const char *label;
    ModeConfig mode;
};

/** Record + 5 perturbed replays of one (app, mode) cell. */
struct Cell
{
    double execCycles = 0;
    double replayCyclesAvg = 0;
    bool deterministic = true;
};

} // namespace

int
main()
{
    header("Figure 11: record vs replay speed, normalized to RC",
           "OrderOnly/Stratified replay ~0.82x RC; PicoLog replay "
           "~0.72x RC");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;
    const ModeRow modes[] = {
        {"OrderOnly", ModeConfig::orderOnly()},
        {"StratOO", strat},
        {"PicoLog", ModeConfig::picoLog()},
    };

    std::vector<std::pair<std::string, bool>> apps; // (name, is_sp2)
    for (const auto &app : AppTable::splash2Names())
        apps.emplace_back(app, true);
    apps.emplace_back("sjbb2k", false);
    apps.emplace_back("sweb2005", false);

    // Per app: one RC baseline job, then one job per mode doing the
    // (cached) record plus its 5 perturbed replays.
    BenchCampaign campaign("fig11_replay_speed");
    std::vector<std::function<Cell()>> tasks;
    for (const auto &[app, is_sp2] : apps) {
        tasks.push_back([&campaign, &machine, app = app, scale] {
            Workload w(app, machine.numProcs, kSeed,
                       WorkloadScale{scale});
            InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
            const InterleavedResult res = rc_exec.run(w, 1);
            campaign.addSim(res.cycles, res.totalInstrs);
            Cell cell;
            cell.execCycles = static_cast<double>(res.cycles);
            return cell;
        });
        for (const ModeRow &m : modes) {
            tasks.push_back([&campaign, &machine, app = app,
                             mode = m.mode, scale] {
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = mode;
                const Recording &rec = campaign.record(job);

                Workload w(app, machine.numProcs, kSeed,
                           WorkloadScale{scale});
                Replayer replayer;
                Cell cell;
                cell.execCycles =
                    static_cast<double>(rec.stats.totalCycles);
                for (unsigned run = 0; run < 5; ++run) {
                    ReplayPerturbation perturb;
                    perturb.enabled = true;
                    perturb.seed = 1000 + run;
                    const ReplayOutcome out = replayer.replay(
                        rec, w, /*env_seed=*/77 + run, perturb);
                    campaign.account(out.stats);
                    cell.replayCyclesAvg +=
                        static_cast<double>(out.stats.totalCycles);
                    const bool ok = rec.stratified()
                                        ? out.deterministicPerProc
                                        : out.deterministicExact;
                    if (!ok)
                        cell.deterministic = false;
                }
                cell.replayCyclesAvg /= 5.0;
                return cell;
            });
        }
    }
    const std::vector<Cell> cells = campaign.map(std::move(tasks));

    std::printf("%-10s |", "app");
    for (const auto &m : modes)
        std::printf(" %9s-x %9s-r |", m.label, m.label);
    std::printf("\n");

    std::vector<std::vector<double>> sp2_exec(3), sp2_replay(3);
    bool all_deterministic = true;

    const std::size_t stride = 1 + std::size(modes);
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const Cell *base = &cells[ai * stride];
        const double rc = base[0].execCycles;
        std::printf("%-10s |", apps[ai].first.c_str());
        for (std::size_t mi = 0; mi < 3; ++mi) {
            const Cell &cell = base[1 + mi];
            const double exec_speed = rc / cell.execCycles;
            const double replay_speed = rc / cell.replayCyclesAvg;
            if (!cell.deterministic)
                all_deterministic = false;
            std::printf(" %11.2f %11.2f |", exec_speed, replay_speed);
            if (apps[ai].second) {
                sp2_exec[mi].push_back(exec_speed);
                sp2_replay[mi].push_back(replay_speed);
            }
        }
        std::printf("\n");
    }

    std::printf("%-10s |", "SP2-G.M.");
    for (std::size_t mi = 0; mi < 3; ++mi)
        std::printf(" %11.2f %11.2f |", geoMean(sp2_exec[mi]),
                    geoMean(sp2_replay[mi]));
    std::printf("\npaper:       OO 0.97/0.82 | StratOO 0.97/0.82 | "
                "Pico 0.86/0.72\n");
    std::printf("all replays deterministic: %s\n",
                all_deterministic ? "YES" : "NO (BUG)");
    return all_deterministic ? 0 : 1;
}
