/**
 * @file
 * Figure 11: performance of OrderOnly, Stratified OrderOnly (1 chunk)
 * and PicoLog during initial execution AND during replay, normalized
 * to RC.
 *
 * Replay follows the paper's methodology (Section 6.2.1): parallel
 * commit disabled, commit arbitration raised from 30 to 50 cycles, and
 * 5 replay runs per recording with random 10-300 cycle stalls before
 * 30% of commits plus 1.5% hit<->miss latency swaps; the average of
 * the 5 runs is reported. Every replay run is additionally checked to
 * be deterministic.
 *
 * Paper reference points: OrderOnly and Stratified OrderOnly replay at
 * ~0.82x RC; PicoLog replays at ~0.72x RC.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

namespace
{

struct ModeRow
{
    const char *label;
    ModeConfig mode;
};

} // namespace

int
main()
{
    header("Figure 11: record vs replay speed, normalized to RC",
           "OrderOnly/Stratified replay ~0.82x RC; PicoLog replay "
           "~0.72x RC");

    const unsigned scale = benchScale(25);
    const MachineConfig machine;

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;
    const ModeRow modes[] = {
        {"OrderOnly", ModeConfig::orderOnly()},
        {"StratOO", strat},
        {"PicoLog", ModeConfig::picoLog()},
    };

    std::printf("%-10s |", "app");
    for (const auto &m : modes)
        std::printf(" %9s-x %9s-r |", m.label, m.label);
    std::printf("\n");

    std::vector<std::vector<double>> sp2_exec(3), sp2_replay(3);
    bool all_deterministic = true;

    auto run_app = [&](const std::string &app, bool is_sp2) {
        Workload w(app, machine.numProcs, kSeed, WorkloadScale{scale});
        InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
        const double rc = static_cast<double>(rc_exec.run(w, 1).cycles);

        std::printf("%-10s |", app.c_str());
        for (std::size_t mi = 0; mi < 3; ++mi) {
            Recorder recorder(modes[mi].mode, machine);
            const Recording rec = recorder.record(w, 1);
            const double exec_speed =
                rc / static_cast<double>(rec.stats.totalCycles);

            Replayer replayer;
            double replay_cycles = 0;
            for (unsigned run = 0; run < 5; ++run) {
                ReplayPerturbation perturb;
                perturb.enabled = true;
                perturb.seed = 1000 + run;
                const ReplayOutcome out =
                    replayer.replay(rec, w, /*env_seed=*/77 + run,
                                    perturb);
                replay_cycles +=
                    static_cast<double>(out.stats.totalCycles);
                const bool ok = rec.stratified()
                                    ? out.deterministicPerProc
                                    : out.deterministicExact;
                if (!ok)
                    all_deterministic = false;
            }
            const double replay_speed = rc / (replay_cycles / 5.0);
            std::printf(" %11.2f %11.2f |", exec_speed, replay_speed);
            if (is_sp2) {
                sp2_exec[mi].push_back(exec_speed);
                sp2_replay[mi].push_back(replay_speed);
            }
        }
        std::printf("\n");
    };

    for (const auto &app : AppTable::splash2Names())
        run_app(app, true);
    run_app("sjbb2k", false);
    run_app("sweb2005", false);

    std::printf("%-10s |", "SP2-G.M.");
    for (std::size_t mi = 0; mi < 3; ++mi)
        std::printf(" %11.2f %11.2f |", geoMean(sp2_exec[mi]),
                    geoMean(sp2_replay[mi]));
    std::printf("\npaper:       OO 0.97/0.82 | StratOO 0.97/0.82 | "
                "Pico 0.86/0.72\n");
    std::printf("all replays deterministic: %s\n",
                all_deterministic ? "YES" : "NO (BUG)");
    return all_deterministic ? 0 : 1;
}
