/**
 * @file
 * Figure 10: performance during initial execution, normalized to RC,
 * for RC, BulkSC (chunked, no logging), Order&Size, OrderOnly,
 * Stratified OrderOnly (1 chunk/proc/stratum), PicoLog and SC.
 *
 * Paper reference points (averages): Order&Size and OrderOnly within
 * 2-3% of RC (logging overhead negligible; part of the gap is plain
 * BulkSC squashes); Stratified OrderOnly ~= OrderOnly; PicoLog 0.86x
 * RC; SC 0.79x RC; every DeLorean mode outperforms SC.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 10: initial-execution speedup normalized to RC",
           "O&S/OrderOnly ~0.97-0.98; Stratified ~= OrderOnly; "
           "PicoLog 0.86; SC 0.79");

    const unsigned scale = benchScale(35);
    const MachineConfig machine;

    std::vector<std::pair<std::string, bool>> apps; // (name, is_sp2)
    for (const auto &app : AppTable::splash2Names())
        apps.emplace_back(app, true);
    apps.emplace_back("sjbb2k", false);
    apps.emplace_back("sweb2005", false);

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;

    // Per app: RC, SC, then the five chunked configurations. Each grid
    // cell is an independent engine run, so each is its own job.
    struct ChunkedCfg
    {
        ModeConfig mode;
        bool logging;
    };
    const std::vector<ChunkedCfg> chunked{
        {ModeConfig::orderOnly(), false},   // plain BulkSC
        {ModeConfig::orderAndSize(), true},
        {ModeConfig::orderOnly(), true},
        {strat, true},
        {ModeConfig::picoLog(), true},
    };
    const std::size_t stride = 2 + chunked.size();

    BenchCampaign campaign("fig10_performance");
    std::vector<std::function<double()>> tasks;
    for (const auto &[app, is_sp2] : apps) {
        for (const ConsistencyModel model :
             {ConsistencyModel::kRC, ConsistencyModel::kSC}) {
            tasks.push_back([&campaign, &machine, app = app, model,
                             scale] {
                Workload w(app, machine.numProcs, kSeed,
                           WorkloadScale{scale});
                InterleavedExecutor exec(machine, model);
                const InterleavedResult res = exec.run(w, 1);
                campaign.addSim(res.cycles, res.totalInstrs);
                return static_cast<double>(res.cycles);
            });
        }
        for (const ChunkedCfg &cfg : chunked) {
            tasks.push_back([&campaign, &machine, app = app, cfg,
                             scale] {
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = scale;
                job.machine = machine;
                job.mode = cfg.mode;
                job.logging = cfg.logging;
                return static_cast<double>(
                    campaign.record(job).stats.totalCycles);
            });
        }
    }
    const std::vector<double> cycles = campaign.map(std::move(tasks));

    std::printf("%-10s %6s %6s %6s %6s %6s %6s\n", "app", "BulkSC",
                "O&S", "OO", "strOO", "Pico", "SC");

    std::vector<std::vector<double>> sp2(6);
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const double *base = &cycles[ai * stride];
        const double rc = base[0];
        const double sc = base[1];
        const double row[6] = {rc / base[2], rc / base[3], rc / base[4],
                               rc / base[5], rc / base[6], rc / sc};
        std::printf("%-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
                    apps[ai].first.c_str(), row[0], row[1], row[2],
                    row[3], row[4], row[5]);
        if (apps[ai].second)
            for (int i = 0; i < 6; ++i)
                sp2[static_cast<std::size_t>(i)].push_back(row[i]);
    }

    std::printf("%-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
                "SP2-G.M.", geoMean(sp2[0]), geoMean(sp2[1]),
                geoMean(sp2[2]), geoMean(sp2[3]), geoMean(sp2[4]),
                geoMean(sp2[5]));
    std::printf("paper avg:   ~1.0   0.97   0.98   0.97   0.86   0.79\n");
    return 0;
}
