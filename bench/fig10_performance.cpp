/**
 * @file
 * Figure 10: performance during initial execution, normalized to RC,
 * for RC, BulkSC (chunked, no logging), Order&Size, OrderOnly,
 * Stratified OrderOnly (1 chunk/proc/stratum), PicoLog and SC.
 *
 * Paper reference points (averages): Order&Size and OrderOnly within
 * 2-3% of RC (logging overhead negligible; part of the gap is plain
 * BulkSC squashes); Stratified OrderOnly ~= OrderOnly; PicoLog 0.86x
 * RC; SC 0.79x RC; every DeLorean mode outperforms SC.
 */

#include "bench_util.hpp"

using namespace delorean;
using namespace delorean_bench;

int
main()
{
    header("Figure 10: initial-execution speedup normalized to RC",
           "O&S/OrderOnly ~0.97-0.98; Stratified ~= OrderOnly; "
           "PicoLog 0.86; SC 0.79");

    const unsigned scale = benchScale(35);
    const MachineConfig machine;

    std::printf("%-10s %6s %6s %6s %6s %6s %6s\n", "app", "BulkSC",
                "O&S", "OO", "strOO", "Pico", "SC");

    std::vector<std::vector<double>> sp2(6);

    auto run_app = [&](const std::string &app, bool is_sp2) {
        Workload w(app, machine.numProcs, kSeed, WorkloadScale{scale});

        InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
        InterleavedExecutor sc_exec(machine, ConsistencyModel::kSC);
        const double rc = static_cast<double>(rc_exec.run(w, 1).cycles);
        const double sc = static_cast<double>(sc_exec.run(w, 1).cycles);

        auto chunked = [&](const ModeConfig &mode, bool logging) {
            Recorder recorder(mode, machine);
            const Recording rec = recorder.record(w, 1, logging);
            return static_cast<double>(rec.stats.totalCycles);
        };

        ModeConfig strat = ModeConfig::orderOnly();
        strat.stratifyChunksPerProc = 1;

        const double bulks = chunked(ModeConfig::orderOnly(), false);
        const double oands = chunked(ModeConfig::orderAndSize(), true);
        const double oo = chunked(ModeConfig::orderOnly(), true);
        const double soo = chunked(strat, true);
        const double pico = chunked(ModeConfig::picoLog(), true);

        const double row[6] = {rc / bulks, rc / oands, rc / oo,
                               rc / soo,   rc / pico,  rc / sc};
        std::printf("%-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
                    app.c_str(), row[0], row[1], row[2], row[3], row[4],
                    row[5]);
        if (is_sp2)
            for (int i = 0; i < 6; ++i)
                sp2[static_cast<std::size_t>(i)].push_back(row[i]);
    };

    for (const auto &app : AppTable::splash2Names())
        run_app(app, true);
    run_app("sjbb2k", false);
    run_app("sweb2005", false);

    std::printf("%-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
                "SP2-G.M.", geoMean(sp2[0]), geoMean(sp2[1]),
                geoMean(sp2[2]), geoMean(sp2[3]), geoMean(sp2[4]),
                geoMean(sp2[5]));
    std::printf("paper avg:   ~1.0   0.97   0.98   0.97   0.86   0.79\n");
    return 0;
}
