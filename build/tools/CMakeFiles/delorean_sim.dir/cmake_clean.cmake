file(REMOVE_RECURSE
  "CMakeFiles/delorean_sim.dir/delorean_sim.cpp.o"
  "CMakeFiles/delorean_sim.dir/delorean_sim.cpp.o.d"
  "delorean_sim"
  "delorean_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delorean_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
