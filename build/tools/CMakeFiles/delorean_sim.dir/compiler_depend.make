# Empty compiler generated dependencies file for delorean_sim.
# This may be replaced when dependencies are built.
