file(REMOVE_RECURSE
  "CMakeFiles/mode_tradeoffs.dir/mode_tradeoffs.cpp.o"
  "CMakeFiles/mode_tradeoffs.dir/mode_tradeoffs.cpp.o.d"
  "mode_tradeoffs"
  "mode_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
