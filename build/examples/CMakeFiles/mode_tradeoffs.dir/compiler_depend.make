# Empty compiler generated dependencies file for mode_tradeoffs.
# This may be replaced when dependencies are built.
