file(REMOVE_RECURSE
  "CMakeFiles/interval_replay.dir/interval_replay.cpp.o"
  "CMakeFiles/interval_replay.dir/interval_replay.cpp.o.d"
  "interval_replay"
  "interval_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
