# Empty dependencies file for interval_replay.
# This may be replaced when dependencies are built.
