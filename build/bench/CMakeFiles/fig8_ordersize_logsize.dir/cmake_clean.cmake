file(REMOVE_RECURSE
  "CMakeFiles/fig8_ordersize_logsize.dir/fig8_ordersize_logsize.cpp.o"
  "CMakeFiles/fig8_ordersize_logsize.dir/fig8_ordersize_logsize.cpp.o.d"
  "fig8_ordersize_logsize"
  "fig8_ordersize_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ordersize_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
