# Empty compiler generated dependencies file for fig8_ordersize_logsize.
# This may be replaced when dependencies are built.
