file(REMOVE_RECURSE
  "CMakeFiles/fig7_picolog_logsize.dir/fig7_picolog_logsize.cpp.o"
  "CMakeFiles/fig7_picolog_logsize.dir/fig7_picolog_logsize.cpp.o.d"
  "fig7_picolog_logsize"
  "fig7_picolog_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_picolog_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
