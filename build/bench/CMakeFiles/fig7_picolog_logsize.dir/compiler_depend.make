# Empty compiler generated dependencies file for fig7_picolog_logsize.
# This may be replaced when dependencies are built.
