file(REMOVE_RECURSE
  "CMakeFiles/baseline_logsize.dir/baseline_logsize.cpp.o"
  "CMakeFiles/baseline_logsize.dir/baseline_logsize.cpp.o.d"
  "baseline_logsize"
  "baseline_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
