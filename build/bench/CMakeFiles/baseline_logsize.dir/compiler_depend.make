# Empty compiler generated dependencies file for baseline_logsize.
# This may be replaced when dependencies are built.
