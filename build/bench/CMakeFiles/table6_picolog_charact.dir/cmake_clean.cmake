file(REMOVE_RECURSE
  "CMakeFiles/table6_picolog_charact.dir/table6_picolog_charact.cpp.o"
  "CMakeFiles/table6_picolog_charact.dir/table6_picolog_charact.cpp.o.d"
  "table6_picolog_charact"
  "table6_picolog_charact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_picolog_charact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
