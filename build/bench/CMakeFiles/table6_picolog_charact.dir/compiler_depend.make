# Empty compiler generated dependencies file for table6_picolog_charact.
# This may be replaced when dependencies are built.
