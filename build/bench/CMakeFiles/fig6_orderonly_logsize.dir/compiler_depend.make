# Empty compiler generated dependencies file for fig6_orderonly_logsize.
# This may be replaced when dependencies are built.
