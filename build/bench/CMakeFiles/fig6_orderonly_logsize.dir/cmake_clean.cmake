file(REMOVE_RECURSE
  "CMakeFiles/fig6_orderonly_logsize.dir/fig6_orderonly_logsize.cpp.o"
  "CMakeFiles/fig6_orderonly_logsize.dir/fig6_orderonly_logsize.cpp.o.d"
  "fig6_orderonly_logsize"
  "fig6_orderonly_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_orderonly_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
