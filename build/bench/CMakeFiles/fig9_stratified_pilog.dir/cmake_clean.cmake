file(REMOVE_RECURSE
  "CMakeFiles/fig9_stratified_pilog.dir/fig9_stratified_pilog.cpp.o"
  "CMakeFiles/fig9_stratified_pilog.dir/fig9_stratified_pilog.cpp.o.d"
  "fig9_stratified_pilog"
  "fig9_stratified_pilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_stratified_pilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
