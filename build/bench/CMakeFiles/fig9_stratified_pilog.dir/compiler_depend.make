# Empty compiler generated dependencies file for fig9_stratified_pilog.
# This may be replaced when dependencies are built.
