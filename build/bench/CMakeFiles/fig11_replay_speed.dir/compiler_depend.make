# Empty compiler generated dependencies file for fig11_replay_speed.
# This may be replaced when dependencies are built.
