file(REMOVE_RECURSE
  "CMakeFiles/fig11_replay_speed.dir/fig11_replay_speed.cpp.o"
  "CMakeFiles/fig11_replay_speed.dir/fig11_replay_speed.cpp.o.d"
  "fig11_replay_speed"
  "fig11_replay_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_replay_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
