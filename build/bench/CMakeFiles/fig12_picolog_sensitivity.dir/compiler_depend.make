# Empty compiler generated dependencies file for fig12_picolog_sensitivity.
# This may be replaced when dependencies are built.
