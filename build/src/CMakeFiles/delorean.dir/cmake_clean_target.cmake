file(REMOVE_RECURSE
  "libdelorean.a"
)
