# Empty compiler generated dependencies file for delorean.
# This may be replaced when dependencies are built.
