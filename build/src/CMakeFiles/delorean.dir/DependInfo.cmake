
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fdr.cpp" "src/CMakeFiles/delorean.dir/baselines/fdr.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/baselines/fdr.cpp.o.d"
  "/root/repo/src/baselines/rtr.cpp" "src/CMakeFiles/delorean.dir/baselines/rtr.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/baselines/rtr.cpp.o.d"
  "/root/repo/src/baselines/strata.cpp" "src/CMakeFiles/delorean.dir/baselines/strata.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/baselines/strata.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/delorean.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/common/config.cpp.o.d"
  "/root/repo/src/compress/lz77.cpp" "src/CMakeFiles/delorean.dir/compress/lz77.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/compress/lz77.cpp.o.d"
  "/root/repo/src/core/cs_log.cpp" "src/CMakeFiles/delorean.dir/core/cs_log.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/core/cs_log.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/delorean.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/pi_log.cpp" "src/CMakeFiles/delorean.dir/core/pi_log.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/core/pi_log.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/delorean.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/stratifier.cpp" "src/CMakeFiles/delorean.dir/core/stratifier.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/core/stratifier.cpp.o.d"
  "/root/repo/src/memory/cache.cpp" "src/CMakeFiles/delorean.dir/memory/cache.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/memory/cache.cpp.o.d"
  "/root/repo/src/sim/interleaved_executor.cpp" "src/CMakeFiles/delorean.dir/sim/interleaved_executor.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/sim/interleaved_executor.cpp.o.d"
  "/root/repo/src/trace/app_profile.cpp" "src/CMakeFiles/delorean.dir/trace/app_profile.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/trace/app_profile.cpp.o.d"
  "/root/repo/src/trace/devices.cpp" "src/CMakeFiles/delorean.dir/trace/devices.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/trace/devices.cpp.o.d"
  "/root/repo/src/trace/thread_program.cpp" "src/CMakeFiles/delorean.dir/trace/thread_program.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/trace/thread_program.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/CMakeFiles/delorean.dir/trace/workload.cpp.o" "gcc" "src/CMakeFiles/delorean.dir/trace/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
