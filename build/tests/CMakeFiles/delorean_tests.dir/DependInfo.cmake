
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/delorean_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bitstream.cpp" "tests/CMakeFiles/delorean_tests.dir/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_bitstream.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/delorean_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/delorean_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_cs_log.cpp" "tests/CMakeFiles/delorean_tests.dir/test_cs_log.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_cs_log.cpp.o.d"
  "/root/repo/tests/test_devices.cpp" "tests/CMakeFiles/delorean_tests.dir/test_devices.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_devices.cpp.o.d"
  "/root/repo/tests/test_directory.cpp" "tests/CMakeFiles/delorean_tests.dir/test_directory.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_directory.cpp.o.d"
  "/root/repo/tests/test_engine_events.cpp" "tests/CMakeFiles/delorean_tests.dir/test_engine_events.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_engine_events.cpp.o.d"
  "/root/repo/tests/test_engine_modes.cpp" "tests/CMakeFiles/delorean_tests.dir/test_engine_modes.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_engine_modes.cpp.o.d"
  "/root/repo/tests/test_engine_record.cpp" "tests/CMakeFiles/delorean_tests.dir/test_engine_record.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_engine_record.cpp.o.d"
  "/root/repo/tests/test_engine_replay.cpp" "tests/CMakeFiles/delorean_tests.dir/test_engine_replay.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_engine_replay.cpp.o.d"
  "/root/repo/tests/test_fingerprint.cpp" "tests/CMakeFiles/delorean_tests.dir/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_fingerprint.cpp.o.d"
  "/root/repo/tests/test_fuzz_determinism.cpp" "tests/CMakeFiles/delorean_tests.dir/test_fuzz_determinism.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_fuzz_determinism.cpp.o.d"
  "/root/repo/tests/test_input_logs.cpp" "tests/CMakeFiles/delorean_tests.dir/test_input_logs.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_input_logs.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/delorean_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interleaved_executor.cpp" "tests/CMakeFiles/delorean_tests.dir/test_interleaved_executor.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_interleaved_executor.cpp.o.d"
  "/root/repo/tests/test_log_sizes.cpp" "tests/CMakeFiles/delorean_tests.dir/test_log_sizes.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_log_sizes.cpp.o.d"
  "/root/repo/tests/test_lz77.cpp" "tests/CMakeFiles/delorean_tests.dir/test_lz77.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_lz77.cpp.o.d"
  "/root/repo/tests/test_memory_state.cpp" "tests/CMakeFiles/delorean_tests.dir/test_memory_state.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_memory_state.cpp.o.d"
  "/root/repo/tests/test_pi_log.cpp" "tests/CMakeFiles/delorean_tests.dir/test_pi_log.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_pi_log.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/delorean_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/delorean_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/delorean_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_signature.cpp" "tests/CMakeFiles/delorean_tests.dir/test_signature.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_signature.cpp.o.d"
  "/root/repo/tests/test_spec_tracker.cpp" "tests/CMakeFiles/delorean_tests.dir/test_spec_tracker.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_spec_tracker.cpp.o.d"
  "/root/repo/tests/test_stratifier.cpp" "tests/CMakeFiles/delorean_tests.dir/test_stratifier.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_stratifier.cpp.o.d"
  "/root/repo/tests/test_thread_program.cpp" "tests/CMakeFiles/delorean_tests.dir/test_thread_program.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_thread_program.cpp.o.d"
  "/root/repo/tests/test_timing_model.cpp" "tests/CMakeFiles/delorean_tests.dir/test_timing_model.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_timing_model.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/delorean_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/delorean_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/delorean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
