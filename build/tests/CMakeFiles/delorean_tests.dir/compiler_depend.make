# Empty compiler generated dependencies file for delorean_tests.
# This may be replaced when dependencies are built.
