/**
 * @file
 * CI smoke check for the archive store subsystem; wired into ctest as
 * `store_smoke` (tier-1). In a few seconds, for every recording mode
 * it runs the full durable-storage loop:
 *
 *   record (with periodic checkpoints) -> archive -> sniff + parse ->
 *   seek (footer index sanity) -> readAll byte-identity ->
 *   interval replay from every checkpoint -> fingerprint check,
 *
 * plus one bounded interval I(ckpt[0], ckpt[2]) and one corrupted
 * archive that must be rejected with a typed segment error. The
 * exhaustive versions live in tests/test_store.cpp and the
 * `fuzz`-labeled archive-corruption sweep.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "trace/workload.hpp"

using namespace delorean;

namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr std::uint64_t kCheckpointPeriod = 20;

std::vector<std::pair<const char *, ModeConfig>>
modes()
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    return {{"order-and-size", ModeConfig::orderAndSize()},
            {"order-only", ModeConfig::orderOnly()},
            {"order-only-strat", strat},
            {"picolog", ModeConfig::picoLog()}};
}

std::string
saved(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

bool
fail(const char *name, const char *what)
{
    std::fprintf(stderr, "store_smoke: %s: %s\n", name, what);
    return false;
}

bool
smokeMode(const char *name, const ModeConfig &mode)
{
    MachineConfig machine;
    machine.numProcs = 4;
    Workload workload("radix", machine.numProcs, kSeed,
                      WorkloadScale{10});
    const Recording rec =
        Recorder(mode, machine)
            .record(workload, /*env_seed=*/1, true, {},
                    kCheckpointPeriod);
    if (rec.checkpoints.empty())
        return fail(name, "record took no checkpoints");

    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string blob = std::move(out).str();
    std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
    if (!ArchiveReader::looksLikeArchive(bytes.data(), bytes.size()))
        return fail(name, "archive magic sniff failed");

    const ArchiveReader reader = ArchiveReader::fromBytes(bytes);

    // Seek: the footer index must expose every checkpoint, ascending.
    if (reader.checkpointCount() != rec.checkpoints.size())
        return fail(name, "footer index lost checkpoints");
    const std::vector<std::uint64_t> gccs = reader.checkpointGccs();
    for (std::size_t i = 0; i < gccs.size(); ++i)
        if (gccs[i] != rec.checkpoints[i].gcc
            || reader.checkpointAt(i).gcc != gccs[i])
            return fail(name, "checkpoint seek returned wrong GCC");

    if (saved(reader.readAll()) != saved(rec))
        return fail(name, "readAll() not byte-identical");

    // Interval replay from every checkpoint must reproduce the
    // recorded tail fingerprint (per-processor for stratified logs,
    // whose global interleaving is legally relaxed).
    for (std::size_t i = 0; i < reader.checkpointCount(); ++i) {
        const Recording view = reader.readInterval(i);
        const ReplayOutcome out_i = Replayer().replayInterval(
            view, 0, workload, /*env_seed=*/99 + i);
        const bool ok = rec.stratified() ? out_i.deterministicPerProc
                                         : out_i.deterministicExact;
        if (!ok)
            return fail(name, "interval replay diverged");
    }

    // One bounded interval: I(ckpt[0], ckpt[2]) when available.
    if (reader.checkpointCount() >= 3) {
        const Recording view = reader.readInterval(0, 2);
        const ReplayOutcome out_b = Replayer().replayInterval(
            view, 0, workload, /*env_seed=*/123, {},
            &view.checkpoints[1]);
        const bool ok = rec.stratified() ? out_b.deterministicPerProc
                                         : out_b.deterministicExact;
        if (!ok)
            return fail(name, "bounded interval replay diverged");
        if (out_b.fingerprint.commits.size()
            != view.checkpoints[1].gcc - view.checkpoints[0].gcc)
            return fail(name, "bounded interval commit count wrong");
    }

    // Integrity: a payload flip must be a typed segment error.
    std::vector<std::uint8_t> corrupt = bytes;
    const std::size_t seg0_payload =
        static_cast<std::size_t>(reader.segments()[0].fileOffset) + 40;
    corrupt[seg0_payload] ^= 0x01;
    try {
        ArchiveReader::fromBytes(corrupt).readAll();
        return fail(name, "corrupted segment was not detected");
    } catch (const ArchiveError &e) {
        if (e.section() != ArchiveSection::kSegment
            || e.segment() != 0)
            return fail(name, "corruption error named wrong section");
    }

    std::printf("store_smoke: %s: %zu checkpoints archived, sought, "
                "interval-replayed\n",
                name, reader.checkpointCount());
    return true;
}

} // namespace

int
main()
{
    bool ok = true;
    for (const auto &[name, mode] : modes())
        ok = smokeMode(name, mode) && ok;
    if (!ok) {
        std::fprintf(stderr, "store_smoke: FAILED\n");
        return 1;
    }
    std::printf("store_smoke: archive round-trip, seek, interval "
                "replay and corruption detection passed\n");
    return 0;
}
