/**
 * @file
 * CI smoke check for the commit fast path: records the same small
 * workloads with the summary filter enabled and disabled (via the
 * DELOREAN_NO_SUMMARY_FILTER escape hatch) and asserts the two
 * recordings serialize to byte-identical streams — the filter may
 * only change how fast the arbiter decides, never what it decides.
 * Also replays the filtered recording to confirm determinism. Wired
 * into ctest as `hotpath_smoke`.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/recorder.hpp"
#include "core/serialize.hpp"

using namespace delorean;

namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr unsigned kScale = 5;

std::string
serialized(const Recording &rec)
{
    std::ostringstream out;
    saveRecording(rec, out);
    return out.str();
}

Recording
recordApp(const std::string &app, const MachineConfig &machine,
          bool filter)
{
    if (filter)
        unsetenv("DELOREAN_NO_SUMMARY_FILTER");
    else
        setenv("DELOREAN_NO_SUMMARY_FILTER", "1", 1);
    const Workload workload(app, machine.numProcs, kSeed,
                            WorkloadScale{kScale});
    Recording rec =
        Recorder(ModeConfig::orderOnly(), machine).record(workload, 7);
    unsetenv("DELOREAN_NO_SUMMARY_FILTER");
    return rec;
}

bool
checkApp(const std::string &app, bool exact_disambiguation)
{
    MachineConfig machine;
    machine.bulk.exactDisambiguation = exact_disambiguation;

    const Recording with = recordApp(app, machine, true);
    const Recording without = recordApp(app, machine, false);

    if (serialized(with) != serialized(without)) {
        std::fprintf(stderr,
                     "hotpath_smoke: %s (exact=%d): filter on/off "
                     "recordings differ\n",
                     app.c_str(), exact_disambiguation);
        return false;
    }

    const ReplayOutcome out = Replayer().replay(with, /*env_seed=*/99);
    if (!out.deterministicExact) {
        std::fprintf(stderr,
                     "hotpath_smoke: %s (exact=%d): replay not "
                     "deterministic\n",
                     app.c_str(), exact_disambiguation);
        return false;
    }
    return true;
}

} // namespace

int
main()
{
    bool ok = true;
    for (const char *app : {"radix", "fft", "lu"}) {
        ok = checkApp(app, /*exact_disambiguation=*/true) && ok;
        ok = checkApp(app, /*exact_disambiguation=*/false) && ok;
    }
    if (!ok)
        return 1;
    std::printf("hotpath_smoke: filter on/off recordings "
                "byte-identical, replays deterministic\n");
    return 0;
}
