/**
 * @file
 * CI smoke check for the validation subsystem; wired into ctest as
 * `validate_smoke` (tier-1). In a few seconds it runs:
 *
 *   - the cross-mode differential check on three applications,
 *   - a small fault-injection sweep (all mutation kinds, all three
 *     modes) asserting the no-crash/no-hang/no-silent-wrong-answer
 *     contract,
 *   - a synthetic divergence, asserting the localizer names the
 *     exact chunk that was tampered with.
 *
 * The exhaustive versions live in the `fuzz`-labeled tests and the
 * validate_sweep bench harness.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/recorder.hpp"
#include "trace/workload.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"
#include "validate/localizer.hpp"

using namespace delorean;

namespace
{

bool
differentialSmoke()
{
    const DifferentialChecker checker;
    bool ok = true;
    for (const char *app : {"fft", "ocean", "radix"}) {
        DifferentialJob job;
        job.app = app;
        const DifferentialResult res = checker.check(job);
        if (!res.ok()) {
            std::fprintf(stderr, "validate_smoke: %s\n",
                         res.describe().c_str());
            ok = false;
        }
    }
    return ok;
}

bool
faultSweepSmoke()
{
    const DifferentialJob job;
    MachineConfig machine;
    machine.numProcs = job.numProcs;
    Workload workload(job.app, job.numProcs, job.workloadSeed,
                      WorkloadScale{job.scalePercent});

    bool ok = true;
    std::uint64_t total = 0;
    for (const ModeConfig &mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        const Recording rec =
            Recorder(mode, machine).record(workload, job.recordEnvSeed);
        const FaultSweepSummary sweep =
            runFaultSweep(rec, /*mutants_per_kind=*/8, /*seed0=*/7);
        total += sweep.total;
        if (!sweep.ok()) {
            std::fprintf(stderr, "validate_smoke: %s\n",
                         sweep.describe().c_str());
            ok = false;
        }
    }
    if (ok)
        std::printf("validate_smoke: %llu mutants, contract held\n",
                    static_cast<unsigned long long>(total));
    return ok;
}

bool
localizerSmoke()
{
    const DifferentialJob job;
    MachineConfig machine;
    machine.numProcs = job.numProcs;
    Workload workload(job.app, job.numProcs, job.workloadSeed,
                      WorkloadScale{job.scalePercent});
    const Recording rec = Recorder(ModeConfig::orderOnly(), machine)
                              .record(workload, job.recordEnvSeed);

    // Tamper with one commit mid-stream; the localizer must name it.
    const std::size_t victim = rec.fingerprint.commits.size() / 2;
    ExecutionFingerprint tampered = rec.fingerprint;
    tampered.commits[victim].accAfter ^= 0xDEAD;

    const DivergenceReport report =
        localizeDivergence(rec.fingerprint, tampered, &rec);
    if (report.kind != DivergenceKind::kCommitDivergence
        || report.commitIndex != victim
        || report.proc != rec.fingerprint.commits[victim].proc
        || report.logName != "pi" || report.logIndex < 0) {
        std::fprintf(stderr,
                     "validate_smoke: localizer missed tampered commit "
                     "%zu:\n%s\n",
                     victim, report.describe().c_str());
        return false;
    }
    return true;
}

} // namespace

int
main()
{
    bool ok = true;
    ok = differentialSmoke() && ok;
    ok = faultSweepSmoke() && ok;
    ok = localizerSmoke() && ok;
    if (!ok) {
        std::fprintf(stderr, "validate_smoke: FAILED\n");
        return 1;
    }
    std::printf("validate_smoke: differential, fault-injection and "
                "localizer checks passed\n");
    return 0;
}
