/**
 * @file
 * replay_check: command-line front end of the validation subsystem.
 *
 *   replay_check --record <app> <mode> <file>   record an execution
 *                                               and serialize it
 *   replay_check <file>                         load + checked replay,
 *                                               print a DivergenceReport
 *   replay_check --differential [<app>|all]     cross-mode differential
 *                                               check (default: all)
 *   replay_check --fault-sweep <app> [<n>]      n mutants per mutation
 *                                               kind per mode (def. 40)
 *   replay_check --ring <dir> [--at <cycle>]    time-travel into a ring
 *                                               archive directory
 *
 * Modes: order-and-size | order-only | order-only-strat | picolog.
 * Exit status 0 = validated, 1 = divergence/violation found,
 * 2 = usage or I/O error. A corrupt input file is NOT an I/O error:
 * it exits 1 with the loader's structured rejection, which is the
 * behavior the fault injector certifies.
 *
 * `--detect-races` (anywhere on the command line) attaches the
 * happens-before race detector to the checked replay of <file> and
 * prints its report. The serial and chunk-parallel replays must
 * produce byte-identical reports or the run exits 1; seeded or real
 * races are findings, not failures, so a deterministic replay that
 * surfaces races still exits 0. Interval replays (--from/--to) reject
 * the flag: the detector needs the complete commit history.
 *
 * `--ring <dir>` opens a ring archive directory — recovering the
 * retained window even after a crash — and replays one checkpoint
 * interval of it. `--at <cycle>` seeks to the newest retained
 * checkpoint at or before that global commit count (the time-travel
 * query: "show me what the machine was doing around cycle C");
 * without it the replay starts at the oldest retained checkpoint.
 * The interval is checked twice, serially and with a windowed replay
 * arbiter (W=8), and the two fingerprints must agree.
 *
 * `--jobs <n>` (anywhere on the command line) sets the worker count
 * for every parallel path — differential fan-out and chunk-parallel
 * replay — overriding DELOREAN_JOBS. Checked file replays always
 * cross-check the chunk-parallel replayer against the serial engine.
 *
 * Archive (.dla) loads honor two data-plane knobs (anywhere on the
 * command line): `--io-threads <n>` sizes the segment codec pool
 * (default: the --jobs / DELOREAN_JOBS resolution) and `--no-mmap`
 * forces buffered reads instead of the zero-copy mmap path. Neither
 * changes any byte of what is read — only how fast.
 *
 * Knobs (environment): DELOREAN_JOBS worker count, DELOREAN_SCALE
 * workload scale percent, DELOREAN_NUM_PROCS processor count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

namespace
{

/// Archive data-plane knobs (--io-threads / --no-mmap), set in main.
ArchiveIoOptions archive_io;

/// --detect-races: attach the happens-before detector to file replays.
bool detect_races = false;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

DifferentialJob
baseJob()
{
    DifferentialJob job;
    job.numProcs = envUnsigned("DELOREAN_NUM_PROCS", job.numProcs);
    job.scalePercent = envUnsigned("DELOREAN_SCALE", job.scalePercent);
    return job;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: replay_check [--jobs <n>] [--detect-races] "
        "[--from <gcc> [--to <gcc>]] <file>\n"
        "       replay_check --record <app> <mode> <file>\n"
        "       replay_check --list-checkpoints <file>\n"
        "       replay_check [--jobs <n>] --differential [<app>|all]\n"
        "       replay_check --fault-sweep <app> [<mutants-per-kind>]\n"
        "       replay_check --ring <dir> [--at <cycle>]\n"
        "modes: order-and-size order-only order-only-strat picolog\n"
        "<file> may be a serialized recording (.dlr) or an archive\n"
        "(.dla, auto-detected by magic). --from/--to replay only the\n"
        "interval between the named checkpoint GCCs (Appendix B); use\n"
        "--list-checkpoints to see the seekable GCCs.\n"
        "archive loads also accept --io-threads <n> (segment codec\n"
        "pool size) and --no-mmap (buffered instead of zero-copy\n"
        "reads); neither changes what is read, only how fast.\n"
        "--detect-races runs the happens-before race detector during\n"
        "the checked replay and prints its report (full-run file\n"
        "replays only; serial and parallel reports must match).\n"
        "--ring opens a ring archive directory (crash-recovered) and\n"
        "replays the checkpoint interval covering --at <cycle> (or\n"
        "the oldest retained interval), serially and windowed.\n");
    return 2;
}

const char *
modeLabel(const Recording &rec)
{
    if (rec.stratified())
        return "order-only-strat";
    if (rec.mode.mode == ExecMode::kPicoLog)
        return "picolog";
    if (rec.mode.mode == ExecMode::kOrderOnly)
        return "order-only";
    return "order-and-size";
}

bool
modeByName(const std::string &name, ModeConfig &mode, unsigned strat)
{
    if (name == "order-and-size") {
        mode = ModeConfig::orderAndSize();
    } else if (name == "order-only") {
        mode = ModeConfig::orderOnly();
    } else if (name == "order-only-strat") {
        mode = ModeConfig::orderOnly();
        mode.stratifyChunksPerProc = strat;
    } else if (name == "picolog") {
        mode = ModeConfig::picoLog();
    } else {
        return false;
    }
    return true;
}

int
doRecord(const std::string &app, const std::string &mode_name,
         const std::string &path)
{
    const DifferentialJob job = baseJob();
    ModeConfig mode;
    if (!modeByName(mode_name, mode, job.stratifyChunksPerProc)) {
        std::fprintf(stderr, "replay_check: unknown mode \"%s\"\n",
                     mode_name.c_str());
        return usage();
    }

    MachineConfig machine;
    machine.numProcs = job.numProcs;
    try {
        Workload workload(app, job.numProcs, job.workloadSeed,
                          WorkloadScale{job.scalePercent});
        const Recording rec =
            Recorder(mode, machine).record(workload, job.recordEnvSeed);
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "replay_check: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        saveRecording(rec, out);
        std::printf("recorded %s (%s): %zu commits, %llu PI bits, "
                    "%llu CS bits -> %s\n",
                    app.c_str(), mode_name.c_str(),
                    rec.fingerprint.commits.size(),
                    static_cast<unsigned long long>(
                        rec.logSizes().pi.rawBits),
                    static_cast<unsigned long long>(
                        rec.logSizes().cs.rawBits),
                    path.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "replay_check: record failed: %s\n",
                     e.what());
        return 2;
    }
    return 0;
}

/**
 * Maps a --from/--to GCC to its checkpoint index; prints the seekable
 * GCCs and returns nullopt when @p gcc is not one of them (interval
 * replay can only start/stop where a SystemCheckpoint was taken).
 */
std::optional<std::size_t>
checkpointIndexFor(const std::vector<std::uint64_t> &gccs,
                   std::uint64_t gcc, const char *flag)
{
    for (std::size_t i = 0; i < gccs.size(); ++i)
        if (gccs[i] == gcc)
            return i;
    std::fprintf(stderr,
                 "replay_check: %s %llu is not a checkpoint GCC; "
                 "seekable GCCs:",
                 flag, static_cast<unsigned long long>(gcc));
    for (const std::uint64_t g : gccs)
        std::fprintf(stderr, " %llu",
                     static_cast<unsigned long long>(g));
    std::fprintf(stderr, "\n");
    return std::nullopt;
}

int
doListCheckpoints(const std::string &path)
{
    try {
        if (RingArchiveReader::looksLikeRing(path)) {
            const RingArchiveReader ring =
                RingArchiveReader::open(path, archive_io);
            const RingRecoveryInfo &rc = ring.recovery();
            std::printf("%s: ring, %s, %u procs, %zu segment(s), "
                        "%zu checkpoint(s), %s%s\n",
                        path.c_str(), ring.appName().c_str(),
                        ring.machine().numProcs,
                        ring.segments().size(),
                        ring.checkpointCount(),
                        rc.clean ? "cleanly closed" : "salvaged",
                        rc.usedIndex ? ", index intact" : "");
            for (const std::string &note : rc.notes)
                std::printf("  salvage: %s\n", note.c_str());
            const std::vector<std::uint64_t> gccs =
                ring.checkpointGccs();
            for (std::size_t i = 0; i < gccs.size(); ++i)
                std::printf("  checkpoint %zu: gcc %llu\n", i,
                            static_cast<unsigned long long>(gccs[i]));
            return 0;
        }
        if (ArchiveReader::fileLooksLikeArchive(path)) {
            const ArchiveReader reader = ArchiveReader::fromFile(path, archive_io);
            std::printf("%s: archive, %s, %u procs, %zu segment(s), "
                        "%zu checkpoint(s)\n",
                        path.c_str(), reader.appName().c_str(),
                        reader.machine().numProcs,
                        reader.segments().size(),
                        reader.checkpointCount());
            for (std::size_t i = 0; i < reader.segments().size();
                 ++i) {
                const ArchiveSegmentInfo &seg = reader.segments()[i];
                std::printf("  segment %zu: gcc <= %llu, %llu -> %llu "
                            "bytes%s\n",
                            i,
                            static_cast<unsigned long long>(
                                seg.endGcc),
                            static_cast<unsigned long long>(
                                seg.rawBytes),
                            static_cast<unsigned long long>(
                                seg.compBytes),
                            seg.hasCheckpoint
                                ? ", checkpoint at end"
                                : " (tail)");
            }
            return 0;
        }
        const Recording rec = loadRecordingFile(path);
        std::printf("%s: recording, %s (%s), %u procs, "
                    "%zu checkpoint(s)\n",
                    path.c_str(), rec.appName.c_str(), modeLabel(rec),
                    rec.machine.numProcs, rec.checkpoints.size());
        for (std::size_t i = 0; i < rec.checkpoints.size(); ++i)
            std::printf("  checkpoint %zu: gcc %llu\n", i,
                        static_cast<unsigned long long>(
                            rec.checkpoints[i].gcc));
        return 0;
    } catch (const RecordingFormatError &e) {
        std::printf("%s: rejected at load\n  %s\n", path.c_str(),
                    e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "replay_check: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
    }
}

/**
 * Interval check (--from/--to). For an archive, only the covering
 * segments are decoded (ArchiveReader::readInterval); for a plain
 * recording the interval options select the checkpoint slice of the
 * already-loaded log. Classification compares against the expected
 * interval fingerprint, so exit status 0 means the interval replay
 * reproduced the recorded execution over exactly I(from, to).
 */
int
doCheckInterval(const std::string &path, std::uint64_t from_gcc,
                std::optional<std::uint64_t> to_gcc)
{
    Recording rec;
    ReplayCheckOptions opts;
    // Deliberately forwarded: checkedReplay rejects the combination
    // with a structured report (the detector needs the full history).
    opts.detectRaces = detect_races;
    try {
        if (ArchiveReader::fileLooksLikeArchive(path)) {
            const ArchiveReader reader = ArchiveReader::fromFile(path, archive_io);
            const std::vector<std::uint64_t> gccs =
                reader.checkpointGccs();
            const auto from =
                checkpointIndexFor(gccs, from_gcc, "--from");
            if (!from)
                return 2;
            std::optional<std::size_t> to;
            if (to_gcc) {
                to = checkpointIndexFor(gccs, *to_gcc, "--to");
                if (!to)
                    return 2;
            }
            rec = reader.readInterval(*from, to ? *to
                                                : ArchiveReader::kToEnd);
            // readInterval puts the start checkpoint at index 0 and
            // the stop (when bounded) at index 1.
            opts.startCheckpoint = 0;
            opts.stopCheckpoint =
                to ? 1 : ReplayCheckOptions::kFullRun;
        } else {
            rec = loadRecordingFile(path);
            std::vector<std::uint64_t> gccs;
            for (const SystemCheckpoint &c : rec.checkpoints)
                gccs.push_back(c.gcc);
            const auto from =
                checkpointIndexFor(gccs, from_gcc, "--from");
            if (!from)
                return 2;
            opts.startCheckpoint = *from;
            if (to_gcc) {
                const auto to =
                    checkpointIndexFor(gccs, *to_gcc, "--to");
                if (!to)
                    return 2;
                opts.stopCheckpoint = *to;
            }
        }
    } catch (const RecordingFormatError &e) {
        std::printf("%s: rejected at load\n  %s\n", path.c_str(),
                    e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "replay_check: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
    }

    const ReplayCheckResult check = checkedReplay(rec, opts);
    if (!check.ok) {
        std::printf("%s: %s\n%s\n", path.c_str(),
                    divergenceKindName(check.report.kind),
                    check.report.describe().c_str());
        return 1;
    }
    const std::string to_label =
        to_gcc ? std::to_string(*to_gcc) : std::string("end");
    std::printf("%s: interval replay deterministic over I(%llu, %s) "
                "(%s, %s, %u procs, %zu commits replayed)\n",
                path.c_str(),
                static_cast<unsigned long long>(from_gcc),
                to_label.c_str(), rec.appName.c_str(), modeLabel(rec),
                rec.machine.numProcs,
                check.outcome.fingerprint.commits.size());
    return 0;
}

/**
 * Time travel (--ring [--at <cycle>]). Opens the ring directory —
 * running crash recovery if the index is stale or the tail is torn —
 * seeks to the newest retained checkpoint at or before @p at (oldest
 * retained when absent) and replays forward to the next checkpoint
 * (to the recording's end when the seek lands on the final checkpoint
 * of a cleanly closed ring). The interval replay runs twice, with a
 * serial and a W=8 windowed replay arbiter, and both fingerprints
 * must reproduce the recorded execution.
 */
int
doCheckRing(const std::string &path,
            std::optional<std::uint64_t> at_cycle)
{
    Recording view;
    ReplayCheckOptions opts;
    // Deliberately forwarded: interval replays reject the detector
    // with a structured report, exactly like --from does.
    opts.detectRaces = detect_races;
    std::uint64_t from_gcc = 0;
    std::string to_label = "end";
    try {
        const RingArchiveReader ring =
            RingArchiveReader::open(path, archive_io);
        const RingRecoveryInfo &rc = ring.recovery();
        std::printf("%s: ring %s, %zu segment(s) retained, "
                    "window (%llu, %llu]\n",
                    path.c_str(),
                    rc.clean ? "cleanly closed" : "salvaged",
                    ring.segments().size(),
                    static_cast<unsigned long long>(ring.startGcc()),
                    static_cast<unsigned long long>(ring.endGcc()));
        for (const std::string &note : rc.notes)
            std::printf("  salvage: %s\n", note.c_str());

        if (ring.checkpointCount() == 0) {
            // A clean checkpoint-free ring is one whole-run segment.
            view = ring.readAll();
        } else {
            const std::size_t from =
                at_cycle ? ring.newestCheckpointAtOrBefore(*at_cycle)
                         : 0;
            const std::vector<std::uint64_t> gccs =
                ring.checkpointGccs();
            std::size_t to = RingArchiveReader::kToEnd;
            if (from + 1 < gccs.size()) {
                to = from + 1;
                to_label = std::to_string(gccs[to]);
            } else if (!rc.clean) {
                // The newest retained checkpoint on a crashed ring is
                // the end of the salvaged window; nothing recorded
                // beyond it survived to replay into.
                std::printf("%s: seek landed on the newest retained "
                            "checkpoint (gcc %llu) of a crashed ring; "
                            "no interval to replay forward\n",
                            path.c_str(),
                            static_cast<unsigned long long>(
                                gccs[from]));
                return 1;
            }
            view = ring.readInterval(from, to);
            from_gcc = gccs[from];
            // readInterval puts the start checkpoint at index 0 and
            // the stop (when bounded) at index 1.
            opts.startCheckpoint = 0;
            opts.stopCheckpoint = to != RingArchiveReader::kToEnd
                                      ? 1
                                      : ReplayCheckOptions::kFullRun;
        }
    } catch (const RecordingFormatError &e) {
        std::printf("%s: rejected at load\n  %s\n", path.c_str(),
                    e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "replay_check: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
    }

    const ReplayCheckResult serial = checkedReplay(view, opts);
    if (!serial.ok) {
        std::printf("%s: %s\n%s\n", path.c_str(),
                    divergenceKindName(serial.report.kind),
                    serial.report.describe().c_str());
        return 1;
    }
    ReplayCheckOptions wopts = opts;
    wopts.replayWindow = 8;
    const ReplayCheckResult windowed = checkedReplay(view, wopts);
    const bool agree =
        windowed.replayRan
        && (view.stratified()
                ? windowed.outcome.fingerprint.matchesPerProc(
                      serial.outcome.fingerprint)
                : windowed.outcome.fingerprint.matchesExact(
                      serial.outcome.fingerprint));
    if (!windowed.ok || !agree) {
        std::printf("%s: serial replay deterministic but windowed "
                    "(W=8) replay %s\n%s\n",
                    path.c_str(),
                    windowed.ok ? "differs from serial" : "diverged",
                    windowed.report.describe().c_str());
        return 1;
    }
    std::printf("%s: time-travel replay deterministic over "
                "I(%llu, %s), serial == windowed (%s, %s, %u procs, "
                "%zu commits replayed)\n",
                path.c_str(),
                static_cast<unsigned long long>(from_gcc),
                to_label.c_str(), view.appName.c_str(),
                modeLabel(view), view.machine.numProcs,
                serial.outcome.fingerprint.commits.size());
    return 0;
}

int
doCheckFile(const std::string &path, unsigned jobs)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "replay_check: cannot read %s\n",
                     path.c_str());
        return 2;
    }

    Recording rec;
    const bool is_archive = ArchiveReader::fileLooksLikeArchive(path);
    try {
        if (is_archive)
            rec = ArchiveReader::fromFile(path, archive_io).readAll();
        else
            rec = loadRecording(in);
    } catch (const RecordingFormatError &e) {
        std::printf("%s: rejected at load\n  %s\n", path.c_str(),
                    e.what());
        return 1;
    }

    ReplayCheckOptions copts;
    copts.detectRaces = detect_races;
    const ReplayCheckResult check = checkedReplay(rec, copts);
    if (!check.ok) {
        std::printf("%s: %s\n%s\n", path.c_str(),
                    divergenceKindName(check.report.kind),
                    check.report.describe().c_str());
        return 1;
    }

    // Serial replay reproduced the recording; cross-check the
    // chunk-parallel replayer against it.
    ParallelReplayOptions popts;
    popts.jobs = jobs;
    const ReplayCheckResult par =
        checkedParallelReplay(rec, popts, copts);
    const bool par_matches_serial =
        par.replayRan
        && (rec.stratified()
                ? par.outcome.fingerprint.matchesPerProc(
                      check.outcome.fingerprint)
                : par.outcome.fingerprint.matchesExact(
                      check.outcome.fingerprint));
    if (!par.ok || !par_matches_serial) {
        std::printf("%s: serial replay deterministic but "
                    "chunk-parallel replay %s\n%s\n",
                    path.c_str(),
                    par.ok ? "differs from serial" : "diverged",
                    par.report.describe().c_str());
        return 1;
    }

    if (detect_races) {
        // The race report is a pure function of the recording; the
        // serial engine and the chunk-parallel replayer must agree
        // byte-for-byte or the plugin re-sequencing is broken.
        const std::string serial_report = check.races.describe();
        const std::string parallel_report = par.races.describe();
        if (serial_report != parallel_report) {
            std::printf("%s: race reports differ between serial and "
                        "chunk-parallel replay\n--- serial ---\n%s"
                        "--- parallel ---\n%s",
                        path.c_str(), serial_report.c_str(),
                        parallel_report.c_str());
            return 1;
        }
        std::printf("%s", serial_report.c_str());
    }

    std::printf("%s: replay deterministic, serial == parallel "
                "(%s%s, %s, %u procs, %zu commits)\n",
                path.c_str(), is_archive ? "archive, " : "",
                rec.appName.c_str(), modeLabel(rec),
                rec.machine.numProcs,
                rec.fingerprint.commits.size());
    return 0;
}

int
doDifferential(const std::string &what)
{
    const DifferentialChecker checker;
    const DifferentialJob base = baseJob();

    std::vector<DifferentialResult> results;
    if (what == "all") {
        results = checker.checkAllApps(base);
    } else {
        DifferentialJob job = base;
        job.app = what;
        results.push_back(checker.check(job));
    }

    bool ok = true;
    for (const DifferentialResult &r : results) {
        std::puts(r.describe().c_str());
        ok = ok && r.ok();
    }
    std::printf("differential: %zu job(s) %s\n", results.size(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

int
doFaultSweep(const std::string &app, unsigned per_kind)
{
    const DifferentialJob job = baseJob();
    MachineConfig machine;
    machine.numProcs = job.numProcs;

    bool ok = true;
    for (const auto &[name, mode] :
         {std::pair<const char *, ModeConfig>{"order-and-size",
                                              ModeConfig::orderAndSize()},
          {"order-only", ModeConfig::orderOnly()},
          {"picolog", ModeConfig::picoLog()}}) {
        try {
            Workload workload(app, job.numProcs, job.workloadSeed,
                              WorkloadScale{job.scalePercent});
            const Recording rec = Recorder(mode, machine)
                                      .record(workload,
                                              job.recordEnvSeed);
            const FaultSweepSummary sweep =
                runFaultSweep(rec, per_kind, job.workloadSeed);
            std::printf("%s %s: %s\n", app.c_str(), name,
                        sweep.describe().c_str());
            ok = ok && sweep.ok();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "replay_check: %s %s: %s\n",
                         app.c_str(), name, e.what());
            return 2;
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    // --jobs <n> may appear anywhere; it overrides DELOREAN_JOBS for
    // every worker pool the run constructs (campaignJobs()).
    unsigned jobs = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--jobs")
            continue;
        if (i + 1 >= args.size())
            return usage();
        char *end = nullptr;
        const unsigned long v =
            std::strtoul(args[i + 1].c_str(), &end, 10);
        if (end == args[i + 1].c_str() || *end != '\0' || v == 0)
            return usage();
        jobs = static_cast<unsigned>(v);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        break;
    }
    if (jobs)
        setenv("DELOREAN_JOBS", std::to_string(jobs).c_str(), 1);

    // Archive data-plane knobs, also position-independent.
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--io-threads")
            continue;
        if (i + 1 >= args.size())
            return usage();
        char *end = nullptr;
        const unsigned long v =
            std::strtoul(args[i + 1].c_str(), &end, 10);
        if (end == args[i + 1].c_str() || *end != '\0' || v == 0)
            return usage();
        archive_io.ioThreads = static_cast<unsigned>(v);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        break;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--no-mmap")
            continue;
        archive_io.mmapReads = false;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
        break;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--detect-races")
            continue;
        detect_races = true;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
        break;
    }

    // --from <gcc> [--to <gcc>]: checkpoint-bounded interval replay.
    std::optional<std::uint64_t> from_gcc;
    std::optional<std::uint64_t> to_gcc;
    for (const char *flag : {"--from", "--to"}) {
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i] != flag)
                continue;
            if (i + 1 >= args.size())
                return usage();
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(args[i + 1].c_str(), &end, 10);
            if (end == args[i + 1].c_str() || *end != '\0')
                return usage();
            (std::strcmp(flag, "--from") == 0 ? from_gcc : to_gcc) = v;
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i)
                           + 2);
            break;
        }
    }
    if (to_gcc && !from_gcc)
        return usage();

    // --at <cycle>: the --ring time-travel seek target.
    std::optional<std::uint64_t> at_cycle;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--at")
            continue;
        if (i + 1 >= args.size())
            return usage();
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(args[i + 1].c_str(), &end, 10);
        if (end == args[i + 1].c_str() || *end != '\0')
            return usage();
        at_cycle = v;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        break;
    }

    if (args.empty())
        return usage();

    if (args[0] == "--ring")
        return args.size() == 2 && !from_gcc
                   ? doCheckRing(args[1], at_cycle)
                   : usage();
    if (at_cycle)
        return usage();

    if (args[0] == "--list-checkpoints")
        return args.size() == 2 ? doListCheckpoints(args[1]) : usage();
    if (from_gcc) {
        if (args.size() != 1 || args[0][0] == '-')
            return usage();
        return doCheckInterval(args[0], *from_gcc, to_gcc);
    }
    if (args[0] == "--record")
        return args.size() == 4 ? doRecord(args[1], args[2], args[3])
                                : usage();
    if (args[0] == "--differential")
        return doDifferential(args.size() > 1 ? args[1] : "all");
    if (args[0] == "--fault-sweep") {
        if (args.size() < 2 || args.size() > 3)
            return usage();
        const unsigned per_kind =
            args.size() == 3
                ? static_cast<unsigned>(std::strtoul(
                      args[2].c_str(), nullptr, 10))
                : 40;
        if (per_kind == 0)
            return usage();
        return doFaultSweep(args[1], per_kind);
    }
    if (args.size() == 1 && args[0][0] != '-')
        return doCheckFile(args[0], jobs);
    return usage();
}
