/**
 * @file
 * replay_check: command-line front end of the validation subsystem.
 *
 *   replay_check --record <app> <mode> <file>   record an execution
 *                                               and serialize it
 *   replay_check <file>                         load + checked replay,
 *                                               print a DivergenceReport
 *   replay_check --differential [<app>|all]     cross-mode differential
 *                                               check (default: all)
 *   replay_check --fault-sweep <app> [<n>]      n mutants per mutation
 *                                               kind per mode (def. 40)
 *
 * Modes: order-and-size | order-only | order-only-strat | picolog.
 * Exit status 0 = validated, 1 = divergence/violation found,
 * 2 = usage or I/O error. A corrupt input file is NOT an I/O error:
 * it exits 1 with the loader's structured rejection, which is the
 * behavior the fault injector certifies.
 *
 * `--jobs <n>` (anywhere on the command line) sets the worker count
 * for every parallel path — differential fan-out and chunk-parallel
 * replay — overriding DELOREAN_JOBS. Checked file replays always
 * cross-check the chunk-parallel replayer against the serial engine.
 *
 * Knobs (environment): DELOREAN_JOBS worker count, DELOREAN_SCALE
 * workload scale percent, DELOREAN_NUM_PROCS processor count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

DifferentialJob
baseJob()
{
    DifferentialJob job;
    job.numProcs = envUnsigned("DELOREAN_NUM_PROCS", job.numProcs);
    job.scalePercent = envUnsigned("DELOREAN_SCALE", job.scalePercent);
    return job;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: replay_check [--jobs <n>] <file>\n"
        "       replay_check --record <app> <mode> <file>\n"
        "       replay_check [--jobs <n>] --differential [<app>|all]\n"
        "       replay_check --fault-sweep <app> [<mutants-per-kind>]\n"
        "modes: order-and-size order-only order-only-strat picolog\n");
    return 2;
}

bool
modeByName(const std::string &name, ModeConfig &mode, unsigned strat)
{
    if (name == "order-and-size") {
        mode = ModeConfig::orderAndSize();
    } else if (name == "order-only") {
        mode = ModeConfig::orderOnly();
    } else if (name == "order-only-strat") {
        mode = ModeConfig::orderOnly();
        mode.stratifyChunksPerProc = strat;
    } else if (name == "picolog") {
        mode = ModeConfig::picoLog();
    } else {
        return false;
    }
    return true;
}

int
doRecord(const std::string &app, const std::string &mode_name,
         const std::string &path)
{
    const DifferentialJob job = baseJob();
    ModeConfig mode;
    if (!modeByName(mode_name, mode, job.stratifyChunksPerProc)) {
        std::fprintf(stderr, "replay_check: unknown mode \"%s\"\n",
                     mode_name.c_str());
        return usage();
    }

    MachineConfig machine;
    machine.numProcs = job.numProcs;
    try {
        Workload workload(app, job.numProcs, job.workloadSeed,
                          WorkloadScale{job.scalePercent});
        const Recording rec =
            Recorder(mode, machine).record(workload, job.recordEnvSeed);
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "replay_check: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        saveRecording(rec, out);
        std::printf("recorded %s (%s): %zu commits, %llu PI bits, "
                    "%llu CS bits -> %s\n",
                    app.c_str(), mode_name.c_str(),
                    rec.fingerprint.commits.size(),
                    static_cast<unsigned long long>(
                        rec.logSizes().pi.rawBits),
                    static_cast<unsigned long long>(
                        rec.logSizes().cs.rawBits),
                    path.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "replay_check: record failed: %s\n",
                     e.what());
        return 2;
    }
    return 0;
}

int
doCheckFile(const std::string &path, unsigned jobs)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "replay_check: cannot read %s\n",
                     path.c_str());
        return 2;
    }

    Recording rec;
    try {
        rec = loadRecording(in);
    } catch (const RecordingFormatError &e) {
        std::printf("%s: rejected at load\n  %s\n", path.c_str(),
                    e.what());
        return 1;
    }

    const ReplayCheckResult check = checkedReplay(rec);
    if (!check.ok) {
        std::printf("%s: %s\n%s\n", path.c_str(),
                    divergenceKindName(check.report.kind),
                    check.report.describe().c_str());
        return 1;
    }

    // Serial replay reproduced the recording; cross-check the
    // chunk-parallel replayer against it.
    ParallelReplayOptions popts;
    popts.jobs = jobs;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    const bool par_matches_serial =
        par.replayRan
        && (rec.stratified()
                ? par.outcome.fingerprint.matchesPerProc(
                      check.outcome.fingerprint)
                : par.outcome.fingerprint.matchesExact(
                      check.outcome.fingerprint));
    if (!par.ok || !par_matches_serial) {
        std::printf("%s: serial replay deterministic but "
                    "chunk-parallel replay %s\n%s\n",
                    path.c_str(),
                    par.ok ? "differs from serial" : "diverged",
                    par.report.describe().c_str());
        return 1;
    }

    std::printf("%s: replay deterministic, serial == parallel "
                "(%s, %s, %u procs, %zu commits)\n",
                path.c_str(), rec.appName.c_str(),
                rec.stratified()
                    ? "order-only-strat"
                    : (rec.mode.mode == ExecMode::kPicoLog
                           ? "picolog"
                           : (rec.mode.mode == ExecMode::kOrderOnly
                                  ? "order-only"
                                  : "order-and-size")),
                rec.machine.numProcs,
                rec.fingerprint.commits.size());
    return 0;
}

int
doDifferential(const std::string &what)
{
    const DifferentialChecker checker;
    const DifferentialJob base = baseJob();

    std::vector<DifferentialResult> results;
    if (what == "all") {
        results = checker.checkAllApps(base);
    } else {
        DifferentialJob job = base;
        job.app = what;
        results.push_back(checker.check(job));
    }

    bool ok = true;
    for (const DifferentialResult &r : results) {
        std::puts(r.describe().c_str());
        ok = ok && r.ok();
    }
    std::printf("differential: %zu job(s) %s\n", results.size(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

int
doFaultSweep(const std::string &app, unsigned per_kind)
{
    const DifferentialJob job = baseJob();
    MachineConfig machine;
    machine.numProcs = job.numProcs;

    bool ok = true;
    for (const auto &[name, mode] :
         {std::pair<const char *, ModeConfig>{"order-and-size",
                                              ModeConfig::orderAndSize()},
          {"order-only", ModeConfig::orderOnly()},
          {"picolog", ModeConfig::picoLog()}}) {
        try {
            Workload workload(app, job.numProcs, job.workloadSeed,
                              WorkloadScale{job.scalePercent});
            const Recording rec = Recorder(mode, machine)
                                      .record(workload,
                                              job.recordEnvSeed);
            const FaultSweepSummary sweep =
                runFaultSweep(rec, per_kind, job.workloadSeed);
            std::printf("%s %s: %s\n", app.c_str(), name,
                        sweep.describe().c_str());
            ok = ok && sweep.ok();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "replay_check: %s %s: %s\n",
                         app.c_str(), name, e.what());
            return 2;
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    // --jobs <n> may appear anywhere; it overrides DELOREAN_JOBS for
    // every worker pool the run constructs (campaignJobs()).
    unsigned jobs = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--jobs")
            continue;
        if (i + 1 >= args.size())
            return usage();
        char *end = nullptr;
        const unsigned long v =
            std::strtoul(args[i + 1].c_str(), &end, 10);
        if (end == args[i + 1].c_str() || *end != '\0' || v == 0)
            return usage();
        jobs = static_cast<unsigned>(v);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        break;
    }
    if (jobs)
        setenv("DELOREAN_JOBS", std::to_string(jobs).c_str(), 1);

    if (args.empty())
        return usage();

    if (args[0] == "--record")
        return args.size() == 4 ? doRecord(args[1], args[2], args[3])
                                : usage();
    if (args[0] == "--differential")
        return doDifferential(args.size() > 1 ? args[1] : "all");
    if (args[0] == "--fault-sweep") {
        if (args.size() < 2 || args.size() > 3)
            return usage();
        const unsigned per_kind =
            args.size() == 3
                ? static_cast<unsigned>(std::strtoul(
                      args[2].c_str(), nullptr, 10))
                : 40;
        if (per_kind == 0)
            return usage();
        return doFaultSweep(args[1], per_kind);
    }
    if (args.size() == 1 && args[0][0] != '-')
        return doCheckFile(args[0], jobs);
    return usage();
}
