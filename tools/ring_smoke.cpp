/**
 * @file
 * CI smoke check for the always-on ring archive; wired into ctest as
 * `ring_smoke` (tier-1, DELOREAN_JOBS=4, runs under the tsan preset).
 * In a few seconds, for a flat and a stratified mode, it runs the
 * whole always-on loop the exhaustive tests cover piecemeal:
 *
 *   record while streaming into a ring under a budget tight enough
 *   to evict most of the history -> assert the replay-start-lag
 *   contract held -> kill the recorder mid-segment (the fault
 *   injector's torn-tail mutation) -> recover the directory ->
 *   time-travel seek into the salvaged window -> bounded replay,
 *   serial and windowed -> views byte-identical to an uncorrupted
 *   batch archive of the same run.
 *
 * The exhaustive versions live in tests/test_ring.cpp and the
 * `fuzz`-labeled ring mutation sweep in tests/test_archive_faults.cpp.
 */

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"
#include "trace/workload.hpp"
#include "validate/fault_injector.hpp"
#include "validate/replay_check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace delorean;

namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr std::uint64_t kCheckpointPeriod = 10;

std::string
saved(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

bool
fail(const char *name, const char *what)
{
    std::fprintf(stderr, "ring_smoke: %s: %s\n", name, what);
    return false;
}

bool
smokeMode(const char *name, const ModeConfig &mode,
          const std::string &scratch)
{
    MachineConfig machine;
    machine.numProcs = 4;
    Workload workload("ocean", machine.numProcs, kSeed,
                      WorkloadScale::tiny());
    const Recorder recorder(mode, machine);

    // Size the budget off an unbounded probe so "tight" means the
    // same thing for every mode: room for about six segments.
    const Recording rec = recorder.record(workload, /*env_seed=*/1,
                                          true, {}, kCheckpointPeriod);
    if (rec.checkpoints.size() < 8)
        return fail(name, "record took too few checkpoints");
    const std::string probe_dir = scratch + "/probe";
    const RingWriterStats probe =
        writeRing(rec, probe_dir, RingOptions{});
    std::filesystem::remove_all(probe_dir);

    RingOptions opts;
    opts.checkpointPeriod = kCheckpointPeriod;
    opts.budgetBytes = std::max<std::uint64_t>(
        1, 6 * (probe.liveBytes / probe.segmentsCut));

    // Always-on recording: the same run again, streamed through the
    // checkpoint hook into the evicting ring.
    const std::string dir = scratch + "/ring";
    RingArchiveWriter writer(dir, opts);
    const Recording streamed = recorder.record(
        workload, /*env_seed=*/1, true, {}, kCheckpointPeriod,
        [&writer](const Recording &r) { writer.onCheckpoint(r); });
    writer.close(streamed);
    if (saved(streamed) != saved(rec))
        return fail(name, "streamed record was not deterministic");

    const RingWriterStats stats = writer.stats();
    if (stats.segmentsEvicted == 0)
        return fail(name, "tight budget evicted nothing");
    if (stats.worstStartLag > opts.resolvedLag())
        return fail(name, "replay-start lag contract broken");

    // Kill mid-segment: the injector's torn-tail crash shape.
    mutateRing(dir, RingMutationKind::kTornTail, /*seed=*/7);

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    if (ring.recovery().clean)
        return fail(name, "torn tail still read as a clean close");
    if (ring.recovery().droppedSegments == 0)
        return fail(name, "recovery dropped no segment");
    if (ring.checkpointCount() < 2)
        return fail(name, "salvage kept too little to replay");

    // Time-travel: seek a cycle between the two newest retained
    // checkpoints; the bounded interval under it must be decodable.
    const std::vector<std::uint64_t> gccs = ring.checkpointGccs();
    const std::size_t from =
        ring.newestCheckpointAtOrBefore(gccs[gccs.size() - 2] + 1);
    if (from != gccs.size() - 2)
        return fail(name, "seek resolved to the wrong checkpoint");
    Recording view = ring.readInterval(from, from + 1);

    // Byte-identity with an uncorrupted batch archive over the same
    // GCC interval. A crashed recorder never knew the final stats,
    // so the salvaged view carries zeroed finals; patch those from
    // the batch view, everything else must match exactly.
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string blob = std::move(out).str();
    const ArchiveReader batch = ArchiveReader::fromBytes(
        std::vector<std::uint8_t>(blob.begin(), blob.end()));
    std::size_t off = 0;
    while (off < batch.checkpointCount()
           && batch.checkpointAt(off).gcc != gccs[from])
        ++off;
    if (off == batch.checkpointCount())
        return fail(name, "salvaged checkpoint unknown to archive");
    const Recording want = batch.readInterval(off, off + 1);
    if (view.fingerprint.finalMemHash != 0)
        return fail(name, "salvaged view fabricated final stats");
    view.fingerprint.perProcAcc = want.fingerprint.perProcAcc;
    view.fingerprint.perProcRetired = want.fingerprint.perProcRetired;
    view.fingerprint.finalMemHash = want.fingerprint.finalMemHash;
    if (saved(view) != saved(want))
        return fail(name, "ring view differs from batch archive");

    // Replay forward from the seek point, serial and windowed: both
    // must reproduce the uncorrupted recording's fingerprint.
    ReplayCheckOptions ropts;
    ropts.startCheckpoint = 0;
    ropts.stopCheckpoint = 1;
    ropts.perturb.enabled = true;
    ropts.perturb.seed = 5;
    for (const unsigned window : {1u, 8u}) {
        ropts.replayWindow = window;
        const ReplayCheckResult res = checkedReplay(view, ropts);
        if (!res.ok)
            return fail(name, window == 1
                                  ? "serial time-travel replay "
                                    "diverged"
                                  : "windowed time-travel replay "
                                    "diverged");
    }

    std::printf("ring_smoke: %s: %llu evicted, %zu dropped, "
                "time-travel replay from gcc %llu matched\n",
                name,
                static_cast<unsigned long long>(stats.segmentsEvicted),
                ring.recovery().droppedSegments,
                static_cast<unsigned long long>(gccs[from]));
    return true;
}

} // namespace

int
main()
{
    std::string scratch = "ring_smoke.tmp";
#if defined(__unix__) || defined(__APPLE__)
    scratch = "/tmp/ring_smoke." + std::to_string(::getpid());
#endif

    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    const std::vector<std::pair<const char *, ModeConfig>> modes = {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only-strat", strat},
    };

    bool ok = true;
    for (const auto &[name, mode] : modes) {
        const std::string dir = scratch + "/" + name;
        std::filesystem::create_directories(dir);
        ok = smokeMode(name, mode, dir) && ok;
    }
    std::filesystem::remove_all(scratch);
    if (!ok) {
        std::fprintf(stderr, "ring_smoke: FAILED\n");
        return 1;
    }
    std::printf("ring_smoke: evicting record, torn-tail recovery and "
                "time-travel replay passed\n");
    return 0;
}
