/**
 * @file
 * delorean_serve: the streaming record/replay service CLI.
 *
 * Reads a job stream (one session per line, see parseServeJob) from a
 * file or stdin, multiplexes the sessions over a worker pool with
 * content-addressed recording dedupe and incremental archive
 * emission, and prints the deterministic JSON ledger on stdout.
 * Progress events (one JSON line per completed session) go to stderr.
 *
 *   delorean_serve --archive-dir /tmp/dla --jobs 4 jobs.txt
 *   echo "record app=radix scale=20" | delorean_serve --verify
 *   delorean_serve --ring-dir /tmp/rings --ring-budget 1048576 jobs.txt
 *
 * The stdout ledger is byte-identical at any --jobs; add
 * --throughput to append wall-clock figures (sessions/sec, archive
 * MB/sec) for benchmarking.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "serve/service.hpp"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] [jobfile]\n"
        "  --jobs N              worker-pool width (default: "
        "DELOREAN_JOBS or host cores)\n"
        "  --max-inflight N      admission bound on concurrent "
        "sessions (default: pool width)\n"
        "  --archive-dir DIR     stream .dla archives into DIR "
        "(default: off)\n"
        "  --ring-dir DIR        stream always-on ring archives into "
        "DIR (default: off)\n"
        "  --ring-budget BYTES   per-recording ring disk budget "
        "(default: 4 MiB)\n"
        "  --ring-lag N          ring replay-start lag bound in "
        "commits (default: 2x period)\n"
        "  --checkpoint-period N checkpoint/segment period in global "
        "commits (default: 50)\n"
        "  --io-threads N        archive codec worker count "
        "(default: DELOREAN_JOBS)\n"
        "  --verify              cross-check streamed archives "
        "against the batch writer\n"
        "  --throughput          append wall-clock figures to the "
        "ledger\n"
        "  --quiet               suppress per-session progress on "
        "stderr\n"
        "jobs come from jobfile (or stdin), one per line:\n"
        "  record   app=radix seed=7 scale=30 mode=ordersize env=1\n"
        "  replay   app=radix seed=7 scale=30 mode=ordersize renv=5 "
        "window=2\n"
        "  validate app=fft mode=stratified strat=4 renv=9\n",
        argv0);
    return 2;
}

bool
parseUnsigned(const char *s, unsigned &out)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0')
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    delorean::ServeOptions opts;
    opts.progress = &std::cerr;
    bool throughput = false;
    unsigned checkpoint_period = 50;
    const char *job_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg);
                std::exit(2);
            }
            return argv[++i];
        };
        unsigned n = 0;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (!parseUnsigned(value(), n))
                return usage(argv[0]);
            opts.jobs = n;
        } else if (std::strcmp(arg, "--max-inflight") == 0) {
            if (!parseUnsigned(value(), n))
                return usage(argv[0]);
            opts.maxInflight = n;
        } else if (std::strcmp(arg, "--archive-dir") == 0) {
            opts.archiveDir = value();
        } else if (std::strcmp(arg, "--ring-dir") == 0) {
            opts.ringDir = value();
        } else if (std::strcmp(arg, "--ring-budget") == 0) {
            char *end = nullptr;
            const char *v = value();
            opts.ringBudgetBytes = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || opts.ringBudgetBytes == 0)
                return usage(argv[0]);
        } else if (std::strcmp(arg, "--ring-lag") == 0) {
            char *end = nullptr;
            const char *v = value();
            opts.ringMaxReplayLag = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0')
                return usage(argv[0]);
        } else if (std::strcmp(arg, "--checkpoint-period") == 0) {
            if (!parseUnsigned(value(), n))
                return usage(argv[0]);
            checkpoint_period = n;
        } else if (std::strcmp(arg, "--io-threads") == 0) {
            if (!parseUnsigned(value(), n))
                return usage(argv[0]);
            opts.archiveIo.ioThreads = n;
        } else if (std::strcmp(arg, "--verify") == 0) {
            opts.verifyArchives = true;
        } else if (std::strcmp(arg, "--throughput") == 0) {
            throughput = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.progress = nullptr;
        } else if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg);
            return usage(argv[0]);
        } else if (!job_path) {
            job_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    opts.checkpointPeriod = checkpoint_period;

    std::vector<delorean::ServeJob> jobs;
    try {
        if (job_path) {
            std::ifstream in(job_path);
            if (!in) {
                std::fprintf(stderr, "%s: cannot open %s\n", argv[0],
                             job_path);
                return 1;
            }
            jobs = delorean::parseServeJobs(in);
        } else {
            jobs = delorean::parseServeJobs(std::cin);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    if (jobs.empty()) {
        std::fprintf(stderr, "%s: no jobs\n", argv[0]);
        return 1;
    }

    delorean::ServeService service(opts);
    const delorean::ServeReport report = service.run(jobs);
    std::fputs(report.ledgerJson(throughput).c_str(), stdout);
    return report.okCount() == report.sessions.size() ? 0 : 1;
}
