/**
 * @file
 * CI smoke check for the archive data plane; wired into ctest as
 * `datapath_smoke` (tier-1, runs with DELOREAN_JOBS=4). It certifies
 * the two raw-speed mechanisms — the WorkerPool-parallel segment
 * codec and the zero-copy mmap read path — are invisible in the
 * bytes:
 *
 *   - writeArchive with ioThreads 1, 2 and 4 emits byte-identical
 *     containers,
 *   - fromFile with mmap and --no-mmap reassemble the same recording
 *     (byte-identical under saveRecording) as fromBytes,
 *   - readInterval off both read paths agrees with the serial
 *     decode,
 *   - the hash-chain LZ77 matches the lz77_reference scalar scan on
 *     the archive's own payload bytes.
 *
 * The exhaustive versions live in tests/ (test_store, test_lz77,
 * test_archive_faults); this is the fast end-to-end gate.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "compress/lz77.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "trace/workload.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace delorean;

namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr std::uint64_t kCheckpointPeriod = 20;

std::string
saved(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

bool
fail(const char *what)
{
    std::fprintf(stderr, "datapath_smoke: %s\n", what);
    return false;
}

std::string
archivedWith(const Recording &rec, unsigned io_threads)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out, ArchiveIoOptions{io_threads, true});
    return std::move(out).str();
}

bool
smoke()
{
    MachineConfig machine;
    machine.numProcs = 4;
    Workload workload("radix", machine.numProcs, kSeed,
                      WorkloadScale{10});
    const Recording rec =
        Recorder(ModeConfig::orderAndSize(), machine)
            .record(workload, /*env_seed=*/1, true, {},
                    kCheckpointPeriod);
    if (rec.checkpoints.empty())
        return fail("record took no checkpoints");

    // Writer: the codec worker count must be invisible in the bytes.
    const std::string serial = archivedWith(rec, 1);
    if (archivedWith(rec, 2) != serial
        || archivedWith(rec, 4) != serial)
        return fail("parallel-codec container differs from serial");

    // The production LZ77 must equal the reference scalar scan on the
    // container's own bytes (a corpus with real match structure).
    const std::vector<std::uint8_t> sample(serial.begin(),
                                           serial.end());
    if (Lz77().compress(sample) != lz77_reference::compress(sample))
        return fail("hash-chain LZ77 differs from reference scan");

    // Reader: mmap and buffered file loads against the in-memory
    // parse, all at ioThreads=4.
    const ArchiveIoOptions par{4, true};
    const ArchiveIoOptions buffered{4, false};
    const Recording whole =
        ArchiveReader::fromBytes(sample, par).readAll();
    if (saved(whole) != saved(rec))
        return fail("fromBytes readAll() not byte-identical");

    std::string path = "datapath_smoke.dla";
#if defined(__unix__) || defined(__APPLE__)
    path = "/tmp/datapath_smoke." + std::to_string(::getpid())
           + ".dla";
#endif
    writeArchiveFile(rec, path, par);
    bool ok = true;
    {
        const ArchiveReader mapped =
            ArchiveReader::fromFile(path, par);
        const ArchiveReader buffed =
            ArchiveReader::fromFile(path, buffered);
        if (buffed.usingMmap())
            ok = fail("--no-mmap reader reports a mapping");
        if (MappedFile::supported() && !mapped.usingMmap())
            ok = fail("mmap supported but reader fell back");
        if (ok && saved(mapped.readAll()) != saved(rec))
            ok = fail("mmap readAll() not byte-identical");
        if (ok && saved(buffed.readAll()) != saved(rec))
            ok = fail("buffered readAll() not byte-identical");
        if (ok)
            for (std::size_t i = 0; i < mapped.checkpointCount();
                 ++i)
                if (saved(mapped.readInterval(i))
                    != saved(buffed.readInterval(i))) {
                    ok = fail("interval views differ across read "
                              "paths");
                    break;
                }
    }
    std::remove(path.c_str());
    if (!ok)
        return false;

    std::printf("datapath_smoke: %zu segments byte-identical at "
                "ioThreads {1,2,4}; mmap == buffered == in-memory\n",
                rec.checkpoints.size() + 1);
    return true;
}

} // namespace

int
main()
{
    if (!smoke()) {
        std::fprintf(stderr, "datapath_smoke: FAILED\n");
        return 1;
    }
    std::printf("datapath_smoke: parallel codec and zero-copy reads "
                "are byte-invisible\n");
    return 0;
}
