/**
 * @file
 * CI smoke check: runs one small record/replay campaign twice —
 * serially and across all host cores — and verifies the results are
 * identical. Exercises the full campaign stack (runner, recording
 * cache, report writer) in a few seconds; wired into ctest as
 * `campaign_smoke`.
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/delorean.hpp"
#include "sim/campaign.hpp"

using namespace delorean;

namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr unsigned kScale = 5;

struct Row
{
    std::uint64_t cycles = 0;
    std::uint64_t piBits = 0;
    std::uint64_t csBits = 0;
    bool replayDeterministic = false;
};

std::vector<Row>
runCampaign(unsigned width, RecordingCache &cache)
{
    const std::vector<std::string> apps{"radix", "fft", "lu"};
    const std::vector<ModeConfig> modes{ModeConfig::orderOnly(),
                                        ModeConfig::picoLog()};

    CampaignRunner runner(width);
    std::vector<std::function<Row()>> tasks;
    for (const auto &app : apps) {
        for (const auto &mode : modes) {
            tasks.push_back([&cache, app, mode] {
                RecordJob job;
                job.app = app;
                job.workloadSeed = kSeed;
                job.scalePercent = kScale;
                job.mode = mode;
                const Recording &rec = cache.record(job);

                ReplayPerturbation perturb;
                perturb.enabled = true;
                perturb.seed = 11;
                const ReplayOutcome out =
                    Replayer().replay(rec, /*env_seed=*/5, perturb);

                const LogSizeReport sizes = rec.logSizes();
                Row row;
                row.cycles = rec.stats.totalCycles;
                row.piBits = sizes.pi.rawBits;
                row.csBits = sizes.cs.rawBits;
                row.replayDeterministic = out.deterministicExact;
                return row;
            });
        }
    }
    return runner.map(std::move(tasks));
}

} // namespace

int
main()
{
    RecordingCache serial_cache, wide_cache;
    const std::vector<Row> serial = runCampaign(1, serial_cache);
    const std::vector<Row> wide = runCampaign(campaignJobs(), wide_cache);

    bool ok = serial.size() == wide.size();
    for (std::size_t i = 0; ok && i < serial.size(); ++i) {
        ok = serial[i].cycles == wide[i].cycles
             && serial[i].piBits == wide[i].piBits
             && serial[i].csBits == wide[i].csBits
             && serial[i].replayDeterministic
             && wide[i].replayDeterministic;
    }
    ok = ok && serial_cache.misses() == wide_cache.misses()
         && serial_cache.hits() == wide_cache.hits();

    if (!ok) {
        std::fprintf(stderr,
                     "campaign_smoke: serial and parallel campaigns "
                     "disagree\n");
        return 1;
    }
    std::printf("campaign_smoke: %zu jobs identical at 1 and %u "
                "workers, all replays deterministic\n",
                serial.size(), campaignJobs());
    return 0;
}
