/**
 * @file
 * delorean_sim — command-line driver for the simulator.
 *
 * Usage:
 *   delorean_sim record  <app> [options] -o rec.bin
 *   delorean_sim replay  rec.bin [options]
 *   delorean_sim inspect rec.bin
 *   delorean_sim compare <app> [options]        # RC vs SC vs modes
 *
 * Options:
 *   --mode order_size|order_only|picolog   (default order_only)
 *   --procs N        processor count        (default 8)
 *   --chunk N        standard chunk size    (default per mode)
 *   --scale P        iterations percent     (default 50)
 *   --seed S         workload seed          (default 1)
 *   --env S          environment seed       (default 1)
 *   --stratify N     chunks/proc/stratum    (default off)
 *   --perturb        enable replay perturbation
 *   --checkpoint-period N   system checkpoint every N global commits
 *   --archive-out FILE      write a segmented archive (.dla) too;
 *                           implies --checkpoint-period 50 if unset
 *   --ring-out DIR          stream into a ring archive directory while
 *                           recording (always-on recorder); implies
 *                           --checkpoint-period 50 if unset
 *   --ring-budget BYTES     ring disk budget (default 4 MiB)
 *   --ring-lag T            replay-start lag bound in commits; must be
 *                           >= 2x the checkpoint period (default 2x)
 *   --io-threads N   archive segment codec pool size
 *                    (default: DELOREAN_JOBS, else hw concurrency)
 *   --no-mmap        buffered archive reads instead of zero-copy mmap
 *
 * replay/inspect accept a serialized recording, an archive (detected
 * by magic) or a ring directory (detected by ring.meta); containers
 * are reassembled via readAll() — a ring must be cleanly closed with
 * nothing evicted for that. Time-travel into a partial ring window
 * lives in replay_check (--ring --at).
 * --io-threads/--no-mmap never change the bytes written or read —
 * container output is byte-identical at any setting.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "core/delorean.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"

using namespace delorean;

namespace
{

struct Args
{
    std::string command;
    std::string app = "barnes";
    std::string file;
    std::string mode = "order_only";
    unsigned procs = 8;
    InstrCount chunk = 0;
    unsigned scale = 50;
    std::uint64_t seed = 1;
    std::uint64_t env = 1;
    unsigned stratify = 0;
    bool perturb = false;
    std::string archiveFile;
    std::string ringDir;
    std::uint64_t ringBudget = 0;
    std::uint64_t ringLag = 0;
    std::uint64_t checkpointPeriod = 0;
    ArchiveIoOptions archiveIo;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: delorean_sim record <app> [--mode M] [--procs N]"
                 " [--chunk N] [--scale P] [--seed S] [--env S]"
                 " [--stratify N] [--checkpoint-period N]"
                 " [-o FILE] [--archive-out FILE]"
                 " [--ring-out DIR [--ring-budget BYTES]"
                 " [--ring-lag T]]"
                 " [--io-threads N]\n"
                 "       delorean_sim replay <FILE> [--env S] [--perturb]"
                 " [--io-threads N] [--no-mmap]\n"
                 "       delorean_sim inspect <FILE>"
                 " [--io-threads N] [--no-mmap]\n"
                 "       delorean_sim compare <app> [--procs N] [--scale P]\n"
                 "apps: ");
    for (const auto &name : AppTable::allNames())
        std::fprintf(stderr, "%s ", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

ModeConfig
modeFor(const Args &args)
{
    ModeConfig mode;
    if (args.mode == "order_size")
        mode = ModeConfig::orderAndSize();
    else if (args.mode == "order_only")
        mode = ModeConfig::orderOnly();
    else if (args.mode == "picolog")
        mode = ModeConfig::picoLog();
    else
        usage();
    if (args.chunk)
        mode.chunkSize = args.chunk;
    mode.stratifyChunksPerProc = args.stratify;
    return mode;
}

Args
parse(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Args args;
    args.command = argv[1];
    if (args.command == "record" || args.command == "compare")
        args.app = argv[2];
    else
        args.file = argv[2];
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (flag == "--mode")
            args.mode = next();
        else if (flag == "--procs")
            args.procs = static_cast<unsigned>(std::atoi(next()));
        else if (flag == "--chunk")
            args.chunk = static_cast<InstrCount>(std::atoll(next()));
        else if (flag == "--scale")
            args.scale = static_cast<unsigned>(std::atoi(next()));
        else if (flag == "--seed")
            args.seed = std::strtoull(next(), nullptr, 10);
        else if (flag == "--env")
            args.env = std::strtoull(next(), nullptr, 10);
        else if (flag == "--stratify")
            args.stratify = static_cast<unsigned>(std::atoi(next()));
        else if (flag == "-o")
            args.file = next();
        else if (flag == "--archive-out")
            args.archiveFile = next();
        else if (flag == "--ring-out")
            args.ringDir = next();
        else if (flag == "--ring-budget")
            args.ringBudget = std::strtoull(next(), nullptr, 10);
        else if (flag == "--ring-lag")
            args.ringLag = std::strtoull(next(), nullptr, 10);
        else if (flag == "--checkpoint-period")
            args.checkpointPeriod = std::strtoull(next(), nullptr, 10);
        else if (flag == "--perturb")
            args.perturb = true;
        else if (flag == "--io-threads")
            args.archiveIo.ioThreads =
                static_cast<unsigned>(std::atoi(next()));
        else if (flag == "--no-mmap")
            args.archiveIo.mmapReads = false;
        else
            usage();
    }
    return args;
}

void
printStats(const EngineStats &stats)
{
    std::printf("  cycles:           %llu\n",
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("  retired instrs:   %llu (executed %llu)\n",
                static_cast<unsigned long long>(stats.retiredInstrs),
                static_cast<unsigned long long>(stats.executedInstrs));
    std::printf("  chunk commits:    %llu\n",
                static_cast<unsigned long long>(stats.committedChunks));
    std::printf("  squashes:         %llu\n",
                static_cast<unsigned long long>(stats.squashes));
    std::printf("  truncations:      %llu overflow, %llu collision, "
                "%llu hard\n",
                static_cast<unsigned long long>(
                    stats.overflowTruncations),
                static_cast<unsigned long long>(
                    stats.collisionTruncations),
                static_cast<unsigned long long>(stats.hardTruncations));
    std::printf("  stall fraction:   %.2f%%\n",
                100.0 * stats.stallFraction());
}

int
cmdRecord(const Args &args)
{
    MachineConfig machine;
    machine.numProcs = args.procs;
    Workload workload(args.app, args.procs, args.seed,
                      WorkloadScale{args.scale});
    // Archiving needs checkpoints to cut segments at; default a
    // period when the user asked for a container but no cadence.
    std::uint64_t period = args.checkpointPeriod;
    if ((!args.archiveFile.empty() || !args.ringDir.empty())
        && period == 0)
        period = 50;

    // The ring writer runs *during* the recording: its onCheckpoint
    // feed cuts, compresses and evicts segments while the engine is
    // still committing chunks. Infeasible knob combinations are
    // rejected here, before any simulation work.
    std::unique_ptr<RingArchiveWriter> ring;
    if (!args.ringDir.empty()) {
        RingOptions ropts;
        if (args.ringBudget)
            ropts.budgetBytes = args.ringBudget;
        ropts.checkpointPeriod = period;
        ropts.maxReplayLag = args.ringLag;
        ropts.io = args.archiveIo;
        ring = std::make_unique<RingArchiveWriter>(args.ringDir, ropts);
    }
    std::function<void(const Recording &)> hook;
    if (ring)
        hook = [&ring](const Recording &r) { ring->onCheckpoint(r); };

    Recorder recorder(modeFor(args), machine);
    const Recording rec =
        recorder.record(workload, args.env, true, {}, period, hook);

    std::printf("recorded %s in %s mode:\n", args.app.c_str(),
                execModeName(rec.mode.mode));
    printStats(rec.stats);
    const LogSizeReport sizes = rec.logSizes();
    std::printf("  ordering log:     %.3f bits/proc/kilo-inst "
                "(%.3f compressed)\n",
                sizes.bitsPerProcPerKiloInstr(false),
                sizes.bitsPerProcPerKiloInstr(true));
    if (period)
        std::printf("  checkpoints:      %zu (every %llu commits)\n",
                    rec.checkpoints.size(),
                    static_cast<unsigned long long>(period));
    if (!args.file.empty()) {
        saveRecordingFile(rec, args.file);
        std::printf("  saved to:         %s\n", args.file.c_str());
    }
    if (!args.archiveFile.empty()) {
        writeArchiveFile(rec, args.archiveFile, args.archiveIo);
        std::printf("  archived to:      %s (%zu segments)\n",
                    args.archiveFile.c_str(),
                    rec.checkpoints.size() + 1);
    }
    if (ring) {
        ring->close(rec);
        const RingWriterStats rs = ring->stats();
        std::printf("  ring:             %s (%llu cut, %llu evicted, "
                    "%llu live bytes, worst start lag %llu)\n",
                    args.ringDir.c_str(),
                    static_cast<unsigned long long>(rs.segmentsCut),
                    static_cast<unsigned long long>(
                        rs.segmentsEvicted),
                    static_cast<unsigned long long>(rs.liveBytes),
                    static_cast<unsigned long long>(rs.worstStartLag));
    }
    return 0;
}

/**
 * Loads any container: ring directory (by ring.meta), archive (by
 * magic sniff) or serialized recording. A ring must be cleanly closed
 * with nothing evicted for readAll(); anything else raises the
 * reader's typed error.
 */
Recording
loadAny(const std::string &path, const ArchiveIoOptions &io)
{
    if (RingArchiveReader::looksLikeRing(path))
        return RingArchiveReader::open(path, io).readAll();
    if (ArchiveReader::fileLooksLikeArchive(path))
        return ArchiveReader::fromFile(path, io).readAll();
    return loadRecordingFile(path);
}

int
cmdReplay(const Args &args)
{
    const Recording rec = loadAny(args.file, args.archiveIo);
    std::printf("replaying %s (%s, %u procs, seed %llu)...\n",
                rec.appName.c_str(), execModeName(rec.mode.mode),
                rec.machine.numProcs,
                static_cast<unsigned long long>(rec.workloadSeed));
    ReplayPerturbation perturb;
    perturb.enabled = args.perturb;
    perturb.seed = args.env ^ 0xDEAD;
    const ReplayOutcome out = Replayer().replay(rec, args.env, perturb);
    printStats(out.stats);
    std::printf("  deterministic:    %s\n",
                out.deterministicExact
                    ? "yes (exact interleaving)"
                    : (out.deterministicPerProc ? "per-processor"
                                                : "NO — DIVERGED"));
    return out.deterministicPerProc ? 0 : 1;
}

int
cmdInspect(const Args &args)
{
    const Recording rec = loadAny(args.file, args.archiveIo);
    std::printf("recording: %s, %s mode, %u procs, chunk %llu, "
                "workload seed %llu\n",
                rec.appName.c_str(), execModeName(rec.mode.mode),
                rec.machine.numProcs,
                static_cast<unsigned long long>(rec.mode.chunkSize),
                static_cast<unsigned long long>(rec.workloadSeed));
    printStats(rec.stats);
    std::size_t cs_entries = 0;
    for (const auto &log : rec.cs)
        cs_entries += log.entryCount();
    std::printf("  PI entries:       %zu (%zu strata)\n",
                rec.pi.entryCount(), rec.strata.size());
    std::printf("  CS entries:       %zu\n", cs_entries);
    std::printf("  interrupts:       %zu\n",
                rec.interrupts.totalEntries());
    std::printf("  I/O loads:        %zu\n", rec.io.totalEntries());
    std::printf("  DMA transfers:    %zu\n", rec.dma.count());
    std::printf("  checkpoints:      %zu\n", rec.checkpoints.size());
    std::printf("  first commits:    ");
    for (std::size_t i = 0; i < 16 && i < rec.pi.entryCount(); ++i) {
        const ProcId p = rec.pi.entryAt(i);
        if (p == kDmaProcId)
            std::printf("DMA ");
        else
            std::printf("P%u ", p);
    }
    std::printf("...\n");
    return 0;
}

int
cmdCompare(const Args &args)
{
    MachineConfig machine;
    machine.numProcs = args.procs;
    Workload workload(args.app, args.procs, args.seed,
                      WorkloadScale{args.scale});

    InterleavedExecutor rc(machine, ConsistencyModel::kRC);
    InterleavedExecutor sc(machine, ConsistencyModel::kSC);
    const double rc_cycles =
        static_cast<double>(rc.run(workload, args.env).cycles);
    const double sc_cycles =
        static_cast<double>(sc.run(workload, args.env).cycles);

    std::printf("%s on %u procs (speedup vs RC):\n", args.app.c_str(),
                args.procs);
    std::printf("  %-12s %6.2f\n", "RC", 1.0);
    std::printf("  %-12s %6.2f\n", "SC", rc_cycles / sc_cycles);
    for (const ModeConfig mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        Recorder recorder(mode, machine);
        const Recording rec = recorder.record(workload, args.env);
        std::printf("  %-12s %6.2f  (log %.3f bits/proc/kilo-inst)\n",
                    execModeName(mode.mode),
                    rc_cycles
                        / static_cast<double>(rec.stats.totalCycles),
                    rec.logSizes().bitsPerProcPerKiloInstr(true));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    try {
        if (args.command == "record")
            return cmdRecord(args);
        if (args.command == "replay")
            return cmdReplay(args);
        if (args.command == "inspect")
            return cmdInspect(args);
        if (args.command == "compare")
            return cmdCompare(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
}
