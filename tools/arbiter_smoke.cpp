/**
 * @file
 * CI smoke check for the sharded commit-arbiter hierarchy; wired into
 * ctest as `arbiter_smoke` (tier-1). In a couple of seconds it records
 * a tiny application on 16 simulated cores with 4 address-shard
 * arbiters under all three modes and asserts, with four worker
 * threads:
 *
 *   - the flat-PI recordings carry format-v2 shard masks (PicoLog
 *     stays maskless — its commit order is predefined, so there is no
 *     partial order to record),
 *   - the partial-order serial replay, the total-order serial replay
 *     (honorPartialOrder = false), and the host-parallel chunk-body
 *     replayer at jobs=4 in both order modes all reproduce the
 *     recording with byte-identical fingerprints,
 *   - the recording serializes and reloads byte-identically.
 *
 * The exhaustive versions live in tests/test_sharded_arbiter.cpp and
 * the bench/arbiter_scaling harness.
 */

#include <cstdio>
#include <sstream>
#include <utility>

#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "sim/parallel_replay.hpp"
#include "trace/workload.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

namespace
{

constexpr unsigned kProcs = 16;
constexpr unsigned kShards = 4;
constexpr unsigned kScalePercent = 6;
constexpr std::uint64_t kWorkloadSeed = 20080621;
constexpr std::uint64_t kEnvSeed = 1;
constexpr unsigned kJobs = 4;

bool
smokeOne(const char *label, const ModeConfig &mode)
{
    MachineConfig machine;
    machine.numProcs = kProcs;
    machine.bulk.numArbiters = kShards;
    Workload workload("lu", kProcs, kWorkloadSeed,
                      WorkloadScale{kScalePercent});
    const Recording rec =
        Recorder(mode, machine).record(workload, kEnvSeed);

    const bool expect_masks = mode.mode != ExecMode::kPicoLog;
    if (rec.pi.hasMasks() != expect_masks) {
        std::fprintf(stderr,
                     "arbiter_smoke: %s: expected hasMasks=%d, got %d\n",
                     label, expect_masks, rec.pi.hasMasks());
        return false;
    }

    std::ostringstream out;
    saveRecording(rec, out);
    std::istringstream in(std::move(out).str());
    const Recording loaded = loadRecording(in);
    std::ostringstream out2;
    saveRecording(loaded, out2);
    if (in.str() != out2.str()) {
        std::fprintf(stderr,
                     "arbiter_smoke: %s: save/load/save not "
                     "byte-identical\n",
                     label);
        return false;
    }

    const ReplayCheckResult serial = checkedReplay(rec);
    if (!serial.ok) {
        std::fprintf(stderr, "arbiter_smoke: %s: serial replay: %s\n",
                     label, serial.report.describe().c_str());
        return false;
    }

    ReplayCheckOptions total_opts;
    total_opts.honorPartialOrder = false;
    const ReplayCheckResult total = checkedReplay(rec, total_opts);
    if (!total.ok
        || !total.outcome.fingerprint.matchesExact(
            serial.outcome.fingerprint)) {
        std::fprintf(stderr,
                     "arbiter_smoke: %s: total-order replay diverged "
                     "from partial-order\n%s\n",
                     label, total.report.describe().c_str());
        return false;
    }

    for (const bool honor : {true, false}) {
        ParallelReplayOptions popts;
        popts.window = 8;
        popts.jobs = kJobs;
        popts.honorPartialOrder = honor;
        const ReplayCheckResult par = checkedParallelReplay(rec, popts);
        if (!par.ok
            || !par.outcome.fingerprint.matchesExact(
                serial.outcome.fingerprint)) {
            std::fprintf(stderr,
                         "arbiter_smoke: %s: chunk-parallel replay "
                         "(jobs=%u honorPartialOrder=%d) diverged\n%s\n",
                         label, kJobs, honor,
                         par.report.describe().c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    bool ok = true;
    for (const auto &[label, mode] :
         {std::pair<const char *, ModeConfig>{"order-and-size",
                                              ModeConfig::orderAndSize()},
          {"order-only", ModeConfig::orderOnly()},
          {"picolog", ModeConfig::picoLog()}}) {
        ok = smokeOne(label, mode) && ok;
    }
    if (!ok) {
        std::fprintf(stderr, "arbiter_smoke: FAILED\n");
        return 1;
    }
    std::printf("arbiter_smoke: %u cores / %u shards: partial-order == "
                "total-order == parallel replay fingerprints "
                "(jobs=%u, all modes)\n",
                kProcs, kShards, kJobs);
    return 0;
}
