/**
 * @file
 * Tier-1 smoke for the streaming record/replay service: a mixed
 * mini-soak that must hold at any DELOREAN_JOBS (ctest pins 4).
 *
 *  - mixed session classes over heterogeneous apps/modes, with
 *    archive streaming + batch-writer cross-verification enabled;
 *  - every session must succeed;
 *  - the deterministic ledger must be byte-identical between a
 *    1-worker and an N-worker run;
 *  - dedupe must collapse the sessions to one recording per distinct
 *    key;
 *  - the admission gate must bound concurrency.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/service.hpp"

using delorean::ServeClass;
using delorean::ServeJob;
using delorean::ServeOptions;
using delorean::ServeReport;
using delorean::ServeService;

namespace
{

int failures = 0;

void
expect(bool ok, const std::string &what)
{
    if (ok) {
        std::printf("  ok: %s\n", what.c_str());
    } else {
        std::printf("  FAIL: %s\n", what.c_str());
        ++failures;
    }
}

std::vector<ServeJob>
mixedJobs()
{
    std::vector<ServeJob> jobs;
    const auto add = [&jobs](ServeClass cls, const char *app,
                             const delorean::ModeConfig &mode,
                             std::uint64_t renv) {
        ServeJob job;
        job.cls = cls;
        job.record.app = app;
        job.record.machine.numProcs = 4;
        job.record.scalePercent = 4;
        job.record.mode = mode;
        job.replayEnvSeed = renv;
        jobs.push_back(job);
    };
    delorean::ModeConfig strat = delorean::ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    const delorean::ModeConfig modes[3] = {
        delorean::ModeConfig::orderAndSize(),
        delorean::ModeConfig::orderOnly(), strat};
    const char *apps[3] = {"radix", "fft", "lu"};
    for (int i = 0; i < 3; ++i) {
        add(ServeClass::kRecord, apps[i], modes[i], 0);
        add(ServeClass::kReplay, apps[i], modes[i], 5);
        add(ServeClass::kReplay, apps[i], modes[i], 6);
        add(ServeClass::kValidate, apps[i], modes[i], 7);
    }
    return jobs;
}

ServeReport
runOnce(const std::vector<ServeJob> &jobs, unsigned width,
        const std::string &dir)
{
    ServeOptions opts;
    opts.jobs = width;
    opts.archiveDir = dir;
    opts.checkpointPeriod = 30;
    opts.verifyArchives = true; // streamed == batch bytes, in-run
    ServeService service(opts);
    return service.run(jobs);
}

void
cleanup(const ServeReport &report, const std::string &dir)
{
    for (const delorean::ServeRecordingInfo &r : report.recordings)
        if (!r.archivePath.empty())
            std::remove(r.archivePath.c_str());
    ::rmdir(dir.c_str());
}

} // namespace

int
main()
{
    const std::vector<ServeJob> jobs = mixedJobs();
    const std::string dir1 =
        "serve_smoke_j1_" + std::to_string(::getpid());
    const std::string dirN =
        "serve_smoke_jN_" + std::to_string(::getpid());

    std::printf("serve_smoke: %zu sessions\n", jobs.size());
    const ServeReport serial = runOnce(jobs, 1, dir1);
    const ServeReport wide = runOnce(jobs, 0, dirN); // DELOREAN_JOBS

    expect(serial.okCount() == jobs.size(), "serial: all sessions ok");
    expect(wide.okCount() == jobs.size(), "wide: all sessions ok");
    for (const delorean::ServeSessionResult &r : wide.sessions)
        if (!r.ok)
            std::printf("    error: %s\n", r.error.c_str());
    expect(serial.cacheMisses == 3 && wide.cacheMisses == 3,
           "dedupe: 12 sessions -> 3 recordings");
    expect(serial.recordings.size() == 3
               && wide.recordings.size() == 3,
           "ledger: one entry per distinct recording");
    expect(serial.ledgerJson() == wide.ledgerJson(),
           "ledger byte-identical at jobs=1 and jobs="
               + std::to_string(wide.jobs));
    for (std::size_t i = 0; i < serial.recordings.size(); ++i)
        expect(serial.recordings[i].archiveBytes
                       == wide.recordings[i].archiveBytes
                   && serial.recordings[i].archiveBytes > 0,
               "archive bytes match for recording "
                   + std::to_string(i));

    // Admission control: a width-4 pool gated to 1 session.
    ServeOptions gated;
    gated.jobs = 4;
    gated.maxInflight = 1;
    ServeService gatedService(gated);
    const ServeReport g = gatedService.run(jobs);
    expect(g.okCount() == jobs.size(), "gated: all sessions ok");
    expect(g.peakInflight == 1, "gate bounds in-flight sessions to 1");

    cleanup(serial, dir1);
    cleanup(wide, dirN);

    if (failures) {
        std::printf("serve_smoke: %d FAILURES\n", failures);
        return 1;
    }
    std::printf("serve_smoke: all checks passed\n");
    return 0;
}
