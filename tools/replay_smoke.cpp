/**
 * @file
 * CI smoke check for chunk-parallel replay; wired into ctest as
 * `replay_smoke` (tier-1). In a couple of seconds it records a tiny
 * application under all three modes (plus the stratified OrderOnly
 * flavor) and asserts, with four worker threads:
 *
 *   - the lookahead-window arbiter (replayWindow 8) replays
 *     deterministically and matches the serial (window 1) replay's
 *     fingerprint,
 *   - the host-parallel chunk-body replayer at jobs=4 matches both
 *     the recording and the serial replay at windows 2 and 8,
 *
 * with the per-processor comparison rule for stratified logs. The
 * exhaustive versions live in tests/test_parallel_replay.cpp and the
 * bench/replay_speed harness.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "core/recorder.hpp"
#include "sim/parallel_replay.hpp"
#include "trace/workload.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

namespace
{

constexpr unsigned kProcs = 4;
constexpr unsigned kScalePercent = 8;
constexpr std::uint64_t kWorkloadSeed = 20080621;
constexpr std::uint64_t kEnvSeed = 1;
constexpr unsigned kJobs = 4;

bool
smokeOne(const char *label, const ModeConfig &mode)
{
    MachineConfig machine;
    machine.numProcs = kProcs;
    Workload workload("lu", kProcs, kWorkloadSeed,
                      WorkloadScale{kScalePercent});
    const Recording rec =
        Recorder(mode, machine).record(workload, kEnvSeed);
    const bool strat = rec.stratified();

    const auto matches = [strat](const ExecutionFingerprint &a,
                                 const ExecutionFingerprint &b) {
        return strat ? a.matchesPerProc(b) : a.matchesExact(b);
    };

    ReplayCheckOptions serial_opts;
    const ReplayCheckResult serial = checkedReplay(rec, serial_opts);
    if (!serial.ok) {
        std::fprintf(stderr, "replay_smoke: %s: serial replay: %s\n",
                     label, serial.report.describe().c_str());
        return false;
    }

    ReplayCheckOptions win_opts;
    win_opts.replayWindow = 8;
    const ReplayCheckResult windowed = checkedReplay(rec, win_opts);
    if (!windowed.ok
        || !matches(windowed.outcome.fingerprint,
                    serial.outcome.fingerprint)) {
        std::fprintf(stderr,
                     "replay_smoke: %s: windowed arbiter diverged "
                     "from serial\n%s\n",
                     label, windowed.report.describe().c_str());
        return false;
    }

    for (const unsigned window : {2u, 8u}) {
        ParallelReplayOptions popts;
        popts.window = window;
        popts.jobs = kJobs;
        const ReplayCheckResult par = checkedParallelReplay(rec, popts);
        if (!par.ok
            || !matches(par.outcome.fingerprint,
                        serial.outcome.fingerprint)) {
            std::fprintf(stderr,
                         "replay_smoke: %s: chunk-parallel replay "
                         "(jobs=%u window=%u) diverged\n%s\n",
                         label, kJobs, window,
                         par.report.describe().c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 3;

    bool ok = true;
    for (const auto &[label, mode] :
         {std::pair<const char *, ModeConfig>{"order-and-size",
                                              ModeConfig::orderAndSize()},
          {"order-only", ModeConfig::orderOnly()},
          {"order-only-strat", strat},
          {"picolog", ModeConfig::picoLog()}}) {
        ok = smokeOne(label, mode) && ok;
    }
    if (!ok) {
        std::fprintf(stderr, "replay_smoke: FAILED\n");
        return 1;
    }
    std::printf("replay_smoke: serial == parallel replay fingerprints "
                "(jobs=%u, windows {2,8}, all modes)\n",
                kJobs);
    return 0;
}
