/**
 * @file
 * CI smoke check for the replay-time race detector; wired into ctest
 * as `race_smoke` (tier-1, DELOREAN_JOBS=4). In about a second it:
 *
 *   - records a seeded-race variant ("fft~r3") on 4 simulated cores,
 *     so the workload plants exactly the data races named by
 *     seededRaceManifest(),
 *   - replays with the detector attached under the serial engine and
 *     the chunk-parallel replayer (jobs=4, window=8) and asserts the
 *     two reports are byte-identical,
 *   - asserts the detected word set equals the manifest EXACTLY —
 *     every seeded race found, nothing else reported,
 *   - replays the matching race-free base app ("fft") with the
 *     detector attached and asserts a clean report.
 *
 * The exhaustive matrix (modes x jobs x shards x windows) lives in
 * tests/test_race_detector.cpp.
 */

#include <cstdio>
#include <set>

#include "analysis/race_detector.hpp"
#include "core/recorder.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

namespace
{

constexpr unsigned kProcs = 4;
constexpr unsigned kScalePercent = 10;
constexpr std::uint64_t kWorkloadSeed = 20080621;
constexpr std::uint64_t kEnvSeed = 1;
constexpr unsigned kJobs = 4;

Recording
record(const char *app)
{
    MachineConfig machine;
    machine.numProcs = kProcs;
    Workload workload(app, kProcs, kWorkloadSeed,
                      WorkloadScale{kScalePercent});
    return Recorder(ModeConfig::orderOnly(), machine)
        .record(workload, kEnvSeed);
}

} // namespace

int
main()
{
    // Seeded-race leg: detection must match the manifest exactly and
    // be byte-identical between the serial and parallel replayers.
    const Recording seeded = record("fft~r3");
    ReplayCheckOptions opts;
    opts.detectRaces = true;

    const ReplayCheckResult serial = checkedReplay(seeded, opts);
    if (!serial.ok) {
        std::fprintf(stderr, "race_smoke: serial replay: %s\n",
                     serial.report.describe().c_str());
        return 1;
    }

    ParallelReplayOptions popts;
    popts.jobs = kJobs;
    popts.window = 8;
    const ReplayCheckResult par =
        checkedParallelReplay(seeded, popts, opts);
    if (!par.ok) {
        std::fprintf(stderr, "race_smoke: parallel replay: %s\n",
                     par.report.describe().c_str());
        return 1;
    }

    if (serial.races.describe() != par.races.describe()) {
        std::fprintf(stderr,
                     "race_smoke: serial and parallel race reports "
                     "differ\n--- serial ---\n%s--- parallel ---\n%s",
                     serial.races.describe().c_str(),
                     par.races.describe().c_str());
        return 1;
    }

    const std::vector<Addr> manifest =
        seededRaceManifest(AppTable::byName(seeded.appName));
    const std::set<Addr> expected(manifest.begin(), manifest.end());
    std::set<Addr> found;
    for (const RaceFinding &f : serial.races.findings)
        found.insert(f.word);
    if (found != expected
        || serial.races.findings.size() != expected.size()) {
        std::fprintf(stderr,
                     "race_smoke: detected %zu finding(s), manifest "
                     "has %zu word(s); report:\n%s",
                     serial.races.findings.size(), expected.size(),
                     serial.races.describe().c_str());
        return 1;
    }

    // Race-free leg: the base app must come back clean.
    const Recording clean = record("fft");
    const ReplayCheckResult base = checkedReplay(clean, opts);
    if (!base.ok) {
        std::fprintf(stderr, "race_smoke: race-free replay: %s\n",
                     base.report.describe().c_str());
        return 1;
    }
    if (!base.races.clean()) {
        std::fprintf(stderr,
                     "race_smoke: false positive(s) on race-free "
                     "app:\n%s",
                     base.races.describe().c_str());
        return 1;
    }

    std::printf("race_smoke: %zu/%zu seeded races detected "
                "(manifest-exact), serial == parallel report "
                "(jobs=%u), race-free app clean "
                "(%llu accesses checked)\n",
                serial.races.findings.size(), expected.size(), kJobs,
                static_cast<unsigned long long>(
                    base.races.accessesChecked));
    return 0;
}
