/**
 * @file
 * Unit tests for the input logs (core/input_logs.hpp).
 */

#include <gtest/gtest.h>

#include "core/input_logs.hpp"

namespace delorean
{
namespace
{

TEST(InterruptLog, PerProcessorEntries)
{
    InterruptLog log(2);
    log.append(0, InterruptRecord{5, 1, 0xAA});
    log.append(1, InterruptRecord{2, 3, 0xBB});
    log.append(0, InterruptRecord{9, 0, 0xCC});
    EXPECT_EQ(log.entries(0).size(), 2u);
    EXPECT_EQ(log.entries(1).size(), 1u);
    EXPECT_EQ(log.totalEntries(), 3u);
    EXPECT_EQ(log.entries(0)[1].data, 0xCCu);
    EXPECT_GT(log.sizeBits(), 0u);
}

TEST(InterruptLogCursor, FiresAtLoggedChunk)
{
    InterruptLog log(1);
    log.append(0, InterruptRecord{3, 2, 0x11});
    log.append(0, InterruptRecord{7, 1, 0x22});
    InterruptLogCursor cur(log, 0);
    EXPECT_FALSE(cur.pendingFor(2));
    ASSERT_TRUE(cur.pendingFor(3));
    EXPECT_EQ(cur.peek().data, 0x11u);
    cur.consume();
    EXPECT_FALSE(cur.pendingFor(3));
    ASSERT_TRUE(cur.pendingFor(7));
    cur.consume();
    EXPECT_FALSE(cur.pendingFor(8));
}

TEST(IoLog, IndexedByIoLoadCount)
{
    IoLog log(2);
    log.append(0, 0, 100);
    log.append(0, 1, 101);
    log.append(1, 0, 200);
    EXPECT_EQ(log.valueAt(0, 0), 100u);
    EXPECT_EQ(log.valueAt(0, 1), 101u);
    EXPECT_EQ(log.valueAt(1, 0), 200u);
    EXPECT_EQ(log.totalEntries(), 3u);
    EXPECT_EQ(log.sizeBits(), 3u * 64u);
}

TEST(IoLog, OutOfRangeThrows)
{
    IoLog log(1);
    log.append(0, 0, 1);
    EXPECT_THROW(log.valueAt(0, 5), std::out_of_range);
}

TEST(DmaLog, TransfersWithCommitSlots)
{
    DmaLog log;
    DmaTransfer a;
    a.wordAddrs = {0x100, 0x108};
    a.values = {1, 2};
    log.append(a, 17);
    DmaTransfer b;
    b.wordAddrs = {0x200};
    b.values = {3};
    log.append(b, 42);

    ASSERT_EQ(log.count(), 2u);
    EXPECT_EQ(log.transferAt(0).values[1], 2u);
    EXPECT_EQ(log.slotAt(0), 17u);
    EXPECT_EQ(log.slotAt(1), 42u);
    EXPECT_GT(log.sizeBits(), 0u);
}

} // namespace
} // namespace delorean
