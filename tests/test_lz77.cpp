/**
 * @file
 * Unit tests for the LZ77 codec (compress/lz77.hpp).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/lz77.hpp"

namespace delorean
{
namespace
{

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Lz77, EmptyInput)
{
    Lz77 codec;
    const auto compressed = codec.compress({});
    EXPECT_EQ(codec.decompress(compressed), std::vector<std::uint8_t>{});
    EXPECT_EQ(codec.compressedBits({}), 0u);
}

TEST(Lz77, RoundTripText)
{
    Lz77 codec;
    const auto input = bytesOf(
        "the quick brown fox jumps over the lazy dog and then "
        "the quick brown fox jumps over the lazy dog again");
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, CompressesRepetition)
{
    Lz77 codec;
    std::vector<std::uint8_t> input(10000, 0xAB);
    const std::uint64_t bits = codec.compressedBits(input);
    EXPECT_LT(bits, input.size() * 8 / 10); // >10x on constant data
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, IncompressibleDataDoesNotExplode)
{
    Lz77 codec;
    Xoshiro256ss rng(5);
    std::vector<std::uint8_t> input(4096);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint64_t bits = codec.compressedBits(input);
    // Literal overhead is 1 bit per byte: at most 9/8 expansion.
    EXPECT_LE(bits, input.size() * 9);
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, PeriodicPatternRoundTrip)
{
    Lz77 codec;
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 5000; ++i)
        input.push_back(static_cast<std::uint8_t>(i % 7));
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
    EXPECT_LT(codec.compressedBits(input), input.size() * 2);
}

TEST(Lz77, OverlappingMatchRoundTrip)
{
    // Classic LZ77 edge case: match overlapping its own output.
    Lz77 codec;
    std::vector<std::uint8_t> input{'a'};
    for (int i = 0; i < 300; ++i)
        input.push_back('a');
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, CompressedBitsMatchesCompressOutput)
{
    Lz77 codec;
    const auto input = bytesOf("abcabcabcabcxyzxyzxyz");
    const std::uint64_t bits = codec.compressedBits(input);
    // compress() adds a 64-bit length header on top of the token bits.
    const auto compressed = codec.compress(input);
    const std::uint64_t total_bits = bits + 64;
    EXPECT_EQ(compressed.size(), (total_bits + 7) / 8);
}

TEST(Lz77, RandomizedRoundTrips)
{
    Lz77 codec;
    Xoshiro256ss rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> input(rng.below(3000));
        for (auto &b : input) {
            // Mixture of random and repeated content.
            b = rng.chancePerMille(600)
                    ? static_cast<std::uint8_t>(rng.below(4))
                    : static_cast<std::uint8_t>(rng.next());
        }
        ASSERT_EQ(codec.decompress(codec.compress(input)), input);
    }
}

TEST(Lz77, CustomWindowConfig)
{
    Lz77Config cfg;
    cfg.windowBits = 8; // tiny 256-byte window
    Lz77 codec(cfg);
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 2000; ++i)
        input.push_back(static_cast<std::uint8_t>(i % 13));
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, MalformedStreamsRejected)
{
    Lz77 codec;
    // Truncated header.
    EXPECT_THROW(codec.decompress({0x01, 0x02}), RecordingFormatError);
    // Implausible size header: claims 2^40 bytes from an 8-byte input.
    std::vector<std::uint8_t> huge(16, 0);
    huge[5] = 0x01; // size = 1 << 40
    EXPECT_THROW(codec.decompress(huge), RecordingFormatError);
    // First token is a match: distance reaches before output start.
    BitWriter w;
    w.write(4, 64); // claim 4 output bytes
    w.write(1, 1);  // match token
    w.write(0, Lz77Config{}.windowBits); // dist 1 into empty output
    w.write(0, 8);
    EXPECT_THROW(codec.decompress(w.bytes()), RecordingFormatError);
}

TEST(Lz77Stream, EmptyInput)
{
    Lz77 codec;
    Lz77Stream stream;
    EXPECT_EQ(stream.rawBytes(), 0u);
    const auto bytes = stream.finish();
    EXPECT_EQ(bytes, codec.compress({}));
    EXPECT_EQ(codec.decompress(bytes), std::vector<std::uint8_t>{});
}

TEST(Lz77Stream, MatchesOneShotForRandomPartitions)
{
    Lz77 codec;
    Xoshiro256ss rng(23);
    for (int trial = 0; trial < 12; ++trial) {
        // Mixture of random and repeated content, as in the one-shot
        // randomized test, so matches straddle append boundaries.
        std::vector<std::uint8_t> input(500 + rng.below(8000));
        for (auto &b : input)
            b = rng.chancePerMille(600)
                    ? static_cast<std::uint8_t>(rng.below(4))
                    : static_cast<std::uint8_t>(rng.next());

        Lz77Stream stream;
        std::size_t fed = 0;
        while (fed < input.size()) {
            // Chunk sizes from 0 (empty append) to ~1/3 the input.
            const std::size_t chunk = std::min<std::size_t>(
                input.size() - fed, rng.below(input.size() / 3 + 2));
            stream.append(input.data() + fed, chunk);
            fed += chunk;
        }
        EXPECT_EQ(stream.rawBytes(), input.size());
        const auto streamed = stream.finish();
        ASSERT_EQ(streamed, codec.compress(input)) << "trial " << trial;
        ASSERT_EQ(codec.decompress(streamed), input);
    }
}

TEST(Lz77Stream, IncompressibleInput)
{
    Lz77 codec;
    Xoshiro256ss rng(7);
    std::vector<std::uint8_t> input(6000);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.next());
    Lz77Stream stream;
    for (std::size_t i = 0; i < input.size(); i += 617)
        stream.append(input.data() + i,
                      std::min<std::size_t>(617, input.size() - i));
    const auto streamed = stream.finish();
    EXPECT_EQ(streamed, codec.compress(input));
    EXPECT_EQ(codec.decompress(streamed), input);
}

/**
 * Corpora with deliberately different match structure: empty, text
 * with long repeats, constant (overlapping matches), short periodic,
 * pure random, and the random/repeat mixture the round-trip tests
 * use. The bench corpora are drawn from the same families.
 */
std::vector<std::vector<std::uint8_t>>
equivalenceCorpora()
{
    std::vector<std::vector<std::uint8_t>> corpora;
    corpora.push_back({});
    corpora.push_back(bytesOf(
        "the quick brown fox jumps over the lazy dog and then "
        "the quick brown fox jumps over the lazy dog again"));
    corpora.push_back(std::vector<std::uint8_t>(6000, 0xAB));
    {
        std::vector<std::uint8_t> periodic;
        for (int i = 0; i < 5000; ++i)
            periodic.push_back(static_cast<std::uint8_t>(i % 7));
        corpora.push_back(std::move(periodic));
    }
    {
        Xoshiro256ss rng(5);
        std::vector<std::uint8_t> random(4096);
        for (auto &b : random)
            b = static_cast<std::uint8_t>(rng.next());
        corpora.push_back(std::move(random));
    }
    {
        Xoshiro256ss rng(77);
        std::vector<std::uint8_t> mixed(9000);
        for (auto &b : mixed)
            b = rng.chancePerMille(600)
                    ? static_cast<std::uint8_t>(rng.below(4))
                    : static_cast<std::uint8_t>(rng.next());
        corpora.push_back(std::move(mixed));
    }
    return corpora;
}

/**
 * The hash-chain searcher is required to be *exact*: same greedy
 * longest match, same smallest-distance tie-break, hence the same
 * token stream — byte for byte — as the O(window * len) scalar scan
 * it replaced (kept as lz77_reference).
 */
TEST(Lz77Reference, HashChainIsByteIdenticalToScalarScan)
{
    for (const Lz77Config cfg :
         {Lz77Config{}, Lz77Config{8, 3, 258}, Lz77Config{12, 3, 16}}) {
        const Lz77 codec(cfg);
        for (const auto &input : equivalenceCorpora()) {
            const auto fast = codec.compress(input);
            ASSERT_EQ(fast, lz77_reference::compress(input, cfg))
                << "input size " << input.size() << " windowBits "
                << cfg.windowBits;
            EXPECT_EQ(codec.compressedBits(input),
                      lz77_reference::compressedBits(input, cfg));
            // And the word-wise decoder equals the historical
            // bit-at-a-time one on the shared stream.
            EXPECT_EQ(codec.decompress(fast),
                      lz77_reference::decompress(fast, cfg));
        }
    }
}

TEST(Lz77Reference, StreamMatchesReferenceAtEveryPartition)
{
    // Lz77Stream -> one-shot Lz77 -> reference: equality must hold
    // through the whole chain, for a partition that forces deferred
    // tokenization across append boundaries.
    const Lz77Config cfg;
    const Lz77 codec(cfg);
    Xoshiro256ss rng(91);
    std::vector<std::uint8_t> input(7000);
    for (auto &b : input)
        b = rng.chancePerMille(700)
                ? static_cast<std::uint8_t>(rng.below(5))
                : static_cast<std::uint8_t>(rng.next());
    Lz77Stream stream(cfg);
    for (std::size_t i = 0; i < input.size(); i += 311)
        stream.append(input.data() + i,
                      std::min<std::size_t>(311, input.size() - i));
    const auto streamed = stream.finish();
    ASSERT_EQ(streamed, codec.compress(input));
    ASSERT_EQ(streamed, lz77_reference::compress(input, cfg));
}

TEST(Lz77Stream, OneByteAppends)
{
    // Worst-case partition: every append is a single byte, so *every*
    // match straddles an append boundary and the hash-chain state must
    // carry across all of them.
    Lz77 codec;
    Xoshiro256ss rng(53);
    std::vector<std::uint8_t> input(4000);
    for (auto &b : input)
        b = rng.chancePerMille(650)
                ? static_cast<std::uint8_t>(rng.below(4))
                : static_cast<std::uint8_t>(rng.next());
    Lz77Stream stream;
    for (const std::uint8_t b : input)
        stream.append(&b, 1);
    EXPECT_EQ(stream.rawBytes(), input.size());
    const auto streamed = stream.finish();
    ASSERT_EQ(streamed, codec.compress(input));
    ASSERT_EQ(codec.decompress(streamed), input);
}

TEST(Lz77Stream, SplitsStraddlingEveryMatch)
{
    // A long repeated phrase partitioned so each cut lands *inside*
    // the match against the previous occurrence: position p copies
    // from p - 37, and appends split at every multiple of 37 +/- 1.
    Lz77 codec;
    std::vector<std::uint8_t> input;
    const std::string phrase = "deterministic-replay-interleaving!";
    while (input.size() < 5000)
        input.insert(input.end(), phrase.begin(), phrase.end());
    for (const std::size_t step : {36u, 37u, 38u, 1u}) {
        Lz77Stream stream;
        for (std::size_t i = 0; i < input.size(); i += step)
            stream.append(input.data() + i,
                          std::min<std::size_t>(step,
                                                input.size() - i));
        const auto streamed = stream.finish();
        ASSERT_EQ(streamed, codec.compress(input)) << "step " << step;
        ASSERT_EQ(codec.decompress(streamed), input);
    }
}

TEST(Lz77, SpanDecompressMatchesVectorOverload)
{
    Lz77 codec;
    const auto input = bytesOf("abcabcabcabc straddle straddle "
                               "straddle xyz xyz xyz");
    const auto comp = codec.compress(input);
    EXPECT_EQ(codec.decompress(comp.data(), comp.size()), input);
    EXPECT_EQ(codec.decompress(comp), input);
}

TEST(Lz77Stream, LongInputCrossesCompaction)
{
    // Large enough that the stream's window compaction fires several
    // times; output must still match the one-shot encoder exactly.
    Lz77 codec;
    std::vector<std::uint8_t> input;
    Xoshiro256ss rng(41);
    for (int i = 0; i < 600000; ++i)
        input.push_back(rng.chancePerMille(850)
                            ? static_cast<std::uint8_t>(i % 251)
                            : static_cast<std::uint8_t>(rng.next()));
    Lz77Stream stream;
    for (std::size_t i = 0; i < input.size(); i += 10007)
        stream.append(input.data() + i,
                      std::min<std::size_t>(10007, input.size() - i));
    const auto streamed = stream.finish();
    ASSERT_EQ(streamed, codec.compress(input));
    ASSERT_EQ(codec.decompress(streamed), input);
}

} // namespace
} // namespace delorean
