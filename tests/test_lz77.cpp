/**
 * @file
 * Unit tests for the LZ77 codec (compress/lz77.hpp).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/lz77.hpp"

namespace delorean
{
namespace
{

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Lz77, EmptyInput)
{
    Lz77 codec;
    const auto compressed = codec.compress({});
    EXPECT_EQ(codec.decompress(compressed), std::vector<std::uint8_t>{});
    EXPECT_EQ(codec.compressedBits({}), 0u);
}

TEST(Lz77, RoundTripText)
{
    Lz77 codec;
    const auto input = bytesOf(
        "the quick brown fox jumps over the lazy dog and then "
        "the quick brown fox jumps over the lazy dog again");
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, CompressesRepetition)
{
    Lz77 codec;
    std::vector<std::uint8_t> input(10000, 0xAB);
    const std::uint64_t bits = codec.compressedBits(input);
    EXPECT_LT(bits, input.size() * 8 / 10); // >10x on constant data
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, IncompressibleDataDoesNotExplode)
{
    Lz77 codec;
    Xoshiro256ss rng(5);
    std::vector<std::uint8_t> input(4096);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint64_t bits = codec.compressedBits(input);
    // Literal overhead is 1 bit per byte: at most 9/8 expansion.
    EXPECT_LE(bits, input.size() * 9);
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, PeriodicPatternRoundTrip)
{
    Lz77 codec;
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 5000; ++i)
        input.push_back(static_cast<std::uint8_t>(i % 7));
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
    EXPECT_LT(codec.compressedBits(input), input.size() * 2);
}

TEST(Lz77, OverlappingMatchRoundTrip)
{
    // Classic LZ77 edge case: match overlapping its own output.
    Lz77 codec;
    std::vector<std::uint8_t> input{'a'};
    for (int i = 0; i < 300; ++i)
        input.push_back('a');
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lz77, CompressedBitsMatchesCompressOutput)
{
    Lz77 codec;
    const auto input = bytesOf("abcabcabcabcxyzxyzxyz");
    const std::uint64_t bits = codec.compressedBits(input);
    // compress() adds a 64-bit length header on top of the token bits.
    const auto compressed = codec.compress(input);
    const std::uint64_t total_bits = bits + 64;
    EXPECT_EQ(compressed.size(), (total_bits + 7) / 8);
}

TEST(Lz77, RandomizedRoundTrips)
{
    Lz77 codec;
    Xoshiro256ss rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> input(rng.below(3000));
        for (auto &b : input) {
            // Mixture of random and repeated content.
            b = rng.chancePerMille(600)
                    ? static_cast<std::uint8_t>(rng.below(4))
                    : static_cast<std::uint8_t>(rng.next());
        }
        ASSERT_EQ(codec.decompress(codec.compress(input)), input);
    }
}

TEST(Lz77, CustomWindowConfig)
{
    Lz77Config cfg;
    cfg.windowBits = 8; // tiny 256-byte window
    Lz77 codec(cfg);
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 2000; ++i)
        input.push_back(static_cast<std::uint8_t>(i % 13));
    EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

} // namespace
} // namespace delorean
