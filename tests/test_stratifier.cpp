/**
 * @file
 * Unit tests for PI-log stratification (core/stratifier.hpp),
 * including the Figure 5(a) worked example.
 */

#include <gtest/gtest.h>

#include "core/stratifier.hpp"

namespace delorean
{
namespace
{

Signature
sigOf(Addr line)
{
    Signature s;
    s.insert(line);
    return s;
}

TEST(Stratifier, CounterBitsMatchMaximum)
{
    EXPECT_EQ(Stratifier(8, 1).counterBits(), 1u);
    EXPECT_EQ(Stratifier(8, 3).counterBits(), 2u);
    EXPECT_EQ(Stratifier(8, 7).counterBits(), 3u);
}

TEST(Stratifier, Figure5Example)
{
    // Commit sequence (procIDs): 1, 3, 2, 1, 0, 3, 1, 1 with a
    // conflict between the chunk from proc 3 (second commit) and the
    // chunk from proc 0. Counters saturate at 2.
    Stratifier strat(4, 2);
    const Addr kConflict = 0xAAA;
    strat.onCommit(1, sigOf(1));
    strat.onCommit(3, sigOf(kConflict));
    strat.onCommit(2, sigOf(3));
    strat.onCommit(1, sigOf(4));
    // Proc 0's chunk conflicts with proc 3's SR => stratum S1 cut here.
    strat.onCommit(0, sigOf(kConflict));
    strat.onCommit(3, sigOf(6));
    strat.onCommit(1, sigOf(7));
    // Proc 1's counter is at 1... add one more to reach the max, then
    // the next commit for proc 1 forces stratum S2.
    strat.onCommit(1, sigOf(8));
    strat.onCommit(1, sigOf(9));
    strat.finish();

    const auto &strata = strat.strata();
    ASSERT_EQ(strata.size(), 3u);
    // S1: procs 0..3 committed {0,2,1,1} chunks.
    EXPECT_EQ(strata[0].counts, (std::vector<std::uint8_t>{0, 2, 1, 1}));
    // S2: {1,2,0,1} (proc 0's conflicting chunk + proc 1 twice + p3).
    EXPECT_EQ(strata[1].counts, (std::vector<std::uint8_t>{1, 2, 0, 1}));
    // Tail: proc 1's overflow chunk.
    EXPECT_EQ(strata[2].counts, (std::vector<std::uint8_t>{0, 1, 0, 0}));
}

TEST(Stratifier, NoConflictsOneStratum)
{
    Stratifier strat(4, 7);
    for (int i = 0; i < 7; ++i)
        for (ProcId p = 0; p < 4; ++p)
            strat.onCommit(p, sigOf(0x1000 + p * 64 + i));
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 1u);
}

TEST(Stratifier, SameProcConflictsDontCut)
{
    // Within-processor cross-chunk conflicts never cut a stratum:
    // same-processor chunks serialize by construction.
    Stratifier strat(2, 7);
    for (int i = 0; i < 5; ++i)
        strat.onCommit(0, sigOf(0x42));
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 1u);
}

TEST(Stratifier, DmaCutsAndMarks)
{
    Stratifier strat(2, 3);
    strat.onCommit(0, sigOf(1));
    strat.onDmaCommit();
    strat.onCommit(1, sigOf(2));
    strat.finish();
    const auto &strata = strat.strata();
    ASSERT_EQ(strata.size(), 3u);
    EXPECT_FALSE(strata[0].isDma);
    EXPECT_TRUE(strata[1].isDma);
    EXPECT_FALSE(strata[2].isDma);
}

TEST(Stratifier, SizeBitsFormula)
{
    Stratifier strat(8, 1);
    strat.onCommit(0, sigOf(1));
    strat.onCommit(0, sigOf(2)); // counter overflow: cut
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 2u);
    EXPECT_EQ(strat.sizeBits(), 2u * 8u * 1u);
}

TEST(StrataCursor, ConsumesCountsThenAdvances)
{
    std::vector<Stratum> strata;
    strata.push_back(Stratum{{2, 1}, false});
    strata.push_back(Stratum{{}, true}); // DMA marker
    strata.push_back(Stratum{{0, 1}, false});

    StrataCursor cur(strata, 2);
    EXPECT_FALSE(cur.atEnd());
    EXPECT_EQ(cur.remainingFor(0), 2u);
    EXPECT_EQ(cur.remainingFor(1), 1u);
    cur.consume(0);
    cur.consume(1);
    EXPECT_FALSE(cur.isDmaSlot());
    cur.consume(0); // stratum drained -> advances to DMA marker
    EXPECT_TRUE(cur.isDmaSlot());
    cur.consumeDma();
    EXPECT_EQ(cur.remainingFor(1), 1u);
    cur.consume(1);
    EXPECT_TRUE(cur.atEnd());
}

} // namespace
} // namespace delorean
