/**
 * @file
 * Unit tests for PI-log stratification (core/stratifier.hpp),
 * including the Figure 5(a) worked example.
 */

#include <gtest/gtest.h>

#include "core/stratifier.hpp"

namespace delorean
{
namespace
{

Signature
sigOf(Addr line)
{
    Signature s;
    s.insert(line);
    return s;
}

TEST(Stratifier, CounterBitsMatchMaximum)
{
    EXPECT_EQ(Stratifier(8, 1).counterBits(), 1u);
    EXPECT_EQ(Stratifier(8, 3).counterBits(), 2u);
    EXPECT_EQ(Stratifier(8, 7).counterBits(), 3u);
}

TEST(Stratifier, Figure5Example)
{
    // Commit sequence (procIDs): 1, 3, 2, 1, 0, 3, 1, 1 with a
    // conflict between the chunk from proc 3 (second commit) and the
    // chunk from proc 0. Counters saturate at 2.
    Stratifier strat(4, 2);
    const Addr kConflict = 0xAAA;
    strat.onCommit(1, sigOf(1));
    strat.onCommit(3, sigOf(kConflict));
    strat.onCommit(2, sigOf(3));
    strat.onCommit(1, sigOf(4));
    // Proc 0's chunk conflicts with proc 3's SR => stratum S1 cut here.
    strat.onCommit(0, sigOf(kConflict));
    strat.onCommit(3, sigOf(6));
    strat.onCommit(1, sigOf(7));
    // Proc 1's counter is at 1... add one more to reach the max, then
    // the next commit for proc 1 forces stratum S2.
    strat.onCommit(1, sigOf(8));
    strat.onCommit(1, sigOf(9));
    strat.finish();

    const auto &strata = strat.strata();
    ASSERT_EQ(strata.size(), 3u);
    // S1: procs 0..3 committed {0,2,1,1} chunks.
    EXPECT_EQ(strata[0].counts, (std::vector<std::uint8_t>{0, 2, 1, 1}));
    // S2: {1,2,0,1} (proc 0's conflicting chunk + proc 1 twice + p3).
    EXPECT_EQ(strata[1].counts, (std::vector<std::uint8_t>{1, 2, 0, 1}));
    // Tail: proc 1's overflow chunk.
    EXPECT_EQ(strata[2].counts, (std::vector<std::uint8_t>{0, 1, 0, 0}));
}

TEST(Stratifier, NoConflictsOneStratum)
{
    Stratifier strat(4, 7);
    for (int i = 0; i < 7; ++i)
        for (ProcId p = 0; p < 4; ++p)
            strat.onCommit(p, sigOf(0x1000 + p * 64 + i));
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 1u);
}

TEST(Stratifier, SameProcConflictsDontCut)
{
    // Within-processor cross-chunk conflicts never cut a stratum:
    // same-processor chunks serialize by construction.
    Stratifier strat(2, 7);
    for (int i = 0; i < 5; ++i)
        strat.onCommit(0, sigOf(0x42));
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 1u);
}

TEST(Stratifier, DmaCutsAndMarks)
{
    Stratifier strat(2, 3);
    strat.onCommit(0, sigOf(1));
    strat.onDmaCommit();
    strat.onCommit(1, sigOf(2));
    strat.finish();
    const auto &strata = strat.strata();
    ASSERT_EQ(strata.size(), 3u);
    EXPECT_FALSE(strata[0].isDma);
    EXPECT_TRUE(strata[1].isDma);
    EXPECT_FALSE(strata[2].isDma);
}

TEST(Stratifier, SizeBitsFormula)
{
    Stratifier strat(8, 1);
    strat.onCommit(0, sigOf(1));
    strat.onCommit(0, sigOf(2)); // counter overflow: cut
    strat.finish();
    EXPECT_EQ(strat.strata().size(), 2u);
    EXPECT_EQ(strat.sizeBits(), 2u * 8u * 1u);
}

TEST(StrataCursor, ConsumesCountsThenAdvances)
{
    std::vector<Stratum> strata;
    strata.push_back(Stratum{{2, 1}, false});
    strata.push_back(Stratum{{}, true}); // DMA marker
    strata.push_back(Stratum{{0, 1}, false});

    StrataCursor cur(strata, 2);
    EXPECT_FALSE(cur.atEnd());
    EXPECT_EQ(cur.remainingFor(0), 2u);
    EXPECT_EQ(cur.remainingFor(1), 1u);
    cur.consume(0);
    cur.consume(1);
    EXPECT_FALSE(cur.isDmaSlot());
    cur.consume(0); // stratum drained -> advances to DMA marker
    EXPECT_TRUE(cur.isDmaSlot());
    cur.consumeDma();
    EXPECT_EQ(cur.remainingFor(1), 1u);
    cur.consume(1);
    EXPECT_TRUE(cur.atEnd());
}

TEST(Stratifier, CutAtExactCounterMaximum)
{
    // A counter at exactly max_per_proc must cut BEFORE the incoming
    // commit is counted: no stratum may ever carry a counter above
    // the maximum (the serialized field would not hold it).
    for (unsigned max : {1u, 3u, 7u}) {
        Stratifier strat(2, max);
        for (unsigned i = 0; i < 3 * max + 1; ++i)
            strat.onCommit(0, sigOf(0x100 + i));
        strat.finish();
        ASSERT_EQ(strat.strata().size(), 4u) << "max=" << max;
        for (const Stratum &s : strat.strata())
            for (const std::uint8_t c : s.counts)
                ASSERT_LE(c, max) << "max=" << max;
        // First three strata are full, the tail holds the remainder.
        EXPECT_EQ(strat.strata()[0].counts[0], max);
        EXPECT_EQ(strat.strata()[3].counts[0], 1u);
    }
}

TEST(Stratifier, CounterValueAtMaxFitsCounterBits)
{
    // The packed field is counterBits() wide; the maximum counter
    // value must round-trip through it at the exact boundary.
    for (unsigned max : {1u, 2u, 3u, 4u, 7u, 8u, 15u}) {
        Stratifier strat(1, max);
        EXPECT_LE(max, (1u << strat.counterBits()) - 1u)
            << "max=" << max;
        for (unsigned i = 0; i < max; ++i)
            strat.onCommit(0, sigOf(0x200 + i));
        strat.finish();
        ASSERT_EQ(strat.strata().size(), 1u);
        EXPECT_EQ(strat.strata()[0].counts[0], max);
    }
}

TEST(Stratifier, OverflowCutSkipsConflictCheck)
{
    // When the overflow rule fires, the incoming chunk starts a fresh
    // stratum even though it also conflicts with another SR — one
    // cut, not two.
    Stratifier strat(2, 1);
    strat.onCommit(0, sigOf(0x42));
    strat.onCommit(1, sigOf(0x42)); // conflict with proc 0 -> cut
    strat.onCommit(1, sigOf(0x43)); // overflow (counter at max) -> cut
    strat.finish();
    ASSERT_EQ(strat.strata().size(), 3u);
    EXPECT_EQ(strat.strata()[0].counts, (std::vector<std::uint8_t>{1, 0}));
    EXPECT_EQ(strat.strata()[1].counts, (std::vector<std::uint8_t>{0, 1}));
    EXPECT_EQ(strat.strata()[2].counts, (std::vector<std::uint8_t>{0, 1}));
}

TEST(StrataCursor, ConsumeBeyondBudgetThrowsTyped)
{
    std::vector<Stratum> strata;
    strata.push_back(Stratum{{1, 0}, false});

    StrataCursor cur(strata, 2);
    EXPECT_THROW(cur.consume(1), ReplayError); // budget 0 this stratum
    EXPECT_THROW(cur.consume(7), ReplayError); // no such processor
    cur.consume(0);
    EXPECT_TRUE(cur.atEnd());
    EXPECT_THROW(cur.consume(0), ReplayError); // log fully drained
}

TEST(StrataCursor, UndersizedCountVectorThrowsFormatError)
{
    // A corrupt recording can hold a stratum whose counts vector does
    // not match the processor count; indexing it blind would be UB.
    std::vector<Stratum> strata;
    strata.push_back(Stratum{{1}, false});
    EXPECT_THROW(StrataCursor(strata, 4), RecordingFormatError);

    // ...also when it is hit mid-log rather than at construction.
    std::vector<Stratum> ok_then_bad;
    ok_then_bad.push_back(Stratum{{1, 1, 1, 1}, false});
    ok_then_bad.push_back(Stratum{{1, 2, 3}, false});
    StrataCursor cur(ok_then_bad, 4);
    cur.consume(0);
    cur.consume(1);
    cur.consume(2);
    EXPECT_THROW(cur.consume(3), RecordingFormatError);
}

TEST(StrataCursor, AllZeroStrataAreSkipped)
{
    std::vector<Stratum> strata;
    strata.push_back(Stratum{{0, 0}, false});
    strata.push_back(Stratum{{0, 1}, false});
    strata.push_back(Stratum{{0, 0}, false});

    StrataCursor cur(strata, 2);
    EXPECT_FALSE(cur.atEnd());
    EXPECT_EQ(cur.remainingFor(0), 0u);
    EXPECT_EQ(cur.remainingFor(1), 1u);
    cur.consume(1);
    EXPECT_TRUE(cur.atEnd());
}

} // namespace
} // namespace delorean
