/**
 * @file
 * Archive-corruption fault sweep (fuzz tier).
 *
 * The acceptance gate for the store subsystem: >= 500 mutated
 * archives across the recording modes must each be *detected* — a
 * typed ArchiveError naming the failing section (and segment id for
 * payload damage), a rejection from validateRecording, an identical
 * replay (mutation hit dead bytes), or a structured divergence —
 * never a crash, a hang, or a silent wrong answer. Runs under the
 * `fuzz` ctest label.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/recorder.hpp"
#include "store/archive.hpp"
#include "validate/fault_injector.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;
// 60 mutants x 3 kinds x 3 modes = 540 total, over the gate's 500.
constexpr unsigned kMutantsPerKind = 60;

Recording
record(const ModeConfig &mode, std::uint64_t checkpoint_period = 25)
{
    MachineConfig machine;
    machine.numProcs = 4;
    const Workload workload("fft", machine.numProcs, kSeed,
                            WorkloadScale{10});
    return Recorder(mode, machine)
        .record(workload, /*env_seed=*/1, true, {}, checkpoint_period);
}

std::vector<std::uint8_t>
archive(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string s = std::move(out).str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

class ArchiveFaultSweep : public testing::TestWithParam<int>
{
  protected:
    static std::pair<const char *, ModeConfig>
    current()
    {
        switch (GetParam()) {
          case 0:
            return {"order-and-size", ModeConfig::orderAndSize()};
          case 1: {
            ModeConfig strat = ModeConfig::orderOnly();
            strat.stratifyChunksPerProc = 4;
            return {"order-only-strat", strat};
          }
          default:
            return {"picolog", ModeConfig::picoLog()};
        }
    }
};

TEST_P(ArchiveFaultSweep, MutantsNeverCrashHangOrLie)
{
    const auto [name, mode] = current();
    const Recording rec = record(mode);
    ASSERT_GE(rec.checkpoints.size(), 1u) << name;
    const ArchiveFaultSweepSummary sweep =
        runArchiveFaultSweep(rec, kMutantsPerKind, /*seed0=*/kSeed);
    EXPECT_EQ(sweep.total, kMutantsPerKind * kArchiveMutationKinds);
    EXPECT_TRUE(sweep.ok()) << name << ": " << sweep.describe();
    // The sweep must exercise both sides of the contract: most
    // mutants caught by the integrity layers, and at least some
    // surviving to a replay verdict (index-corrupt mutants that hit
    // dead footer bytes, e.g. a statistics field).
    EXPECT_GT(sweep.rejectedAtLoad, 0u) << name;
    EXPECT_GT(sweep.replayedIdentically + sweep.divergenceDetected
                  + sweep.replayErrorReported,
              0u)
        << name;
}

INSTANTIATE_TEST_SUITE_P(Modes, ArchiveFaultSweep, testing::Range(0, 3));

/**
 * Corruption taxonomy: every mutation class must produce its expected
 * typed error. Payload damage names the segment; footer truncation
 * names the trailer or footer; a lying index is caught by the
 * semantic cross-checks or the segment-header comparison.
 */
TEST(ArchiveFaults, SegmentBitFlipNamesTheSegment)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);
    const ArchiveReader intact = ArchiveReader::fromBytes(bytes);

    unsigned typed = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const ArchiveMutantResult r = runArchiveMutant(
            bytes, ArchiveMutationKind::kSegmentBitFlip, seed);
        ASSERT_NE(r.outcome, MutantOutcome::kUnexpected)
            << "seed " << seed << ": " << r.message;
        if (r.outcome == MutantOutcome::kRejectedAtLoad
            && r.typedArchiveError) {
            // A payload flip is caught by the per-segment CRC and
            // must name a real segment.
            EXPECT_LT(r.segment, intact.segments().size())
                << "seed " << seed << ": " << r.message;
            ++typed;
        }
    }
    // CRC-32 catches essentially every payload flip; allow a little
    // slack for flips that land in a segment's dead bytes.
    EXPECT_GE(typed, 35u);
}

TEST(ArchiveFaults, FooterTruncationIsATrailerOrFooterError)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);

    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const std::vector<std::uint8_t> mutant = mutateArchive(
            bytes, ArchiveMutationKind::kFooterTruncate, seed);
        try {
            ArchiveReader::fromBytes(mutant);
            FAIL() << "seed " << seed
                   << ": truncated footer parsed successfully";
        } catch (const ArchiveError &e) {
            EXPECT_TRUE(e.section() == ArchiveSection::kTrailer
                        || e.section() == ArchiveSection::kFooter)
                << "seed " << seed << ": " << e.what();
        }
    }
}

TEST(ArchiveFaults, IndexCorruptionNeverEscapesDetection)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);

    unsigned rejected = 0;
    unsigned survived = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const ArchiveMutantResult r = runArchiveMutant(
            bytes, ArchiveMutationKind::kIndexCorrupt, seed);
        ASSERT_NE(r.outcome, MutantOutcome::kUnexpected)
            << "seed " << seed << ": " << r.message;
        if (r.outcome == MutantOutcome::kRejectedAtLoad)
            ++rejected;
        else
            ++survived;
    }
    // The recompressed-footer mutants pass the CRC layer by
    // construction, so every rejection here came from a semantic
    // cross-check (segment-header comparison, config validation,
    // checkpoint/GCC agreement, ...). Both buckets must be hit.
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(survived, 0u);
}

TEST(ArchiveFaults, MutationsAreDeterministic)
{
    const Recording rec = record(ModeConfig::picoLog());
    const std::vector<std::uint8_t> bytes = archive(rec);
    for (unsigned k = 0; k < kArchiveMutationKinds; ++k) {
        const auto kind = static_cast<ArchiveMutationKind>(k);
        EXPECT_EQ(mutateArchive(bytes, kind, 7),
                  mutateArchive(bytes, kind, 7))
            << archiveMutationKindName(kind);
        EXPECT_NE(mutateArchive(bytes, kind, 7), bytes)
            << archiveMutationKindName(kind);
    }
}

TEST(ArchiveFaults, SweepAccountingAddsUp)
{
    const Recording rec = record(ModeConfig::orderOnly(), 40);
    const ArchiveFaultSweepSummary sweep =
        runArchiveFaultSweep(rec, 4, 99);
    EXPECT_EQ(sweep.total, 4u * kArchiveMutationKinds);
    EXPECT_EQ(sweep.total,
              sweep.rejectedAtLoad + sweep.replayedIdentically
                  + sweep.divergenceDetected + sweep.replayErrorReported
                  + sweep.unexpected);
    EXPECT_EQ(sweep.unexpectedResults.size(), sweep.unexpected);
    EXPECT_FALSE(sweep.describe().empty());
}

} // namespace
} // namespace delorean
