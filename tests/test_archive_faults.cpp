/**
 * @file
 * Archive-corruption fault sweep (fuzz tier).
 *
 * The acceptance gate for the store subsystem: >= 500 mutated
 * archives across the recording modes must each be *detected* — a
 * typed ArchiveError naming the failing section (and segment id for
 * payload damage), a rejection from validateRecording, an identical
 * replay (mutation hit dead bytes), or a structured divergence —
 * never a crash, a hang, or a silent wrong answer. Runs under the
 * `fuzz` ctest label.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/recorder.hpp"
#include "store/archive.hpp"
#include "validate/fault_injector.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;
// 60 mutants x 3 kinds x 3 modes = 540 total, over the gate's 500.
constexpr unsigned kMutantsPerKind = 60;

Recording
record(const ModeConfig &mode, std::uint64_t checkpoint_period = 25)
{
    MachineConfig machine;
    machine.numProcs = 4;
    const Workload workload("fft", machine.numProcs, kSeed,
                            WorkloadScale{10});
    return Recorder(mode, machine)
        .record(workload, /*env_seed=*/1, true, {}, checkpoint_period);
}

std::vector<std::uint8_t>
archive(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string s = std::move(out).str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

class ArchiveFaultSweep : public testing::TestWithParam<int>
{
  protected:
    static std::pair<const char *, ModeConfig>
    current()
    {
        switch (GetParam()) {
          case 0:
            return {"order-and-size", ModeConfig::orderAndSize()};
          case 1: {
            ModeConfig strat = ModeConfig::orderOnly();
            strat.stratifyChunksPerProc = 4;
            return {"order-only-strat", strat};
          }
          default:
            return {"picolog", ModeConfig::picoLog()};
        }
    }
};

TEST_P(ArchiveFaultSweep, MutantsNeverCrashHangOrLie)
{
    const auto [name, mode] = current();
    const Recording rec = record(mode);
    ASSERT_GE(rec.checkpoints.size(), 1u) << name;
    const ArchiveFaultSweepSummary sweep =
        runArchiveFaultSweep(rec, kMutantsPerKind, /*seed0=*/kSeed);
    EXPECT_EQ(sweep.total, kMutantsPerKind * kArchiveMutationKinds);
    EXPECT_TRUE(sweep.ok()) << name << ": " << sweep.describe();
    // The sweep must exercise both sides of the contract: most
    // mutants caught by the integrity layers, and at least some
    // surviving to a replay verdict (index-corrupt mutants that hit
    // dead footer bytes, e.g. a statistics field).
    EXPECT_GT(sweep.rejectedAtLoad, 0u) << name;
    EXPECT_GT(sweep.replayedIdentically + sweep.divergenceDetected
                  + sweep.replayErrorReported,
              0u)
        << name;
}

TEST_P(ArchiveFaultSweep, MmapPathFencesMutantsIdentically)
{
    // Same 540 mutants, pushed through fromFile with mmap enabled:
    // the zero-copy reader must classify every mutant exactly like
    // the buffered reader — same outcome buckets, zero unexpected.
    const auto [name, mode] = current();
    const Recording rec = record(mode);
    const ArchiveFaultSweepSummary buffered = runArchiveFaultSweep(
        rec, kMutantsPerKind, /*seed0=*/kSeed, {},
        ArchiveLoadPath::kBuffered);
    const ArchiveFaultSweepSummary mapped = runArchiveFaultSweep(
        rec, kMutantsPerKind, /*seed0=*/kSeed, {},
        ArchiveLoadPath::kMmapFile);
    EXPECT_TRUE(mapped.ok()) << name << ": " << mapped.describe();
    EXPECT_EQ(mapped.total, buffered.total) << name;
    EXPECT_EQ(mapped.rejectedAtLoad, buffered.rejectedAtLoad) << name;
    EXPECT_EQ(mapped.replayedIdentically, buffered.replayedIdentically)
        << name;
    EXPECT_EQ(mapped.divergenceDetected, buffered.divergenceDetected)
        << name;
    EXPECT_EQ(mapped.replayErrorReported, buffered.replayErrorReported)
        << name;
}

TEST(ArchiveFaultSweepDetector, DetectorLegNeverCrashesHangsOrLies)
{
    // Detector leg of the 540-mutant bucket: corrupted archives fed
    // to a replay with the race detector attached must still end in a
    // typed ArchiveError / RecordingFormatError rejection, an
    // identical replay, or a structured divergence — never a crash or
    // hang. A seeded-race base recording keeps the detector live on
    // every mutant that survives to replay.
    MachineConfig machine;
    machine.numProcs = 4;
    const Workload workload("fft~r2", machine.numProcs, kSeed,
                            WorkloadScale{10});
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine)
            .record(workload, /*env_seed=*/1, true, {}, 25);
    ASSERT_GE(rec.checkpoints.size(), 1u);

    ReplayCheckOptions opts;
    opts.detectRaces = true;
    const ArchiveFaultSweepSummary sweep =
        runArchiveFaultSweep(rec, kMutantsPerKind, /*seed0=*/kSeed,
                             opts);
    EXPECT_EQ(sweep.total, kMutantsPerKind * kArchiveMutationKinds);
    EXPECT_TRUE(sweep.ok()) << sweep.describe();
    EXPECT_GT(sweep.rejectedAtLoad, 0u);
    EXPECT_GT(sweep.replayedIdentically + sweep.divergenceDetected
                  + sweep.replayErrorReported,
              0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ArchiveFaultSweep, testing::Range(0, 3));

/**
 * Ring-directory fault sweep: crash-and-rot shapes against the
 * always-on container. 60 mutants x 3 kinds x 2 modes = 360 rings,
 * each recovered by RingArchiveReader::open and replayed over the
 * retained window — never a crash, a hang, or a silent wrong answer.
 */
class RingFaultSweep : public testing::TestWithParam<int>
{
  protected:
    static std::pair<const char *, ModeConfig>
    current()
    {
        if (GetParam() == 0)
            return {"order-and-size", ModeConfig::orderAndSize()};
        ModeConfig strat = ModeConfig::orderOnly();
        strat.stratifyChunksPerProc = 4;
        return {"order-only-strat", strat};
    }
};

TEST_P(RingFaultSweep, MutantsNeverCrashHangOrLie)
{
    const auto [name, mode] = current();
    const Recording rec = record(mode);
    ASSERT_GE(rec.checkpoints.size(), 2u) << name;

    const RingFaultSweepSummary sweep =
        runRingFaultSweep(rec, kMutantsPerKind,
                          /*seed0=*/kSeed + GetParam());
    EXPECT_EQ(sweep.total, kMutantsPerKind * kRingMutationKinds);
    EXPECT_TRUE(sweep.ok()) << name << ": " << sweep.describe();
    // Both sides of the recovery contract must be exercised: typed
    // rejections (a ring shredded beyond salvage) and successful
    // salvages that replay the surviving window.
    EXPECT_GT(sweep.salvaged, 0u) << name << ": " << sweep.describe();
    EXPECT_GT(sweep.replayedIdentically, 0u)
        << name << ": " << sweep.describe();
}

INSTANTIATE_TEST_SUITE_P(Modes, RingFaultSweep, testing::Range(0, 2));

TEST(RingFaults, EachMutationKindLandsInItsExpectedBucket)
{
    // Taxonomy: a deleted interior segment shrinks the window
    // (salvage, never a crash); a torn tail drops exactly the torn
    // file; a lying index is overruled by the directory scan, so an
    // index-only fault can never reject a ring whose segments are
    // intact.
    const Recording rec = record(ModeConfig::orderOnly());
    ASSERT_GE(rec.checkpoints.size(), 2u);
    const std::string dir =
        (std::filesystem::temp_directory_path()
         / "delorean-ring-taxonomy")
            .string();
    std::filesystem::remove_all(dir);
    writeRing(rec, dir, RingOptions{});

    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const RingMutantResult gap = runRingMutant(
            dir, RingMutationKind::kEvictedGap, seed);
        ASSERT_NE(gap.outcome, MutantOutcome::kUnexpected)
            << "gap seed " << seed << ": " << gap.message;
        EXPECT_TRUE(gap.salvaged) << "gap seed " << seed;

        const RingMutantResult torn = runRingMutant(
            dir, RingMutationKind::kTornTail, seed);
        ASSERT_NE(torn.outcome, MutantOutcome::kUnexpected)
            << "torn seed " << seed << ": " << torn.message;
        EXPECT_TRUE(torn.droppedSegments >= 1
                    || torn.outcome == MutantOutcome::kRejectedAtLoad)
            << "torn seed " << seed;

        const RingMutantResult stale = runRingMutant(
            dir, RingMutationKind::kStaleIndex, seed);
        ASSERT_NE(stale.outcome, MutantOutcome::kUnexpected)
            << "stale seed " << seed << ": " << stale.message;
        EXPECT_NE(stale.outcome, MutantOutcome::kRejectedAtLoad)
            << "stale seed " << seed
            << ": intact segments must survive an index-only fault";
        EXPECT_EQ(stale.droppedSegments, 0u) << "stale seed " << seed;
    }
    std::filesystem::remove_all(dir);
}

/**
 * Corruption taxonomy: every mutation class must produce its expected
 * typed error. Payload damage names the segment; footer truncation
 * names the trailer or footer; a lying index is caught by the
 * semantic cross-checks or the segment-header comparison.
 */
TEST(ArchiveFaults, SegmentBitFlipNamesTheSegment)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);
    const ArchiveReader intact = ArchiveReader::fromBytes(bytes);

    unsigned typed = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const ArchiveMutantResult r = runArchiveMutant(
            bytes, ArchiveMutationKind::kSegmentBitFlip, seed);
        ASSERT_NE(r.outcome, MutantOutcome::kUnexpected)
            << "seed " << seed << ": " << r.message;
        if (r.outcome == MutantOutcome::kRejectedAtLoad
            && r.typedArchiveError) {
            // A payload flip is caught by the per-segment CRC and
            // must name a real segment.
            EXPECT_LT(r.segment, intact.segments().size())
                << "seed " << seed << ": " << r.message;
            ++typed;
        }
    }
    // CRC-32 catches essentially every payload flip; allow a little
    // slack for flips that land in a segment's dead bytes.
    EXPECT_GE(typed, 35u);
}

TEST(ArchiveFaults, FooterTruncationIsATrailerOrFooterError)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);

    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const std::vector<std::uint8_t> mutant = mutateArchive(
            bytes, ArchiveMutationKind::kFooterTruncate, seed);
        try {
            ArchiveReader::fromBytes(mutant);
            FAIL() << "seed " << seed
                   << ": truncated footer parsed successfully";
        } catch (const ArchiveError &e) {
            EXPECT_TRUE(e.section() == ArchiveSection::kTrailer
                        || e.section() == ArchiveSection::kFooter)
                << "seed " << seed << ": " << e.what();
        }
    }
}

TEST(ArchiveFaults, IndexCorruptionNeverEscapesDetection)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);

    unsigned rejected = 0;
    unsigned survived = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const ArchiveMutantResult r = runArchiveMutant(
            bytes, ArchiveMutationKind::kIndexCorrupt, seed);
        ASSERT_NE(r.outcome, MutantOutcome::kUnexpected)
            << "seed " << seed << ": " << r.message;
        if (r.outcome == MutantOutcome::kRejectedAtLoad)
            ++rejected;
        else
            ++survived;
    }
    // The recompressed-footer mutants pass the CRC layer by
    // construction, so every rejection here came from a semantic
    // cross-check (segment-header comparison, config validation,
    // checkpoint/GCC agreement, ...). Both buckets must be hit.
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(survived, 0u);
}

/** One reader path's verdict on a file, for cross-path comparison. */
struct LoadOutcome
{
    bool ok = false;
    bool archiveError = false;
    bool formatError = false;
    ArchiveSection section = ArchiveSection::kFileHeader;
    std::size_t segment = ArchiveError::kNoSegment;
    std::string message;

    bool
    operator==(const LoadOutcome &other) const
    {
        return ok == other.ok && archiveError == other.archiveError
               && formatError == other.formatError
               && section == other.section && segment == other.segment
               && message == other.message;
    }
};

LoadOutcome
loadFileOutcome(const std::string &path, bool mmap_reads)
{
    LoadOutcome o;
    try {
        ArchiveReader::fromFile(path, ArchiveIoOptions{1, mmap_reads})
            .readAll();
        o.ok = true;
    } catch (const ArchiveError &e) {
        o.archiveError = true;
        o.section = e.section();
        o.segment = e.segment();
        o.message = e.what();
    } catch (const RecordingFormatError &e) {
        o.formatError = true;
        o.message = e.what();
    }
    return o;
}

std::string
writeTemp(const std::vector<std::uint8_t> &bytes, const char *name)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
}

/**
 * Failure edges of the zero-copy read path: a 0-byte file, files
 * truncated mid-segment and mid-footer, and a CRC-corrupt payload
 * must each produce the *same* typed error through the mmap reader
 * as through the buffered one (which itself matches fromBytes — the
 * sweep above certifies that).
 */
TEST(ArchiveFaults, MmapFailureEdgesMatchBufferedReads)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const std::vector<std::uint8_t> bytes = archive(rec);
    const ArchiveReader intact = ArchiveReader::fromBytes(bytes);
    ASSERT_GE(intact.segments().size(), 2u);

    // 0-byte file: MappedFile maps it as an empty span, so both
    // paths reject it as a header error, not an open failure.
    {
        const std::string path = writeTemp({}, "edge_empty.dla");
        const LoadOutcome mapped = loadFileOutcome(path, true);
        const LoadOutcome buffered = loadFileOutcome(path, false);
        EXPECT_TRUE(mapped.archiveError) << mapped.message;
        EXPECT_EQ(mapped.section, ArchiveSection::kFileHeader);
        EXPECT_TRUE(mapped == buffered) << mapped.message << " vs "
                                        << buffered.message;
        std::remove(path.c_str());
    }

    // Truncated mid-segment: cut inside segment 1's payload.
    {
        const std::size_t cut = static_cast<std::size_t>(
            intact.segments()[1].fileOffset + 40 + 3);
        ASSERT_LT(cut, bytes.size());
        const std::vector<std::uint8_t> cut_bytes(
            bytes.begin(),
            bytes.begin() + static_cast<std::ptrdiff_t>(cut));
        const std::string path =
            writeTemp(cut_bytes, "edge_midseg.dla");
        const LoadOutcome mapped = loadFileOutcome(path, true);
        const LoadOutcome buffered = loadFileOutcome(path, false);
        EXPECT_TRUE(mapped.archiveError) << mapped.message;
        EXPECT_EQ(mapped.section, ArchiveSection::kTrailer);
        EXPECT_TRUE(mapped == buffered) << mapped.message << " vs "
                                        << buffered.message;
        std::remove(path.c_str());
    }

    // Truncated mid-footer: drop the last 8 trailer bytes.
    {
        const std::vector<std::uint8_t> cut_bytes(
            bytes.begin(),
            bytes.begin()
                + static_cast<std::ptrdiff_t>(bytes.size() - 8));
        const std::string path =
            writeTemp(cut_bytes, "edge_midfooter.dla");
        const LoadOutcome mapped = loadFileOutcome(path, true);
        const LoadOutcome buffered = loadFileOutcome(path, false);
        EXPECT_TRUE(mapped.archiveError) << mapped.message;
        EXPECT_EQ(mapped.section, ArchiveSection::kTrailer);
        EXPECT_TRUE(mapped == buffered) << mapped.message << " vs "
                                        << buffered.message;
        std::remove(path.c_str());
    }

    // CRC-corrupt payload: flip one byte in segment 0's payload. The
    // file parses; readAll must fail with a typed segment error — on
    // both paths, with the same segment id.
    {
        std::vector<std::uint8_t> corrupt = bytes;
        corrupt[static_cast<std::size_t>(
            intact.segments()[0].fileOffset + 40)] ^= 0x10;
        const std::string path =
            writeTemp(corrupt, "edge_crc.dla");
        const LoadOutcome mapped = loadFileOutcome(path, true);
        const LoadOutcome buffered = loadFileOutcome(path, false);
        EXPECT_TRUE(mapped.archiveError) << mapped.message;
        EXPECT_EQ(mapped.section, ArchiveSection::kSegment);
        EXPECT_EQ(mapped.segment, 0u);
        EXPECT_TRUE(mapped == buffered) << mapped.message << " vs "
                                        << buffered.message;
        std::remove(path.c_str());
    }
}

TEST(ArchiveFaults, MutationsAreDeterministic)
{
    const Recording rec = record(ModeConfig::picoLog());
    const std::vector<std::uint8_t> bytes = archive(rec);
    for (unsigned k = 0; k < kArchiveMutationKinds; ++k) {
        const auto kind = static_cast<ArchiveMutationKind>(k);
        EXPECT_EQ(mutateArchive(bytes, kind, 7),
                  mutateArchive(bytes, kind, 7))
            << archiveMutationKindName(kind);
        EXPECT_NE(mutateArchive(bytes, kind, 7), bytes)
            << archiveMutationKindName(kind);
    }
}

TEST(ArchiveFaults, SweepAccountingAddsUp)
{
    const Recording rec = record(ModeConfig::orderOnly(), 40);
    const ArchiveFaultSweepSummary sweep =
        runArchiveFaultSweep(rec, 4, 99);
    EXPECT_EQ(sweep.total, 4u * kArchiveMutationKinds);
    EXPECT_EQ(sweep.total,
              sweep.rejectedAtLoad + sweep.replayedIdentically
                  + sweep.divergenceDetected + sweep.replayErrorReported
                  + sweep.unexpected);
    EXPECT_EQ(sweep.unexpectedResults.size(), sweep.unexpected);
    EXPECT_FALSE(sweep.describe().empty());
}

} // namespace
} // namespace delorean
