/**
 * @file
 * Unit tests for Bulk-style signatures (signature/signature.hpp).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "signature/signature.hpp"

namespace delorean
{
namespace
{

TEST(Signature, StartsEmpty)
{
    Signature s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.popCount(), 0u);
}

TEST(Signature, NoFalseNegatives)
{
    Signature s;
    Xoshiro256ss rng(1);
    std::vector<Addr> lines;
    for (int i = 0; i < 64; ++i)
        lines.push_back(rng.next() >> 5);
    for (const Addr l : lines)
        s.insert(l);
    for (const Addr l : lines)
        EXPECT_TRUE(s.mayContain(l));
}

TEST(Signature, MostlyRejectsAbsentLines)
{
    Signature s;
    Xoshiro256ss rng(2);
    for (int i = 0; i < 32; ++i)
        s.insert(rng.next() >> 5);
    int false_positives = 0;
    const int probes = 10000;
    for (int i = 0; i < probes; ++i)
        false_positives += s.mayContain(rng.next() | (1ull << 60));
    // 32 lines * 4 hashes in 2048 bits: FP rate well under 1%.
    EXPECT_LT(false_positives, probes / 100);
}

TEST(Signature, IntersectsDetectsSharedLine)
{
    Signature a, b;
    a.insert(0x1000);
    b.insert(0x2000);
    EXPECT_FALSE(a.intersects(b));
    b.insert(0x1000);
    EXPECT_TRUE(a.intersects(b));
}

TEST(Signature, IntersectionIsSymmetric)
{
    Signature a, b;
    Xoshiro256ss rng(3);
    for (int i = 0; i < 20; ++i)
        a.insert(rng.next() >> 8);
    for (int i = 0; i < 20; ++i)
        b.insert(rng.next() >> 8);
    EXPECT_EQ(a.intersects(b), b.intersects(a));
}

TEST(Signature, UnionContainsBoth)
{
    Signature a, b;
    a.insert(10);
    b.insert(20);
    a.unionWith(b);
    EXPECT_TRUE(a.mayContain(10));
    EXPECT_TRUE(a.mayContain(20));
}

TEST(Signature, ClearEmpties)
{
    Signature s;
    s.insert(123);
    EXPECT_FALSE(s.empty());
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.popCount(), 0u);
}

TEST(Signature, PopCountBounded)
{
    Signature s;
    s.insert(42);
    EXPECT_LE(s.popCount(), Signature::kBanks);
    EXPECT_GE(s.popCount(), 1u);
}

TEST(Signature, LocalityKeepsHighBanksSparse)
{
    // Bulk-style banked signatures: inserting a run of consecutive
    // lines sets far fewer bits than random hashing would, because the
    // high-shift banks advance slowly.
    Signature s;
    for (Addr line = 0x8000; line < 0x8000 + 256; ++line)
        s.insert(line);
    EXPECT_LT(s.popCount(), 256u + 64 + 16 + 2);
}

TEST(Signature, DisjointRegionsDoNotConflict)
{
    // Chunks touching different address regions (e.g. two processors'
    // private heaps) must not produce false conflicts.
    Signature a, b;
    for (Addr k = 0; k < 200; ++k) {
        a.insert(0x1000000 + k);
        b.insert(0x2000000 + k);
    }
    EXPECT_FALSE(a.intersects(b));
}

TEST(Signature, EqualityByContent)
{
    Signature a, b;
    a.insert(5);
    b.insert(5);
    EXPECT_EQ(a, b);
    b.insert(6);
    EXPECT_NE(a, b);
}

TEST(Signature, SmallerSignaturesHaveMoreFalsePositives)
{
    SignatureT<512> small;
    SignatureT<2048> big;
    Xoshiro256ss rng(9);
    std::vector<Addr> inserted;
    for (int i = 0; i < 48; ++i) {
        const Addr l = rng.next() >> 4;
        inserted.push_back(l);
        small.insert(l);
        big.insert(l);
    }
    int fp_small = 0, fp_big = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr probe = rng.next() | (1ull << 61);
        fp_small += small.mayContain(probe);
        fp_big += big.mayContain(probe);
    }
    EXPECT_GT(fp_small, fp_big);
}

TEST(SignaturePair, ConflictsWithWrite)
{
    SignaturePair running;
    running.read.insert(100);
    running.write.insert(200);

    Signature committing_w;
    committing_w.insert(300);
    EXPECT_FALSE(running.conflictsWithWrite(committing_w));

    Signature raw;
    raw.insert(100); // write hits the running chunk's read set
    EXPECT_TRUE(running.conflictsWithWrite(raw));

    Signature waw;
    waw.insert(200); // write hits the running chunk's write set
    EXPECT_TRUE(running.conflictsWithWrite(waw));
}

TEST(SignaturePair, ClearBoth)
{
    SignaturePair p;
    p.read.insert(1);
    p.write.insert(2);
    p.clear();
    EXPECT_TRUE(p.read.empty());
    EXPECT_TRUE(p.write.empty());
}

// The summary filter is only allowed to short-circuit, never to
// change the answer: intersects() must agree with the unfiltered
// word walk on every pair, across densities from near-empty to
// saturated.
TEST(Signature, SummaryFilterMatchesWordWalk)
{
    Xoshiro256ss rng(11);
    for (unsigned trial = 0; trial < 400; ++trial) {
        Signature a, b;
        const unsigned na = 1 + static_cast<unsigned>(rng.next() % 200);
        const unsigned nb = 1 + static_cast<unsigned>(rng.next() % 200);
        const Addr base = rng.next() % 4096;
        for (unsigned i = 0; i < na; ++i)
            a.insert(base + rng.next() % 512);
        for (unsigned i = 0; i < nb; ++i)
            b.insert(rng.next() % 8192);
        EXPECT_EQ(a.intersects(b), a.intersectsWords(b));
        EXPECT_EQ(b.intersects(a), b.intersectsWords(a));
    }
}

// A summary reject must imply a word-walk miss (conservatism: the
// filter may only produce false *hits*, never false rejects).
TEST(Signature, SummaryRejectImpliesNoIntersection)
{
    Xoshiro256ss rng(12);
    for (unsigned trial = 0; trial < 400; ++trial) {
        Signature a, b;
        for (unsigned i = 0; i < 40; ++i) {
            a.insert(rng.next() % 2048);
            b.insert(rng.next() % 2048);
        }
        if (!a.summaryIntersects(b)) {
            EXPECT_FALSE(a.intersectsWords(b));
        }
    }
}

// Epoch-versioned clear: a cleared signature behaves exactly like a
// freshly constructed one, including equality, union and
// intersection, no matter how many clears preceded it.
TEST(Signature, EpochClearBehavesLikeFresh)
{
    Xoshiro256ss rng(13);
    Signature reused;
    for (unsigned cycle = 0; cycle < 300; ++cycle) {
        for (unsigned i = 0; i < 30; ++i)
            reused.insert(rng.next() % 4096);
        reused.clear();
        EXPECT_TRUE(reused.empty());
        EXPECT_EQ(reused.popCount(), 0u);

        // Re-populate and compare against a genuinely fresh one.
        Signature fresh;
        const Addr base = rng.next() % 1024;
        for (unsigned i = 0; i < 8; ++i) {
            reused.insert(base + i);
            fresh.insert(base + i);
        }
        EXPECT_TRUE(reused == fresh);
        EXPECT_TRUE(reused.mayContain(base));
        EXPECT_TRUE(reused.intersects(fresh));
        EXPECT_EQ(reused.popCount(), fresh.popCount());
        reused.clear();
    }
}

// Stale pre-clear words must not leak through unionWith either.
TEST(Signature, EpochClearThenUnion)
{
    Signature src, dst;
    src.insert(100);
    src.insert(200);
    src.clear();
    src.insert(300);

    dst.unionWith(src);
    Signature expect;
    expect.insert(300);
    EXPECT_TRUE(dst == expect);

    Signature old_lines;
    old_lines.insert(100);
    old_lines.insert(200);
    EXPECT_FALSE(dst.intersects(old_lines));
}

// The per-word epoch tags are 32-bit; when clear() wraps the counter
// back to the starting epoch, the hard reset must keep words from
// 2^32 clears ago dead. forceEpochForTest jumps to the wrap point.
TEST(Signature, EpochWraparoundHardReset)
{
    Signature s;
    s.insert(100); // words tagged with the initial epoch (0)
    s.insert(200);

    s.forceEpochForTest(0xFFFFFFFFu);
    // Words from other epochs read as zero...
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.mayContain(100));
    s.insert(300); // tagged 0xFFFFFFFF
    EXPECT_TRUE(s.mayContain(300));

    // ...and the wrapping clear() lands back on the initial epoch,
    // where lines 100/200 were inserted: only the hard reset keeps
    // those words from resurfacing.
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.popCount(), 0u);
    EXPECT_FALSE(s.mayContain(100));
    EXPECT_FALSE(s.mayContain(200));
    EXPECT_FALSE(s.mayContain(300));

    // The signature keeps working normally after the wrap.
    s.insert(100);
    EXPECT_TRUE(s.mayContain(100));
    EXPECT_FALSE(s.mayContain(200));
    Signature other;
    other.insert(100);
    EXPECT_TRUE(s.intersects(other));
}

// forceEpochForTest must leave the summary/word invariant intact:
// the summaries are rebuilt from the words live under the new epoch,
// so the summary fast path stays conservative.
TEST(Signature, ForcedEpochRebuildsSummaries)
{
    Signature s;
    s.insert(0x1234);
    s.forceEpochForTest(0); // current epoch: words stay live
    EXPECT_TRUE(s.mayContain(0x1234));
    EXPECT_FALSE(s.empty());

    Signature probe;
    probe.insert(0x1234);
    EXPECT_TRUE(s.summaryIntersects(probe));
    EXPECT_TRUE(s.intersects(probe));

    s.forceEpochForTest(7); // different epoch: all words stale
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.summaryIntersects(probe));
    EXPECT_FALSE(s.intersects(probe));
}

} // namespace
} // namespace delorean
