/**
 * @file
 * Sharded-arbitration tests: partial-order PI recording (format v2
 * shard masks), the PartialOrderCursor's enablement semantics,
 * fingerprint byte-identity between total-order and partial-order
 * replay across shard counts / worker counts / modes, exact
 * degeneration at shards=1, v1 load compatibility, typed ConfigError
 * rejection of invalid shard counts, archive round trips of masked
 * recordings, and the fault-injection sweep over the mask section.
 */

#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "core/delorean.hpp"
#include "core/serialize.hpp"
#include "sim/parallel_replay.hpp"
#include "store/archive.hpp"
#include "validate/differential.hpp"
#include "validate/fault_injector.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs, unsigned shards)
{
    MachineConfig m;
    m.numProcs = procs;
    m.bulk.numArbiters = shards;
    return m;
}

Recording
recordOne(const ModeConfig &mode, unsigned procs, unsigned shards,
          const char *app = "fft", std::uint64_t checkpoint_period = 0)
{
    Workload w(app, procs, 7, WorkloadScale::tiny());
    return Recorder(mode, machine(procs, shards))
        .record(w, 1, true, {}, checkpoint_period);
}

std::string
serialized(const Recording &rec)
{
    std::ostringstream out;
    saveRecording(rec, out);
    return std::move(out).str();
}

// ---------------------------------------------------------------------
// PartialOrderCursor semantics
// ---------------------------------------------------------------------

TEST(PartialOrderCursor, EnablesExactlyHeadsOfProcAndShardQueues)
{
    PiLog log(2);
    log.enableMasks(2);
    log.appendWithMask(0, 0b01); // entry 0: proc 0, shard 0
    log.appendWithMask(1, 0b10); // entry 1: proc 1, shard 1
    log.appendWithMask(0, 0b11); // entry 2: proc 0, cross-shard

    PartialOrderCursor cur(log, 2, 2);
    EXPECT_EQ(cur.chunkEntryCount(), 3u);
    EXPECT_EQ(cur.chunkPosOf(0), 0u);
    EXPECT_EQ(cur.chunkPosOf(2), 2u);

    // Entries 0 and 1 touch different shards and different procs:
    // both enabled, in either order.
    EXPECT_TRUE(cur.procReady(0));
    EXPECT_TRUE(cur.procReady(1));

    // Entry 2 is blocked twice over: proc 0's program order (entry 0)
    // and shard 1's order (entry 1).
    EXPECT_EQ(cur.consumeProc(1), 1u);
    EXPECT_FALSE(cur.atEnd());
    EXPECT_TRUE(cur.procReady(0));
    EXPECT_EQ(cur.consumeProc(0), 0u);
    EXPECT_TRUE(cur.procReady(0));
    EXPECT_EQ(cur.consumeProc(0), 2u);
    EXPECT_TRUE(cur.atEnd());
}

TEST(PartialOrderCursor, DmaIsItsOwnProgramOrderQueue)
{
    PiLog log(2);
    log.enableMasks(2);
    log.appendWithMask(kDmaProcId, 0b01);
    log.appendWithMask(1, 0b10);
    log.appendWithMask(0, 0b01);

    PartialOrderCursor cur(log, 2, 2);
    // The DMA entry and proc 1's entry are unordered; proc 0's entry
    // waits on shard 0 behind the DMA.
    EXPECT_TRUE(cur.dmaReady());
    EXPECT_TRUE(cur.procReady(1));
    EXPECT_FALSE(cur.procReady(0));
    // DMA entries do not occupy fingerprint commit positions.
    EXPECT_EQ(cur.chunkEntryCount(), 2u);
    EXPECT_EQ(cur.chunkPosOf(1), 0u);
    EXPECT_EQ(cur.chunkPosOf(2), 1u);

    cur.consumeProc(kDmaProcId);
    EXPECT_TRUE(cur.procReady(0));
    EXPECT_EQ(cur.lowWatermark(), 1u);
}

TEST(PartialOrderCursor, LogOrderIsAlwaysConsumable)
{
    // Consuming strictly in log order must never block: the log's own
    // sequence is one valid linearization of the partial order.
    PiLog log(4);
    log.enableMasks(4);
    const std::uint64_t masks[] = {0b0001, 0b0011, 0b0100, 0b1111,
                                   0b0010, 0b1000, 0b0101, 0b0001};
    for (std::size_t i = 0; i < 8; ++i)
        log.appendWithMask(static_cast<ProcId>(i % 4), masks[i]);
    PartialOrderCursor cur(log, 4, 4);
    for (std::size_t i = 0; i < 8; ++i) {
        const ProcId p = log.entryAt(i);
        ASSERT_TRUE(cur.procReady(p)) << "entry " << i;
        EXPECT_EQ(cur.consumeProc(p), i);
        EXPECT_EQ(cur.lowWatermark(), i + 1);
    }
    EXPECT_TRUE(cur.atEnd());
}

// ---------------------------------------------------------------------
// Sharded recording: masks, stats, degeneration, rejection
// ---------------------------------------------------------------------

TEST(ShardedArbiter, RecordsValidMasksAndShardStats)
{
    const Recording rec = recordOne(ModeConfig::orderOnly(), 4, 4);
    ASSERT_TRUE(rec.pi.hasMasks());
    EXPECT_EQ(rec.pi.maskBits(), 4u);
    for (std::size_t i = 0; i < rec.pi.entryCount(); ++i) {
        const std::uint64_t mask = rec.pi.maskAt(i);
        EXPECT_NE(mask, 0u) << "entry " << i;
        EXPECT_LT(mask, 16u) << "entry " << i;
    }
    // Every grant (chunk or DMA) is either shard-local or cross-shard.
    EXPECT_EQ(rec.stats.shardLocalCommits + rec.stats.crossShardCommits,
              rec.pi.entryCount());
}

TEST(ShardedArbiter, ShardOneDegeneratesToTheUnshardedMachine)
{
    // numArbiters = 1 must take the classic single-arbiter code path:
    // identical execution, identical (maskless, v1-accounted) logs,
    // byte-identical serialization vs the default machine.
    const Recording base =
        recordOne(ModeConfig::orderOnly(), 4, 1);
    Workload w("fft", 4, 7, WorkloadScale::tiny());
    MachineConfig unsharded;
    unsharded.numProcs = 4;
    const Recording def =
        Recorder(ModeConfig::orderOnly(), unsharded).record(w, 1);
    EXPECT_FALSE(base.pi.hasMasks());
    EXPECT_EQ(serialized(base), serialized(def));
}

TEST(ShardedArbiter, InvalidShardCountsRaiseTypedConfigError)
{
    Workload w("fft", 4, 7, WorkloadScale::tiny());
    for (const unsigned shards : {0u, 3u, 6u, 128u}) {
        MachineConfig m = machine(4, shards);
        EXPECT_THROW(
            { Recorder(ModeConfig::orderOnly(), m).record(w, 1); },
            ConfigError)
            << "shards=" << shards;
    }
}

TEST(ShardedArbiter, MaskedRecordingRoundTripsByteIdentically)
{
    const Recording rec = recordOne(ModeConfig::orderAndSize(), 4, 4);
    ASSERT_TRUE(rec.pi.hasMasks());
    const std::string first = serialized(rec);
    std::istringstream in(first);
    const Recording loaded = loadRecording(in);
    ASSERT_TRUE(loaded.pi.hasMasks());
    EXPECT_EQ(loaded.machine.bulk.numArbiters, 4u);
    EXPECT_EQ(first, serialized(loaded));
}

TEST(ShardedArbiter, PicoLogKeepsTheGlobalTokenPath)
{
    // PicoLog's predefined commit order leaves nothing for a shard
    // hierarchy to relax; the recording must stay maskless and replay
    // deterministically.
    const Recording rec = recordOne(ModeConfig::picoLog(), 4, 4);
    EXPECT_FALSE(rec.pi.hasMasks());
    const ReplayCheckResult check = checkedReplay(rec);
    EXPECT_TRUE(check.ok) << check.report.describe();
}

// ---------------------------------------------------------------------
// Replay byte-identity: shards x jobs x modes
// ---------------------------------------------------------------------

TEST(ShardedArbiter, TotalAndPartialOrderReplaysAreByteIdentical)
{
    const std::vector<std::pair<std::string, ModeConfig>> modes = {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"picolog", ModeConfig::picoLog()},
    };
    for (const auto &[label, mode] : modes) {
        for (const unsigned shards : {1u, 2u, 4u}) {
            const Recording rec = recordOne(mode, 4, shards);

            // Serial engine, partial order honored (no-op when the
            // recording is maskless).
            ReplayCheckOptions po_opts;
            const ReplayCheckResult po = checkedReplay(rec, po_opts);
            ASSERT_TRUE(po.ok) << label << " shards=" << shards << ": "
                               << po.report.describe();

            // Serial engine pinned to the logged total order.
            ReplayCheckOptions to_opts;
            to_opts.honorPartialOrder = false;
            const ReplayCheckResult to = checkedReplay(rec, to_opts);
            ASSERT_TRUE(to.ok) << label << " shards=" << shards;
            EXPECT_TRUE(po.outcome.fingerprint.matchesExact(
                to.outcome.fingerprint))
                << label << " shards=" << shards;

            // Host-parallel replayer, both orders, 1 and 4 workers.
            for (const unsigned jobs : {1u, 4u}) {
                for (const bool honor : {true, false}) {
                    ParallelReplayOptions popts;
                    popts.jobs = jobs;
                    popts.window = 4;
                    popts.honorPartialOrder = honor;
                    const ReplayCheckResult par =
                        checkedParallelReplay(rec, popts);
                    ASSERT_TRUE(par.ok)
                        << label << " shards=" << shards << " jobs="
                        << jobs << " honor=" << honor << ": "
                        << par.report.describe();
                    EXPECT_TRUE(po.outcome.fingerprint.matchesExact(
                        par.outcome.fingerprint))
                        << label << " shards=" << shards
                        << " jobs=" << jobs << " honor=" << honor;
                }
            }
        }
    }
}

TEST(ShardedArbiter, PartialOrderReplayScalesToManyCores)
{
    // 16 simulated cores, 8 shards: record, then verify both replay
    // paths reproduce the execution byte-identically.
    const Recording rec =
        recordOne(ModeConfig::orderOnly(), 16, 8, "lu");
    ASSERT_TRUE(rec.pi.hasMasks());
    const ReplayCheckResult serial = checkedReplay(rec);
    ASSERT_TRUE(serial.ok) << serial.report.describe();

    ParallelReplayOptions popts;
    popts.window = 16;
    popts.jobs = 4;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    ASSERT_TRUE(par.ok) << par.report.describe();
    EXPECT_TRUE(serial.outcome.fingerprint.matchesExact(
        par.outcome.fingerprint));
}

// ---------------------------------------------------------------------
// v1 backward compatibility
// ---------------------------------------------------------------------

/**
 * Transform a maskless v2 stream into the v1 wire format: version 1,
 * the 11-field machine header (numArbiters dropped), and no PI
 * has-masks flag. Offsets follow the serialized layout exactly —
 * see saveRecording().
 */
std::string
downgradeToV1(const std::string &v2)
{
    const auto u64At = [&v2](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(v2[off + i]))
                 << (8 * i);
        return v;
    };
    std::string v1 = v2;
    // Version field.
    v1[8] = 1;
    // Drop the machine header's 12th u64 (numArbiters) at offset 104.
    v1.erase(104, 8);
    // Drop the PI has-masks flag. In the *v1* stream: 20 u64s of
    // header, then appName, seed, iterations, PI count, PI entries.
    const std::uint64_t name_len = u64At(21 * 8);
    const std::size_t pi_count_off =
        20 * 8 + 8 + static_cast<std::size_t>(name_len) + 16;
    const std::uint64_t pi_count = u64At(pi_count_off + 8);
    v1.erase(pi_count_off + 8
                 + static_cast<std::size_t>(pi_count) * 8,
             8);
    return v1;
}

TEST(ShardedArbiter, LegacyV1RecordingsStillLoadAndReplay)
{
    const Recording rec = recordOne(ModeConfig::orderOnly(), 4, 1);
    ASSERT_FALSE(rec.pi.hasMasks());
    const std::string v1 = downgradeToV1(serialized(rec));

    std::istringstream in(v1);
    const Recording loaded = loadRecording(in);
    EXPECT_EQ(loaded.machine.bulk.numArbiters, 1u);
    EXPECT_FALSE(loaded.pi.hasMasks());
    EXPECT_EQ(loaded.pi.entryCount(), rec.pi.entryCount());

    const ReplayCheckResult check = checkedReplay(loaded);
    EXPECT_TRUE(check.ok) << check.report.describe();
    // Re-serializing writes the current (v2) format, byte-identical
    // to the original v2 image of the same recording.
    EXPECT_EQ(serialized(loaded), serialized(rec));
}

// ---------------------------------------------------------------------
// Store + validate integration
// ---------------------------------------------------------------------

TEST(ShardedArbiter, MaskedRecordingArchivesAndReadsBackIdentically)
{
    const Recording rec =
        recordOne(ModeConfig::orderOnly(), 4, 4, "fft", 40);
    ASSERT_TRUE(rec.pi.hasMasks());
    ASSERT_FALSE(rec.checkpoints.empty());

    std::ostringstream buf;
    writeArchive(rec, buf);
    const std::string bytes = std::move(buf).str();
    const ArchiveReader reader =
        ArchiveReader::fromBytes({bytes.begin(), bytes.end()});

    const Recording back = reader.readAll();
    ASSERT_TRUE(back.pi.hasMasks());
    EXPECT_EQ(serialized(back), serialized(rec));

    // Interval replay off the archive: the reconstructed interval is
    // maskless (total-order), which must load and replay cleanly.
    Workload w("fft", 4, 7, WorkloadScale::tiny());
    Replayer replayer;
    for (std::size_t i = 0; i < reader.checkpointCount(); ++i) {
        const Recording view = reader.readInterval(i);
        EXPECT_FALSE(view.pi.hasMasks());
        const ReplayOutcome out =
            replayer.replayInterval(view, 0, w, 31 + i);
        EXPECT_TRUE(out.deterministicExact)
            << "interval from checkpoint " << i;
    }
}

TEST(ShardedArbiter, FaultSweepCoversMaskMutations)
{
    const Recording rec = recordOne(ModeConfig::orderOnly(), 4, 4);
    ASSERT_TRUE(rec.pi.hasMasks());
    const FaultSweepSummary sweep = runFaultSweep(rec, 4, 20080621);
    EXPECT_TRUE(sweep.ok()) << sweep.describe();
    EXPECT_EQ(sweep.total, 8u * 4u);
}

TEST(ShardedArbiter, DifferentialCheckerRunsShardedLegs)
{
    DifferentialJob job;
    job.app = "fft";
    job.numProcs = 4;
    job.scalePercent = 5;
    job.shards = 4;
    job.checkpointPeriod = 40;
    const DifferentialResult result = DifferentialChecker(2).check(job);
    EXPECT_TRUE(result.ok()) << result.describe();
    const DifferentialRun *oo = result.findRun("order-only");
    ASSERT_NE(oo, nullptr);
    EXPECT_TRUE(oo->partialOrder);
    EXPECT_TRUE(oo->totalOrderReplayOk);
    EXPECT_TRUE(oo->partialMatchesTotal);
}

} // namespace
} // namespace delorean
