/**
 * @file
 * Ring archive (src/store/ring): always-on recording into a rotating
 * segmented directory. Byte-compatibility with the batch container,
 * disk-budget eviction, the bounded replay-start-lag contract, and
 * crash-consistent recovery from torn tails, gaps and stale indices.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <sstream>

#include "core/delorean.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"
#include "trace/app_profile.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

std::vector<std::pair<std::string, ModeConfig>>
allModes()
{
    ModeConfig stratified = ModeConfig::orderOnly();
    stratified.stratifyChunksPerProc = 4;
    return {
        {"OrderAndSize", ModeConfig::orderAndSize()},
        {"OrderOnly", ModeConfig::orderOnly()},
        {"OrderOnlyStratified", stratified},
        {"PicoLog", ModeConfig::picoLog()},
    };
}

std::string
savedBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

std::vector<std::uint8_t>
archiveBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string s = std::move(out).str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/** Fresh scratch ring directory under the test temp dir. */
std::string
ringDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "ring_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

Recording
record(const ModeConfig &mode, const std::string &app,
       std::uint64_t period, RingArchiveWriter *writer = nullptr)
{
    Workload w(app, 4, 9, WorkloadScale::tiny());
    Recorder recorder(mode, machine());
    if (!writer)
        return recorder.record(w, 1, true, {}, period);
    return recorder.record(w, 1, true, {}, period,
                           [writer](const Recording &r) {
                               writer->onCheckpoint(r);
                           });
}

/** Path of the newest (largest-id) segment file in @p dir. */
std::string
newestSegmentPath(const std::string &dir)
{
    std::string best;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) == 0
            && (best.empty()
                || name > std::filesystem::path(best)
                              .filename()
                              .string()))
            best = entry.path().string();
    }
    return best;
}

TEST(Ring, OptionsRejectInfeasibleConfigs)
{
    RingOptions opts;
    opts.checkpointPeriod = 0;
    EXPECT_THROW(opts.validate(), ConfigError);

    opts = RingOptions{};
    opts.budgetBytes = 0;
    EXPECT_THROW(opts.validate(), ConfigError);

    // T < 2P: no checkpoint placement can bound the replay-start lag.
    opts = RingOptions{};
    opts.checkpointPeriod = 50;
    opts.maxReplayLag = 99;
    EXPECT_THROW(opts.validate(), ConfigError);
    EXPECT_THROW(RingArchiveWriter(ringDir("infeasible"), opts),
                 ConfigError);

    // T == 2P is the tightest feasible bound; 0 resolves to it.
    opts.maxReplayLag = 100;
    EXPECT_NO_THROW(opts.validate());
    opts.maxReplayLag = 0;
    EXPECT_EQ(opts.resolvedLag(), 100u);
    EXPECT_NO_THROW(opts.validate());
}

TEST(Ring, CleanRoundTripMatchesBatchArchiveAllModes)
{
    // With a budget large enough to evict nothing, a cleanly closed
    // ring is just the batch archive in directory clothing: readAll
    // and every interval view must be byte-identical.
    for (const auto &[mode_name, mode] : allModes()) {
        const std::string dir = ringDir("clean_" + mode_name);
        RingOptions opts;
        opts.budgetBytes = 1u << 30;
        opts.checkpointPeriod = 20;
        RingArchiveWriter writer(dir, opts);
        const Recording rec = record(mode, "radix", 20, &writer);
        writer.close(rec);
        EXPECT_TRUE(writer.closed());
        ASSERT_GE(rec.checkpoints.size(), 2u) << mode_name;

        const RingWriterStats stats = writer.stats();
        EXPECT_EQ(stats.segmentsCut, rec.checkpoints.size() + 1);
        EXPECT_EQ(stats.segmentsEvicted, 0u);
        EXPECT_LE(stats.worstStartLag, opts.resolvedLag())
            << mode_name;

        ASSERT_TRUE(RingArchiveReader::looksLikeRing(dir));
        const RingArchiveReader ring = RingArchiveReader::open(dir);
        EXPECT_TRUE(ring.recovery().usedIndex) << mode_name;
        EXPECT_TRUE(ring.recovery().clean) << mode_name;
        EXPECT_EQ(ring.recovery().droppedSegments, 0u);
        EXPECT_EQ(ring.appName(), "radix");
        EXPECT_EQ(ring.checkpointCount(), rec.checkpoints.size());

        EXPECT_EQ(savedBytes(ring.readAll()), savedBytes(rec))
            << mode_name;

        const ArchiveReader batch =
            ArchiveReader::fromBytes(archiveBytes(rec));
        for (std::size_t i = 0; i < ring.checkpointCount(); ++i) {
            EXPECT_EQ(ring.checkpointAt(i).gcc,
                      batch.checkpointAt(i).gcc);
            EXPECT_EQ(savedBytes(ring.readInterval(i)),
                      savedBytes(batch.readInterval(i)))
                << mode_name << " checkpoint " << i;
        }
        EXPECT_EQ(savedBytes(ring.readInterval(0, 2)),
                  savedBytes(batch.readInterval(0, 2)))
            << mode_name;
        std::filesystem::remove_all(dir);
    }
}

TEST(Ring, WriteRingConvenienceAndMisuse)
{
    const std::string dir = ringDir("misuse");
    const Recording rec = record(ModeConfig::orderOnly(), "fft", 20);
    const RingWriterStats stats = writeRing(rec, dir, RingOptions{});
    EXPECT_EQ(stats.segmentsCut, rec.checkpoints.size() + 1);

    RingArchiveWriter writer(ringDir("misuse2"), RingOptions{});
    writer.close(rec);
    EXPECT_THROW(writer.onCheckpoint(rec), std::logic_error);
    EXPECT_THROW(writer.close(rec), std::logic_error);

    Recording shuffled = rec;
    ASSERT_GE(shuffled.checkpoints.size(), 2u);
    std::swap(shuffled.checkpoints.front(),
              shuffled.checkpoints.back());
    RingArchiveWriter strict(ringDir("misuse3"), RingOptions{});
    EXPECT_THROW(strict.onCheckpoint(shuffled),
                 RecordingFormatError);
    std::filesystem::remove_all(dir);
}

TEST(Ring, EvictionKeepsNewestWindowDecodable)
{
    // A budget that can hold only a few segments: old history must be
    // evicted, every retained interval must still match the batch
    // archive's view of the same checkpoints, and the replay-start
    // lag contract must hold throughout.
    const std::string dir = ringDir("evict");
    RingOptions opts;
    // Segment files are dominated by their two checkpoint images
    // (~100 KiB each here): this holds roughly the newest 3-4
    // segments of a ~5 MiB run.
    opts.budgetBytes = 512u << 10;
    opts.checkpointPeriod = 10;
    RingArchiveWriter writer(dir, opts);
    const Recording rec =
        record(ModeConfig::orderAndSize(), "ocean", 10, &writer);
    writer.close(rec);
    ASSERT_GE(rec.checkpoints.size(), 6u);

    const RingWriterStats stats = writer.stats();
    EXPECT_GT(stats.segmentsEvicted, 0u);
    EXPECT_LE(stats.worstStartLag, opts.resolvedLag());
    EXPECT_LE(stats.maxCheckpointSpacing, opts.checkpointPeriod);

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    // Over budget only when the protected newest segment alone is.
    if (ring.segments().size() > 1)
        EXPECT_LE(stats.liveBytes, opts.budgetBytes);
    EXPECT_TRUE(ring.recovery().clean);
    EXPECT_GT(ring.startGcc(), 0u);
    ASSERT_GE(ring.checkpointCount(), 2u);

    // Ring checkpoints are a contiguous suffix of the recording's;
    // views must agree with the batch archive at the same GCCs.
    const ArchiveReader batch =
        ArchiveReader::fromBytes(archiveBytes(rec));
    const std::uint64_t first_gcc = ring.checkpointAt(0).gcc;
    std::size_t off = 0;
    while (off < batch.checkpointCount()
           && batch.checkpointAt(off).gcc != first_gcc)
        ++off;
    ASSERT_LT(off, batch.checkpointCount());
    for (std::size_t i = 0; i < ring.checkpointCount(); ++i) {
        ASSERT_EQ(ring.checkpointAt(i).gcc,
                  batch.checkpointAt(off + i).gcc);
        EXPECT_EQ(savedBytes(ring.readInterval(i)),
                  savedBytes(batch.readInterval(off + i)))
            << "checkpoint " << i;
    }

    // The whole run is gone; say so with a typed error.
    EXPECT_THROW(ring.readAll(), CheckpointOutOfRangeError);
    std::filesystem::remove_all(dir);
}

TEST(Ring, TimeTravelSeekAndReplay)
{
    const std::string dir = ringDir("seek");
    RingOptions opts;
    opts.checkpointPeriod = 15;
    RingArchiveWriter writer(dir, opts);
    Workload w("radix", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(
        w, 1, true, {}, 15,
        [&writer](const Recording &r) { writer.onCheckpoint(r); });
    writer.close(rec);
    ASSERT_GE(rec.checkpoints.size(), 3u);

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    const std::vector<std::uint64_t> gccs = ring.checkpointGccs();

    // Exact hits, between-checkpoint cycles, and beyond-the-end all
    // resolve to the newest checkpoint at or before the cycle.
    EXPECT_EQ(ring.newestCheckpointAtOrBefore(gccs[0]), 0u);
    EXPECT_EQ(ring.newestCheckpointAtOrBefore(gccs[1] + 1), 1u);
    EXPECT_EQ(ring.newestCheckpointAtOrBefore(~0ull),
              gccs.size() - 1);
    EXPECT_THROW(ring.newestCheckpointAtOrBefore(gccs[0] - 1),
                 CheckpointOutOfRangeError);

    // Time-travel replay: seek, decode the bounded interval, replay
    // forward and judge against the stop checkpoint.
    const std::size_t idx =
        ring.newestCheckpointAtOrBefore(gccs[1] + 3);
    const Recording view = ring.readInterval(idx, idx + 1);
    ASSERT_EQ(view.checkpoints.size(), 2u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replayInterval(
        view, 0, w, 77, perturb(5), &view.checkpoints[1]);
    EXPECT_TRUE(out.deterministicExact);
    EXPECT_EQ(out.fingerprint.commits.size(), gccs[2] - gccs[1]);
    std::filesystem::remove_all(dir);
}

TEST(Ring, TornTailSalvageKeepsBoundedReads)
{
    // Kill-mid-segment crash shape: the newest segment file is torn.
    // Recovery must drop exactly that file, flag the ring unclean,
    // and keep every bounded interval over the surviving window
    // byte-identical to the batch archive's.
    const std::string dir = ringDir("torn");
    RingOptions opts;
    opts.checkpointPeriod = 15;
    RingArchiveWriter writer(dir, opts);
    const Recording rec =
        record(ModeConfig::orderAndSize(), "fft", 15, &writer);
    writer.close(rec);
    ASSERT_GE(rec.checkpoints.size(), 3u);

    const std::string tail = newestSegmentPath(dir);
    ASSERT_FALSE(tail.empty());
    const auto size = std::filesystem::file_size(tail);
    ASSERT_GT(size, 8u);
    std::filesystem::resize_file(tail, size - 7);

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    EXPECT_FALSE(ring.recovery().clean);
    EXPECT_FALSE(ring.recovery().usedIndex); // index is stale now
    EXPECT_GE(ring.recovery().droppedSegments, 1u);
    ASSERT_GE(ring.checkpointCount(), 2u);

    // A crashed recorder never knew the run's final stats, so the
    // salvaged views carry zeroed finals; everything else — logs,
    // checkpoints, commits — must be byte-identical to the batch
    // archive's view of the same interval.
    const ArchiveReader batch =
        ArchiveReader::fromBytes(archiveBytes(rec));
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Replayer replayer;
    for (std::size_t i = 0; i + 1 < ring.checkpointCount(); ++i) {
        Recording view = ring.readInterval(i, i + 1);
        const Recording want = batch.readInterval(i, i + 1);
        EXPECT_EQ(view.fingerprint.finalMemHash, 0u);
        view.fingerprint.perProcAcc = want.fingerprint.perProcAcc;
        view.fingerprint.perProcRetired =
            want.fingerprint.perProcRetired;
        view.fingerprint.finalMemHash = want.fingerprint.finalMemHash;
        EXPECT_EQ(savedBytes(view), savedBytes(want))
            << "checkpoint " << i;

        // And the salvaged view replays deterministically.
        const ReplayOutcome out = replayer.replayInterval(
            view, 0, w, 55 + i, perturb(i + 1),
            &view.checkpoints[1]);
        EXPECT_TRUE(out.deterministicExact) << "checkpoint " << i;
    }

    // No finals without a clean close: unbounded reads are refused
    // with a typed error instead of fabricating stats.
    EXPECT_THROW(ring.readInterval(0), ArchiveError);
    EXPECT_THROW(ring.readAll(), ArchiveError);
    std::filesystem::remove_all(dir);
}

TEST(Ring, GapSalvageKeepsNewestContiguousRun)
{
    const std::string dir = ringDir("gap");
    RingOptions opts;
    opts.checkpointPeriod = 12;
    RingArchiveWriter writer(dir, opts);
    const Recording rec =
        record(ModeConfig::orderOnly(), "lu", 12, &writer);
    writer.close(rec);
    const RingArchiveReader before = RingArchiveReader::open(dir);
    const std::size_t total = before.segments().size();
    ASSERT_GE(total, 4u);

    // Punch a hole in the middle: everything older than the gap is
    // unreachable (its end checkpoint chain is broken).
    const std::uint64_t victim = before.segments()[1].segId;
    std::ostringstream name;
    name << "seg-" << std::setw(12) << std::setfill('0') << victim;
    ASSERT_TRUE(
        std::filesystem::remove(dir + "/" + name.str()));

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    EXPECT_FALSE(ring.recovery().usedIndex);
    EXPECT_EQ(ring.segments().size(), total - 2); // victim + older
    EXPECT_EQ(ring.segments().front().segId, victim + 1);
    // Still clean-decodable after the cut: the index no longer
    // matches, so finals are dropped, but bounded reads survive.
    ASSERT_GE(ring.checkpointCount(), 1u);
    EXPECT_NO_THROW(ring.readInterval(0, ring.checkpointCount() - 1));
    std::filesystem::remove_all(dir);
}

TEST(Ring, ZeroCheckpointRecording)
{
    // No checkpoints at all: one tail segment, no replay starting
    // points, but a cleanly closed ring still reconstructs the run.
    const std::string dir = ringDir("zero");
    const Recording rec = record(ModeConfig::picoLog(), "fft", 0);
    ASSERT_TRUE(rec.checkpoints.empty());
    writeRing(rec, dir, RingOptions{});

    const RingArchiveReader ring = RingArchiveReader::open(dir);
    EXPECT_TRUE(ring.recovery().clean);
    EXPECT_EQ(ring.checkpointCount(), 0u);
    EXPECT_EQ(savedBytes(ring.readAll()), savedBytes(rec));
    EXPECT_THROW(ring.readInterval(0), CheckpointOutOfRangeError);
    EXPECT_THROW(ring.newestCheckpointAtOrBefore(~0ull),
                 CheckpointOutOfRangeError);
    std::filesystem::remove_all(dir);
}

TEST(Ring, OpenRejectsNonRingDirectories)
{
    EXPECT_FALSE(RingArchiveReader::looksLikeRing(
        testing::TempDir() + "no_such_ring_dir"));
    EXPECT_THROW(RingArchiveReader::open(testing::TempDir()
                                         + "no_such_ring_dir"),
                 ArchiveError);

    // A directory whose meta is garbage is typed, not UB.
    const std::string dir = ringDir("garbage");
    std::filesystem::create_directories(dir);
    std::ofstream(dir + "/ring.meta", std::ios::binary)
        << "not a ring at all, sorry";
    EXPECT_FALSE(RingArchiveReader::looksLikeRing(dir));
    EXPECT_THROW(RingArchiveReader::open(dir), ArchiveError);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace delorean
