/**
 * @file
 * Fault-injection sweep over serialized recordings (fuzz tier).
 *
 * The PR acceptance gate: >= 500 mutated recordings across all three
 * modes must each either be rejected at load, replay identically, or
 * produce a structured DivergenceReport — never crash, hang or return
 * a silent wrong answer. Runs under the `fuzz` ctest label with a
 * bounded runtime (the replay event budget fences every mutant).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "validate/fault_injector.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;
// 35 mutants x 5 kinds x 3 modes = 525 total, over the gate's 500.
constexpr unsigned kMutantsPerKind = 35;

struct ModeCase
{
    const char *name;
    ModeConfig mode;
};

class FaultSweep : public testing::TestWithParam<int>
{
  protected:
    static ModeCase
    current()
    {
        switch (GetParam()) {
          case 0:
            return {"order-and-size", ModeConfig::orderAndSize()};
          case 1:
            return {"order-only", ModeConfig::orderOnly()};
          default:
            return {"picolog", ModeConfig::picoLog()};
        }
    }

    static Recording
    record(const ModeConfig &mode)
    {
        MachineConfig machine;
        machine.numProcs = 4;
        const Workload workload("fft", machine.numProcs, kSeed,
                                WorkloadScale{10});
        return Recorder(mode, machine).record(workload, /*env_seed=*/1);
    }
};

TEST_P(FaultSweep, MutantsNeverCrashHangOrLie)
{
    const ModeCase mc = current();
    const Recording rec = record(mc.mode);
    const FaultSweepSummary sweep =
        runFaultSweep(rec, kMutantsPerKind, /*seed0=*/kSeed);
    EXPECT_EQ(sweep.total, kMutantsPerKind * kMutationKinds);
    EXPECT_TRUE(sweep.ok()) << mc.name << ": " << sweep.describe();
    // The sweep must actually exercise both sides of the contract:
    // some mutants rejected, some surviving to a verdict.
    EXPECT_GT(sweep.rejectedAtLoad, 0u) << mc.name;
    EXPECT_GT(sweep.replayedIdentically + sweep.divergenceDetected
                  + sweep.replayErrorReported,
              0u)
        << mc.name;
}

INSTANTIATE_TEST_SUITE_P(Modes, FaultSweep, testing::Range(0, 3));

TEST(FaultSweepDetector, DetectorLegNeverCrashesHangsOrLies)
{
    // Detector leg of the sweep: the same no-crash/no-hang contract
    // with the happens-before race detector attached to every replay.
    // The base recording seeds races (fft~r2) and records through 4
    // arbiter shards, so the detector is live on every surviving
    // mutant and the mask mutation kinds have a mask section to hit.
    MachineConfig machine;
    machine.numProcs = 4;
    machine.bulk.numArbiters = 4;
    const Workload workload("fft~r2", machine.numProcs, kSeed,
                            WorkloadScale{10});
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine).record(workload, 1);

    ReplayCheckOptions opts;
    opts.detectRaces = true;
    const FaultSweepSummary sweep =
        runFaultSweep(rec, kMutantsPerKind, /*seed0=*/kSeed, opts);
    EXPECT_EQ(sweep.total, kMutantsPerKind * kMutationKinds);
    EXPECT_TRUE(sweep.ok()) << sweep.describe();
    EXPECT_GT(sweep.rejectedAtLoad, 0u);
    EXPECT_GT(sweep.replayedIdentically + sweep.divergenceDetected
                  + sweep.replayErrorReported,
              0u);
}

TEST(FaultInjector, MutationsAreDeterministic)
{
    const std::string bytes(1024, '\x5A');
    for (unsigned k = 0; k < kMutationKinds; ++k) {
        const auto kind = static_cast<MutationKind>(k);
        EXPECT_EQ(mutateSerialized(bytes, kind, 7),
                  mutateSerialized(bytes, kind, 7));
        // Different seeds must (for this input) give different bytes
        // for at least one kind; weaker per-kind: output stays valid.
        const std::string m = mutateSerialized(bytes, kind, 8);
        EXPECT_LE(m.size(), bytes.size() + 8);
    }
    EXPECT_TRUE(mutateSerialized("", MutationKind::kBitFlip, 1).empty());
}

TEST(FaultInjector, TruncationShortensBitFlipPreservesLength)
{
    const std::string bytes(512, '\x11');
    EXPECT_LT(
        mutateSerialized(bytes, MutationKind::kTruncate, 3).size(),
        bytes.size());
    EXPECT_EQ(
        mutateSerialized(bytes, MutationKind::kBitFlip, 3).size(),
        bytes.size());
    EXPECT_EQ(
        mutateSerialized(bytes, MutationKind::kDuplicateWord, 3).size(),
        bytes.size() + 8);
    EXPECT_EQ(
        mutateSerialized(bytes, MutationKind::kReorderWords, 3).size(),
        bytes.size());
    EXPECT_EQ(
        mutateSerialized(bytes, MutationKind::kHeaderCorrupt, 3).size(),
        bytes.size());
}

TEST(FaultInjector, GarbageInputIsRejectedAtLoad)
{
    // A stream that is not a recording at all must classify as
    // rejected-at-load, not as unexpected.
    const std::string garbage(256, '\x00');
    const MutantResult r =
        runMutant(garbage, MutationKind::kBitFlip, /*seed=*/1);
    EXPECT_EQ(r.outcome, MutantOutcome::kRejectedAtLoad);
}

TEST(FaultInjector, SummaryAccountingAddsUp)
{
    const Recording rec = []() {
        MachineConfig machine;
        machine.numProcs = 2;
        const Workload workload("radix", 2, kSeed, WorkloadScale{5});
        return Recorder(ModeConfig::orderOnly(), machine)
            .record(workload, 1);
    }();
    const FaultSweepSummary sweep = runFaultSweep(rec, 4, 99);
    EXPECT_EQ(sweep.total, 4u * kMutationKinds);
    EXPECT_EQ(sweep.total,
              sweep.rejectedAtLoad + sweep.replayedIdentically
                  + sweep.divergenceDetected + sweep.replayErrorReported
                  + sweep.unexpected);
    EXPECT_EQ(sweep.unexpectedResults.size(), sweep.unexpected);
    EXPECT_FALSE(sweep.describe().empty());
}

} // namespace
} // namespace delorean
