/**
 * @file
 * System checkpointing and interval replay (Appendix B): assuming a
 * checkpoint was taken at GCC = n, DeLorean deterministically replays
 * the interval I(n, m).
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

TEST(Checkpoint, RecordedAtRequestedGccs)
{
    Workload w("barnes", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {10, 30});
    ASSERT_EQ(rec.checkpoints.size(), 2u);
    EXPECT_EQ(rec.checkpoints[0].gcc, 10u);
    EXPECT_EQ(rec.checkpoints[1].gcc, 30u);
    for (const auto &ckpt : rec.checkpoints) {
        EXPECT_TRUE(ckpt.valid());
        EXPECT_EQ(ckpt.contexts.size(), 4u);
        std::uint64_t committed = 0;
        for (const auto c : ckpt.committedChunks)
            committed += c;
        // Chunk commits at the checkpoint == gcc minus DMA commits
        // (none for SPLASH workloads).
        EXPECT_EQ(committed, ckpt.gcc);
    }
}

TEST(Checkpoint, IntervalReplayFromMidpointIsDeterministic)
{
    Workload w("fmm", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {20});
    ASSERT_EQ(rec.checkpoints.size(), 1u);

    Replayer replayer;
    const ReplayOutcome out =
        replayer.replayInterval(rec, 0, w, 77, perturb(3));
    EXPECT_TRUE(out.deterministicExact);
    // The interval contains exactly the commits after GCC=20.
    EXPECT_EQ(out.fingerprint.commits.size(),
              rec.fingerprint.commits.size() - 20u);
}

TEST(Checkpoint, IntervalReplayUnderEveryMode)
{
    for (const ModeConfig mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        Workload w("radix", 4, 9, WorkloadScale::tiny());
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {15});
        ASSERT_EQ(rec.checkpoints.size(), 1u)
            << execModeName(mode.mode);
        Replayer replayer;
        const ReplayOutcome out =
            replayer.replayInterval(rec, 0, w, 5, perturb(9));
        EXPECT_TRUE(out.deterministicExact) << execModeName(mode.mode);
    }
}

TEST(Checkpoint, IntervalReplayWithSystemActivity)
{
    // Interrupts, I/O and DMA crossing the checkpoint boundary.
    Workload w("sweb2005", 4, 9, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {60});
    ASSERT_EQ(rec.checkpoints.size(), 1u);
    ASSERT_GT(rec.io.totalEntries(), 0u);
    Replayer replayer;
    const ReplayOutcome out =
        replayer.replayInterval(rec, 0, w, 13, perturb(21));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(Checkpoint, MultipleCheckpointsReplayFromEach)
{
    Workload w("water-sp", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {5, 25, 50});
    ASSERT_EQ(rec.checkpoints.size(), 3u);
    Replayer replayer;
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i) {
        const ReplayOutcome out =
            replayer.replayInterval(rec, i, w, 3 + i, perturb(i + 1));
        EXPECT_TRUE(out.deterministicExact) << "checkpoint " << i;
    }
}

TEST(Checkpoint, LaterCheckpointMeansShorterReplay)
{
    Workload w("lu", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {5, 60});
    ASSERT_EQ(rec.checkpoints.size(), 2u);
    Replayer replayer;
    const ReplayOutcome early =
        replayer.replayInterval(rec, 0, w, 3);
    const ReplayOutcome late = replayer.replayInterval(rec, 1, w, 3);
    EXPECT_TRUE(early.deterministicExact);
    EXPECT_TRUE(late.deterministicExact);
    EXPECT_LT(late.stats.retiredInstrs, early.stats.retiredInstrs);
    EXPECT_GT(late.fingerprint.commits.size(), 0u);
}

TEST(Checkpoint, PeriodicGccsBoundaries)
{
    // period 0 disables periodic checkpoints entirely.
    EXPECT_TRUE(periodicCheckpointGccs(0, 0).empty());
    EXPECT_TRUE(periodicCheckpointGccs(1000, 0).empty());
    // A period beyond the expected commit count never fires.
    EXPECT_TRUE(periodicCheckpointGccs(9, 10).empty());
    EXPECT_TRUE(periodicCheckpointGccs(0, 1).empty());
    // An endpoint that is an exact multiple is included...
    EXPECT_EQ(periodicCheckpointGccs(10, 10),
              (std::vector<std::uint64_t>{10}));
    EXPECT_EQ(periodicCheckpointGccs(30, 10),
              (std::vector<std::uint64_t>{10, 20, 30}));
    // ...and a non-multiple endpoint rounds down.
    EXPECT_EQ(periodicCheckpointGccs(29, 10),
              (std::vector<std::uint64_t>{10, 20}));
    // period 1 checkpoints after every commit, starting at GCC 1.
    EXPECT_EQ(periodicCheckpointGccs(3, 1),
              (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Checkpoint, PeriodicRecordingTakesCheckpoints)
{
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 25);
    ASSERT_GE(rec.checkpoints.size(), 2u);
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i)
        EXPECT_EQ(rec.checkpoints[i].gcc, (i + 1) * 25u);
    // An explicit GCC that collides with a periodic one yields a
    // single checkpoint, not a duplicate.
    const Recording both = recorder.record(w, 1, true, {25}, 25);
    ASSERT_GE(both.checkpoints.size(), 1u);
    EXPECT_EQ(both.checkpoints[0].gcc, 25u);
    if (both.checkpoints.size() > 1) {
        EXPECT_EQ(both.checkpoints[1].gcc, 50u);
    }
}

TEST(Checkpoint, IntervalReplayStratifiedMode)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 4;
    Workload w("radix", 4, 9, WorkloadScale::tiny());
    Recorder recorder(mode, machine());
    const Recording rec = recorder.record(w, 1, true, {}, 20);
    ASSERT_TRUE(rec.stratified());
    ASSERT_GE(rec.checkpoints.size(), 1u);
    Replayer replayer;
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i) {
        const ReplayOutcome out =
            replayer.replayInterval(rec, i, w, 7, perturb(i + 2));
        // Stratified replay may reorder commits within a stratum, so
        // determinism is judged per processor (matchesPerProc).
        EXPECT_TRUE(out.deterministicPerProc) << "checkpoint " << i;
    }
}

TEST(Checkpoint, BoundedIntervalReplayStopsAtCheckpoint)
{
    Workload w("ocean", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {10, 40});
    ASSERT_EQ(rec.checkpoints.size(), 2u);
    Replayer replayer;
    // Replay only I(10, 40): stop once GCC 40 commits.
    const ReplayOutcome out = replayer.replayInterval(
        rec, 0, w, 11, perturb(5), &rec.checkpoints[1]);
    EXPECT_TRUE(out.deterministicExact);
    EXPECT_EQ(out.fingerprint.commits.size(), 30u);
    // The bounded replay retires strictly less work than the
    // unbounded one from the same checkpoint.
    const ReplayOutcome full =
        replayer.replayInterval(rec, 0, w, 11, perturb(5));
    EXPECT_TRUE(full.deterministicExact);
    EXPECT_LT(out.stats.retiredInstrs, full.stats.retiredInstrs);
}

TEST(Checkpoint, BoundedIntervalFromStartOfRun)
{
    // A bounded replay with no start checkpoint: I(0, m).
    Workload w("fmm", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {30});
    ASSERT_EQ(rec.checkpoints.size(), 1u);
    EngineOptions opts;
    opts.replay = true;
    opts.envSeed = 19;
    opts.stopCheckpoint = &rec.checkpoints[0];
    ChunkEngine engine(w, rec.machine, rec.mode, opts);
    const ReplayOutcome out = engine.replay(rec);
    EXPECT_TRUE(out.deterministicExact);
    EXPECT_EQ(out.fingerprint.commits.size(), 30u);
}

} // namespace
} // namespace delorean
