/**
 * @file
 * System checkpointing and interval replay (Appendix B): assuming a
 * checkpoint was taken at GCC = n, DeLorean deterministically replays
 * the interval I(n, m).
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

TEST(Checkpoint, RecordedAtRequestedGccs)
{
    Workload w("barnes", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {10, 30});
    ASSERT_EQ(rec.checkpoints.size(), 2u);
    EXPECT_EQ(rec.checkpoints[0].gcc, 10u);
    EXPECT_EQ(rec.checkpoints[1].gcc, 30u);
    for (const auto &ckpt : rec.checkpoints) {
        EXPECT_TRUE(ckpt.valid());
        EXPECT_EQ(ckpt.contexts.size(), 4u);
        std::uint64_t committed = 0;
        for (const auto c : ckpt.committedChunks)
            committed += c;
        // Chunk commits at the checkpoint == gcc minus DMA commits
        // (none for SPLASH workloads).
        EXPECT_EQ(committed, ckpt.gcc);
    }
}

TEST(Checkpoint, IntervalReplayFromMidpointIsDeterministic)
{
    Workload w("fmm", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {20});
    ASSERT_EQ(rec.checkpoints.size(), 1u);

    Replayer replayer;
    const ReplayOutcome out =
        replayer.replayInterval(rec, 0, w, 77, perturb(3));
    EXPECT_TRUE(out.deterministicExact);
    // The interval contains exactly the commits after GCC=20.
    EXPECT_EQ(out.fingerprint.commits.size(),
              rec.fingerprint.commits.size() - 20u);
}

TEST(Checkpoint, IntervalReplayUnderEveryMode)
{
    for (const ModeConfig mode :
         {ModeConfig::orderAndSize(), ModeConfig::orderOnly(),
          ModeConfig::picoLog()}) {
        Workload w("radix", 4, 9, WorkloadScale::tiny());
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {15});
        ASSERT_EQ(rec.checkpoints.size(), 1u)
            << execModeName(mode.mode);
        Replayer replayer;
        const ReplayOutcome out =
            replayer.replayInterval(rec, 0, w, 5, perturb(9));
        EXPECT_TRUE(out.deterministicExact) << execModeName(mode.mode);
    }
}

TEST(Checkpoint, IntervalReplayWithSystemActivity)
{
    // Interrupts, I/O and DMA crossing the checkpoint boundary.
    Workload w("sweb2005", 4, 9, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {60});
    ASSERT_EQ(rec.checkpoints.size(), 1u);
    ASSERT_GT(rec.io.totalEntries(), 0u);
    Replayer replayer;
    const ReplayOutcome out =
        replayer.replayInterval(rec, 0, w, 13, perturb(21));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(Checkpoint, MultipleCheckpointsReplayFromEach)
{
    Workload w("water-sp", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {5, 25, 50});
    ASSERT_EQ(rec.checkpoints.size(), 3u);
    Replayer replayer;
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i) {
        const ReplayOutcome out =
            replayer.replayInterval(rec, i, w, 3 + i, perturb(i + 1));
        EXPECT_TRUE(out.deterministicExact) << "checkpoint " << i;
    }
}

TEST(Checkpoint, LaterCheckpointMeansShorterReplay)
{
    Workload w("lu", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {5, 60});
    ASSERT_EQ(rec.checkpoints.size(), 2u);
    Replayer replayer;
    const ReplayOutcome early =
        replayer.replayInterval(rec, 0, w, 3);
    const ReplayOutcome late = replayer.replayInterval(rec, 1, w, 3);
    EXPECT_TRUE(early.deterministicExact);
    EXPECT_TRUE(late.deterministicExact);
    EXPECT_LT(late.stats.retiredInstrs, early.stats.retiredInstrs);
    EXPECT_GT(late.fingerprint.commits.size(), 0u);
}

} // namespace
} // namespace delorean
