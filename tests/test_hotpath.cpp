/**
 * @file
 * Tests for the arbiter commit fast path: the summary/union conflict
 * filters must be invisible to the architecture (byte-identical
 * recordings with the filter on and off), and the epoch-cleared flat
 * maps backing it must behave like their straightforward reference
 * counterparts under churn.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/word_map.hpp"
#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "memory/memory_state.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;

std::string
serialized(const Recording &rec)
{
    std::ostringstream out;
    saveRecording(rec, out);
    return out.str();
}

Recording
recordSmall(const char *app, bool exact_disambiguation, bool filter,
            const ModeConfig &mode = ModeConfig::orderOnly())
{
    if (filter)
        unsetenv("DELOREAN_NO_SUMMARY_FILTER");
    else
        setenv("DELOREAN_NO_SUMMARY_FILTER", "1", 1);
    MachineConfig machine;
    machine.bulk.exactDisambiguation = exact_disambiguation;
    const Workload workload(app, machine.numProcs, kSeed,
                            WorkloadScale{3});
    Recording rec = Recorder(mode, machine).record(workload, 7);
    unsetenv("DELOREAN_NO_SUMMARY_FILTER");
    return rec;
}

// The filters are pure short-circuits: disabling them via the escape
// hatch must reproduce the exact same recording — in every execution
// mode, under both exact and signature disambiguation.
TEST(CommitFastPath, FilterOnOffRecordingsByteIdentical)
{
    const std::pair<const char *, ModeConfig> modes[] = {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"picolog", ModeConfig::picoLog()},
    };
    for (const auto &[name, mode] : modes) {
        for (const bool exact : {true, false}) {
            const Recording with =
                recordSmall("radix", exact, true, mode);
            const Recording without =
                recordSmall("radix", exact, false, mode);
            EXPECT_EQ(serialized(with), serialized(without))
                << name << " exactDisambiguation=" << exact;
        }
    }
}

TEST(CommitFastPath, FilteredRecordingReplaysDeterministically)
{
    const Recording rec = recordSmall("fft", false, true);
    const ReplayOutcome out = Replayer().replay(rec, /*env_seed=*/99);
    EXPECT_TRUE(out.deterministicExact);
}

// The filter counters only move when the filter is on; with the
// escape hatch set, every sweep takes the unfiltered path.
TEST(CommitFastPath, EscapeHatchDisablesFilterCounters)
{
    const Recording without = recordSmall("radix", false, false);
    EXPECT_EQ(without.stats.sigSummaryRejects, 0u);
    EXPECT_EQ(without.stats.sigSummaryHits, 0u);
    EXPECT_EQ(without.stats.unionSweepSkips, 0u);
    EXPECT_GT(without.stats.conflictSweeps, 0u);

    const Recording with = recordSmall("radix", false, true);
    EXPECT_GT(with.stats.sigSummaryRejects + with.stats.sigSummaryHits,
              0u);
}

// WordMap's epoch clear must make the map indistinguishable from a
// fresh one, across many clear cycles and across growth.
TEST(WordMap, EpochClearAndGrowthMatchReference)
{
    Xoshiro256ss rng(21);
    WordMap map;
    for (unsigned cycle = 0; cycle < 50; ++cycle) {
        std::unordered_map<Addr, std::uint64_t> ref;
        // Vary the population so some cycles force growth while
        // earlier epochs' slots are still physically present.
        const unsigned inserts =
            10 + static_cast<unsigned>(rng.next() % 3000);
        for (unsigned i = 0; i < inserts; ++i) {
            const Addr key = rng.next() % 2048;
            const std::uint64_t value = rng.next();
            map[key] = value;
            ref[key] = value;
        }
        ASSERT_EQ(map.size(), ref.size());
        for (const auto &[key, value] : ref) {
            const std::uint64_t *found = map.find(key);
            ASSERT_NE(found, nullptr);
            ASSERT_EQ(*found, value);
        }
        // Keys from the previous epoch must read as absent.
        for (unsigned probe = 0; probe < 100; ++probe) {
            const Addr key = rng.next() % 4096;
            ASSERT_EQ(map.contains(key), ref.count(key) != 0);
        }
        map.clear();
        ASSERT_TRUE(map.empty());
        ASSERT_EQ(map.find(rng.next() % 2048), nullptr);
    }
}

TEST(WordMap, OperatorBracketDefaultsToZero)
{
    WordMap map;
    EXPECT_EQ(map[42], 0u);
    map[42] += 7;
    EXPECT_EQ(map[42], 7u);
    map.clear();
    EXPECT_EQ(map[42], 0u);
}

// The epoch counter is 32-bit; when clear() wraps it back to the
// starting epoch, the wraparound hard reset must keep entries from
// 2^32 clears ago dead. Without forceEpochForTest this would need
// four billion clear() calls to reach.
TEST(WordMap, EpochWraparoundHardReset)
{
    WordMap map;
    map[100] = 1; // written under the initial epoch (1)
    map[200] = 2;

    map.forceEpochForTest(0xFFFFFFFFu);
    // Entries from other epochs read as absent...
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(100));
    map[300] = 3; // written under epoch 0xFFFFFFFF
    EXPECT_EQ(map.size(), 1u);

    // ...and the wrapping clear() lands back on the *initial* epoch,
    // where keys 100/200 were written: only the hard reset keeps
    // their slots from coming back to life.
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(100));
    EXPECT_FALSE(map.contains(200));
    EXPECT_FALSE(map.contains(300));
    EXPECT_EQ(map.find(100), nullptr);

    // The map keeps working normally after the wrap.
    map[100] = 7;
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map[100], 7u);
    map.clear();
    EXPECT_FALSE(map.contains(100));
}

TEST(WordMap, GrowthUnderForcedEpochKeepsEntries)
{
    WordMap map;
    map.forceEpochForTest(0xFFFFFFF0u);
    // Enough inserts to force at least one growth rehash.
    for (Addr k = 0; k < 1000; ++k)
        map[k] = k * 3;
    ASSERT_EQ(map.size(), 1000u);
    for (Addr k = 0; k < 1000; ++k) {
        const std::uint64_t *found = map.find(k);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, k * 3);
    }
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(0));
}

// MemoryState's open-addressed table erases entries when a word is
// restored to its deterministic initial value; randomized churn must
// match a reference model, exercising backward-shift deletion.
TEST(MemoryState, RandomChurnMatchesReference)
{
    Xoshiro256ss rng(22);
    MemoryState mem;
    std::unordered_map<Addr, std::uint64_t> ref;
    for (unsigned step = 0; step < 50000; ++step) {
        // Small key range so stores, overwrites and resets to the
        // initial value (deletions) all happen often and cluster.
        const Addr addr = (rng.next() % 1500) * 8;
        if (rng.next() % 4 == 0) {
            mem.store(addr, MemoryState::initValue(addr));
            ref.erase(addr);
        } else {
            const std::uint64_t value = rng.next();
            mem.store(addr, value);
            ref[addr] = value;
        }
        if (step % 64 == 0) {
            const Addr probe = (rng.next() % 1500) * 8;
            const auto it = ref.find(probe);
            const std::uint64_t expect = it != ref.end()
                                             ? it->second
                                             : MemoryState::initValue(probe);
            ASSERT_EQ(mem.load(probe), expect);
        }
    }
    ASSERT_EQ(mem.population(), ref.size());
    for (const auto &[addr, value] : ref)
        ASSERT_EQ(mem.load(addr), value);

    // forEachWord must visit exactly the live entries.
    std::size_t visited = 0;
    mem.forEachWord([&](Addr addr, std::uint64_t value) {
        ++visited;
        const auto it = ref.find(addr);
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(it->second, value);
    });
    EXPECT_EQ(visited, ref.size());
}

} // namespace
} // namespace delorean