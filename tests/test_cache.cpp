/**
 * @file
 * Unit tests for the cache models (memory/cache.hpp).
 */

#include <gtest/gtest.h>

#include "memory/cache.hpp"

namespace delorean
{
namespace
{

TEST(Cache, MissThenHit)
{
    Cache c(1024, 2); // 16 lines, 8 sets, 2 ways
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, GeometryFromParameters)
{
    Cache c(32 * 1024, 4); // Table 5 L1: 1024 lines, 256 sets
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.numWays(), 4u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(1024, 2); // 32 lines, 16 sets, 2 ways
    // Three lines in the same set (set 0): line = k * numSets.
    const Addr sets = c.numSets();
    const Addr a = 0, b = sets, d = 2 * sets;
    c.access(a);
    c.access(b);
    c.access(a);    // a more recent than b
    c.access(d);    // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, ContainsDoesNotDisturbLru)
{
    Cache c(1024, 2);
    const Addr sets = c.numSets();
    const Addr a = 0, b = sets, d = 2 * sets;
    c.access(a);
    c.access(b);
    EXPECT_TRUE(c.contains(a)); // probe only
    c.access(d);                // should evict a (older than b)
    EXPECT_FALSE(c.contains(a));
    EXPECT_TRUE(c.contains(b));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(1024, 2);
    c.access(0x42);
    EXPECT_TRUE(c.invalidate(0x42));
    EXPECT_FALSE(c.contains(0x42));
    EXPECT_FALSE(c.invalidate(0x42)); // already gone
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(1024, 2);
    c.access(1);
    c.access(1);
    c.reset();
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, SetIndexIsStable)
{
    Cache c(1024, 2); // 16 sets
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.setIndexOf(0), 0u);
    EXPECT_EQ(c.setIndexOf(15), 15u);
    EXPECT_EQ(c.setIndexOf(16), 0u);
    EXPECT_EQ(c.setIndexOf(31), 15u);
}

TEST(CacheHierarchy, MissFillsBothLevels)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.access(0, 0x123), HitLevel::kMemory);
    EXPECT_EQ(h.access(0, 0x123), HitLevel::kL1);
    // Other processor finds it in the shared L2.
    EXPECT_EQ(h.access(1, 0x123), HitLevel::kL2);
    EXPECT_EQ(h.access(1, 0x123), HitLevel::kL1);
}

TEST(CacheHierarchy, ProbeDoesNotFill)
{
    MachineConfig cfg;
    cfg.numProcs = 1;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.probe(0, 0x55), HitLevel::kMemory);
    EXPECT_EQ(h.access(0, 0x55), HitLevel::kMemory); // still a miss
}

TEST(CacheHierarchy, InvalidateOthersSparesWriter)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    CacheHierarchy h(cfg);
    for (ProcId p = 0; p < 4; ++p)
        h.access(p, 0x77);
    h.invalidateOthers(2, 0x77);
    EXPECT_EQ(h.probe(2, 0x77), HitLevel::kL1);
    EXPECT_EQ(h.probe(0, 0x77), HitLevel::kL2); // L1 copy invalidated
    EXPECT_EQ(h.probe(1, 0x77), HitLevel::kL2);
    EXPECT_EQ(h.probe(3, 0x77), HitLevel::kL2);
}

TEST(CacheHierarchy, PolluteWarmsL1)
{
    MachineConfig cfg;
    cfg.numProcs = 1;
    CacheHierarchy h(cfg);
    h.pollute(0, 0x99);
    EXPECT_EQ(h.probe(0, 0x99), HitLevel::kL1);
}

TEST(CacheHierarchy, ResetEmptiesAll)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    CacheHierarchy h(cfg);
    h.access(0, 1);
    h.access(1, 2);
    h.reset();
    EXPECT_EQ(h.probe(0, 1), HitLevel::kMemory);
    EXPECT_EQ(h.probe(1, 2), HitLevel::kMemory);
}

} // namespace
} // namespace delorean
