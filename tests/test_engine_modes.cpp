/**
 * @file
 * Mode-specific engine behaviour: Order&Size replay, PicoLog replay,
 * stratified replay, and the mode trade-off ordering of Table 2.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

TEST(EngineModes, OrderAndSizeReplayIsDeterministic)
{
    Workload w("cholesky", 4, 3, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderAndSize(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 42, perturb(7));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineModes, PicoLogReplayIsDeterministic)
{
    Workload w("raytrace", 4, 3, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::picoLog(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 42, perturb(7));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineModes, StratifiedReplayPreservesPerProcStreams)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 3;
    Workload w("fmm", 4, 3, WorkloadScale::tiny());
    Recorder recorder(mode, machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_TRUE(rec.stratified());
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 42, perturb(7));
    // Within a stratum, non-conflicting chunks may reorder globally,
    // but each processor's stream and the final state must match.
    EXPECT_TRUE(out.deterministicPerProc);
}

TEST(EngineModes, LogSizeOrderingMatchesTable2)
{
    // Order&Size >= OrderOnly >= PicoLog in memory-ordering log size.
    Workload w("barnes", 8, 3, WorkloadScale{15});
    const MachineConfig m = machine(8);
    const double oands = Recorder(ModeConfig::orderAndSize(), m)
                             .record(w, 1)
                             .logSizes()
                             .bitsPerProcPerKiloInstr(false);
    const double oo = Recorder(ModeConfig::orderOnly(), m)
                          .record(w, 1)
                          .logSizes()
                          .bitsPerProcPerKiloInstr(false);
    const double pico = Recorder(ModeConfig::picoLog(), m)
                            .record(w, 1)
                            .logSizes()
                            .bitsPerProcPerKiloInstr(false);
    EXPECT_GT(oands, oo);
    EXPECT_GT(oo, pico);
}

TEST(EngineModes, CollisionBackoffOnlyOutsidePicoLog)
{
    // PicoLog's predefined commit order makes repeated collision
    // impossible (Section 4.2.3), so it never logs collision
    // truncations.
    Workload w("raytrace", 8, 3, WorkloadScale{15});
    const Recording pico =
        Recorder(ModeConfig::picoLog(), machine(8)).record(w, 1);
    EXPECT_EQ(pico.stats.collisionTruncations, 0u);
}

TEST(EngineModes, SmallerChunksMorePiEntries)
{
    Workload w("lu", 4, 3, WorkloadScale::tiny());
    ModeConfig small = ModeConfig::orderOnly();
    small.chunkSize = 500;
    ModeConfig big = ModeConfig::orderOnly();
    big.chunkSize = 3000;
    const Recording rs = Recorder(small, machine()).record(w, 1);
    const Recording rb = Recorder(big, machine()).record(w, 1);
    EXPECT_GT(rs.pi.entryCount(), rb.pi.entryCount());
}

TEST(EngineModes, SixteenProcessorsWork)
{
    MachineConfig m = machine(16);
    Workload w("water-ns", 16, 3, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::picoLog(), m);
    const Recording rec = recorder.record(w, 1);
    EXPECT_GT(rec.stats.committedChunks, 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 2, perturb(1));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineModes, SignatureDisambiguationAlsoReplaysDeterministically)
{
    MachineConfig m = machine(4);
    m.bulk.exactDisambiguation = false; // Bloom-banked signatures
    Workload w("barnes", 4, 3, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), m);
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 42, perturb(5));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineModes, SignatureModeSquashesAtLeastAsMuch)
{
    MachineConfig exact = machine(8);
    MachineConfig bloom = machine(8);
    bloom.bulk.exactDisambiguation = false;
    Workload w("radix", 8, 3, WorkloadScale{15});
    const Recording a =
        Recorder(ModeConfig::orderOnly(), exact).record(w, 1);
    const Recording b =
        Recorder(ModeConfig::orderOnly(), bloom).record(w, 1);
    EXPECT_GE(b.stats.squashes + 5, a.stats.squashes);
}

} // namespace
} // namespace delorean
