/**
 * @file
 * Unit tests for the validation subsystem (src/validate/): interval
 * fingerprints, the divergence localizer, checked replay and the
 * cross-mode differential checker.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fingerprint.hpp"
#include "core/recorder.hpp"
#include "validate/differential.hpp"
#include "validate/localizer.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;

/** Synthetic commit stream: n commits round-robin over 4 procs. */
ExecutionFingerprint
syntheticStream(std::size_t n)
{
    ExecutionFingerprint fp;
    fp.perProcAcc.assign(4, 0);
    fp.perProcRetired.assign(4, 0);
    for (std::size_t i = 0; i < n; ++i) {
        CommitRecord c;
        c.proc = static_cast<ProcId>(i % 4);
        c.seq = static_cast<ChunkSeq>(i / 4);
        c.size = 100 + static_cast<InstrCount>(i);
        c.accAfter = mix64(i + 1);
        fp.commits.push_back(c);
        fp.perProcAcc[c.proc] = c.accAfter;
        fp.perProcRetired[c.proc] += c.size;
    }
    fp.finalMemHash = mix64(n);
    return fp;
}

Recording
recordApp(const std::string &app, const ModeConfig &mode,
          unsigned scale = 5)
{
    MachineConfig machine;
    machine.numProcs = 4;
    const Workload workload(app, machine.numProcs, kSeed,
                            WorkloadScale{scale});
    return Recorder(mode, machine).record(workload, /*env_seed=*/1);
}

TEST(IntervalFingerprints, BoundaryCountAndCoverage)
{
    const ExecutionFingerprint fp = syntheticStream(10);
    const IntervalFingerprints iv = IntervalFingerprints::build(fp, 4);
    // ceil(10/4) = 3 boundaries + the seed entry.
    EXPECT_EQ(iv.boundaryCount(), 4u);
    EXPECT_EQ(iv.coveredAt(0), 0u);
    EXPECT_EQ(iv.coveredAt(1), 4u);
    EXPECT_EQ(iv.coveredAt(2), 8u);
    EXPECT_EQ(iv.coveredAt(3), 10u); // clamped
    EXPECT_EQ(iv.coveredAt(100), 10u);
    // Past-the-end boundaries clamp to the final hash.
    EXPECT_EQ(iv.prefixAt(100), iv.prefixes.back());
}

TEST(IntervalFingerprints, ZeroPeriodTreatedAsOne)
{
    const ExecutionFingerprint fp = syntheticStream(3);
    const IntervalFingerprints iv = IntervalFingerprints::build(fp, 0);
    EXPECT_EQ(iv.period, 1u);
    EXPECT_EQ(iv.boundaryCount(), 4u);
}

TEST(IntervalFingerprints, PrefixEqualityIsMonotone)
{
    const ExecutionFingerprint a = syntheticStream(64);
    ExecutionFingerprint b = a;
    b.commits[29].accAfter ^= 1; // diverge inside interval 3 (period 8)

    const IntervalFingerprints fa = IntervalFingerprints::build(a, 8);
    const IntervalFingerprints fb = IntervalFingerprints::build(b, 8);
    bool agreed_so_far = true;
    for (std::uint64_t k = 0; k < fa.boundaryCount(); ++k) {
        const bool agree = fa.prefixAt(k) == fb.prefixAt(k);
        // Once disagreement starts it must never flip back.
        EXPECT_TRUE(agreed_so_far || !agree) << "k=" << k;
        agreed_so_far = agree;
        if (fa.coveredAt(k) <= 29)
            EXPECT_TRUE(agree) << "k=" << k;
        else
            EXPECT_FALSE(agree) << "k=" << k;
    }
}

TEST(Localizer, EqualFingerprintsReportNone)
{
    const ExecutionFingerprint fp = syntheticStream(40);
    const DivergenceReport r = localizeDivergence(fp, fp, nullptr);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.kind, DivergenceKind::kNone);
}

TEST(Localizer, NamesTheFirstTamperedCommit)
{
    const ExecutionFingerprint a = syntheticStream(200);
    for (const std::size_t victim : {std::size_t{0}, std::size_t{97},
                                     std::size_t{199}}) {
        ExecutionFingerprint b = a;
        b.commits[victim].accAfter ^= 0xBEEF;

        LocalizerOptions opts;
        opts.period = 16;
        const DivergenceReport r = localizeDivergence(a, b, nullptr, opts);
        EXPECT_EQ(r.kind, DivergenceKind::kCommitDivergence);
        EXPECT_TRUE(r.haveCommits);
        EXPECT_EQ(r.commitIndex, victim);
        EXPECT_EQ(r.expected, a.commits[victim]);
        EXPECT_EQ(r.actual, b.commits[victim]);
        EXPECT_EQ(r.proc, a.commits[victim].proc);
        EXPECT_EQ(r.seq, a.commits[victim].seq);
        // Binary search: far fewer probes than a linear scan of the
        // 13 interval boundaries would need, but at least one.
        EXPECT_GE(r.probes, 1u);
        EXPECT_LE(r.probes, 8u);
        EXPECT_FALSE(r.describe().empty());
    }
}

TEST(Localizer, SecondDivergenceDoesNotMaskTheFirst)
{
    const ExecutionFingerprint a = syntheticStream(100);
    ExecutionFingerprint b = a;
    b.commits[40].size += 1;
    b.commits[77].accAfter ^= 2;
    const DivergenceReport r = localizeDivergence(a, b, nullptr);
    EXPECT_EQ(r.kind, DivergenceKind::kCommitDivergence);
    EXPECT_EQ(r.commitIndex, 40u);
}

TEST(Localizer, MissingAndExtraCommits)
{
    const ExecutionFingerprint a = syntheticStream(50);
    ExecutionFingerprint truncated = a;
    truncated.commits.resize(47);
    DivergenceReport r = localizeDivergence(a, truncated, nullptr);
    EXPECT_EQ(r.kind, DivergenceKind::kMissingCommits);
    EXPECT_EQ(r.commitIndex, 47u);
    EXPECT_EQ(r.expected, a.commits[47]);

    r = localizeDivergence(truncated, a, nullptr);
    EXPECT_EQ(r.kind, DivergenceKind::kExtraCommits);
    EXPECT_EQ(r.commitIndex, 47u);
    EXPECT_EQ(r.actual, a.commits[47]);
}

TEST(Localizer, StateDivergenceNamesTheProc)
{
    const ExecutionFingerprint a = syntheticStream(20);
    ExecutionFingerprint b = a;
    b.perProcAcc[2] ^= 5;
    const DivergenceReport r = localizeDivergence(a, b, nullptr);
    EXPECT_EQ(r.kind, DivergenceKind::kStateDivergence);
    EXPECT_EQ(r.proc, 2u);

    b = a;
    b.finalMemHash ^= 1;
    const DivergenceReport rm = localizeDivergence(a, b, nullptr);
    EXPECT_EQ(rm.kind, DivergenceKind::kStateDivergence);
    EXPECT_NE(rm.message.find("memory hash"), std::string::npos);
}

TEST(Localizer, AttributesFlatPiLogRecord)
{
    const Recording rec = recordApp("fft", ModeConfig::orderOnly());
    ASSERT_GT(rec.fingerprint.commits.size(), 4u);
    const std::size_t victim = rec.fingerprint.commits.size() / 2;
    ExecutionFingerprint tampered = rec.fingerprint;
    tampered.commits[victim].accAfter ^= 0xF00D;

    const DivergenceReport r =
        localizeDivergence(rec.fingerprint, tampered, &rec);
    EXPECT_EQ(r.kind, DivergenceKind::kCommitDivergence);
    EXPECT_EQ(r.commitIndex, victim);
    EXPECT_EQ(r.logName, "pi");
    ASSERT_GE(r.logIndex, 0);
    // The named PI entry must be the divergent chunk's processor.
    EXPECT_EQ(rec.pi.entryAt(static_cast<std::size_t>(r.logIndex)),
              rec.fingerprint.commits[victim].proc);
}

TEST(Localizer, AttributesStratifiedLogRecord)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 3;
    const Recording rec = recordApp("fft", mode);
    ASSERT_TRUE(rec.stratified());
    ASSERT_GT(rec.fingerprint.commits.size(), 4u);
    const std::size_t victim = rec.fingerprint.commits.size() / 2;
    ExecutionFingerprint tampered = rec.fingerprint;
    tampered.commits[victim].accAfter ^= 0xF00D;

    const DivergenceReport r =
        localizeDivergence(rec.fingerprint, tampered, &rec);
    EXPECT_EQ(r.kind, DivergenceKind::kCommitDivergence);
    EXPECT_EQ(r.proc, rec.fingerprint.commits[victim].proc);
    EXPECT_EQ(r.logName, "strata");
    ASSERT_GE(r.logIndex, 0);
    ASSERT_LT(static_cast<std::size_t>(r.logIndex), rec.strata.size());
    // The named stratum must give the processor budget to commit.
    EXPECT_GT(rec.strata[static_cast<std::size_t>(r.logIndex)]
                  .counts[r.proc],
              0u);
}

TEST(Localizer, AttributesPicoLogRecord)
{
    const Recording rec = recordApp("radix", ModeConfig::picoLog());
    ASSERT_GT(rec.fingerprint.commits.size(), 4u);
    const std::size_t victim = rec.fingerprint.commits.size() / 2;
    ExecutionFingerprint tampered = rec.fingerprint;
    tampered.commits[victim].size += 1;

    const DivergenceReport r =
        localizeDivergence(rec.fingerprint, tampered, &rec);
    EXPECT_EQ(r.kind, DivergenceKind::kCommitDivergence);
    // PicoLog has no PI log: attribution is either a CS truncation
    // record for that chunk or the predefined order itself.
    const std::string cs_name =
        "cs[" + std::to_string(r.proc) + "]";
    EXPECT_TRUE(r.logName == cs_name
                || r.logName == "(predefined order)")
        << r.logName;
}

TEST(CheckedReplay, GoodRecordingPasses)
{
    const Recording rec = recordApp("fft", ModeConfig::orderOnly());
    const ReplayCheckResult result = checkedReplay(rec);
    EXPECT_TRUE(result.ok);
    EXPECT_TRUE(result.replayRan);
    EXPECT_TRUE(result.report.ok());
}

TEST(CheckedReplay, TinyEventBudgetReportsReplayError)
{
    const Recording rec = recordApp("fft", ModeConfig::orderOnly());
    ReplayCheckOptions opts;
    opts.maxEvents = 10;
    const ReplayCheckResult result = checkedReplay(rec, opts);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.report.kind, DivergenceKind::kReplayError);
    EXPECT_NE(result.report.message.find("budget"), std::string::npos);
}

TEST(CheckedReplay, MalformedRecordingRejectedUpFront)
{
    Recording rec = recordApp("fft", ModeConfig::orderOnly());
    rec.machine.numProcs = 0;
    const ReplayCheckResult result = checkedReplay(rec);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.replayRan);
    EXPECT_EQ(result.report.kind, DivergenceKind::kFormatError);
}

TEST(CheckedReplay, UnknownAppIsAWorkloadError)
{
    Recording rec = recordApp("fft", ModeConfig::orderOnly());
    rec.appName = "no-such-app";
    const ReplayCheckResult result = checkedReplay(rec);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.report.kind, DivergenceKind::kFormatError);
}

TEST(CheckedReplay, BudgetScalesWithContentNotStats)
{
    Recording rec = recordApp("fft", ModeConfig::orderOnly());
    const std::uint64_t budget = defaultReplayEventBudget(rec);
    // A corrupted stats block must not inflate the budget.
    rec.stats.retiredInstrs = ~0ull;
    rec.stats.totalCycles = ~0ull;
    EXPECT_EQ(defaultReplayEventBudget(rec), budget);
}

TEST(Checkpoint, PeriodicGccs)
{
    EXPECT_EQ(periodicCheckpointGccs(10, 4),
              (std::vector<std::uint64_t>{4, 8}));
    EXPECT_EQ(periodicCheckpointGccs(12, 4),
              (std::vector<std::uint64_t>{4, 8, 12}));
    EXPECT_TRUE(periodicCheckpointGccs(3, 4).empty());
    EXPECT_TRUE(periodicCheckpointGccs(100, 0).empty());
}

TEST(Differential, PassesOnRealWorkloads)
{
    const DifferentialChecker checker;
    for (const char *app : {"fft", "radix"}) {
        DifferentialJob job;
        job.app = app;
        const DifferentialResult result = checker.check(job);
        EXPECT_TRUE(result.ok()) << result.describe();
        ASSERT_EQ(result.runs.size(), 4u);
        EXPECT_NE(result.findRun("order-and-size"), nullptr);
        EXPECT_NE(result.findRun("order-only"), nullptr);
        EXPECT_NE(result.findRun("order-only-strat"), nullptr);
        EXPECT_NE(result.findRun("picolog"), nullptr);
        for (const DifferentialRun &run : result.runs) {
            EXPECT_TRUE(run.roundTripIdentical) << run.label;
            EXPECT_TRUE(run.replayOk) << run.label;
            EXPECT_TRUE(run.intervalsMatch) << run.label;
        }
        // PicoLog writes no PI bits; stratified PI <= flat PI.
        EXPECT_EQ(result.findRun("picolog")->sizes.pi.rawBits, 0u);
        EXPECT_LE(result.findRun("order-only-strat")->sizes.pi.rawBits,
                  result.findRun("order-only")->sizes.pi.rawBits);
    }
}

TEST(Differential, DescribeMentionsEveryRun)
{
    const DifferentialChecker checker;
    DifferentialJob job;
    job.app = "water-sp";
    const DifferentialResult result = checker.check(job);
    const std::string text = result.describe();
    for (const char *label : {"order-and-size", "order-only",
                              "order-only-strat", "picolog"})
        EXPECT_NE(text.find(label), std::string::npos) << label;
}

} // namespace
} // namespace delorean
