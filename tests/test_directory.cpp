/**
 * @file
 * Unit tests for the Directory model (memory/directory.hpp).
 */

#include <gtest/gtest.h>

#include "memory/directory.hpp"

namespace delorean
{
namespace
{

TEST(Directory, TracksSharers)
{
    Directory d;
    EXPECT_EQ(d.sharersOf(10), 0u);
    d.addSharer(0, 10);
    d.addSharer(3, 10);
    EXPECT_EQ(d.sharersOf(10), 0b1001u);
}

TEST(Directory, CommitWriteInvalidatesOthers)
{
    Directory d;
    d.addSharer(0, 5);
    d.addSharer(1, 5);
    d.addSharer(2, 5);
    const unsigned invalidations = d.commitWrite(1, 5);
    EXPECT_EQ(invalidations, 2u);
    EXPECT_EQ(d.sharersOf(5), 0b010u); // only the writer remains
}

TEST(Directory, CommitWriteOnUnknownLine)
{
    Directory d;
    EXPECT_EQ(d.commitWrite(0, 99), 0u);
    EXPECT_EQ(d.sharersOf(99), 0b1u);
}

TEST(Directory, TrafficAccounting)
{
    Directory d;
    d.countLineTransfer();
    EXPECT_EQ(d.traffic().dataBytes, kLineBytes);
    EXPECT_EQ(d.traffic().controlBytes, Directory::kControlMsgBytes);

    d.countSignatureMessage(2048);
    EXPECT_EQ(d.traffic().signatureBytes, 2048u / 8);

    d.countControlMessage();
    EXPECT_EQ(d.traffic().controlBytes, 2u * Directory::kControlMsgBytes);

    EXPECT_EQ(d.traffic().totalBytes(),
              d.traffic().dataBytes + d.traffic().controlBytes
                  + d.traffic().signatureBytes);
}

TEST(Directory, InvalidationsCountAsControlTraffic)
{
    Directory d;
    d.addSharer(0, 1);
    d.addSharer(1, 1);
    d.commitWrite(0, 1); // one invalidation
    EXPECT_EQ(d.traffic().controlBytes, Directory::kControlMsgBytes);
}

TEST(Directory, ResetClears)
{
    Directory d;
    d.addSharer(0, 1);
    d.countLineTransfer();
    d.reset();
    EXPECT_EQ(d.sharersOf(1), 0u);
    EXPECT_EQ(d.traffic().totalBytes(), 0u);
}

} // namespace
} // namespace delorean
