/**
 * @file
 * Unit tests for SpecTracker (chunk/spec_tracker.hpp).
 */

#include <gtest/gtest.h>

#include "chunk/spec_tracker.hpp"

namespace delorean
{
namespace
{

TEST(SpecTracker, OverflowAtWayLimit)
{
    SpecTracker t(8, 2); // 8 sets, 2 ways
    // Lines mapping to set 0: multiples of 8.
    EXPECT_FALSE(t.wouldOverflow(0));
    t.insert(0);
    EXPECT_FALSE(t.wouldOverflow(8));
    t.insert(8);
    EXPECT_TRUE(t.wouldOverflow(16)); // third line in set 0
    EXPECT_FALSE(t.wouldOverflow(1)); // different set is fine
}

TEST(SpecTracker, ExistingLineNeverOverflows)
{
    SpecTracker t(8, 1);
    t.insert(0);
    EXPECT_TRUE(t.wouldOverflow(8));
    EXPECT_FALSE(t.wouldOverflow(0)); // already resident
}

TEST(SpecTracker, RefcountAcrossChunks)
{
    SpecTracker t(8, 2);
    t.insert(0); // chunk A writes line 0
    t.insert(0); // chunk B also writes line 0
    EXPECT_EQ(t.setCount(0), 1u);
    t.remove(0); // chunk A commits
    EXPECT_EQ(t.setCount(0), 1u); // still held by chunk B
    t.remove(0); // chunk B commits
    EXPECT_EQ(t.setCount(0), 0u);
}

TEST(SpecTracker, RemoveAllReleasesChunkLines)
{
    SpecTracker t(16, 2);
    std::vector<Addr> chunk_lines{0, 16, 5, 21};
    for (const Addr l : chunk_lines)
        t.insert(l);
    EXPECT_EQ(t.distinctLines(), 4u);
    t.removeAll(chunk_lines);
    EXPECT_EQ(t.distinctLines(), 0u);
    EXPECT_EQ(t.setCount(0), 0u);
    EXPECT_EQ(t.setCount(5), 0u);
}

TEST(SpecTracker, RemoveUnknownLineIsNoop)
{
    SpecTracker t(8, 2);
    t.remove(123);
    EXPECT_EQ(t.distinctLines(), 0u);
}

TEST(SpecTracker, FillFreeFillCycle)
{
    SpecTracker t(4, 2);
    t.insert(0);
    t.insert(4);
    EXPECT_TRUE(t.wouldOverflow(8));
    t.remove(0);
    EXPECT_FALSE(t.wouldOverflow(8));
    t.insert(8);
    EXPECT_TRUE(t.wouldOverflow(12));
}

} // namespace
} // namespace delorean
