/**
 * @file
 * Property-style parameterized sweeps (TEST_P) over machine
 * configurations, seeds and widths: invariants that must hold across
 * the whole parameter space, not just the preferred configuration.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

// --------------------------------------------------------------------------
// Determinism across machine shapes.
// --------------------------------------------------------------------------

struct MachineCase
{
    unsigned procs;
    unsigned simChunks;
    InstrCount chunkSize;
};

class MachineSweep : public testing::TestWithParam<MachineCase>
{
};

TEST_P(MachineSweep, ReplayDeterministicForAnyMachineShape)
{
    const MachineCase &c = GetParam();
    MachineConfig machine;
    machine.numProcs = c.procs;
    machine.bulk.simultaneousChunks = c.simChunks;
    ModeConfig mode = ModeConfig::orderOnly();
    mode.chunkSize = c.chunkSize;

    Workload w("water-ns", c.procs, 99, WorkloadScale::tiny());
    const Recording rec = Recorder(mode, machine).record(w, 1);
    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = 13;
    const ReplayOutcome out = Replayer().replay(rec, w, 31, perturb);
    EXPECT_TRUE(out.deterministicExact);
    EXPECT_GT(rec.stats.committedChunks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineSweep,
    testing::Values(MachineCase{1, 1, 500}, MachineCase{2, 2, 1000},
                    MachineCase{4, 1, 2000}, MachineCase{4, 4, 500},
                    MachineCase{8, 2, 3000}, MachineCase{8, 8, 1000},
                    MachineCase{16, 2, 1000}),
    [](const testing::TestParamInfo<MachineCase> &info) {
        return "p" + std::to_string(info.param.procs) + "_s"
               + std::to_string(info.param.simChunks) + "_c"
               + std::to_string(info.param.chunkSize);
    });

// --------------------------------------------------------------------------
// Workload seeds: recording is a pure function of (workload, env).
// --------------------------------------------------------------------------

class SeedSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, RecordingIsReproducible)
{
    MachineConfig machine;
    machine.numProcs = 4;
    Workload w("radiosity", 4, GetParam(), WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine);
    const Recording a = recorder.record(w, 5);
    const Recording b = recorder.record(w, 5);
    EXPECT_TRUE(a.fingerprint.matchesExact(b.fingerprint));
    EXPECT_EQ(a.pi.entryCount(), b.pi.entryCount());
    EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
}

TEST_P(SeedSweep, DifferentWorkloadSeedsDiffer)
{
    MachineConfig machine;
    machine.numProcs = 2;
    Workload a("radiosity", 2, GetParam(), WorkloadScale::tiny());
    Workload b("radiosity", 2, GetParam() + 1, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine);
    EXPECT_NE(recorder.record(a, 5).fingerprint.hash(),
              recorder.record(b, 5).fingerprint.hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1u, 42u, 1000u, 0xDEADBEEFu));

// --------------------------------------------------------------------------
// Signature properties across widths and seeds.
// --------------------------------------------------------------------------

class SignatureSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SignatureSweep, NeverFalseNegative)
{
    Xoshiro256ss rng(GetParam());
    Signature a;
    std::vector<Addr> lines;
    for (int i = 0; i < 128; ++i) {
        const Addr line = rng.next() >> (1 + rng.below(20));
        lines.push_back(line);
        a.insert(line);
    }
    for (const Addr line : lines)
        ASSERT_TRUE(a.mayContain(line));

    // Shared line => intersects, regardless of the rest.
    Signature b;
    b.insert(lines[static_cast<std::size_t>(rng.below(lines.size()))]);
    ASSERT_TRUE(a.intersects(b));
}

TEST_P(SignatureSweep, UnionIsConservative)
{
    Xoshiro256ss rng(GetParam() ^ 0x5555);
    Signature a, b;
    std::vector<Addr> all;
    for (int i = 0; i < 50; ++i) {
        const Addr la = rng.next() >> 10;
        const Addr lb = rng.next() >> 10;
        a.insert(la);
        b.insert(lb);
        all.push_back(la);
        all.push_back(lb);
    }
    a.unionWith(b);
    for (const Addr line : all)
        ASSERT_TRUE(a.mayContain(line));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureSweep,
                         testing::Values(7u, 77u, 777u, 7777u, 77777u));

// --------------------------------------------------------------------------
// CS distance encoding round-trips for arbitrary truncation patterns.
// --------------------------------------------------------------------------

class CsSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CsSweep, DistanceEncodingRoundTrips)
{
    Xoshiro256ss rng(GetParam());
    const ModeConfig mode = ModeConfig::picoLog();
    CsLog log(mode);
    std::vector<CsEntry> expected;
    ChunkSeq seq = 0;
    for (int i = 0; i < 200; ++i) {
        seq += 1 + rng.below(500);
        const InstrCount size = 1 + rng.below(mode.chunkSize - 1);
        log.appendTruncation(seq, size);
        expected.push_back(CsEntry{seq, size, false});
    }
    const auto packed = log.packedBytes();
    BitReader reader(packed, log.sizeBits());
    ChunkSeq last = 0;
    for (const auto &e : expected) {
        const ChunkSeq got = last + reader.read(mode.csDistanceBits);
        const InstrCount size = reader.read(mode.csSizeBits);
        ASSERT_EQ(got, e.seq);
        ASSERT_EQ(size, e.size);
        last = got;
    }
    EXPECT_TRUE(reader.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsSweep,
                         testing::Values(11u, 22u, 33u, 44u));

} // namespace
} // namespace delorean
