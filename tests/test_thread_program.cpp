/**
 * @file
 * Unit tests for the workload generator (trace/thread_program.hpp).
 *
 * Uses a minimal sequential executor: threads interleave round-robin
 * against one memory image, which is enough to exercise locks,
 * barriers, traps and value-dependent control flow.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memory/memory_state.hpp"
#include "trace/layout.hpp"
#include "trace/thread_program.hpp"
#include "trace/workload.hpp"

namespace delorean
{
namespace
{

/** Execute one instruction directly against @p mem; returns value. */
std::uint64_t
perform(MemoryState &mem, const Instr &in, std::uint64_t io_value = 7)
{
    switch (in.op) {
      case Op::kLoad:
        return mem.load(wordOf(in.addr));
      case Op::kStore:
        mem.store(wordOf(in.addr), in.value);
        return 0;
      case Op::kAmoSwap: {
        const std::uint64_t old = mem.load(wordOf(in.addr));
        mem.store(wordOf(in.addr), in.value);
        return old;
      }
      case Op::kAmoFetchAdd: {
        const std::uint64_t old = mem.load(wordOf(in.addr));
        mem.store(wordOf(in.addr), old + in.value);
        return old;
      }
      case Op::kIoLoad:
        return io_value;
      case Op::kIoStore:
      case Op::kSpecialSys:
      case Op::kCompute:
        return 0;
    }
    return 0;
}

/** Round-robin run to completion; returns per-thread contexts. */
std::vector<ThreadContext>
runRoundRobin(const Workload &w)
{
    MemoryState mem;
    w.initializeMemory(mem);
    const ThreadProgram &prog = w.program();
    std::vector<ThreadContext> ctxs(w.numProcs());
    for (ProcId p = 0; p < w.numProcs(); ++p)
        prog.initContext(ctxs[p], p);
    bool progress = true;
    while (progress) {
        progress = false;
        for (ProcId p = 0; p < w.numProcs(); ++p) {
            if (prog.done(ctxs[p]))
                continue;
            progress = true;
            const Instr in = prog.generate(ctxs[p]);
            prog.observe(ctxs[p], in, perform(mem, in));
        }
    }
    return ctxs;
}

TEST(ThreadProgram, RunsToCompletionSingleThread)
{
    Workload w("barnes", 1, 42, WorkloadScale::tiny());
    const auto ctxs = runRoundRobin(w);
    EXPECT_TRUE(ctxs[0].done);
    EXPECT_GT(ctxs[0].retired, 1000u);
}

TEST(ThreadProgram, AllSplashAppsComplete)
{
    for (const auto &name : AppTable::splash2Names()) {
        Workload w(name, 4, 7, WorkloadScale::tiny());
        const auto ctxs = runRoundRobin(w);
        for (const auto &ctx : ctxs) {
            EXPECT_TRUE(ctx.done) << name;
            EXPECT_GT(ctx.retired, 100u) << name;
        }
    }
}

TEST(ThreadProgram, CommercialAppsComplete)
{
    for (const std::string name : {"sjbb2k", "sweb2005"}) {
        Workload w(name, 4, 9, WorkloadScale::tiny());
        const auto ctxs = runRoundRobin(w);
        for (const auto &ctx : ctxs)
            EXPECT_TRUE(ctx.done) << name;
    }
}

TEST(ThreadProgram, DeterministicGivenSameInterleaving)
{
    Workload w("fmm", 4, 123, WorkloadScale::tiny());
    const auto a = runRoundRobin(w);
    const auto b = runRoundRobin(w);
    for (ProcId p = 0; p < 4; ++p) {
        EXPECT_EQ(a[p].acc, b[p].acc);
        EXPECT_EQ(a[p].retired, b[p].retired);
    }
}

TEST(ThreadProgram, DifferentSeedsProduceDifferentStreams)
{
    Workload w1("fmm", 2, 1, WorkloadScale::tiny());
    Workload w2("fmm", 2, 2, WorkloadScale::tiny());
    const auto a = runRoundRobin(w1);
    const auto b = runRoundRobin(w2);
    EXPECT_NE(a[0].acc, b[0].acc);
}

TEST(ThreadProgram, GenerateObserveIsCheckpointable)
{
    // Squash semantics: saving and restoring the context replays the
    // exact same instruction stream.
    Workload w("radix", 2, 5, WorkloadScale::tiny());
    const ThreadProgram &prog = w.program();
    MemoryState mem;
    w.initializeMemory(mem);

    ThreadContext ctx;
    prog.initContext(ctx, 0);
    // Advance a bit.
    for (int i = 0; i < 500 && !prog.done(ctx); ++i) {
        const Instr in = prog.generate(ctx);
        prog.observe(ctx, in, perform(mem, in));
    }
    const ThreadContext checkpoint = ctx;
    const MemoryState mem_snapshot = mem.snapshot();

    std::vector<Instr> first_run;
    for (int i = 0; i < 200 && !prog.done(ctx); ++i) {
        const Instr in = prog.generate(ctx);
        first_run.push_back(in);
        prog.observe(ctx, in, perform(mem, in));
    }

    ctx = checkpoint; // squash
    mem = mem_snapshot;
    for (std::size_t i = 0; i < first_run.size(); ++i) {
        const Instr in = prog.generate(ctx);
        ASSERT_EQ(static_cast<int>(in.op),
                  static_cast<int>(first_run[i].op));
        ASSERT_EQ(in.addr, first_run[i].addr);
        ASSERT_EQ(in.value, first_run[i].value);
        prog.observe(ctx, in, perform(mem, in));
    }
}

TEST(ThreadProgram, LockProvidesMutualExclusion)
{
    // With chunked atomicity absent, the sequential executor still
    // lets us check the lock protocol: the generator only enters the
    // critical section after an AMO swap that observed 0.
    Workload w("raytrace", 2, 77, WorkloadScale::tiny());
    const ThreadProgram &prog = w.program();
    MemoryState mem;
    w.initializeMemory(mem);
    std::vector<ThreadContext> ctxs(2);
    prog.initContext(ctxs[0], 0);
    prog.initContext(ctxs[1], 1);

    int in_cs = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (ProcId p = 0; p < 2; ++p) {
            ThreadContext &ctx = ctxs[p];
            if (prog.done(ctx))
                continue;
            progress = true;
            const bool was_cs = ctx.state == ThreadState::kCritical;
            const Instr in = prog.generate(ctx);
            prog.observe(ctx, in, perform(mem, in));
            const bool is_cs = ctx.state == ThreadState::kCritical;
            if (!was_cs && is_cs)
                ++in_cs;
            if (was_cs && !is_cs)
                --in_cs;
            ASSERT_LE(in_cs, 1) << "two threads in the same CS";
        }
    }
}

TEST(ThreadProgram, BarrierSynchronizesIterations)
{
    // ocean barriers every 2 iterations; after completion, every
    // thread must have seen the same number of barrier generations.
    Workload w("ocean", 4, 3, WorkloadScale::tiny());
    const auto ctxs = runRoundRobin(w);
    for (ProcId p = 1; p < 4; ++p)
        EXPECT_EQ(ctxs[p].barrierGenSeen, ctxs[0].barrierGenSeen);
    EXPECT_GT(ctxs[0].barrierGenSeen, 0u);
}

TEST(ThreadProgram, InterruptDeliveryChangesAccAndInjectsHandler)
{
    Workload w("sjbb2k", 1, 11, WorkloadScale::tiny());
    const ThreadProgram &prog = w.program();
    ThreadContext ctx;
    prog.initContext(ctx, 0);
    const std::uint64_t acc_before = ctx.acc;
    prog.deliverInterrupt(ctx, 2, 0xFEED);
    EXPECT_NE(ctx.acc, acc_before);
    EXPECT_EQ(ctx.handlerRemaining, ThreadProgram::interruptHandlerLen(2));

    // Handler instructions run before normal work resumes.
    MemoryState mem;
    w.initializeMemory(mem);
    for (unsigned i = 0; i < ThreadProgram::interruptHandlerLen(2); ++i) {
        const Instr in = prog.generate(ctx);
        if (isMemOp(in.op)) {
            EXPECT_GE(in.addr, AddressLayout::kKernelBase);
            EXPECT_LT(in.addr, AddressLayout::kDmaBase);
        }
        prog.observe(ctx, in, perform(mem, in));
    }
    EXPECT_EQ(ctx.handlerRemaining, 0u);
}

TEST(ThreadProgram, CommercialWorkloadsEmitIoAndSyscalls)
{
    Workload w("sweb2005", 2, 21, WorkloadScale{100});
    const ThreadProgram &prog = w.program();
    MemoryState mem;
    w.initializeMemory(mem);
    std::vector<ThreadContext> ctxs(2);
    prog.initContext(ctxs[0], 0);
    prog.initContext(ctxs[1], 1);
    int io_loads = 0, io_stores = 0, syscalls = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (ProcId p = 0; p < 2; ++p) {
            if (prog.done(ctxs[p]))
                continue;
            progress = true;
            const Instr in = prog.generate(ctxs[p]);
            io_loads += in.op == Op::kIoLoad;
            io_stores += in.op == Op::kIoStore;
            syscalls += in.op == Op::kSpecialSys;
            prog.observe(ctxs[p], in, perform(mem, in));
        }
    }
    EXPECT_GT(io_loads, 0);
    EXPECT_GT(io_stores, 0);
    EXPECT_GT(syscalls, 0);
}

TEST(ThreadProgram, SplashWorkloadsEmitNoSystemActivity)
{
    Workload w("lu", 1, 31, WorkloadScale::tiny());
    const ThreadProgram &prog = w.program();
    MemoryState mem;
    w.initializeMemory(mem);
    ThreadContext ctx;
    prog.initContext(ctx, 0);
    while (!prog.done(ctx)) {
        const Instr in = prog.generate(ctx);
        ASSERT_NE(in.op, Op::kIoLoad);
        ASSERT_NE(in.op, Op::kIoStore);
        ASSERT_NE(in.op, Op::kSpecialSys);
        prog.observe(ctx, in, perform(mem, in));
    }
}

TEST(ThreadProgram, PrivateAccessesStayInOwnRegion)
{
    Workload w("fft", 4, 17, WorkloadScale::tiny());
    const ThreadProgram &prog = w.program();
    MemoryState mem;
    w.initializeMemory(mem);
    ThreadContext ctx;
    prog.initContext(ctx, 2);
    for (int i = 0; i < 20000 && !prog.done(ctx); ++i) {
        const Instr in = prog.generate(ctx);
        if (isMemOp(in.op) && AddressLayout::isPrivate(in.addr)) {
            EXPECT_GE(in.addr, AddressLayout::privateWord(2, 0));
            EXPECT_LT(in.addr, AddressLayout::privateWord(3, 0));
        }
        prog.observe(ctx, in, perform(mem, in));
    }
}

TEST(AppTable, HasThirteenApplications)
{
    EXPECT_EQ(AppTable::splash2Names().size(), 11u);
    EXPECT_EQ(AppTable::allNames().size(), 13u);
    for (const auto &name : AppTable::allNames())
        EXPECT_EQ(AppTable::byName(name).name, name);
}

TEST(AppTable, UnknownNameThrows)
{
    EXPECT_THROW(AppTable::byName("volrend"), std::out_of_range);
}

} // namespace
} // namespace delorean
