/**
 * @file
 * Unit tests for the deterministic RNGs (common/rng.hpp).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace delorean
{
namespace
{

TEST(SplitMix64, IsDeterministic)
{
    std::uint64_t a = 42, b = 42;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(splitMix64(a), splitMix64(b));
}

TEST(SplitMix64, AdvancesState)
{
    std::uint64_t s = 7;
    const std::uint64_t first = splitMix64(s);
    const std::uint64_t second = splitMix64(s);
    EXPECT_NE(first, second);
}

TEST(Mix64, IsPureFunction)
{
    EXPECT_EQ(mix64(123), mix64(123));
    EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro, SameSeedSameSequence)
{
    Xoshiro256ss a(99), b(99);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro256ss a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Xoshiro, CopyPreservesSequence)
{
    Xoshiro256ss a(5);
    for (int i = 0; i < 17; ++i)
        a.next();
    Xoshiro256ss b = a; // checkpoint semantics
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, BelowIsInRange)
{
    Xoshiro256ss rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(37), 37u);
}

TEST(Xoshiro, RangeIsInclusive)
{
    Xoshiro256ss rng(4);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(rng.range(10, 13));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.begin(), 10u);
    EXPECT_EQ(*seen.rbegin(), 13u);
}

TEST(Xoshiro, ChancePerMilleRoughlyCalibrated)
{
    Xoshiro256ss rng(8);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chancePerMille(250);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.02);
}

TEST(Xoshiro, ChanceZeroNeverFires)
{
    Xoshiro256ss rng(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_FALSE(rng.chancePerMille(0));
}

TEST(Xoshiro, UniformInUnitInterval)
{
    Xoshiro256ss rng(10);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, EqualityComparesState)
{
    Xoshiro256ss a(11), b(11);
    EXPECT_EQ(a, b);
    a.next();
    EXPECT_NE(a, b);
    b.next();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace delorean
