/**
 * @file
 * Unit tests for MemoryState (memory/memory_state.hpp).
 */

#include <gtest/gtest.h>

#include "memory/memory_state.hpp"

namespace delorean
{
namespace
{

TEST(MemoryState, UntouchedWordsReadDeterministicDefaults)
{
    MemoryState a, b;
    EXPECT_EQ(a.load(100), b.load(100));
    EXPECT_EQ(a.load(100), MemoryState::initValue(100));
    EXPECT_NE(a.load(100), a.load(101));
}

TEST(MemoryState, StoreThenLoad)
{
    MemoryState m;
    m.store(7, 0xABCDEF);
    EXPECT_EQ(m.load(7), 0xABCDEFu);
}

TEST(MemoryState, OverwriteKeepsLatest)
{
    MemoryState m;
    m.store(1, 10);
    m.store(1, 20);
    EXPECT_EQ(m.load(1), 20u);
    EXPECT_EQ(m.population(), 1u);
}

TEST(MemoryState, StoringDefaultValueFreesStorage)
{
    MemoryState m;
    m.store(5, 123);
    EXPECT_EQ(m.population(), 1u);
    m.store(5, MemoryState::initValue(5));
    EXPECT_EQ(m.population(), 0u);
    EXPECT_EQ(m.load(5), MemoryState::initValue(5));
}

TEST(MemoryState, HashEqualForEqualContent)
{
    MemoryState a, b;
    a.store(1, 11);
    a.store(2, 22);
    b.store(2, 22);
    b.store(1, 11); // different order, same content
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a, b);
}

TEST(MemoryState, HashDiffersForDifferentContent)
{
    MemoryState a, b;
    a.store(1, 11);
    b.store(1, 12);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(MemoryState, HashIgnoresRedundantDefaultWrites)
{
    MemoryState a, b;
    a.store(9, MemoryState::initValue(9));
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(MemoryState, SnapshotIsIndependent)
{
    MemoryState m;
    m.store(3, 33);
    MemoryState snap = m.snapshot();
    m.store(3, 44);
    EXPECT_EQ(snap.load(3), 33u);
    EXPECT_EQ(m.load(3), 44u);
}

} // namespace
} // namespace delorean
