/**
 * @file
 * Recording-side tests of the chunk engine (core/engine.hpp):
 * structural invariants of the logs and statistics an initial
 * execution must satisfy.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

Recording
recordApp(const std::string &app, const ModeConfig &mode,
          unsigned procs = 4, unsigned scale = 10)
{
    Workload w(app, procs, 42, WorkloadScale{scale});
    Recorder recorder(mode, machine(procs));
    return recorder.record(w, /*env_seed=*/1);
}

TEST(EngineRecord, PiEntriesMatchCommitCount)
{
    const Recording rec = recordApp("barnes", ModeConfig::orderOnly());
    // SPLASH workloads have no DMA, so every PI entry is a chunk.
    EXPECT_EQ(rec.pi.entryCount(), rec.stats.committedChunks);
    EXPECT_EQ(rec.fingerprint.commits.size(), rec.stats.committedChunks);
}

TEST(EngineRecord, RetiredInstrsEqualCommittedSizes)
{
    const Recording rec = recordApp("lu", ModeConfig::orderOnly());
    InstrCount total = 0;
    for (const auto &c : rec.fingerprint.commits)
        total += c.size;
    EXPECT_EQ(total, rec.stats.retiredInstrs);
}

TEST(EngineRecord, RetiredMatchesThreadContexts)
{
    const Recording rec = recordApp("fmm", ModeConfig::orderOnly());
    const InstrCount ctx_total = std::accumulate(
        rec.fingerprint.perProcRetired.begin(),
        rec.fingerprint.perProcRetired.end(), InstrCount{0});
    EXPECT_EQ(ctx_total, rec.stats.retiredInstrs);
}

TEST(EngineRecord, ChunkSizesRespectStandardSize)
{
    const Recording rec = recordApp("fft", ModeConfig::orderOnly());
    for (const auto &c : rec.fingerprint.commits) {
        EXPECT_GE(c.size, 1u);
        EXPECT_LE(c.size, 2000u);
    }
}

TEST(EngineRecord, PerProcSeqsAreConsecutive)
{
    const Recording rec = recordApp("radix", ModeConfig::orderOnly());
    for (ProcId p = 0; p < 4; ++p) {
        const auto stream = rec.fingerprint.procStream(p);
        for (std::size_t i = 0; i < stream.size(); ++i)
            EXPECT_EQ(stream[i].seq, i) << "proc " << p;
    }
}

TEST(EngineRecord, CsEntriesOnlyForNonDeterministicTruncation)
{
    const Recording rec = recordApp("water-sp", ModeConfig::orderOnly());
    std::size_t cs_entries = 0;
    for (const auto &log : rec.cs)
        cs_entries += log.entryCount();
    EXPECT_EQ(cs_entries, rec.stats.overflowTruncations
                              + rec.stats.collisionTruncations);
}

TEST(EngineRecord, OrderAndSizeLogsEveryChunk)
{
    const Recording rec =
        recordApp("barnes", ModeConfig::orderAndSize());
    std::size_t cs_entries = 0;
    for (const auto &log : rec.cs)
        cs_entries += log.entryCount();
    EXPECT_EQ(cs_entries, rec.stats.committedChunks);
    // Artificial truncation (25% of chunks) makes many non-max sizes.
    std::size_t non_max = 0;
    for (const auto &log : rec.cs)
        for (const auto &e : log.entries())
            non_max += !e.maxSize;
    EXPECT_GT(non_max, 0u);
}

TEST(EngineRecord, PicoLogHasNoPiLog)
{
    const Recording rec = recordApp("lu", ModeConfig::picoLog());
    EXPECT_EQ(rec.pi.entryCount(), 0u);
    EXPECT_GT(rec.stats.committedChunks, 0u);
    const LogSizeReport sizes = rec.logSizes();
    EXPECT_EQ(sizes.pi.rawBits, 0u);
}

TEST(EngineRecord, PicoLogCommitsAreRoundRobinPerToken)
{
    // With the commit token, processor p's k-th chunk can only commit
    // after p-1's k-th (among non-finished procs). Weak check: the
    // sequence of committing procs visits everyone at similar rates.
    const Recording rec = recordApp("fft", ModeConfig::picoLog());
    std::vector<std::size_t> counts(4, 0);
    for (const auto &c : rec.fingerprint.commits)
        ++counts[c.proc];
    for (ProcId p = 1; p < 4; ++p)
        EXPECT_LE(
            std::max(counts[p], counts[0])
                - std::min(counts[p], counts[0]),
            counts[0] / 2 + 8);
}

TEST(EngineRecord, BulkScRunProducesNoLogs)
{
    Workload w("barnes", 4, 42, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, /*logging=*/false);
    EXPECT_EQ(rec.pi.entryCount(), 0u);
    for (const auto &log : rec.cs)
        EXPECT_EQ(log.entryCount(), 0u);
    EXPECT_GT(rec.stats.committedChunks, 0u);
}

TEST(EngineRecord, StratifiedRecordingBuildsStrata)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 1;
    const Recording rec = recordApp("fmm", mode);
    EXPECT_TRUE(rec.stratified());
    EXPECT_FALSE(rec.strata.empty());
    // With max 1 chunk per proc per stratum, total counted chunks
    // equal committed chunks.
    std::uint64_t counted = 0;
    for (const auto &s : rec.strata)
        for (const auto c : s.counts)
            counted += c;
    EXPECT_EQ(counted, rec.stats.committedChunks);
}

TEST(EngineRecord, StratificationSavesPiBits)
{
    Workload w("lu", 8, 42, WorkloadScale{15});
    Recorder base(ModeConfig::orderOnly(), machine(8));
    ModeConfig strat_mode = ModeConfig::orderOnly();
    strat_mode.stratifyChunksPerProc = 1;
    Recorder strat(strat_mode, machine(8));

    const LogSizeReport s0 = base.record(w, 1).logSizes();
    const LogSizeReport s1 = strat.record(w, 1).logSizes();
    EXPECT_LT(s1.pi.rawBits, s0.pi.rawBits);
}

TEST(EngineRecord, CommercialRecordingFillsInputLogs)
{
    const Recording rec =
        recordApp("sweb2005", ModeConfig::orderOnly(), 4, 40);
    EXPECT_GT(rec.io.totalEntries(), 0u);
    EXPECT_GT(rec.interrupts.totalEntries(), 0u);
    EXPECT_GT(rec.dma.count(), 0u);
}

TEST(EngineRecord, DifferentEnvSeedsPerturbTimingNotUsefulness)
{
    // Environment noise changes cycle counts but the workload still
    // completes with all chunks committed.
    Workload w("radiosity", 4, 42, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording a = recorder.record(w, 1);
    const Recording b = recorder.record(w, 2);
    EXPECT_EQ(a.stats.retiredInstrs > 0, b.stats.retiredInstrs > 0);
    EXPECT_NE(a.stats.totalCycles, b.stats.totalCycles);
}

TEST(EngineRecord, TrafficIsAccounted)
{
    const Recording rec = recordApp("ocean", ModeConfig::orderOnly());
    EXPECT_GT(rec.stats.traffic.signatureBytes, 0u);
    EXPECT_GT(rec.stats.traffic.dataBytes, 0u);
}

} // namespace
} // namespace delorean
