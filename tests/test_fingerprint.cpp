/**
 * @file
 * Unit tests for ExecutionFingerprint (core/fingerprint.hpp).
 */

#include <gtest/gtest.h>

#include "core/fingerprint.hpp"

namespace delorean
{
namespace
{

ExecutionFingerprint
sample()
{
    ExecutionFingerprint fp;
    fp.commits = {{0, 0, 2000, 11}, {1, 0, 2000, 22}, {0, 1, 1500, 33}};
    fp.perProcAcc = {111, 222};
    fp.perProcRetired = {3500, 2000};
    fp.finalMemHash = 0xDEAD;
    return fp;
}

TEST(Fingerprint, ExactMatchOnIdenticalCopies)
{
    const auto a = sample();
    const auto b = sample();
    EXPECT_TRUE(a.matchesExact(b));
    EXPECT_TRUE(a.matchesPerProc(b));
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(Fingerprint, MemoryHashMismatchFailsBoth)
{
    const auto a = sample();
    auto b = sample();
    b.finalMemHash = 0xBEEF;
    EXPECT_FALSE(a.matchesExact(b));
    EXPECT_FALSE(a.matchesPerProc(b));
}

TEST(Fingerprint, ReorderedNonConflictingCommitsMatchPerProcOnly)
{
    const auto a = sample();
    auto b = sample();
    std::swap(b.commits[0], b.commits[1]); // cross-proc reorder
    EXPECT_FALSE(a.matchesExact(b));
    EXPECT_TRUE(a.matchesPerProc(b)); // per-proc streams unchanged
}

TEST(Fingerprint, SameProcReorderFailsPerProc)
{
    const auto a = sample();
    auto b = sample();
    std::swap(b.commits[0], b.commits[2]); // proc 0's chunks swapped
    EXPECT_FALSE(a.matchesPerProc(b));
}

TEST(Fingerprint, ChunkSizeChangeFails)
{
    const auto a = sample();
    auto b = sample();
    b.commits[2].size = 1501;
    EXPECT_FALSE(a.matchesExact(b));
    EXPECT_FALSE(a.matchesPerProc(b));
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Fingerprint, AccChangeFails)
{
    const auto a = sample();
    auto b = sample();
    b.perProcAcc[1] = 999;
    EXPECT_FALSE(a.matchesPerProc(b));
}

TEST(Fingerprint, ProcStreamExtraction)
{
    const auto a = sample();
    const auto s0 = a.procStream(0);
    ASSERT_EQ(s0.size(), 2u);
    EXPECT_EQ(s0[0].seq, 0u);
    EXPECT_EQ(s0[1].seq, 1u);
    EXPECT_EQ(a.procStream(1).size(), 1u);
    EXPECT_TRUE(a.procStream(7).empty());
}

} // namespace
} // namespace delorean
