/**
 * @file
 * Fuzz-style determinism sweep: random workload profiles far outside
 * the 13 curated application models, each recorded and replayed under
 * perturbation in a randomly chosen mode on a randomly shaped machine.
 * Appendix B's theorem must hold for *every* workload, not just the
 * evaluated ones.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

AppProfile
randomProfile(Xoshiro256ss &rng)
{
    AppProfile p;
    p.name = "fuzz";
    p.iterations = 2 + static_cast<std::uint32_t>(rng.below(5));
    p.workPerIter =
        500 + static_cast<std::uint32_t>(rng.below(6000));
    p.memOpPerMille =
        100 + static_cast<std::uint32_t>(rng.below(500));
    p.storePerMille =
        50 + static_cast<std::uint32_t>(rng.below(450));
    p.sharedPerMille = static_cast<std::uint32_t>(rng.below(400));
    p.sharedWords = 1u << (10 + rng.below(8));
    p.privateWords = 1u << (10 + rng.below(7));
    p.hotWords = 16 + static_cast<std::uint32_t>(rng.below(512));
    p.hotPerMille = static_cast<std::uint32_t>(rng.below(300));
    p.localityPerMille =
        100 + static_cast<std::uint32_t>(rng.below(880));
    p.remotePerMille = static_cast<std::uint32_t>(rng.below(600));
    p.numLocks = 1 + static_cast<std::uint32_t>(rng.below(64));
    p.lockPerMille = static_cast<std::uint32_t>(rng.below(500));
    p.csLen = 5 + static_cast<std::uint32_t>(rng.below(120));
    p.csSharedPerMille =
        static_cast<std::uint32_t>(rng.below(900));
    p.barrierEveryIters = static_cast<std::uint32_t>(rng.below(4));
    p.isCommercial = rng.chancePerMille(400);
    if (p.isCommercial) {
        p.ioPerMille = static_cast<std::uint32_t>(rng.below(200));
        p.syscallPerMille =
            static_cast<std::uint32_t>(rng.below(300));
        p.syscallLen = 20 + static_cast<std::uint32_t>(rng.below(200));
        p.irqMeanInstrs =
            5000 + static_cast<std::uint32_t>(rng.below(50000));
        p.dmaMeanInstrs =
            5000 + static_cast<std::uint32_t>(rng.below(80000));
        p.dmaBurstWords =
            8 + static_cast<std::uint32_t>(rng.below(200));
    }
    return p;
}

class FuzzSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSweep, RandomWorkloadReplaysDeterministically)
{
    Xoshiro256ss rng(GetParam());
    const AppProfile profile = randomProfile(rng);

    MachineConfig machine;
    machine.numProcs = static_cast<unsigned>(1 + rng.below(8));
    machine.bulk.simultaneousChunks =
        static_cast<unsigned>(1 + rng.below(4));
    machine.bulk.exactDisambiguation = !rng.chancePerMille(250);

    ModeConfig mode;
    switch (rng.below(4)) {
      case 0:
        mode = ModeConfig::orderAndSize();
        break;
      case 1:
        mode = ModeConfig::orderOnly();
        break;
      case 2:
        mode = ModeConfig::orderOnly();
        mode.stratifyChunksPerProc =
            static_cast<unsigned>(1 + rng.below(7));
        break;
      default:
        mode = ModeConfig::picoLog();
        break;
    }
    mode.chunkSize = 200 + rng.below(3000);

    Workload w(profile, machine.numProcs, rng.next());
    Recorder recorder(mode, machine);
    const Recording rec = recorder.record(w, /*env=*/rng.next());
    ASSERT_GT(rec.stats.retiredInstrs, 0u);

    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = rng.next();
    Replayer replayer;
    const ReplayOutcome out =
        replayer.replay(rec, w, /*env=*/rng.next(), perturb);
    if (rec.stratified())
        EXPECT_TRUE(out.deterministicPerProc)
            << "mode=" << execModeName(mode.mode)
            << " procs=" << machine.numProcs
            << " chunk=" << mode.chunkSize;
    else
        EXPECT_TRUE(out.deterministicExact)
            << "mode=" << execModeName(mode.mode)
            << " procs=" << machine.numProcs
            << " chunk=" << mode.chunkSize;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace delorean
