/**
 * @file
 * Unit tests for the CS log (core/cs_log.hpp): Table 5 entry formats.
 */

#include <gtest/gtest.h>

#include "core/cs_log.hpp"

namespace delorean
{
namespace
{

TEST(CsLog, OrderOnlyEntryBits)
{
    CsLog log(ModeConfig::orderOnly()); // 21 distance + 11 size
    log.appendTruncation(5, 1234);
    log.appendTruncation(19, 88);
    EXPECT_EQ(log.sizeBits(), 2u * 32u);
}

TEST(CsLog, PicoLogEntryBits)
{
    CsLog log(ModeConfig::picoLog()); // 22 distance + 10 size
    log.appendTruncation(3, 999);
    EXPECT_EQ(log.sizeBits(), 32u);
}

TEST(CsLog, OrderAndSizeVariableEncoding)
{
    CsLog log(ModeConfig::orderAndSize());
    log.appendCommittedSize(0, 2000, /*is_max=*/true);  // 1 bit
    log.appendCommittedSize(1, 731, /*is_max=*/false);  // 12 bits
    log.appendCommittedSize(2, 2000, /*is_max=*/true);  // 1 bit
    EXPECT_EQ(log.sizeBits(), 1u + 12u + 1u);
}

TEST(CsLog, PackedDistanceEncodingRoundTrips)
{
    const ModeConfig mode = ModeConfig::orderOnly();
    CsLog log(mode);
    const std::vector<std::pair<ChunkSeq, InstrCount>> entries{
        {7, 1900}, {8, 15}, {100, 512}, {1000, 1}};
    for (const auto &[seq, size] : entries)
        log.appendTruncation(seq, size);

    const auto bytes = log.packedBytes();
    BitReader reader(bytes, log.sizeBits());
    ChunkSeq last = 0;
    for (const auto &[seq, size] : entries) {
        const ChunkSeq distance = reader.read(mode.csDistanceBits);
        const InstrCount sz = reader.read(mode.csSizeBits);
        EXPECT_EQ(last + distance, seq);
        EXPECT_EQ(sz, size);
        last = seq;
    }
}

TEST(CsLog, OrderAndSizePackedRoundTrips)
{
    CsLog log(ModeConfig::orderAndSize());
    log.appendCommittedSize(0, 2000, true);
    log.appendCommittedSize(1, 345, false);
    const auto bytes = log.packedBytes();
    BitReader reader(bytes, log.sizeBits());
    EXPECT_EQ(reader.read(1), 1u);
    EXPECT_EQ(reader.read(1), 0u);
    EXPECT_EQ(reader.read(11), 345u);
}

TEST(CsLogCursor, AppliesToMatchingSeq)
{
    CsLog log(ModeConfig::orderOnly());
    log.appendTruncation(4, 100);
    log.appendTruncation(9, 200);
    CsLogCursor cur(log);
    EXPECT_FALSE(cur.appliesTo(3));
    EXPECT_TRUE(cur.appliesTo(4));
    EXPECT_EQ(cur.peek().size, 100u);
    cur.consume();
    EXPECT_TRUE(cur.appliesTo(9));
    cur.consume();
    EXPECT_TRUE(cur.atEnd());
    EXPECT_FALSE(cur.appliesTo(10));
}

TEST(CsLog, EmptyLogHasZeroBits)
{
    CsLog log(ModeConfig::orderOnly());
    EXPECT_EQ(log.sizeBits(), 0u);
    EXPECT_TRUE(log.packedBytes().empty());
}

} // namespace
} // namespace delorean
