/**
 * @file
 * Unit tests for the RC/SC interleaved executors
 * (sim/interleaved_executor.hpp).
 */

#include <gtest/gtest.h>

#include "sim/interleaved_executor.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine4()
{
    MachineConfig m;
    m.numProcs = 4;
    return m;
}

TEST(InterleavedExecutor, RunsToCompletion)
{
    Workload w("barnes", 4, 5, WorkloadScale::tiny());
    InterleavedExecutor rc(machine4(), ConsistencyModel::kRC);
    const InterleavedResult r = rc.run(w, 1);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.totalInstrs, 1000u);
    EXPECT_EQ(r.perProcInstrs.size(), 4u);
    for (const auto instrs : r.perProcInstrs)
        EXPECT_GT(instrs, 0u);
}

TEST(InterleavedExecutor, DeterministicGivenSameSeeds)
{
    Workload w("fmm", 4, 5, WorkloadScale::tiny());
    InterleavedExecutor rc(machine4(), ConsistencyModel::kRC);
    const InterleavedResult a = rc.run(w, 1);
    const InterleavedResult b = rc.run(w, 1);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.finalMemHash, b.finalMemHash);
    EXPECT_EQ(a.perProcAcc, b.perProcAcc);
}

TEST(InterleavedExecutor, ScIsSlowerThanRc)
{
    Workload w("radix", 4, 5, WorkloadScale{30});
    InterleavedExecutor rc(machine4(), ConsistencyModel::kRC);
    InterleavedExecutor sc(machine4(), ConsistencyModel::kSC);
    const Cycle rc_cycles = rc.run(w, 1).cycles;
    const Cycle sc_cycles = sc.run(w, 1).cycles;
    EXPECT_GT(sc_cycles, rc_cycles);
    // But not absurdly slower: the paper's SC is ~0.79x RC. Allow a
    // generous band for small runs.
    EXPECT_LT(static_cast<double>(sc_cycles),
              2.0 * static_cast<double>(rc_cycles));
}

TEST(InterleavedExecutor, AccessSinkSeesEveryMemoryOp)
{
    Workload w("lu", 2, 5, WorkloadScale::tiny());
    MachineConfig m = machine4();
    m.numProcs = 2;
    InterleavedExecutor sc(m, ConsistencyModel::kSC);
    VectorAccessSink sink;
    const InterleavedResult r = sc.run(w, 1, &sink);
    EXPECT_GT(sink.records().size(), 1000u);
    EXPECT_LT(sink.records().size(), r.totalInstrs);

    // Memop indices are per-processor and strictly increasing.
    InstrCount last[2] = {0, 0};
    bool first[2] = {true, true};
    for (const auto &rec : sink.records()) {
        ASSERT_LT(rec.proc, 2u);
        if (!first[rec.proc]) {
            ASSERT_EQ(rec.memopIndex, last[rec.proc] + 1);
        }
        first[rec.proc] = false;
        last[rec.proc] = rec.memopIndex;
        EXPECT_TRUE(rec.isRead || rec.isWrite);
    }
}

TEST(InterleavedExecutor, CostDecompositionSumsSanely)
{
    Workload w("fft", 4, 5, WorkloadScale::tiny());
    InterleavedExecutor rc(machine4(), ConsistencyModel::kRC);
    const InterleavedResult r = rc.run(w, 1);
    EXPECT_GT(r.l1Hits + r.l2Hits + r.memHits, 0u);
    EXPECT_GT(r.costCompute, 0.0);
    // Summed per-proc cost roughly equals procs * max clock only if
    // perfectly balanced; just check it does not exceed it.
    const double total =
        r.costCompute + r.costL1 + r.costL2 + r.costMem;
    EXPECT_LE(total,
              static_cast<double>(r.cycles) * 4.0 * 1.2 + 1000.0);
}

TEST(InterleavedExecutor, CommercialWorkloadTouchesDevices)
{
    MachineConfig m = machine4();
    Workload w("sweb2005", 4, 5, WorkloadScale{40});
    InterleavedExecutor rc(m, ConsistencyModel::kRC);
    const InterleavedResult r = rc.run(w, 1);
    EXPECT_GT(r.totalInstrs, 0u);
    // Different environment seeds change device values, hence accs.
    const InterleavedResult r2 = rc.run(w, 2);
    EXPECT_NE(r.perProcAcc, r2.perProcAcc);
}

} // namespace
} // namespace delorean
