/**
 * @file
 * End-to-end integration: record + perturbed replay + determinism
 * check for every application in every execution mode — the
 * executable form of Appendix B's theorem across the full evaluation
 * matrix.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

struct Case
{
    std::string app;
    ExecMode mode;
};

std::string
caseName(const testing::TestParamInfo<Case> &info)
{
    std::string name =
        info.param.app + "_" + execModeName(info.param.mode);
    for (auto &ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return name;
}

class RecordReplay : public testing::TestWithParam<Case>
{
};

TEST_P(RecordReplay, PerturbedReplayReproducesExecution)
{
    const Case &c = GetParam();
    MachineConfig machine;
    machine.numProcs = 4;

    ModeConfig mode;
    switch (c.mode) {
      case ExecMode::kOrderAndSize:
        mode = ModeConfig::orderAndSize();
        break;
      case ExecMode::kOrderOnly:
        mode = ModeConfig::orderOnly();
        break;
      case ExecMode::kPicoLog:
        mode = ModeConfig::picoLog();
        break;
    }

    Workload w(c.app, machine.numProcs, 1234, WorkloadScale::tiny());
    Recorder recorder(mode, machine);
    const Recording rec = recorder.record(w, /*env=*/1);

    ASSERT_GT(rec.stats.committedChunks, 0u);
    ASSERT_GT(rec.stats.retiredInstrs, 1000u);

    Replayer replayer;
    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = 0xF00D;
    const ReplayOutcome out =
        replayer.replay(rec, w, /*env=*/0xC0FFEE, perturb);

    EXPECT_TRUE(out.deterministicExact)
        << c.app << " under " << execModeName(c.mode);
    EXPECT_EQ(out.stats.retiredInstrs, rec.stats.retiredInstrs);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &app : AppTable::allNames())
        for (const ExecMode m :
             {ExecMode::kOrderAndSize, ExecMode::kOrderOnly,
              ExecMode::kPicoLog})
            cases.push_back(Case{app, m});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllModes, RecordReplay,
                         testing::ValuesIn(allCases()), caseName);

TEST(Integration, StratifiedEndToEndAcrossApps)
{
    MachineConfig machine;
    machine.numProcs = 4;
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 1;
    for (const std::string app : {"barnes", "radix", "sjbb2k"}) {
        Workload w(app, 4, 77, WorkloadScale::tiny());
        const Recording rec = Recorder(mode, machine).record(w, 1);
        ReplayPerturbation perturb;
        perturb.enabled = true;
        perturb.seed = 1;
        const ReplayOutcome out =
            Replayer().replay(rec, w, 2, perturb);
        EXPECT_TRUE(out.deterministicPerProc) << app;
    }
}

TEST(Integration, RepeatedReplaysAgreeWithEachOther)
{
    // Replay-of-replay consistency: five perturbed replays must all
    // produce the *same* fingerprint, not merely each match the
    // recording by accident.
    MachineConfig machine;
    machine.numProcs = 4;
    Workload w("fmm", 4, 5, WorkloadScale::tiny());
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine).record(w, 1);
    Replayer replayer;
    std::uint64_t first_hash = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ReplayPerturbation p;
        p.enabled = true;
        p.seed = seed;
        const ReplayOutcome out = replayer.replay(rec, w, seed * 7, p);
        ASSERT_TRUE(out.deterministicExact);
        if (seed == 1)
            first_hash = out.fingerprint.hash();
        else
            EXPECT_EQ(out.fingerprint.hash(), first_hash);
    }
}

} // namespace
} // namespace delorean
