/**
 * @file
 * FlatSet: the sorted-vector set backing ChunkExtra's line sets and
 * the stratifier's read/write sets. Must behave exactly like a set
 * (dedup, membership) while iterating in ascending order and keeping
 * its capacity across clear() (the engine recycles these per chunk).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/flat_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{
namespace
{

TEST(FlatSet, InsertReportsNewness)
{
    FlatSet<Addr> s;
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.insert(3));
    EXPECT_FALSE(s.insert(5));
    EXPECT_FALSE(s.insert(3));
    EXPECT_TRUE(s.insert(4));
    EXPECT_EQ(s.size(), 3u);
}

TEST(FlatSet, ContainsMatchesInserted)
{
    FlatSet<Addr> s;
    for (Addr a : {9, 1, 7, 3, 7, 1})
        s.insert(static_cast<Addr>(a));
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(7));
    EXPECT_TRUE(s.contains(9));
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(2));
    EXPECT_FALSE(s.contains(10));
}

TEST(FlatSet, IteratesInAscendingOrder)
{
    Xoshiro256ss rng(42);
    FlatSet<Addr> s;
    for (int i = 0; i < 500; ++i)
        s.insert(rng.below(200));
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
}

TEST(FlatSet, MatchesUnorderedSetSemantics)
{
    Xoshiro256ss rng(7);
    FlatSet<Addr> flat;
    std::unordered_set<Addr> ref;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(300);
        EXPECT_EQ(flat.insert(a), ref.insert(a).second);
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (Addr a = 0; a < 300; ++a)
        EXPECT_EQ(flat.contains(a), ref.count(a) != 0);
}

TEST(FlatSet, ClearKeepsCapacity)
{
    FlatSet<Addr> s;
    for (Addr a = 0; a < 100; ++a)
        s.insert(a * 3);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(3));
    // Reusable after clear.
    EXPECT_TRUE(s.insert(3));
    EXPECT_TRUE(s.contains(3));
}

TEST(FlatSet, EqualityIsValueBased)
{
    FlatSet<Addr> a, b;
    for (Addr v : {4, 2, 8})
        a.insert(v);
    for (Addr v : {8, 4, 2}) // different insertion order
        b.insert(v);
    EXPECT_EQ(a, b);
    b.insert(16);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace delorean
