/**
 * @file
 * Unit tests for the PI log (core/pi_log.hpp).
 */

#include <gtest/gtest.h>

#include "core/pi_log.hpp"

namespace delorean
{
namespace
{

TEST(PiLog, EntryWidthCoversProcsPlusDma)
{
    EXPECT_EQ(PiLog(8).entryBits(), 4u);  // 8 procs + DMA = 9 codes
    EXPECT_EQ(PiLog(4).entryBits(), 3u);  // 5 codes
    EXPECT_EQ(PiLog(16).entryBits(), 5u); // 17 codes
    EXPECT_EQ(PiLog(15).entryBits(), 4u); // 16 codes
}

TEST(PiLog, AppendAndReadBack)
{
    PiLog log(8);
    log.append(3);
    log.append(kDmaProcId);
    log.append(0);
    ASSERT_EQ(log.entryCount(), 3u);
    EXPECT_EQ(log.entryAt(0), 3u);
    EXPECT_EQ(log.entryAt(1), kDmaProcId);
    EXPECT_EQ(log.entryAt(2), 0u);
}

TEST(PiLog, SizeBitsMatchesEntryCount)
{
    PiLog log(8);
    for (int i = 0; i < 100; ++i)
        log.append(static_cast<ProcId>(i % 8));
    EXPECT_EQ(log.sizeBits(), 400u);
    EXPECT_EQ(log.packedBytes().size(), 50u);
}

TEST(PiLog, PackedBytesRoundTrip)
{
    PiLog log(8);
    for (int i = 0; i < 37; ++i)
        log.append(static_cast<ProcId>((i * 5) % 8));
    const auto bytes = log.packedBytes();
    BitReader reader(bytes, log.sizeBits());
    for (std::size_t i = 0; i < log.entryCount(); ++i)
        EXPECT_EQ(reader.read(log.entryBits()), log.entryAt(i));
}

TEST(PiLogCursor, WalksInOrder)
{
    PiLog log(8);
    log.append(1);
    log.append(kDmaProcId);
    log.append(2);
    PiLogCursor cur(log);
    EXPECT_FALSE(cur.atEnd());
    EXPECT_EQ(cur.peek(), 1u);
    EXPECT_EQ(cur.next(), 1u);
    EXPECT_EQ(cur.peek(), kDmaProcId);
    EXPECT_EQ(cur.next(), kDmaProcId);
    EXPECT_EQ(cur.next(), 2u);
    EXPECT_TRUE(cur.atEnd());
    EXPECT_EQ(cur.position(), 3u);
}

} // namespace
} // namespace delorean
