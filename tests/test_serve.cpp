/**
 * @file
 * Streaming record/replay service (src/serve): job-line parsing,
 * fair per-class dispatch, admission control, exactly-once recording
 * dedupe, and ledger determinism across worker-pool widths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/service.hpp"

namespace delorean
{
namespace
{

ServeJob
parsedOk(const std::string &line)
{
    ServeJob job;
    std::string error;
    const bool ok = parseServeJob(line, job, error);
    EXPECT_TRUE(ok) << line << ": " << error;
    return job;
}

std::string
parseError(const std::string &line)
{
    ServeJob job;
    std::string error;
    EXPECT_FALSE(parseServeJob(line, job, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
    return error;
}

TEST(Serve, ParseJobLineFull)
{
    const ServeJob job = parsedOk(
        "replay app=radix seed=7 scale=30 procs=8 mode=stratified "
        "strat=2 env=3 renv=9 window=5");
    EXPECT_EQ(job.cls, ServeClass::kReplay);
    EXPECT_EQ(job.record.app, "radix");
    EXPECT_EQ(job.record.workloadSeed, 7u);
    EXPECT_EQ(job.record.scalePercent, 30u);
    EXPECT_EQ(job.record.machine.numProcs, 8u);
    EXPECT_EQ(job.record.mode.mode, ExecMode::kOrderOnly);
    EXPECT_EQ(job.record.mode.stratifyChunksPerProc, 2u);
    EXPECT_EQ(job.record.envSeed, 3u);
    EXPECT_EQ(job.replayEnvSeed, 9u);
    EXPECT_EQ(job.replayWindow, 5u);
}

TEST(Serve, ParseJobDefaults)
{
    const ServeJob job = parsedOk("record app=fft");
    EXPECT_EQ(job.cls, ServeClass::kRecord);
    EXPECT_EQ(job.record.app, "fft");
    // Default mode is the paper's full OrderAndSize recorder.
    EXPECT_EQ(job.record.mode.mode, ExecMode::kOrderAndSize);
    EXPECT_EQ(job.record.mode.stratifyChunksPerProc, 0u);
}

TEST(Serve, ParseSkipsBlankAndCommentLines)
{
    ServeJob job;
    std::string error;
    EXPECT_FALSE(parseServeJob("", job, error));
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(parseServeJob("   ", job, error));
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(parseServeJob("# a comment", job, error));
    EXPECT_TRUE(error.empty());
}

TEST(Serve, ParseRejectsMalformedLines)
{
    EXPECT_NE(parseError("observe app=fft").find("unknown session"),
              std::string::npos);
    EXPECT_NE(parseError("record app=fft scale").find("key=value"),
              std::string::npos);
    EXPECT_NE(parseError("record app=fft scale=big")
                  .find("needs a number"),
              std::string::npos);
    EXPECT_NE(parseError("record app=fft mode=turbo")
                  .find("unknown mode"),
              std::string::npos);
    EXPECT_NE(parseError("record seed=4").find("app="),
              std::string::npos);
    EXPECT_NE(parseError("record app=fft color=red")
                  .find("unknown field"),
              std::string::npos);
}

TEST(Serve, ParseJobsReportsLineNumber)
{
    std::istringstream in("# header\n"
                          "record app=radix\n"
                          "replay app=radix mode=warp\n");
    try {
        parseServeJobs(in);
        FAIL() << "expected a parse failure";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("job line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Serve, DispatchOrderIsRoundRobinByClass)
{
    // A job file front-loaded with records must still interleave the
    // classes: FIFO within a class, round-robin across classes.
    const auto mk = [](ServeClass cls) {
        ServeJob job;
        job.cls = cls;
        job.record.app = "fft";
        return job;
    };
    const std::vector<ServeJob> jobs = {
        mk(ServeClass::kRecord),   // 0
        mk(ServeClass::kRecord),   // 1
        mk(ServeClass::kRecord),   // 2
        mk(ServeClass::kReplay),   // 3
        mk(ServeClass::kReplay),   // 4
        mk(ServeClass::kValidate), // 5
    };
    const std::vector<std::size_t> expect = {0, 3, 5, 1, 4, 2};
    EXPECT_EQ(serveDispatchOrder(jobs), expect);
}

std::vector<ServeJob>
soakJobs()
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 4;
    const ModeConfig modes[2] = {ModeConfig::orderAndSize(), strat};
    const char *apps[2] = {"radix", "fft"};

    std::vector<ServeJob> jobs;
    for (int i = 0; i < 2; ++i) {
        for (const ServeClass cls :
             {ServeClass::kRecord, ServeClass::kReplay,
              ServeClass::kValidate}) {
            ServeJob job;
            job.cls = cls;
            job.record.app = apps[i];
            job.record.machine.numProcs = 4;
            job.record.scalePercent = 3;
            job.record.mode = modes[i];
            job.replayEnvSeed = 6;
            jobs.push_back(job);
        }
    }
    return jobs;
}

void
removeArchives(const ServeReport &report, const std::string &dir)
{
    for (const ServeRecordingInfo &r : report.recordings)
        if (!r.archivePath.empty())
            std::remove(r.archivePath.c_str());
    ::rmdir(dir.c_str());
}

TEST(Serve, SoakLedgerDeterministicAcrossWidths)
{
    // Mixed classes over two recording keys, with streamed archives
    // cross-checked against the batch writer in-run. The ledger (and
    // the archives) must not depend on the worker-pool width.
    const std::vector<ServeJob> jobs = soakJobs();

    const auto runAt = [&jobs](unsigned width,
                               const std::string &dir) {
        ServeOptions opts;
        opts.jobs = width;
        opts.archiveDir = dir;
        opts.checkpointPeriod = 25;
        opts.verifyArchives = true;
        ServeService service(opts);
        return service.run(jobs);
    };
    const std::string dir1 = testing::TempDir() + "serve_soak_j1";
    const std::string dir4 = testing::TempDir() + "serve_soak_j4";
    const ServeReport serial = runAt(1, dir1);
    const ServeReport wide = runAt(4, dir4);

    EXPECT_EQ(serial.okCount(), jobs.size());
    EXPECT_EQ(wide.okCount(), jobs.size());
    for (const ServeSessionResult &r : wide.sessions)
        EXPECT_TRUE(r.ok) << r.error;

    // Exactly-once recording per distinct key, at either width.
    EXPECT_EQ(serial.cacheMisses, 2u);
    EXPECT_EQ(wide.cacheMisses, 2u);
    ASSERT_EQ(serial.recordings.size(), 2u);
    ASSERT_EQ(wide.recordings.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(serial.recordings[i].key, wide.recordings[i].key);
        EXPECT_EQ(serial.recordings[i].archiveBytes,
                  wide.recordings[i].archiveBytes);
        EXPECT_GT(serial.recordings[i].archiveBytes, 0u);
        EXPECT_EQ(serial.recordings[i].sessions, 3u);
    }

    EXPECT_EQ(serial.ledgerJson(), wide.ledgerJson());

    removeArchives(serial, dir1);
    removeArchives(wide, dir4);
}

TEST(Serve, RingEmissionDeterministicAndRecoverable)
{
    // With a ring directory set, every distinct recording streams an
    // always-on ring while it records. The ring counters land in the
    // ledger and must be width-invariant, and every emitted ring must
    // open cleanly and reassemble the full recording.
    const std::vector<ServeJob> jobs = soakJobs();

    const auto runAt = [&jobs](unsigned width,
                               const std::string &dir) {
        ServeOptions opts;
        opts.jobs = width;
        opts.ringDir = dir;
        // Big enough that nothing is evicted: readAll() then checks
        // the whole history survived the ring round trip.
        opts.ringBudgetBytes = 256u << 20;
        opts.checkpointPeriod = 25;
        ServeService service(opts);
        return service.run(jobs);
    };
    const std::string dir1 = testing::TempDir() + "serve_ring_j1";
    const std::string dir4 = testing::TempDir() + "serve_ring_j4";
    const ServeReport serial = runAt(1, dir1);
    const ServeReport wide = runAt(4, dir4);

    EXPECT_EQ(serial.okCount(), jobs.size());
    EXPECT_EQ(wide.okCount(), jobs.size());
    ASSERT_EQ(serial.recordings.size(), 2u);
    ASSERT_EQ(wide.recordings.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const ServeRecordingInfo &s = serial.recordings[i];
        const ServeRecordingInfo &w = wide.recordings[i];
        ASSERT_FALSE(s.ringPath.empty());
        EXPECT_GT(s.ringSegments, 0u);
        EXPECT_GT(s.ringBytes, 0u);
        EXPECT_EQ(s.ringBytes, w.ringBytes);
        EXPECT_EQ(s.ringSegments, w.ringSegments);
        EXPECT_EQ(s.ringEvicted, w.ringEvicted);

        ASSERT_TRUE(RingArchiveReader::looksLikeRing(s.ringPath));
        const RingArchiveReader ring =
            RingArchiveReader::open(s.ringPath);
        EXPECT_TRUE(ring.recovery().clean);
        EXPECT_TRUE(ring.recovery().usedIndex);
        const Recording rec = ring.readAll();
        EXPECT_EQ(rec.appName, s.app);
    }
    EXPECT_EQ(serial.ledgerJson(), wide.ledgerJson());

    for (const ServeReport *r : {&serial, &wide})
        for (const ServeRecordingInfo &info : r->recordings)
            std::filesystem::remove_all(info.ringPath);
    ::rmdir(dir1.c_str());
    ::rmdir(dir4.c_str());
}

TEST(Serve, AdmissionGateBoundsInflightSessions)
{
    const std::vector<ServeJob> jobs = soakJobs();
    ServeOptions opts;
    opts.jobs = 4;
    opts.maxInflight = 2;
    ServeService service(opts);
    const ServeReport report = service.run(jobs);
    EXPECT_EQ(report.okCount(), jobs.size());
    EXPECT_LE(report.peakInflight, 2u);
    EXPECT_GE(report.peakInflight, 1u);
}

} // namespace
} // namespace delorean
