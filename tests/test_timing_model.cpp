/**
 * @file
 * Unit tests for the timing model (sim/timing_model.hpp).
 */

#include <gtest/gtest.h>

#include "sim/timing_model.hpp"

namespace delorean
{
namespace
{

MachineConfig cfg;

TEST(TimingModel, ComputeCostIsPositiveAndSubCycle)
{
    TimingModel t(cfg, ConsistencyModel::kRC);
    EXPECT_GT(t.computeCost(), 0.0);
    EXPECT_LT(t.computeCost(), 1.0); // superscalar
}

TEST(TimingModel, DeeperMissesCostMore)
{
    TimingModel t(cfg, ConsistencyModel::kRC);
    const double l1 = t.memCost(Op::kLoad, HitLevel::kL1);
    const double l2 = t.memCost(Op::kLoad, HitLevel::kL2);
    const double mem = t.memCost(Op::kLoad, HitLevel::kMemory);
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, mem);
}

TEST(TimingModel, ScStoreMissesCostMoreThanRc)
{
    TimingModel rc(cfg, ConsistencyModel::kRC);
    TimingModel sc(cfg, ConsistencyModel::kSC);
    EXPECT_GT(sc.memCost(Op::kStore, HitLevel::kMemory),
              rc.memCost(Op::kStore, HitLevel::kMemory));
    EXPECT_GT(sc.memCost(Op::kStore, HitLevel::kL2),
              rc.memCost(Op::kStore, HitLevel::kL2));
}

TEST(TimingModel, ScAndRcLoadsMatch)
{
    TimingModel rc(cfg, ConsistencyModel::kRC);
    TimingModel sc(cfg, ConsistencyModel::kSC);
    EXPECT_DOUBLE_EQ(sc.memCost(Op::kLoad, HitLevel::kMemory),
                     rc.memCost(Op::kLoad, HitLevel::kMemory));
}

TEST(TimingModel, ChunkedMatchesRc)
{
    TimingModel rc(cfg, ConsistencyModel::kRC);
    TimingModel ch(cfg, ConsistencyModel::kChunked);
    for (const HitLevel lvl :
         {HitLevel::kL1, HitLevel::kL2, HitLevel::kMemory}) {
        EXPECT_DOUBLE_EQ(ch.memCost(Op::kLoad, lvl),
                         rc.memCost(Op::kLoad, lvl));
        EXPECT_DOUBLE_EQ(ch.memCost(Op::kStore, lvl),
                         rc.memCost(Op::kStore, lvl));
    }
}

TEST(TimingModel, AmoPaysFullLatencyPlusScDrain)
{
    TimingModel rc(cfg, ConsistencyModel::kRC);
    TimingModel sc(cfg, ConsistencyModel::kSC);
    EXPECT_GT(rc.memCost(Op::kAmoSwap, HitLevel::kL2),
              rc.memCost(Op::kLoad, HitLevel::kL2));
    EXPECT_GT(sc.memCost(Op::kAmoSwap, HitLevel::kL2),
              rc.memCost(Op::kAmoSwap, HitLevel::kL2));
}

TEST(TimingModel, UncachedAccessesAreExpensiveEverywhere)
{
    TimingModel rc(cfg, ConsistencyModel::kRC);
    EXPECT_GT(rc.memCost(Op::kIoLoad, HitLevel::kMemory), 300.0);
    EXPECT_GT(rc.memCost(Op::kIoStore, HitLevel::kL1), 300.0);
}

} // namespace
} // namespace delorean
