/**
 * @file
 * Campaign runner: deterministic parallel execution of independent
 * record/replay jobs. The load-bearing property is that results are
 * a pure function of the job list — never of the worker count or the
 * host's scheduling — plus exactly-once semantics of the recording
 * cache and the merge behaviour of the BENCH_campaign.json writer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/delorean.hpp"
#include "sim/campaign.hpp"

namespace delorean
{
namespace
{

constexpr std::uint64_t kSeed = 20080621;
constexpr unsigned kScale = 5;

RecordJob
smallJob(const std::string &app, const ModeConfig &mode)
{
    RecordJob job;
    job.app = app;
    job.workloadSeed = kSeed;
    job.scalePercent = kScale;
    job.mode = mode;
    return job;
}

TEST(CampaignRunner, ExecutesEveryTaskAtAnyWidth)
{
    for (const unsigned width : {1u, 2u, 8u, 32u}) {
        CampaignRunner runner(width);
        EXPECT_EQ(runner.jobs(), width);
        std::atomic<int> sum{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 100; ++i)
            tasks.push_back([&sum, i] { sum += i; });
        runner.run(std::move(tasks));
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(CampaignRunner, MapKeysResultsByJobIndex)
{
    CampaignRunner runner(16);
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i)
        tasks.push_back([i] { return i * i; });
    const std::vector<int> results = runner.map(std::move(tasks));
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(CampaignRunner, PropagatesTaskException)
{
    CampaignRunner runner(4);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([&ran, i] {
            ++ran;
            if (i == 7)
                throw std::runtime_error("job 7 failed");
        });
    }
    EXPECT_THROW(runner.run(std::move(tasks)), std::runtime_error);
    // All tasks still ran; the failure is reported, not amplified.
    EXPECT_EQ(ran.load(), 16);
}

TEST(RecordingCache, RecordsEachKeyExactlyOnce)
{
    RecordingCache cache;
    const RecordJob job = smallJob("radix", ModeConfig::orderOnly());

    std::vector<const Recording *> seen(16, nullptr);
    std::atomic<unsigned> fresh_count{0};
    CampaignRunner runner(8);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        tasks.push_back([&cache, &job, &seen, &fresh_count, i] {
            bool fresh = false;
            seen[i] = &cache.record(job, &fresh);
            if (fresh)
                ++fresh_count;
        });
    }
    runner.run(std::move(tasks));

    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 15u);
    EXPECT_EQ(fresh_count.load(), 1u);
    for (const Recording *rec : seen)
        EXPECT_EQ(rec, seen[0]); // one shared recording
    EXPECT_GT(seen[0]->stats.committedChunks, 0u);
}

TEST(RecordingCache, KeyCoversModeMachineAndJobFields)
{
    const RecordJob base = smallJob("radix", ModeConfig::orderOnly());

    RecordJob other = base;
    other.mode.chunkSize = 999;
    EXPECT_NE(recordJobKey(base), recordJobKey(other));

    other = base;
    other.machine.bulk.exactDisambiguation =
        !other.machine.bulk.exactDisambiguation;
    EXPECT_NE(recordJobKey(base), recordJobKey(other));

    other = base;
    other.logging = false;
    EXPECT_NE(recordJobKey(base), recordJobKey(other));

    other = base;
    other.envSeed += 1;
    EXPECT_NE(recordJobKey(base), recordJobKey(other));

    other = base;
    other.app = "fft";
    EXPECT_NE(recordJobKey(base), recordJobKey(other));

    EXPECT_EQ(recordJobKey(base), recordJobKey(base));
}

/**
 * The acceptance property: the same campaign produces bit-identical
 * recordings whether it runs serially or wide. Runs a small
 * (app x mode) grid through two independent caches.
 */
TEST(Campaign, ResultsIdenticalAtAnyJobCount)
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;
    const std::vector<std::string> apps{"radix", "fft"};
    const std::vector<ModeConfig> modes{
        ModeConfig::orderOnly(), ModeConfig::picoLog(), strat};

    auto run_campaign = [&](unsigned width) {
        CampaignRunner runner(width);
        auto cache = std::make_unique<RecordingCache>();
        std::vector<std::function<const Recording *()>> tasks;
        for (const auto &app : apps)
            for (const auto &mode : modes)
                tasks.push_back([&cache, job = smallJob(app, mode)] {
                    return &cache->record(job);
                });
        return std::make_pair(runner.map(std::move(tasks)),
                              std::move(cache));
    };

    const auto [serial, serial_cache] = run_campaign(1);
    const auto [wide, wide_cache] = run_campaign(8);

    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const Recording &a = *serial[i];
        const Recording &b = *wide[i];
        EXPECT_TRUE(a.fingerprint.matchesExact(b.fingerprint))
            << "job " << i;
        EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
        EXPECT_EQ(a.stats.retiredInstrs, b.stats.retiredInstrs);
        EXPECT_EQ(a.stats.committedChunks, b.stats.committedChunks);
        EXPECT_EQ(a.stats.squashes, b.stats.squashes);
        const LogSizeReport sa = a.logSizes();
        const LogSizeReport sb = b.logSizes();
        EXPECT_EQ(sa.pi.rawBits, sb.pi.rawBits);
        EXPECT_EQ(sa.pi.compressedBits, sb.pi.compressedBits);
        EXPECT_EQ(sa.cs.rawBits, sb.cs.rawBits);
        EXPECT_EQ(sa.cs.compressedBits, sb.cs.compressedBits);
    }
    // Cache traffic is deterministic too: all keys distinct here.
    EXPECT_EQ(serial_cache->misses(), wide_cache->misses());
    EXPECT_EQ(serial_cache->hits(), wide_cache->hits());
}

TEST(CampaignReportWriter, MergesAndReplacesEntries)
{
    const std::string path = "test_campaign_report.json";
    std::remove(path.c_str());

    CampaignReport first;
    first.harness = "alpha";
    first.jobs = 4;
    first.jobCount = 10;
    first.wallSeconds = 2.0;
    first.simCycles = 1000000;
    first.simInstrs = 500000;
    writeCampaignReport(first, path);

    CampaignReport second;
    second.harness = "beta";
    second.jobs = 8;
    second.jobCount = 20;
    second.wallSeconds = 1.0;
    writeCampaignReport(second, path);

    // Replacing alpha must keep beta.
    first.jobCount = 11;
    writeCampaignReport(first, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    EXPECT_NE(text.find("\"alpha\""), std::string::npos);
    EXPECT_NE(text.find("\"beta\""), std::string::npos);
    EXPECT_NE(text.find("\"job_count\": 11"), std::string::npos);
    EXPECT_EQ(text.find("\"job_count\": 10"), std::string::npos);
    EXPECT_NE(text.find("\"sim_cycles_per_sec\": 500000"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CampaignReportWriter, ReplacesMalformedFileWholesale)
{
    const std::string path = "test_campaign_report_bad.json";
    {
        std::ofstream out(path);
        out << "this is not json";
    }
    CampaignReport report;
    report.harness = "gamma";
    writeCampaignReport(report, path);

    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"gamma\""), std::string::npos);
    EXPECT_EQ(ss.str().find("not json"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace delorean
