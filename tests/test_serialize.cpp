/**
 * @file
 * Recording persistence tests: save/load round trips, and replay of a
 * recording that went through disk.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/delorean.hpp"
#include "core/serialize.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

Recording
roundTrip(const Recording &rec)
{
    std::stringstream buffer;
    saveRecording(rec, buffer);
    return loadRecording(buffer);
}

TEST(Serialize, RoundTripPreservesLogsAndFingerprint)
{
    Workload w("sweb2005", 4, 3, WorkloadScale{20});
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine()).record(w, 1);
    const Recording copy = roundTrip(rec);

    EXPECT_EQ(copy.appName, rec.appName);
    EXPECT_EQ(copy.workloadSeed, rec.workloadSeed);
    EXPECT_EQ(copy.machine.numProcs, rec.machine.numProcs);
    EXPECT_EQ(copy.mode.mode, rec.mode.mode);
    EXPECT_EQ(copy.mode.chunkSize, rec.mode.chunkSize);

    ASSERT_EQ(copy.pi.entryCount(), rec.pi.entryCount());
    for (std::size_t i = 0; i < rec.pi.entryCount(); ++i)
        ASSERT_EQ(copy.pi.entryAt(i), rec.pi.entryAt(i));

    ASSERT_EQ(copy.cs.size(), rec.cs.size());
    for (std::size_t p = 0; p < rec.cs.size(); ++p)
        EXPECT_EQ(copy.cs[p].entryCount(), rec.cs[p].entryCount());

    EXPECT_EQ(copy.io.totalEntries(), rec.io.totalEntries());
    EXPECT_EQ(copy.interrupts.totalEntries(),
              rec.interrupts.totalEntries());
    EXPECT_EQ(copy.dma.count(), rec.dma.count());

    EXPECT_TRUE(copy.fingerprint.matchesExact(rec.fingerprint));
    EXPECT_EQ(copy.stats.retiredInstrs, rec.stats.retiredInstrs);
    EXPECT_EQ(copy.stats.totalCycles, rec.stats.totalCycles);
}

TEST(Serialize, LoadedRecordingReplaysDeterministically)
{
    Workload w("sjbb2k", 4, 3, WorkloadScale{20});
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine()).record(w, 1);
    const Recording copy = roundTrip(rec);

    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = 9;
    const ReplayOutcome out = Replayer().replay(copy, 42, perturb);
    EXPECT_TRUE(out.deterministicExact);
}

TEST(Serialize, OrderAndSizeAndPicoLogRoundTrip)
{
    for (const ModeConfig mode :
         {ModeConfig::orderAndSize(), ModeConfig::picoLog()}) {
        Workload w("radix", 4, 3, WorkloadScale::tiny());
        const Recording rec = Recorder(mode, machine()).record(w, 1);
        const Recording copy = roundTrip(rec);
        EXPECT_TRUE(copy.fingerprint.matchesExact(rec.fingerprint));
        const ReplayOutcome out = Replayer().replay(copy, 5);
        EXPECT_TRUE(out.deterministicExact)
            << execModeName(mode.mode);
    }
}

TEST(Serialize, StratifiedRecordingRoundTrips)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 1;
    Workload w("barnes", 4, 3, WorkloadScale::tiny());
    const Recording rec = Recorder(mode, machine()).record(w, 1);
    const Recording copy = roundTrip(rec);
    ASSERT_EQ(copy.strata.size(), rec.strata.size());
    const ReplayOutcome out = Replayer().replay(copy, 5);
    EXPECT_TRUE(out.deterministicPerProc);
}

TEST(Serialize, CheckpointsRoundTripAndReplay)
{
    Workload w("fmm", 4, 3, WorkloadScale::tiny());
    const Recording rec = Recorder(ModeConfig::orderOnly(), machine())
                              .record(w, 1, true, {25});
    ASSERT_EQ(rec.checkpoints.size(), 1u);
    const Recording copy = roundTrip(rec);
    ASSERT_EQ(copy.checkpoints.size(), 1u);
    EXPECT_EQ(copy.checkpoints[0].gcc, rec.checkpoints[0].gcc);
    EXPECT_EQ(copy.checkpoints[0].memory.hash(),
              rec.checkpoints[0].memory.hash());

    const ReplayOutcome out =
        Replayer().replayInterval(copy, 0, w, 7);
    EXPECT_TRUE(out.deterministicExact);
}

TEST(Serialize, FileRoundTrip)
{
    Workload w("lu", 2, 3, WorkloadScale::tiny());
    MachineConfig m = machine(2);
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), m).record(w, 1);
    const std::string path = "/tmp/delorean_test_recording.bin";
    saveRecordingFile(rec, path);
    const Recording copy = loadRecordingFile(path);
    EXPECT_TRUE(copy.fingerprint.matchesExact(rec.fingerprint));
    std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage)
{
    std::stringstream buffer;
    buffer << "this is not a recording at all, sorry";
    EXPECT_THROW(loadRecording(buffer), std::runtime_error);
}

TEST(Serialize, RejectsTruncated)
{
    Workload w("lu", 2, 3, WorkloadScale::tiny());
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine(2)).record(w, 1);
    std::stringstream buffer;
    saveRecording(rec, buffer);
    const std::string full = buffer.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(loadRecording(cut), std::runtime_error);
}

} // namespace
} // namespace delorean
