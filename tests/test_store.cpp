/**
 * @file
 * Archive container (src/store): segmented, compressed,
 * checkpoint-indexed storage for recordings. Round-trip byte
 * identity, O(1) checkpoint seek, and interval replay that decodes
 * only the segments covering the requested GCC interval.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/delorean.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "trace/app_profile.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

std::vector<std::pair<std::string, ModeConfig>>
allModes()
{
    ModeConfig stratified = ModeConfig::orderOnly();
    stratified.stratifyChunksPerProc = 4;
    return {
        {"OrderAndSize", ModeConfig::orderAndSize()},
        {"OrderOnly", ModeConfig::orderOnly()},
        {"OrderOnlyStratified", stratified},
        {"PicoLog", ModeConfig::picoLog()},
    };
}

std::string
savedBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    saveRecording(rec, out);
    return std::move(out).str();
}

std::vector<std::uint8_t>
archiveBytes(const Recording &rec)
{
    std::ostringstream out(std::ios::binary);
    writeArchive(rec, out);
    const std::string s = std::move(out).str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/** Archive -> readAll must be byte-identical under saveRecording. */
void
expectRoundTripAllApps(const ModeConfig &mode, const char *mode_name)
{
    for (const std::string &app : AppTable::splash2Names()) {
        Workload w(app, 4, 9, WorkloadScale::tiny());
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {}, 20);

        const ArchiveReader reader =
            ArchiveReader::fromBytes(archiveBytes(rec));
        ASSERT_EQ(reader.checkpointCount(), rec.checkpoints.size())
            << mode_name << "/" << app;
        const Recording back = reader.readAll();
        EXPECT_TRUE(savedBytes(back) == savedBytes(rec))
            << mode_name << "/" << app;
    }
}

TEST(Store, RoundTripByteIdentityOrderAndSize)
{
    expectRoundTripAllApps(ModeConfig::orderAndSize(), "OrderAndSize");
}

TEST(Store, RoundTripByteIdentityOrderOnly)
{
    expectRoundTripAllApps(ModeConfig::orderOnly(), "OrderOnly");
}

TEST(Store, RoundTripByteIdentityStratified)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 4;
    expectRoundTripAllApps(mode, "OrderOnlyStratified");
}

TEST(Store, RoundTripByteIdentityPicoLog)
{
    expectRoundTripAllApps(ModeConfig::picoLog(), "PicoLog");
}

TEST(Store, RoundTripWithSystemActivity)
{
    // Interrupts, I/O loads and DMA transfers crossing segment
    // boundaries must land in the right segments.
    for (const auto &[mode_name, mode] : allModes()) {
        Workload w("sweb2005", 4, 9, WorkloadScale{30});
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {}, 25);
        ASSERT_GT(rec.io.totalEntries(), 0u) << mode_name;
        ASSERT_GT(rec.dma.count(), 0u) << mode_name;

        const ArchiveReader reader =
            ArchiveReader::fromBytes(archiveBytes(rec));
        const Recording back = reader.readAll();
        EXPECT_TRUE(savedBytes(back) == savedBytes(rec)) << mode_name;
    }
}

TEST(Store, RoundTripWithoutCheckpoints)
{
    // No checkpoints -> a single tail segment; still byte-identical.
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_TRUE(rec.checkpoints.empty());

    const ArchiveReader reader =
        ArchiveReader::fromBytes(archiveBytes(rec));
    EXPECT_EQ(reader.checkpointCount(), 0u);
    EXPECT_EQ(savedBytes(reader.readAll()), savedBytes(rec));
}

TEST(Store, FooterIndexMetadata)
{
    Workload w("lu", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 20);
    ASSERT_GE(rec.checkpoints.size(), 2u);

    const ArchiveReader reader =
        ArchiveReader::fromBytes(archiveBytes(rec));
    EXPECT_EQ(reader.appName(), "lu");
    EXPECT_EQ(reader.workloadSeed(), 9u);
    EXPECT_EQ(reader.machine().numProcs, 4u);
    EXPECT_EQ(reader.mode().mode, ExecMode::kOrderOnly);

    // Segments = checkpoints + tail; boundaries ascending; the log
    // bit positions (the hardware write pointers at each boundary)
    // are monotone and end at the recording's true log sizes.
    const auto &segs = reader.segments();
    ASSERT_EQ(segs.size(), rec.checkpoints.size() + 1);
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i) {
        EXPECT_EQ(segs[i].endGcc, rec.checkpoints[i].gcc);
        EXPECT_TRUE(segs[i].hasCheckpoint);
        EXPECT_EQ(reader.checkpointAt(i).gcc, rec.checkpoints[i].gcc);
    }
    EXPECT_FALSE(segs.back().hasCheckpoint);
    for (std::size_t i = 1; i < segs.size(); ++i) {
        EXPECT_GE(segs[i].endGcc, segs[i - 1].endGcc);
        EXPECT_GE(segs[i].piBitsEnd, segs[i - 1].piBitsEnd);
        for (unsigned p = 0; p < 4; ++p)
            EXPECT_GE(segs[i].csBitsEnd[p], segs[i - 1].csBitsEnd[p]);
    }
    EXPECT_EQ(segs.back().piBitsEnd, rec.pi.sizeBits());
    std::uint64_t cs_bits = 0;
    for (unsigned p = 0; p < 4; ++p)
        cs_bits += segs.back().csBitsEnd[p];
    std::uint64_t want_cs = 0;
    for (const CsLog &log : rec.cs)
        want_cs += log.sizeBits();
    EXPECT_EQ(cs_bits, want_cs);
}

/**
 * Interval replay straight off the archive: from every checkpoint, in
 * every mode, the decoded interval view must replay to the same
 * fingerprint as full replay of that interval.
 */
TEST(Store, IntervalReplayFromEveryCheckpointAllModes)
{
    for (const auto &[mode_name, mode] : allModes()) {
        Workload w("radix", 4, 9, WorkloadScale::tiny());
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {}, 20);
        ASSERT_GE(rec.checkpoints.size(), 1u) << mode_name;

        const ArchiveReader reader =
            ArchiveReader::fromBytes(archiveBytes(rec));
        Replayer replayer;
        for (std::size_t i = 0; i < reader.checkpointCount(); ++i) {
            const Recording view = reader.readInterval(i);
            ASSERT_EQ(view.checkpoints.size(), 1u);
            const ReplayOutcome out = replayer.replayInterval(
                view, 0, w, 31 + i, perturb(i + 1));
            // Stratified replay may legally reorder commits inside a
            // stratum, so determinism is judged per-processor there.
            if (mode.stratifyChunksPerProc != 0)
                EXPECT_TRUE(out.deterministicPerProc)
                    << mode_name << " checkpoint " << i;
            else
                EXPECT_TRUE(out.deterministicExact)
                    << mode_name << " checkpoint " << i;
        }
    }
}

TEST(Store, BoundedIntervalReplayBetweenCheckpoints)
{
    Workload w("ocean", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 15);
    ASSERT_GE(rec.checkpoints.size(), 3u);

    const ArchiveReader reader =
        ArchiveReader::fromBytes(archiveBytes(rec));
    Replayer replayer;
    const Recording view = reader.readInterval(0, 2);
    ASSERT_EQ(view.checkpoints.size(), 2u);
    const ReplayOutcome out = replayer.replayInterval(
        view, 0, w, 7, perturb(4), &view.checkpoints[1]);
    EXPECT_TRUE(out.deterministicExact);
    // Exactly the chunk commits between the two checkpoint GCCs.
    EXPECT_EQ(out.fingerprint.commits.size(),
              rec.checkpoints[2].gcc - rec.checkpoints[0].gcc);
}

TEST(Store, IntervalViewDecodesOnlyCoveringSegments)
{
    // The interval view's logs must be strictly smaller than the full
    // recording's serialized form once the skipped prefix is real.
    Workload w("barnes", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderAndSize(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 20);
    ASSERT_GE(rec.checkpoints.size(), 2u);

    const ArchiveReader reader =
        ArchiveReader::fromBytes(archiveBytes(rec));
    const std::size_t last = reader.checkpointCount() - 1;
    const Recording view = reader.readInterval(last);
    // CS entries for chunks committed before the start checkpoint are
    // not decoded (only the slices after the seek point are).
    std::size_t full_cs = 0;
    std::size_t view_cs = 0;
    for (unsigned p = 0; p < 4; ++p) {
        full_cs += rec.cs[p].entryCount();
        view_cs += view.cs[p].entryCount();
    }
    EXPECT_LT(view_cs, full_cs);
}

TEST(Store, ArchiveFileRoundTrip)
{
    Workload w("water-ns", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::picoLog(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 25);

    const std::string path =
        ::testing::TempDir() + "store_roundtrip.dla";
    writeArchiveFile(rec, path);
    EXPECT_TRUE(ArchiveReader::fileLooksLikeArchive(path));
    const ArchiveReader reader = ArchiveReader::fromFile(path);
    EXPECT_EQ(savedBytes(reader.readAll()), savedBytes(rec));
    std::remove(path.c_str());
}

TEST(Store, WriterByteIdenticalAcrossIoThreads)
{
    // The parallel segment codec commits in segment order, so the
    // container bytes must not depend on the worker count — for any
    // mode, including the default (DELOREAN_JOBS-resolved) options.
    for (const auto &[mode_name, mode] : allModes()) {
        Workload w("radix", 4, 9, WorkloadScale::tiny());
        Recorder recorder(mode, machine());
        const Recording rec = recorder.record(w, 1, true, {}, 20);
        ASSERT_FALSE(rec.checkpoints.empty()) << mode_name;

        const auto archivedWith = [&rec](const ArchiveIoOptions &io) {
            std::ostringstream out(std::ios::binary);
            writeArchive(rec, out, io);
            return std::move(out).str();
        };
        const std::string serial =
            archivedWith(ArchiveIoOptions{1, true});
        for (const unsigned threads : {2u, 4u, 8u})
            EXPECT_EQ(archivedWith(ArchiveIoOptions{threads, true}),
                      serial)
                << mode_name << " ioThreads=" << threads;
        EXPECT_EQ(archivedWith(ArchiveIoOptions{}), serial)
            << mode_name << " default options";
    }
}

TEST(Store, FileReadsIdenticalAcrossMmapAndIoThreads)
{
    Workload w("ocean", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderAndSize(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 20);
    ASSERT_GE(rec.checkpoints.size(), 2u);

    const std::string path =
        testing::TempDir() + "store_datapath_test.dla";
    writeArchiveFile(rec, path);
    const std::string expect = savedBytes(rec);

    for (const bool mmap_reads : {true, false}) {
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            const ArchiveReader reader = ArchiveReader::fromFile(
                path, ArchiveIoOptions{threads, mmap_reads});
            if (!mmap_reads) {
                EXPECT_FALSE(reader.usingMmap());
            } else if (MappedFile::supported()) {
                EXPECT_TRUE(reader.usingMmap());
            }
            ASSERT_EQ(savedBytes(reader.readAll()), expect)
                << "mmap=" << mmap_reads << " threads=" << threads;
        }
    }

    // Interval views must also agree byte-for-byte across the paths.
    const ArchiveReader mapped =
        ArchiveReader::fromFile(path, ArchiveIoOptions{4, true});
    const ArchiveReader buffered =
        ArchiveReader::fromFile(path, ArchiveIoOptions{1, false});
    const ArchiveReader in_memory = ArchiveReader::fromBytes(
        archiveBytes(rec), ArchiveIoOptions{2, true});
    EXPECT_FALSE(in_memory.usingMmap());
    for (std::size_t i = 0; i < mapped.checkpointCount(); ++i) {
        const std::string view = savedBytes(mapped.readInterval(i));
        EXPECT_EQ(view, savedBytes(buffered.readInterval(i))) << i;
        EXPECT_EQ(view, savedBytes(in_memory.readInterval(i))) << i;
    }
    std::remove(path.c_str());
}

TEST(Store, StreamingWriterByteIdenticalAllModes)
{
    // The incremental writer — fed one checkpoint at a time from the
    // record loop, or the whole recording at close() — must emit
    // exactly the batch writer's bytes, at any codec worker count.
    for (const auto &[mode_name, mode] : allModes()) {
        for (const unsigned threads : {1u, 4u}) {
            Workload w("radix", 4, 9, WorkloadScale::tiny());
            Recorder recorder(mode, machine());

            std::ostringstream streamed(std::ios::binary);
            StreamingArchiveWriter writer(streamed,
                                          ArchiveIoOptions{threads,
                                                           true});
            const Recording rec = recorder.record(
                w, 1, true, {}, 20,
                [&writer](const Recording &r) {
                    writer.onCheckpoint(r);
                });
            writer.close(rec);
            EXPECT_TRUE(writer.closed());
            ASSERT_FALSE(rec.checkpoints.empty()) << mode_name;
            EXPECT_EQ(writer.segmentCount(),
                      rec.checkpoints.size() + 1)
                << mode_name;

            std::ostringstream batch(std::ios::binary);
            writeArchive(rec, batch);
            const std::string expect = std::move(batch).str();
            EXPECT_EQ(std::move(streamed).str(), expect)
                << mode_name << " hook-fed ioThreads=" << threads;

            // Batch-fed: no hook, every segment cut at close().
            std::ostringstream fed(std::ios::binary);
            StreamingArchiveWriter tail(fed,
                                        ArchiveIoOptions{threads,
                                                         true});
            tail.close(rec);
            EXPECT_EQ(std::move(fed).str(), expect)
                << mode_name << " batch-fed ioThreads=" << threads;
        }
    }
}

TEST(Store, StreamingFileReadbackAcrossDatapaths)
{
    // A streamed file must be indistinguishable from a batch-written
    // one to every reader datapath: mmap and buffered, serial and
    // parallel decode.
    Workload w("ocean", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderAndSize(), machine());
    const std::string path = testing::TempDir() + "store_streamed.dla";

    std::string expect;
    {
        std::ofstream file(path, std::ios::binary);
        StreamingArchiveWriter writer(file);
        const Recording rec = recorder.record(
            w, 1, true, {}, 20,
            [&writer](const Recording &r) { writer.onCheckpoint(r); });
        writer.close(rec);
        expect = savedBytes(rec);
    }
    EXPECT_TRUE(ArchiveReader::fileLooksLikeArchive(path));

    for (const bool mmap_reads : {true, false}) {
        for (const unsigned threads : {1u, 4u}) {
            const ArchiveReader reader = ArchiveReader::fromFile(
                path, ArchiveIoOptions{threads, mmap_reads});
            EXPECT_EQ(savedBytes(reader.readAll()), expect)
                << "mmap=" << mmap_reads << " threads=" << threads;
        }
    }
    std::remove(path.c_str());
}

TEST(Store, StreamingWriterRejectsOutOfOrderCheckpoints)
{
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    Recording rec = recorder.record(w, 1, true, {}, 15);
    ASSERT_GE(rec.checkpoints.size(), 2u);
    std::swap(rec.checkpoints.front(), rec.checkpoints.back());

    std::ostringstream out(std::ios::binary);
    StreamingArchiveWriter writer(out);
    EXPECT_THROW(writer.onCheckpoint(rec), RecordingFormatError);
}

TEST(Store, StreamingWriterUseAfterCloseThrows)
{
    Workload w("lu", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::picoLog(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 25);

    std::ostringstream out(std::ios::binary);
    StreamingArchiveWriter writer(out);
    writer.close(rec);
    EXPECT_TRUE(writer.closed());
    EXPECT_THROW(writer.onCheckpoint(rec), std::logic_error);
    EXPECT_THROW(writer.close(rec), std::logic_error);
}

TEST(Store, CheckpointOutOfRangeIsTyped)
{
    // An interval request naming a checkpoint the container does not
    // hold is an operator error, not container corruption: it must
    // surface as the dedicated subtype carrying the requested index
    // and what was actually available.
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 20);
    ASSERT_GE(rec.checkpoints.size(), 2u);
    const ArchiveReader reader =
        ArchiveReader::fromBytes(archiveBytes(rec));
    const std::size_t count = reader.checkpointCount();

    try {
        reader.checkpointAt(count);
        FAIL() << "expected CheckpointOutOfRangeError";
    } catch (const CheckpointOutOfRangeError &e) {
        EXPECT_EQ(e.index(), count);
        EXPECT_EQ(e.available(), count);
        EXPECT_EQ(e.section(), ArchiveSection::kCheckpointIndex);
    }
    try {
        reader.readInterval(count + 3);
        FAIL() << "expected CheckpointOutOfRangeError";
    } catch (const CheckpointOutOfRangeError &e) {
        EXPECT_EQ(e.index(), count + 3);
        EXPECT_EQ(e.available(), count);
    }
    // Inverted bounds are the same category.
    EXPECT_THROW(reader.readInterval(1, 1),
                 CheckpointOutOfRangeError);
    // And the subtype still lands in generic ArchiveError handlers.
    EXPECT_THROW(reader.checkpointAt(count), ArchiveError);
}

TEST(Store, StreamingWriterCloseDuringFlush)
{
    // close() must drain correctly while the background flusher is
    // still mid-batch: stage a large first feed (kicking off a flush)
    // and close immediately after, with no settling time.
    Workload w("barnes", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderAndSize(), machine());
    const Recording rec = recorder.record(w, 1, true, {}, 10);
    ASSERT_GE(rec.checkpoints.size(), 4u);

    std::ostringstream batch(std::ios::binary);
    writeArchive(rec, batch);
    const std::string expect = std::move(batch).str();

    for (int round = 0; round < 3; ++round) {
        std::ostringstream streamed(std::ios::binary);
        StreamingArchiveWriter writer(streamed);
        writer.onCheckpoint(rec); // stages every segment, flush starts
        writer.close(rec);        // drains while the flusher runs
        EXPECT_EQ(std::move(streamed).str(), expect)
            << "round " << round;
    }
}

TEST(Store, StreamingWriterZeroCheckpointRecording)
{
    // A recording with no checkpoints streams to a single tail
    // segment and must still match the batch writer byte for byte.
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_TRUE(rec.checkpoints.empty());

    std::ostringstream streamed(std::ios::binary);
    StreamingArchiveWriter writer(streamed);
    writer.onCheckpoint(rec); // no checkpoints: nothing to cut yet
    writer.close(rec);
    EXPECT_EQ(writer.segmentCount(), 1u);

    std::ostringstream batch(std::ios::binary);
    writeArchive(rec, batch);
    const std::string bytes = std::move(streamed).str();
    EXPECT_EQ(bytes, std::move(batch).str());

    const ArchiveReader reader = ArchiveReader::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    EXPECT_EQ(reader.checkpointCount(), 0u);
    EXPECT_EQ(savedBytes(reader.readAll()), savedBytes(rec));
    EXPECT_THROW(reader.readInterval(0), CheckpointOutOfRangeError);
}

TEST(Store, ArchiveMagicSniffRejectsRecording)
{
    Workload w("fft", 4, 9, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    const std::string raw = savedBytes(rec);
    EXPECT_FALSE(ArchiveReader::looksLikeArchive(
        reinterpret_cast<const std::uint8_t *>(raw.data()),
        raw.size()));
}

} // namespace
} // namespace delorean
