/**
 * @file
 * Chunk-parallel replay tests: the WorkerPool substrate, serial vs.
 * parallel fingerprint equality for both parallel paths (the
 * lookahead-window arbiter and the host-parallel chunk-body
 * replayer) across all modes, window sizes and worker counts,
 * interval-fingerprint byte-identity, fault-report parity, and the
 * window-scaled livelock budget.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/delorean.hpp"
#include "sim/campaign.hpp"
#include "sim/parallel_replay.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

/** The four (mode, PI-flavor) configurations under test. */
std::vector<std::pair<std::string, ModeConfig>>
allConfigs()
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 3;
    return {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"order-only-strat", strat},
        {"picolog", ModeConfig::picoLog()},
    };
}

Recording
recordOne(const ModeConfig &mode, const char *app = "fft")
{
    Workload w(app, 4, 7, WorkloadScale::tiny());
    return Recorder(mode, machine()).record(w, 1);
}

/// Fingerprint comparison rule: exact for flat logs, per-processor
/// streams for stratified ones (global interleaving legally relaxed).
bool
fingerprintsAgree(const Recording &rec, const ExecutionFingerprint &a,
                  const ExecutionFingerprint &b)
{
    return rec.stratified() ? a.matchesPerProc(b) : a.matchesExact(b);
}

/// Per-boundary interval fingerprints are byte-identical (prefix
/// hashes equal at every period boundary), per-proc when stratified.
bool
intervalsAgree(const Recording &rec, const ExecutionFingerprint &a,
               const ExecutionFingerprint &b, std::uint64_t period = 16)
{
    const auto prefixes = [period](const ExecutionFingerprint &fp) {
        return IntervalFingerprints::build(fp, period).prefixes;
    };
    if (!rec.stratified())
        return prefixes(a) == prefixes(b);
    for (ProcId p = 0; p < rec.machine.numProcs; ++p) {
        ExecutionFingerprint pa, pb;
        pa.commits = a.procStream(p);
        pb.commits = b.procStream(p);
        if (prefixes(pa) != prefixes(pb))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// WorkerPool substrate
// ---------------------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnce)
{
    WorkerPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i)
        tasks.push_back([&hits, i] { ++hits[i]; });
    pool.runBatch(tasks);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(WorkerPool, ReusableAcrossManyBatches)
{
    WorkerPool pool(4);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 50; ++batch) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 7; ++i)
            tasks.push_back([&total] { ++total; });
        pool.runBatch(tasks);
    }
    EXPECT_EQ(total.load(), 50 * 7);
}

TEST(WorkerPool, RethrowsTaskException)
{
    WorkerPool pool(4);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back([i] {
            if (i == 9)
                throw std::runtime_error("task 9 failed");
        });
    EXPECT_THROW(pool.runBatch(tasks), std::runtime_error);

    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> next;
    next.push_back([&ran] { ++ran; });
    pool.runBatch(next);
    EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerPool, SingleJobRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    int ran = 0;
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&ran] { ++ran; });
    pool.runBatch(tasks);
    EXPECT_EQ(ran, 1);
}

// ---------------------------------------------------------------------
// Lookahead-window arbiter (engine replay, replayWindow > 1)
// ---------------------------------------------------------------------

TEST(ParallelReplay, WindowedArbiterMatchesSerialAllModesAllWindows)
{
    for (const auto &[label, mode] : allConfigs()) {
        const Recording rec = recordOne(mode);

        ReplayCheckOptions serial_opts;
        const ReplayCheckResult serial = checkedReplay(rec, serial_opts);
        ASSERT_TRUE(serial.ok) << label;

        for (const unsigned window : {1u, 2u, 8u}) {
            ReplayCheckOptions opts;
            opts.replayWindow = window;
            const ReplayCheckResult out = checkedReplay(rec, opts);
            ASSERT_TRUE(out.ok)
                << label << " window " << window << ": "
                << out.report.describe();
            EXPECT_TRUE(fingerprintsAgree(rec, out.outcome.fingerprint,
                                          serial.outcome.fingerprint))
                << label << " window " << window;
            EXPECT_TRUE(intervalsAgree(rec, out.outcome.fingerprint,
                                       serial.outcome.fingerprint))
                << label << " window " << window;
        }
    }
}

TEST(ParallelReplay, WindowedArbiterFillsOverlapCounters)
{
    const Recording rec = recordOne(ModeConfig::orderOnly());
    ReplayCheckOptions opts;
    opts.replayWindow = 8;
    const ReplayCheckResult out = checkedReplay(rec, opts);
    ASSERT_TRUE(out.ok);
    const EngineStats &stats = out.outcome.stats;
    EXPECT_GT(stats.replayWindowOccupancy.count(), 0u);
    EXPECT_GE(stats.replayWindowOccupancy.min(), 1.0);
    EXPECT_LE(stats.replayWindowOccupancy.max(), 8.0);
}

TEST(ParallelReplay, StratifiedWindowedReplayCountsRelaxedRetires)
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 3;
    const Recording rec = recordOne(strat);
    ReplayCheckOptions opts;
    opts.replayWindow = 8;
    const ReplayCheckResult out = checkedReplay(rec, opts);
    ASSERT_TRUE(out.ok);
    // Every strata-relaxed retire is a retire; the counter can never
    // exceed the number of committed chunks.
    EXPECT_LE(out.outcome.stats.strataRelaxedRetires,
              out.outcome.stats.committedChunks);
}

// ---------------------------------------------------------------------
// Host-parallel chunk-body replayer
// ---------------------------------------------------------------------

TEST(ParallelReplay, ChunkParallelMatchesSerialAcrossJobsAndWindows)
{
    for (const auto &[label, mode] : allConfigs()) {
        const Recording rec = recordOne(mode);

        const ReplayCheckResult serial = checkedReplay(rec, {});
        ASSERT_TRUE(serial.ok) << label;

        for (const unsigned jobs : {1u, 2u, 4u}) {
            for (const unsigned window : {1u, 2u, 8u}) {
                ParallelReplayOptions popts;
                popts.jobs = jobs;
                popts.window = window;
                const ReplayCheckResult par =
                    checkedParallelReplay(rec, popts);
                ASSERT_TRUE(par.ok)
                    << label << " jobs " << jobs << " window " << window
                    << ": " << par.report.describe();
                EXPECT_TRUE(fingerprintsAgree(
                    rec, par.outcome.fingerprint,
                    serial.outcome.fingerprint))
                    << label << " jobs " << jobs << " window " << window;
                EXPECT_TRUE(intervalsAgree(rec, par.outcome.fingerprint,
                                           serial.outcome.fingerprint))
                    << label << " jobs " << jobs << " window " << window;
            }
        }
    }
}

TEST(ParallelReplay, ChunkParallelReplaysIoHeavyApp)
{
    // sweb2005 exercises the I/O log; replaying with a different
    // worker count must not change which logged value each load sees.
    Workload w("sweb2005", 4, 7, WorkloadScale{30});
    const Recording rec =
        Recorder(ModeConfig::orderOnly(), machine()).record(w, 1);
    ASSERT_GT(rec.io.totalEntries(), 0u);

    ParallelReplayOptions popts;
    popts.jobs = 4;
    popts.window = 8;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    EXPECT_TRUE(par.ok) << par.report.describe();
}

TEST(ParallelReplay, ChunkParallelStatsAccountForAllRetiredWork)
{
    const Recording rec = recordOne(ModeConfig::orderAndSize());
    ParallelReplayOptions popts;
    popts.jobs = 4;
    popts.window = 8;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    ASSERT_TRUE(par.ok);
    const EngineStats &stats = par.outcome.stats;
    EXPECT_EQ(stats.committedChunks, rec.fingerprint.commits.size());
    // Speculative execution may run more instructions than retire
    // (squash re-executions), never fewer.
    EXPECT_GE(stats.executedInstrs, stats.retiredInstrs);
    EXPECT_GT(stats.replayWindowOccupancy.count(), 0u);
    EXPECT_LE(stats.replayWindowOccupancy.max(), 8.0);
}

// ---------------------------------------------------------------------
// Fault parity: a corrupted recording produces the same structured
// divergence report from serial and parallel replay.
// ---------------------------------------------------------------------

TEST(ParallelReplay, FaultInjectedReplayReportsSameChunkAsSerial)
{
    Workload w("sweb2005", 4, 7, WorkloadScale{30});
    Recording rec =
        Recorder(ModeConfig::orderOnly(), machine()).record(w, 1);
    ProcId victim = kDmaProcId;
    for (ProcId p = 0; p < rec.machine.numProcs; ++p) {
        if (rec.io.countFor(p) > 0) {
            victim = p;
            break;
        }
    }
    ASSERT_NE(victim, kDmaProcId) << "no proc logged any I/O";

    // Flip one logged I/O value: replay still runs to completion but
    // the architectural execution diverges from the recorded one.
    const std::uint64_t idx = rec.io.countFor(victim) / 2;
    rec.io.append(victim, idx, rec.io.valueAt(victim, idx) ^ 0xBEEF);

    const ReplayCheckResult serial = checkedReplay(rec, {});
    ASSERT_FALSE(serial.ok);
    ASSERT_TRUE(serial.replayRan);

    ParallelReplayOptions popts;
    popts.jobs = 4;
    popts.window = 8;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    ASSERT_FALSE(par.ok);
    ASSERT_TRUE(par.replayRan);

    // Same structured report: kind, first divergent chunk, processor.
    EXPECT_EQ(par.report.kind, serial.report.kind);
    EXPECT_EQ(par.report.commitIndex, serial.report.commitIndex);
    EXPECT_EQ(par.report.proc, serial.report.proc);
    // And both replayed the same (divergent) execution.
    EXPECT_TRUE(par.outcome.fingerprint.matchesExact(
        serial.outcome.fingerprint));
}

// ---------------------------------------------------------------------
// Livelock budget scales with the window
// ---------------------------------------------------------------------

TEST(ParallelReplay, EventBudgetScalesLinearlyWithWindow)
{
    const Recording rec = recordOne(ModeConfig::orderOnly());
    const std::uint64_t w1 = defaultReplayEventBudget(rec, 1);
    const std::uint64_t w2 = defaultReplayEventBudget(rec, 2);
    const std::uint64_t w8 = defaultReplayEventBudget(rec, 8);
    EXPECT_EQ(defaultReplayEventBudget(rec), w1);
    EXPECT_EQ(w2, 2 * w1);
    EXPECT_EQ(w8, 8 * w1);
    // Still capped by the global safety valve.
    EXPECT_LE(w8, 2'000'000'000ull);
}

TEST(ParallelReplay, StalledWindowedReplayFailsPromptly)
{
    // A replay that cannot finish within its budget must fail with a
    // typed report at window 8 exactly as it does serially — the
    // scaled budget keeps "promptly" independent of the window.
    const Recording rec = recordOne(ModeConfig::orderOnly());
    for (const unsigned window : {1u, 8u}) {
        ReplayCheckOptions opts;
        opts.replayWindow = window;
        opts.maxEvents = 50; // far below any healthy replay
        const ReplayCheckResult out = checkedReplay(rec, opts);
        EXPECT_FALSE(out.ok) << "window " << window;
        EXPECT_FALSE(out.replayRan) << "window " << window;
        EXPECT_EQ(out.report.kind, DivergenceKind::kReplayError)
            << "window " << window;
    }
}

TEST(ParallelReplay, ChunkParallelInstrBudgetFences)
{
    const Recording rec = recordOne(ModeConfig::orderOnly());
    ParallelReplayOptions popts;
    popts.jobs = 2;
    popts.window = 8;
    popts.maxInstrs = 10; // far below the recorded instruction count
    const ReplayCheckResult out = checkedParallelReplay(rec, popts);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.replayRan);
    EXPECT_EQ(out.report.kind, DivergenceKind::kReplayError);
}

TEST(ParallelReplay, DefaultInstrBudgetCoversRecordedWork)
{
    const Recording rec = recordOne(ModeConfig::orderOnly());
    std::uint64_t recorded = 0;
    for (const CommitRecord &c : rec.fingerprint.commits)
        recorded += c.size;
    const std::uint64_t budget = defaultParallelReplayInstrBudget(rec);
    EXPECT_GE(budget, 4 * recorded);
    EXPECT_GT(budget, 0u);
}

} // namespace
} // namespace delorean
