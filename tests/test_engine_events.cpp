/**
 * @file
 * Exceptional-event tests (Table 4): interrupts, I/O and special
 * system instructions (deterministic truncation), cache-overflow and
 * collision truncation (non-deterministic, CS-logged), and replay
 * chunk splitting.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

TEST(EngineEvents, HardInstructionsTruncateDeterministically)
{
    // Commercial workloads execute uncached I/O and syscalls; those
    // truncations are deterministic and must NOT appear in CS logs.
    Workload w("sweb2005", 4, 11, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.stats.hardTruncations, 0u);
    std::size_t cs_entries = 0;
    for (const auto &log : rec.cs)
        cs_entries += log.entryCount();
    EXPECT_EQ(cs_entries, rec.stats.overflowTruncations
                              + rec.stats.collisionTruncations);
}

TEST(EngineEvents, InterruptChunkIdsAreValid)
{
    Workload w("sjbb2k", 4, 11, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.interrupts.totalEntries(), 0u);
    for (ProcId p = 0; p < 4; ++p) {
        const auto stream_len = rec.fingerprint.procStream(p).size();
        ChunkSeq last = 0;
        bool first = true;
        for (const auto &e : rec.interrupts.entries(p)) {
            EXPECT_LE(e.chunkSeq, stream_len); // delivered at boundary
            if (!first) {
                EXPECT_GT(e.chunkSeq, last); // strictly ordered
            }
            last = e.chunkSeq;
            first = false;
        }
    }
}

TEST(EngineEvents, IoLogMatchesIoLoadCounts)
{
    Workload w("sweb2005", 4, 11, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    // Every committed I/O load logged exactly one value: the log is
    // dense from index 0 per processor.
    EXPECT_GT(rec.io.totalEntries(), 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 77);
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineEvents, OverflowTruncationLogsTruncatedSize)
{
    // Force overflow with a tiny L1: many store lines per set.
    MachineConfig m = machine(2);
    m.mem.l1SizeBytes = 2048; // 64 lines, 16 sets at 4 ways
    Workload w("radix", 2, 11, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), m);
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.stats.overflowTruncations, 0u);
    for (const auto &log : rec.cs)
        for (const auto &e : log.entries())
            EXPECT_LT(e.size, 2000u);
    // And replay still reproduces the execution exactly.
    Replayer replayer;
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = 5;
    const ReplayOutcome out = replayer.replay(rec, w, 3, p);
    EXPECT_TRUE(out.deterministicExact);
    EXPECT_EQ(out.stats.retiredInstrs, rec.stats.retiredInstrs);
}

TEST(EngineEvents, ReplayOnSmallerCacheSplitsChunksDeterministically)
{
    // The decisive stress for Section 4.2.3's "unexpected overflow
    // during replay" path: record on the normal machine, then replay
    // on one whose L1 is 16x smaller. Replay hits speculative-line
    // overflow at points the recording never saw and must commit the
    // rest of each affected logical chunk as immediate continuation
    // pieces — hundreds of times — without losing determinism.
    MachineConfig m = machine(4);
    Workload w("radix", 4, 11, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), m);
    Recording rec = recorder.record(w, 1);
    rec.machine.mem.l1SizeBytes = 2048; // replay machine differs

    Replayer replayer;
    std::uint64_t splits = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ReplayPerturbation p;
        p.enabled = true;
        p.seed = seed;
        const ReplayOutcome out =
            replayer.replay(rec, w, 200 + seed, p);
        EXPECT_TRUE(out.deterministicExact) << "seed " << seed;
        splits += out.stats.replaySplitChunks;
    }
    EXPECT_GT(splits, 0u); // the split path genuinely ran
}

TEST(EngineEvents, PerturbedReplaySameMachineMayAlsoSplit)
{
    // Even on the same machine, perturbation can shift the overflow
    // point of a truncated chunk; determinism must hold regardless of
    // whether a split occurs.
    MachineConfig m = machine(4);
    m.mem.l1SizeBytes = 2048;
    m.bulk.simultaneousChunks = 4;
    Workload w("sweb2005", 4, 11, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), m);
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        ReplayPerturbation p;
        p.enabled = true;
        p.seed = seed;
        p.hitMissSwapPerMille = 100;
        const ReplayOutcome out =
            replayer.replay(rec, w, 300 + seed, p);
        EXPECT_TRUE(out.deterministicExact) << "seed " << seed;
    }
}

TEST(EngineEvents, CollisionBackoffEventuallyCommits)
{
    // Very contended hot set with small chunks: repeated collisions
    // engage the back-off and everything still completes and replays.
    MachineConfig m = machine(4);
    m.bulk.collisionBackoffThreshold = 2;
    Workload w("cholesky", 4, 13, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), m);
    const Recording rec = recorder.record(w, 1);
    EXPECT_GT(rec.stats.committedChunks, 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 5);
    EXPECT_TRUE(out.deterministicExact);
}

} // namespace
} // namespace delorean
