/**
 * @file
 * Replay-side tests: determinism under timing perturbation, input-log
 * fidelity, and divergence detection. This is the executable version
 * of Appendix B's theorem.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4)
{
    MachineConfig m;
    m.numProcs = procs;
    return m;
}

ReplayPerturbation
perturb(std::uint64_t seed)
{
    ReplayPerturbation p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

TEST(EngineReplay, UnperturbedReplayIsDeterministic)
{
    Workload w("barnes", 4, 7, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, /*env=*/99);
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineReplay, PerturbedReplaysStayDeterministic)
{
    Workload w("radix", 4, 7, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const ReplayOutcome out =
            replayer.replay(rec, w, 100 + seed, perturb(seed));
        EXPECT_TRUE(out.deterministicExact) << "perturb seed " << seed;
    }
}

TEST(EngineReplay, WorkloadReconstructedFromRecordingMetadata)
{
    Workload w("fft", 4, 7, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    // One-argument replay rebuilds the workload from the recording.
    const ReplayOutcome out = replayer.replay(rec, 5, perturb(3));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineReplay, ReplayConsumesIoLogNotDevices)
{
    // The replay environment seed differs, so the I/O device would
    // return different values; determinism proves the log is used.
    Workload w("sweb2005", 4, 7, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.io.totalEntries(), 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 987, perturb(11));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineReplay, InterruptsReplayedFromLog)
{
    Workload w("sjbb2k", 4, 7, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.interrupts.totalEntries(), 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 55, perturb(2));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineReplay, DmaReplayedAtRecordedSlots)
{
    Workload w("sweb2005", 4, 9, WorkloadScale{30});
    Recorder recorder(ModeConfig::picoLog(), machine());
    const Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.dma.count(), 0u);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 31, perturb(4));
    EXPECT_TRUE(out.deterministicExact);
}

TEST(EngineReplay, CorruptedIoLogIsDetected)
{
    Workload w("sweb2005", 4, 7, WorkloadScale{30});
    Recorder recorder(ModeConfig::orderOnly(), machine());
    Recording rec = recorder.record(w, 1);
    ASSERT_GT(rec.io.totalEntries(), 0u);
    rec.io.append(0, 0, 0xBAD0BAD0BAD0BAD0ull); // clobber first value
    Replayer replayer;
    // Divergence either trips the fingerprint check or stalls the
    // replay (the PI order can no longer be satisfied).
    try {
        const ReplayOutcome out = replayer.replay(rec, w, 5);
        EXPECT_FALSE(out.deterministicExact);
    } catch (const std::runtime_error &) {
        SUCCEED();
    }
}

TEST(EngineReplay, WrongWorkloadSeedIsDetected)
{
    Workload w("barnes", 4, 7, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    Workload other("barnes", 4, 8, WorkloadScale::tiny());
    Replayer replayer;
    try {
        const ReplayOutcome out = replayer.replay(rec, other, 5);
        EXPECT_FALSE(out.deterministicExact);
    } catch (const std::runtime_error &) {
        SUCCEED();
    }
}

TEST(EngineReplay, ReplayStatsAreReasonable)
{
    Workload w("lu", 4, 7, WorkloadScale::tiny());
    Recorder recorder(ModeConfig::orderOnly(), machine());
    const Recording rec = recorder.record(w, 1);
    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, w, 3, perturb(1));
    EXPECT_EQ(out.stats.retiredInstrs, rec.stats.retiredInstrs);
    EXPECT_GT(out.stats.totalCycles, 0u);
    // Serial commits + arbitration penalty + stalls: replay should
    // not be dramatically faster than the recording.
    EXPECT_GT(static_cast<double>(out.stats.totalCycles),
              0.7 * static_cast<double>(rec.stats.totalCycles));
}

} // namespace
} // namespace delorean
