/**
 * @file
 * Unit tests for the FDR / RTR / Strata baseline recorders
 * (src/baselines), including the Figure 1 worked examples.
 */

#include <gtest/gtest.h>

#include "baselines/fdr.hpp"
#include "baselines/multi_sink.hpp"
#include "baselines/rtr.hpp"
#include "baselines/strata.hpp"

namespace delorean
{
namespace
{

AccessRecord
acc(ProcId p, Addr line, bool write, InstrCount instr,
    InstrCount memop)
{
    AccessRecord r;
    r.proc = p;
    r.line = line;
    r.isWrite = write;
    r.isRead = !write;
    r.instrIndex = instr;
    r.memopIndex = memop;
    return r;
}

TEST(Fdr, Figure1aTransitiveReduction)
{
    // P1: Wa, Wb; P2: Wb, Ra. The dependence 1:Wa->2:Ra is implied by
    // 1:Wb->2:Wb (plus program order), so FDR logs only one entry.
    FdrRecorder fdr(2);
    fdr.onAccess(acc(0, 'a', true, 1, 0));
    fdr.onAccess(acc(0, 'b', true, 2, 1));
    fdr.onAccess(acc(1, 'b', true, 1, 0));
    fdr.onAccess(acc(1, 'a', false, 2, 1));
    ASSERT_EQ(fdr.entries().size(), 1u);
    EXPECT_EQ(fdr.entries()[0].srcProc, 0u);
    EXPECT_EQ(fdr.entries()[0].srcInstr, 2u);
    EXPECT_EQ(fdr.entries()[0].dstProc, 1u);
    EXPECT_EQ(fdr.observedDependences(), 2u);
}

TEST(Fdr, LogsUnrelatedDependences)
{
    FdrRecorder fdr(2);
    fdr.onAccess(acc(0, 'x', true, 1, 0));
    fdr.onAccess(acc(1, 'x', false, 1, 0)); // RAW: logged
    fdr.onAccess(acc(0, 'y', true, 2, 1));
    fdr.onAccess(acc(1, 'y', false, 5, 1)); // implied? src 2 > seen 1
    EXPECT_EQ(fdr.entries().size(), 2u);
}

TEST(Fdr, WarDependencesDetected)
{
    FdrRecorder fdr(2);
    fdr.onAccess(acc(0, 'z', false, 1, 0)); // P0 reads z
    fdr.onAccess(acc(1, 'z', true, 1, 0));  // P1 writes z: WAR
    ASSERT_EQ(fdr.entries().size(), 1u);
    EXPECT_EQ(fdr.entries()[0].srcProc, 0u);
    EXPECT_EQ(fdr.entries()[0].dstProc, 1u);
}

TEST(Fdr, SameProcDependencesIgnored)
{
    FdrRecorder fdr(2);
    fdr.onAccess(acc(0, 'q', true, 1, 0));
    fdr.onAccess(acc(0, 'q', false, 2, 1));
    EXPECT_TRUE(fdr.entries().empty());
}

TEST(Fdr, PackedBytesNonEmptyWhenLogged)
{
    FdrRecorder fdr(2);
    fdr.onAccess(acc(0, 'x', true, 1, 0));
    fdr.onAccess(acc(1, 'x', false, 1, 0));
    EXPECT_GT(fdr.sizeBits(), 0u);
    EXPECT_FALSE(fdr.packedBytes().empty());
}

TEST(Rtr, RegulationSubsumesLaterDependences)
{
    // Figure 1(b): P1: Wa, Wb; P2: Ra, Wb. RTR introduces the
    // artificial dependence from P1's latest instruction, so the
    // second dependence is implied and only one entry is logged.
    RtrRecorder rtr(2);
    rtr.onAccess(acc(0, 'a', true, 1, 0));
    rtr.onAccess(acc(0, 'b', true, 2, 1));
    rtr.onAccess(acc(1, 'a', false, 1, 0)); // logged, regulated to 2
    rtr.onAccess(acc(1, 'b', true, 2, 1));  // implied by regulation
    rtr.finalize();
    EXPECT_EQ(rtr.entries().size(), 1u);
    EXPECT_EQ(rtr.entries()[0].srcInstr, 2u); // regulated source
}

TEST(Rtr, VectorizesConstantStrideRuns)
{
    RtrRecorder rtr(2);
    // Recurring producer/consumer with constant strides on distinct
    // lines (so nothing is transitively implied... the regulated
    // source advances by 10 each time).
    InstrCount src_i = 10, dst_i = 5;
    for (int k = 0; k < 6; ++k) {
        rtr.onAccess(acc(0, 100 + k, true, src_i, src_i));
        rtr.onAccess(acc(1, 100 + k, false, dst_i, dst_i));
        src_i += 10;
        dst_i += 10;
    }
    rtr.finalize();
    ASSERT_EQ(rtr.entries().size(), 6u);
    // All six collapse into few vectorized entries (first entry
    // starts the run; stride locks in on the second).
    EXPECT_LE(rtr.vectorEntries().size(), 2u);
    EXPECT_LT(rtr.vectorSizeBits(), rtr.sizeBits());
}

TEST(Strata, Figure1cExample)
{
    // P1: Wa, Wb; P2: Wc, Ra, Wb; P3: Rc. Strata are cut before the
    // second access of each crossing dependence.
    StrataRecorder strata(3, /*record_war=*/true);
    strata.onAccess(acc(0, 'a', true, 1, 0));  // 1:Wa
    strata.onAccess(acc(1, 'c', true, 1, 0));  // 2:Wc
    strata.onAccess(acc(1, 'a', false, 2, 1)); // 2:Ra -> stratum S0
    strata.onAccess(acc(2, 'c', false, 1, 0)); // 3:Rc: already crossed
    strata.onAccess(acc(0, 'b', true, 2, 1));  // 1:Wb
    strata.onAccess(acc(1, 'b', true, 3, 2));  // 2:Wb -> stratum S1
    EXPECT_EQ(strata.strataCount(), 2u);
}

TEST(Strata, IgnoringWarShrinksLog)
{
    StrataRecorder with_war(2, true);
    StrataRecorder no_war(2, false);
    // WAR-only pattern: P0 reads, P1 writes, repeatedly on fresh lines.
    for (int k = 0; k < 10; ++k) {
        const auto rd = acc(0, 500 + k, false, 2 * k + 1, 2 * k);
        const auto wr = acc(1, 500 + k, true, 2 * k + 1, 2 * k);
        with_war.onAccess(rd);
        with_war.onAccess(wr);
        no_war.onAccess(rd);
        no_war.onAccess(wr);
    }
    EXPECT_GT(with_war.strataCount(), no_war.strataCount());
    EXPECT_EQ(no_war.strataCount(), 0u);
}

TEST(Strata, CountersMatchMemopDeltas)
{
    StrataRecorder strata(2, true);
    strata.onAccess(acc(0, 'm', true, 1, 0));
    strata.onAccess(acc(0, 'n', false, 2, 1));
    strata.onAccess(acc(1, 'm', false, 1, 0)); // cut: P0=2, P1=0
    EXPECT_EQ(strata.strataCount(), 1u);
    EXPECT_EQ(strata.sizeBits(), 2u * 20u);
}

TEST(MultiSink, FansOut)
{
    FdrRecorder a(2);
    StrataRecorder b(2, true);
    MultiSink sink;
    sink.add(&a);
    sink.add(&b);
    sink.onAccess(acc(0, 'k', true, 1, 0));
    sink.onAccess(acc(1, 'k', false, 1, 0));
    EXPECT_EQ(a.entries().size(), 1u);
    EXPECT_EQ(b.strataCount(), 1u);
}

} // namespace
} // namespace delorean
