/**
 * @file
 * Unit tests for Workload (trace/workload.hpp).
 */

#include <gtest/gtest.h>

#include "trace/layout.hpp"
#include "trace/workload.hpp"

namespace delorean
{
namespace
{

TEST(Workload, ScalesIterations)
{
    Workload full("lu", 4, 1, WorkloadScale{100});
    Workload tiny("lu", 4, 1, WorkloadScale{10});
    EXPECT_EQ(tiny.profile().iterations,
              std::max(1u, full.profile().iterations / 10));
    EXPECT_EQ(tiny.iterationsPercent(), 10u);
}

TEST(Workload, ScaleNeverReachesZeroIterations)
{
    Workload w("lu", 4, 1, WorkloadScale{1});
    EXPECT_GE(w.profile().iterations, 1u);
}

TEST(Workload, InitializeMemoryClearsSyncWords)
{
    Workload w("raytrace", 4, 9);
    MemoryState mem;
    w.initializeMemory(mem);
    for (std::uint32_t l = 0; l < w.profile().numLocks; ++l)
        EXPECT_EQ(mem.load(wordOf(AddressLayout::lockWord(l))), 0u);
    EXPECT_EQ(mem.load(wordOf(AddressLayout::barrierCount())), 0u);
    EXPECT_EQ(mem.load(wordOf(AddressLayout::barrierGen())), 0u);
}

TEST(Workload, ExposesSeedAndName)
{
    Workload w("fft", 8, 777);
    EXPECT_EQ(w.seed(), 777u);
    EXPECT_EQ(w.name(), "fft");
    EXPECT_EQ(w.numProcs(), 8u);
}

TEST(AddressLayout, RegionsAreDisjointAndClassified)
{
    const Addr s = AddressLayout::sharedWord(10);
    const Addr p = AddressLayout::privateWord(3, 10);
    const Addr io = AddressLayout::ioPort(2);
    EXPECT_TRUE(AddressLayout::isShared(s));
    EXPECT_FALSE(AddressLayout::isShared(p));
    EXPECT_TRUE(AddressLayout::isPrivate(p));
    EXPECT_TRUE(AddressLayout::isUncached(io));
    EXPECT_FALSE(AddressLayout::isUncached(s));
}

TEST(AddressLayout, LocksOnDistinctLines)
{
    EXPECT_NE(lineOf(AddressLayout::lockWord(0)),
              lineOf(AddressLayout::lockWord(1)));
    EXPECT_NE(lineOf(AddressLayout::barrierCount()),
              lineOf(AddressLayout::barrierGen()));
}

TEST(AddressLayout, PrivateSegmentsWithinBitsetRange)
{
    // 8 KB segments over the per-processor span must fit in the
    // context's 2048-entry segment bitset.
    const Addr last =
        AddressLayout::privateWord(0, 0) + AddressLayout::kPrivateSpan - 8;
    EXPECT_LT(AddressLayout::privateSegment(last), 2048u);
}

} // namespace
} // namespace delorean
