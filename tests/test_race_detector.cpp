/**
 * @file
 * Replay-observer / race-detector tests: vector-clock unit semantics
 * (join, increment, epoch coverage, wraparound fencing), observer-hub
 * re-sequencing, seeded-race app variants and their manifests, exact
 * manifest detection with zero false positives on the stock
 * applications, and the headline determinism matrix — byte-identical
 * race reports from the serial DES replayer, the windowed replay
 * arbiter and the chunk-parallel replayer at jobs {1,2,4} and shard
 * counts {1,4}.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/race_detector.hpp"
#include "common/errors.hpp"
#include "core/delorean.hpp"
#include "sim/parallel_replay.hpp"
#include "trace/app_profile.hpp"
#include "trace/layout.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{
namespace
{

MachineConfig
machine(unsigned procs = 4, unsigned shards = 1)
{
    MachineConfig m;
    m.numProcs = procs;
    m.bulk.numArbiters = shards;
    return m;
}

Recording
recordOne(const ModeConfig &mode, const char *app, unsigned procs = 4,
          unsigned shards = 1)
{
    Workload w(app, procs, 7, WorkloadScale::tiny());
    return Recorder(mode, machine(procs, shards)).record(w, 1);
}

/** The four (mode, PI-flavor) configurations under test. */
std::vector<std::pair<std::string, ModeConfig>>
allConfigs()
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 3;
    return {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"order-only-strat", strat},
        {"picolog", ModeConfig::picoLog()},
    };
}

std::set<Addr>
findingWords(const RaceReport &report)
{
    std::set<Addr> words;
    for (const RaceFinding &f : report.findings)
        words.insert(f.word);
    return words;
}

// ---------------------------------------------------------------------
// VectorClock unit semantics
// ---------------------------------------------------------------------

TEST(VectorClock, StartsAtZeroAndTicksPerComponent)
{
    VectorClock vc(4);
    EXPECT_EQ(vc.size(), 4u);
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_EQ(vc.at(p), 0u);
    vc.tick(2);
    vc.tick(2);
    vc.tick(0);
    EXPECT_EQ(vc.at(0), 1u);
    EXPECT_EQ(vc.at(1), 0u);
    EXPECT_EQ(vc.at(2), 2u);
    // Components past size() read as zero.
    EXPECT_EQ(vc.at(99), 0u);
}

TEST(VectorClock, TickGrowsAnUndersizedClock)
{
    VectorClock vc; // size 0
    vc.tick(3);
    EXPECT_EQ(vc.size(), 4u);
    EXPECT_EQ(vc.at(3), 1u);
    EXPECT_EQ(vc.at(0), 0u);
}

TEST(VectorClock, JoinIsComponentwiseMaxAndGrows)
{
    VectorClock a(2);
    a.set(0, 5);
    a.set(1, 1);
    VectorClock b(4);
    b.set(0, 3);
    b.set(1, 7);
    b.set(3, 2);

    a.join(b);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a.at(0), 5u);
    EXPECT_EQ(a.at(1), 7u);
    EXPECT_EQ(a.at(2), 0u);
    EXPECT_EQ(a.at(3), 2u);

    // Join with a smaller clock leaves the tail untouched.
    VectorClock c(1);
    c.set(0, 9);
    a.join(c);
    EXPECT_EQ(a.at(0), 9u);
    EXPECT_EQ(a.at(3), 2u);

    // Join is idempotent.
    VectorClock before = a;
    a.join(a);
    for (unsigned p = 0; p < a.size(); ++p)
        EXPECT_EQ(a.at(p), before.at(p));
}

TEST(VectorClock, CoversImplementsEpochHappensBefore)
{
    VectorClock vc(2);
    vc.set(1, 4);
    EXPECT_TRUE(vc.covers(1, 4));
    EXPECT_TRUE(vc.covers(1, 3));
    EXPECT_FALSE(vc.covers(1, 5));
    // Clock 0 means "never accessed": always covered.
    EXPECT_TRUE(vc.covers(0, 0));
    EXPECT_TRUE(vc.covers(7, 0));
}

TEST(VectorClock, WraparoundRaisesTypedReplayError)
{
    VectorClock vc(2);
    vc.set(1, ~0ull);
    EXPECT_THROW(vc.tick(1), ReplayError);
    // The other component still ticks normally.
    vc.tick(0);
    EXPECT_EQ(vc.at(0), 1u);
    // Joining a saturated clock is fine — only increment can wrap.
    VectorClock other(2);
    other.join(vc);
    EXPECT_EQ(other.at(1), ~0ull);
}

// ---------------------------------------------------------------------
// ObserverHub re-sequencing
// ---------------------------------------------------------------------

/** Observer that records the commit positions it is handed. */
class OrderProbe : public ReplayObserver
{
  public:
    void
    onChunkRetire(const ChunkObservation &obs) override
    {
        positions.push_back(obs.commitPos);
    }
    void
    onDmaRetire(const DmaObservation &obs) override
    {
        positions.push_back(obs.commitPos);
    }
    std::vector<std::uint64_t> positions;
};

TEST(ObserverHub, ResequencesOutOfOrderRetires)
{
    OrderProbe probe;
    ObserverHub hub(&probe);
    ASSERT_TRUE(hub.enabled());

    hub.chunkRetired(2, 0, 0, 1, {});
    hub.chunkRetired(1, 1, 0, 1, {});
    EXPECT_TRUE(probe.positions.empty()); // position 0 still missing
    hub.chunkRetired(0, 2, 0, 1, {});
    EXPECT_EQ(probe.positions,
              (std::vector<std::uint64_t>{0, 1, 2}));
    hub.chunkRetired(3, 0, 1, 1, {});
    EXPECT_EQ(probe.positions.size(), 4u);
    hub.end();
    EXPECT_EQ(probe.positions.size(), 4u);
}

TEST(ObserverHub, DisabledHubIsInert)
{
    ObserverHub hub(nullptr);
    EXPECT_FALSE(hub.enabled());
    hub.chunkRetired(0, 0, 0, 1, {});
    hub.end(); // no crash, nothing delivered
}

// ---------------------------------------------------------------------
// Seeded-race app variants and manifests
// ---------------------------------------------------------------------

TEST(SeededRaces, VariantSuffixDerivesProfileAndManifest)
{
    const AppProfile &base = AppTable::byName("fft");
    EXPECT_EQ(base.seededRaceWords, 0u);

    const AppProfile &seeded = AppTable::byName("fft~r3");
    EXPECT_EQ(seeded.seededRaceWords, 3u);
    EXPECT_EQ(seeded.name, "fft~r3");
    // Everything else is inherited from the stock profile.
    EXPECT_EQ(seeded.sharedWords, base.sharedWords);
    EXPECT_EQ(seeded.numLocks, base.numLocks);

    const std::vector<Addr> manifest = seededRaceManifest(seeded);
    ASSERT_EQ(manifest.size(), 3u);
    EXPECT_EQ(manifest[0], AddressLayout::raceWord(0));
    EXPECT_EQ(manifest[2], AddressLayout::raceWord(2));
    EXPECT_TRUE(std::is_sorted(manifest.begin(), manifest.end()));

    EXPECT_TRUE(seededRaceManifest(base).empty());
}

TEST(SeededRaces, MalformedVariantNamesAreRejected)
{
    EXPECT_THROW(AppTable::byName("fft~r0"), std::out_of_range);
    EXPECT_THROW(AppTable::byName("fft~r65"), std::out_of_range);
    EXPECT_THROW(AppTable::byName("fft~rX"), std::out_of_range);
    EXPECT_THROW(AppTable::byName("~r3"), std::out_of_range);
    EXPECT_THROW(AppTable::byName("nosuchapp~r2"), std::out_of_range);
}

// ---------------------------------------------------------------------
// Detection: manifest-exact on seeded apps, silent on stock apps
// ---------------------------------------------------------------------

TEST(RaceDetector, DetectsExactlyTheSeededManifest)
{
    const Recording rec =
        recordOne(ModeConfig::orderOnly(), "fft~r3");

    ReplayCheckOptions opts;
    opts.detectRaces = true;
    const ReplayCheckResult out = checkedReplay(rec, opts);
    ASSERT_TRUE(out.ok) << out.report.describe();

    const AppProfile &profile = AppTable::byName("fft~r3");
    const std::vector<Addr> manifest = seededRaceManifest(profile);
    const std::set<Addr> expected(manifest.begin(), manifest.end());
    EXPECT_EQ(findingWords(out.races), expected)
        << out.races.describe();
    // One finding per word: dedup keeps reports manifest-sized.
    EXPECT_EQ(out.races.findings.size(), expected.size());
    for (const RaceFinding &f : out.races.findings) {
        EXPECT_TRUE(AddressLayout::isRace(f.word));
        EXPECT_NE(f.prior.proc, f.racing.proc);
        EXPECT_LT(f.prior.commitPos, f.racing.commitPos);
        EXPECT_FALSE(f.describe().empty());
    }
}

TEST(RaceDetector, SeededRacesDetectedInEveryMode)
{
    for (const auto &[label, mode] : allConfigs()) {
        const Recording rec = recordOne(mode, "lu~r2");
        ReplayCheckOptions opts;
        opts.detectRaces = true;
        const ReplayCheckResult out = checkedReplay(rec, opts);
        ASSERT_TRUE(out.ok) << label << ": " << out.report.describe();
        const std::vector<Addr> manifest =
            seededRaceManifest(AppTable::byName("lu~r2"));
        EXPECT_EQ(findingWords(out.races),
                  std::set<Addr>(manifest.begin(), manifest.end()))
            << label << ": " << out.races.describe();
    }
}

TEST(RaceDetector, StockApplicationsAreRaceFree)
{
    // The zero-false-positive half of the acceptance criterion: all
    // 11 stock SPLASH-2 applications replay clean under the detector.
    for (const std::string &name : AppTable::splash2Names()) {
        const Recording rec =
            recordOne(ModeConfig::orderOnly(), name.c_str());
        ReplayCheckOptions opts;
        opts.detectRaces = true;
        const ReplayCheckResult out = checkedReplay(rec, opts);
        ASSERT_TRUE(out.ok) << name << ": " << out.report.describe();
        EXPECT_TRUE(out.races.clean())
            << name << " reported:\n"
            << out.races.describe();
        EXPECT_GT(out.races.accessesChecked, 0u) << name;
    }
}

TEST(RaceDetector, IntervalReplayWithDetectorIsRejected)
{
    const Recording rec = recordOne(ModeConfig::orderOnly(), "fft");
    ReplayCheckOptions opts;
    opts.detectRaces = true;
    opts.startCheckpoint = 0;
    const ReplayCheckResult out = checkedReplay(rec, opts);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.replayRan);
    EXPECT_EQ(out.report.kind, DivergenceKind::kFormatError);
}

// ---------------------------------------------------------------------
// Determinism matrix: byte-identical reports everywhere
// ---------------------------------------------------------------------

TEST(RaceDetector, ReportsByteIdenticalAcrossReplayersJobsAndShards)
{
    for (const unsigned shards : {1u, 4u}) {
        const Recording rec = recordOne(ModeConfig::orderOnly(),
                                        "radix~r2", 4, shards);
        EXPECT_EQ(rec.pi.hasMasks(), shards > 1);

        ReplayCheckOptions serial_opts;
        serial_opts.detectRaces = true;
        const ReplayCheckResult serial =
            checkedReplay(rec, serial_opts);
        ASSERT_TRUE(serial.ok)
            << "shards " << shards << ": "
            << serial.report.describe();
        const std::string reference = serial.races.describe();
        ASSERT_FALSE(serial.races.findings.empty());

        // Windowed replay arbiter (serial engine, lookahead > 1).
        ReplayCheckOptions windowed_opts;
        windowed_opts.detectRaces = true;
        windowed_opts.replayWindow = 8;
        const ReplayCheckResult windowed =
            checkedReplay(rec, windowed_opts);
        ASSERT_TRUE(windowed.ok) << "shards " << shards;
        EXPECT_EQ(windowed.races.describe(), reference)
            << "windowed arbiter, shards " << shards;

        // Chunk-parallel replayer across worker counts.
        for (const unsigned jobs : {1u, 2u, 4u}) {
            ParallelReplayOptions popts;
            popts.jobs = jobs;
            popts.window = 8;
            ReplayCheckOptions opts;
            opts.detectRaces = true;
            const ReplayCheckResult par =
                checkedParallelReplay(rec, popts, opts);
            ASSERT_TRUE(par.ok)
                << "jobs " << jobs << " shards " << shards << ": "
                << par.report.describe();
            EXPECT_EQ(par.races.describe(), reference)
                << "jobs " << jobs << " shards " << shards;
        }
    }
}

TEST(RaceDetector, ReportsByteIdenticalAcrossModes)
{
    // Each mode linearizes commits differently (flat PI, strata,
    // PicoLog round-robin), so reports legitimately differ *across*
    // modes — but within a mode, serial and parallel replay must
    // agree byte-for-byte.
    for (const auto &[label, mode] : allConfigs()) {
        const Recording rec = recordOne(mode, "water-ns~r2");

        ReplayCheckOptions opts;
        opts.detectRaces = true;
        const ReplayCheckResult serial = checkedReplay(rec, opts);
        ASSERT_TRUE(serial.ok) << label << ": "
                               << serial.report.describe();

        ParallelReplayOptions popts;
        popts.jobs = 4;
        popts.window = 8;
        const ReplayCheckResult par =
            checkedParallelReplay(rec, popts, opts);
        ASSERT_TRUE(par.ok) << label << ": "
                            << par.report.describe();
        EXPECT_EQ(par.races.describe(), serial.races.describe())
            << label;
    }
}

TEST(RaceDetector, SeededRecordingsStayDeterministicWithoutDetector)
{
    // Seeding races must not break replay determinism itself: the
    // burst is part of the recorded execution.
    const Recording rec =
        recordOne(ModeConfig::orderAndSize(), "fft~r4");
    const ReplayCheckResult out = checkedReplay(rec, {});
    EXPECT_TRUE(out.ok) << out.report.describe();
    ParallelReplayOptions popts;
    popts.jobs = 4;
    const ReplayCheckResult par = checkedParallelReplay(rec, popts);
    EXPECT_TRUE(par.ok) << par.report.describe();
}

} // namespace
} // namespace delorean
