/**
 * @file
 * Unit tests for the environment device models (trace/devices.hpp).
 */

#include <gtest/gtest.h>

#include "trace/app_profile.hpp"
#include "trace/devices.hpp"
#include "trace/layout.hpp"

namespace delorean
{
namespace
{

AppProfile
commercialProfile()
{
    AppProfile p = AppTable::byName("sjbb2k");
    return p;
}

TEST(InterruptSource, DisabledForSplashProfiles)
{
    InterruptSource src(AppTable::byName("lu"), 4, 1);
    EXPECT_FALSE(src.enabled());
    InterruptEvent ev;
    EXPECT_FALSE(src.poll(0, 1'000'000'000, ev));
}

TEST(InterruptSource, FiresAroundTheMeanInterval)
{
    const AppProfile p = commercialProfile();
    InterruptSource src(p, 1, 42);
    ASSERT_TRUE(src.enabled());
    InstrCount t = 0;
    unsigned fired = 0;
    InterruptEvent ev;
    const InstrCount horizon =
        static_cast<InstrCount>(p.irqMeanInstrs) * 100;
    for (; t < horizon; t += 1000)
        fired += src.poll(0, t, ev);
    // ~100 intervals expected; allow a wide tolerance.
    EXPECT_GT(fired, 40u);
    EXPECT_LT(fired, 220u);
}

TEST(InterruptSource, AtMostOncePerDueInterval)
{
    InterruptSource src(commercialProfile(), 1, 7);
    InterruptEvent ev;
    InstrCount t = 1;
    while (!src.poll(0, t, ev))
        t += 100;
    // Immediately after firing, the next poll at the same count must
    // not fire again.
    EXPECT_FALSE(src.poll(0, t, ev));
}

TEST(InterruptSource, DifferentSeedsDifferentTimings)
{
    InterruptSource a(commercialProfile(), 1, 1);
    InterruptSource b(commercialProfile(), 1, 2);
    InterruptEvent ev;
    InstrCount ta = 0, tb = 0;
    while (!a.poll(0, ta, ev))
        ta += 10;
    while (!b.poll(0, tb, ev))
        tb += 10;
    EXPECT_NE(ta, tb);
}

TEST(DmaEngine, ProducesBurstsInDmaRegion)
{
    const AppProfile p = commercialProfile();
    DmaEngine dma(p, 3);
    ASSERT_TRUE(dma.enabled());
    DmaTransfer xfer;
    InstrCount t = 0;
    while (!dma.poll(t, xfer))
        t += 1000;
    EXPECT_EQ(xfer.wordAddrs.size(), p.dmaBurstWords);
    EXPECT_EQ(xfer.values.size(), p.dmaBurstWords);
    for (const Addr a : xfer.wordAddrs) {
        EXPECT_GE(a, AddressLayout::kDmaBase);
        EXPECT_LT(a, AddressLayout::kIoBase);
    }
}

TEST(DmaEngine, DisabledForSplash)
{
    DmaEngine dma(AppTable::byName("fft"), 3);
    EXPECT_FALSE(dma.enabled());
    DmaTransfer xfer;
    EXPECT_FALSE(dma.poll(1'000'000'000, xfer));
}

TEST(IoDevice, ValuesDependOnSeedAndPort)
{
    IoDevice a(1), b(1), c(2);
    const std::uint64_t v1 = a.read(0x8000'0000);
    const std::uint64_t v2 = b.read(0x8000'0000);
    EXPECT_EQ(v1, v2); // same seed, same sequence
    EXPECT_NE(v1, c.read(0x8000'0000));
    EXPECT_NE(a.read(0x8000'0000), v1); // sequence advances
}

} // namespace
} // namespace delorean
