/**
 * @file
 * Unit tests for BitWriter/BitReader (common/bitstream.hpp).
 */

#include <gtest/gtest.h>

#include "common/bitstream.hpp"
#include "common/rng.hpp"

namespace delorean
{
namespace
{

TEST(BitStream, EmptyWriter)
{
    BitWriter w;
    EXPECT_EQ(w.bitCount(), 0u);
    EXPECT_TRUE(w.bytes().empty());
    BitReader r(w);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, SingleBits)
{
    BitWriter w;
    w.write(1, 1);
    w.write(0, 1);
    w.write(1, 1);
    EXPECT_EQ(w.bitCount(), 3u);
    BitReader r(w);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_EQ(r.read(1), 0u);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, OddWidthsRoundTrip)
{
    BitWriter w;
    w.write(0b101, 3);
    w.write(0x155, 9);
    w.write(0x0FFFFF, 21);
    w.write(0x3, 4);
    BitReader r(w);
    EXPECT_EQ(r.read(3), 0b101u);
    EXPECT_EQ(r.read(9), 0x155u);
    EXPECT_EQ(r.read(21), 0x0FFFFFu);
    EXPECT_EQ(r.read(4), 0x3u);
}

TEST(BitStream, SixtyFourBitValues)
{
    BitWriter w;
    const std::uint64_t v = 0xDEADBEEFCAFEBABEull;
    w.write(v, 64);
    BitReader r(w);
    EXPECT_EQ(r.read(64), v);
}

TEST(BitStream, MasksHighBits)
{
    BitWriter w;
    w.write(0xFF, 4); // only low 4 bits should be kept
    w.write(0x0, 4);
    BitReader r(w);
    EXPECT_EQ(r.read(4), 0xFu);
    EXPECT_EQ(r.read(4), 0x0u);
}

TEST(BitStream, RemainingCountsDown)
{
    BitWriter w;
    w.write(0xABCD, 16);
    BitReader r(w);
    EXPECT_EQ(r.remaining(), 16u);
    r.read(5);
    EXPECT_EQ(r.remaining(), 11u);
    r.read(11);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitStream, ClearResets)
{
    BitWriter w;
    w.write(0xFFFF, 16);
    w.clear();
    EXPECT_EQ(w.bitCount(), 0u);
    w.write(0x1, 1);
    EXPECT_EQ(w.bitCount(), 1u);
    EXPECT_EQ(w.bytes()[0], 1u);
}

TEST(BitStream, RandomizedRoundTrip)
{
    Xoshiro256ss rng(77);
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> expected;
    for (int i = 0; i < 5000; ++i) {
        const unsigned width = 1 + static_cast<unsigned>(rng.below(64));
        const std::uint64_t value =
            rng.next() & (width == 64 ? ~0ull : ((1ull << width) - 1));
        w.write(value, width);
        expected.emplace_back(value, width);
    }
    BitReader r(w);
    for (const auto &[value, width] : expected)
        ASSERT_EQ(r.read(width), value);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, ByteCountMatchesBits)
{
    BitWriter w;
    w.write(0, 9);
    EXPECT_EQ(w.bytes().size(), 2u); // 9 bits -> 2 bytes
    w.write(0, 7);
    EXPECT_EQ(w.bytes().size(), 2u); // exactly 16 bits
    w.write(1, 1);
    EXPECT_EQ(w.bytes().size(), 3u);
}

/// The historical bit-at-a-time writer, kept as the reference the
/// batched accumulator must match bit for bit.
struct ReferenceWriter
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t bits = 0;

    void
    write(std::uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i) {
            if (bits % 8 == 0)
                bytes.push_back(0);
            if ((value >> i) & 1ull)
                bytes.back() |=
                    static_cast<std::uint8_t>(1u << (bits % 8));
            ++bits;
        }
    }
};

TEST(BitStream, BatchedMatchesBitAtATimeReference)
{
    Xoshiro256ss rng(77);
    for (unsigned trial = 0; trial < 50; ++trial) {
        BitWriter batched;
        ReferenceWriter ref;
        const unsigned writes =
            1 + static_cast<unsigned>(rng.next() % 400);
        for (unsigned i = 0; i < writes; ++i) {
            const unsigned width =
                static_cast<unsigned>(rng.next() % 65);
            const std::uint64_t value = rng.next();
            batched.write(value, width);
            ref.write(value, width);
            // Interleave reads: bytes() must not disturb later
            // accumulator spills.
            if (rng.next() % 8 == 0) {
                ASSERT_EQ(batched.bytes(), ref.bytes);
            }
        }
        ASSERT_EQ(batched.bitCount(), ref.bits);
        ASSERT_EQ(batched.bytes(), ref.bytes);
        EXPECT_EQ(batched.wordFlushes(), ref.bits / 64);
    }
}

TEST(BitStream, ReadPastEndThrowsTyped)
{
    BitWriter w;
    w.write(0xAB, 8);
    BitReader r(w);
    EXPECT_EQ(r.read(6), 0x2Bu);
    // 2 bits left; asking for 3 must throw without consuming them.
    EXPECT_THROW(r.read(3), BitstreamExhausted);
    EXPECT_EQ(r.remaining(), 2u);
    EXPECT_EQ(r.read(2), 0x2u);
    EXPECT_THROW(r.read(1), BitstreamExhausted);
}

TEST(BitStream, ExhaustedIsARecordingFormatError)
{
    // The loader's catch-all for corrupt streams is
    // RecordingFormatError; the reader's overrun error must be one.
    BitWriter w;
    BitReader r(w);
    try {
        r.read(1);
        FAIL() << "read past end did not throw";
    } catch (const RecordingFormatError &e) {
        EXPECT_NE(std::string(e.what()).find("position 0 of 0"),
                  std::string::npos);
    }
}

TEST(BitStream, TryReadDoesNotThrow)
{
    BitWriter w;
    w.write(0b1011, 4);
    BitReader r(w);
    std::uint64_t out = 99;
    EXPECT_FALSE(r.tryRead(5, out));
    EXPECT_EQ(out, 99u); // untouched on failure
    EXPECT_TRUE(r.tryRead(4, out));
    EXPECT_EQ(out, 0b1011u);
    EXPECT_FALSE(r.tryRead(1, out));
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, ZeroWidthReadAtEndSucceeds)
{
    BitWriter w;
    BitReader r(w);
    EXPECT_EQ(r.read(0), 0u);
    std::uint64_t out = 0;
    EXPECT_TRUE(r.tryRead(0, out));
}

// Regression tests for the partial-byte tail at the 64-bit
// accumulator boundary: bytes() materializes pending accumulator
// bits, and a subsequent write that spills the accumulator must store
// its word over those tail bytes, not after them.

TEST(BitStream, TailSyncAtExactAccumulatorBoundary)
{
    BitWriter w;
    w.write(~0ull, 63);
    EXPECT_EQ(w.bytes().size(), 8u); // 63 pending bits, 8 tail bytes
    EXPECT_EQ(w.wordFlushes(), 0u);
    w.write(1, 1); // fills the accumulator exactly: one spill
    EXPECT_EQ(w.wordFlushes(), 1u);
    EXPECT_EQ(w.bytes().size(), 8u);
    BitReader r(w);
    EXPECT_EQ(r.read(64), ~0ull);
}

TEST(BitStream, TailReadThenSpillDoesNotDuplicateBytes)
{
    BitWriter w;
    w.write(0x7FFF, 15);
    const auto tail_before = w.bytes(); // materializes 2 tail bytes
    EXPECT_EQ(tail_before.size(), 2u);
    w.write(0x1234'5678'9ABCull, 64 - 15 + 3); // spills + 3 pending
    EXPECT_EQ(w.bitCount(), 67u);
    EXPECT_EQ(w.bytes().size(), 9u); // 67 bits -> 9 bytes, not 10
    BitReader r(w);
    EXPECT_EQ(r.read(15), 0x7FFFu);
    EXPECT_EQ(r.read(52), 0x1234'5678'9ABCull & ((1ull << 52) - 1));
}

TEST(BitStream, PartialByteFlushAroundBoundaryMatchesReference)
{
    // Sweep every pending-bit count around the 64-bit boundary with a
    // bytes() call interleaved, the pattern a mid-record log-size
    // probe produces.
    for (unsigned first = 57; first <= 64; ++first) {
        for (unsigned second = 1; second <= 16; ++second) {
            BitWriter batched;
            ReferenceWriter ref;
            batched.write(0xA5A5'A5A5'A5A5'A5A5ull, first);
            ref.write(0xA5A5'A5A5'A5A5'A5A5ull, first);
            ASSERT_EQ(batched.bytes(), ref.bytes)
                << "first=" << first;
            batched.write(0x5A5A'5A5A'5A5A'5A5Aull, second);
            ref.write(0x5A5A'5A5A'5A5A'5A5Aull, second);
            ASSERT_EQ(batched.bytes(), ref.bytes)
                << "first=" << first << " second=" << second;
            ASSERT_EQ(batched.bitCount(), first + second);
        }
    }
}

} // namespace
} // namespace delorean
