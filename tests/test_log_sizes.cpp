/**
 * @file
 * Tests for the log-size accounting (core/recording.hpp): the metric
 * the paper's Figures 6-9 are built on.
 */

#include <gtest/gtest.h>

#include "core/delorean.hpp"

namespace delorean
{
namespace
{

Recording
record(const ModeConfig &mode)
{
    MachineConfig m;
    m.numProcs = 4;
    Workload w("barnes", 4, 21, WorkloadScale::tiny());
    return Recorder(mode, m).record(w, 1);
}

TEST(LogSizes, RawBitsMatchLogContents)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const LogSizeReport sizes = rec.logSizes();
    EXPECT_EQ(sizes.pi.rawBits, rec.pi.sizeBits());
    std::uint64_t cs_bits = 0;
    for (const auto &log : rec.cs)
        cs_bits += log.sizeBits();
    EXPECT_EQ(sizes.cs.rawBits, cs_bits);
    EXPECT_EQ(sizes.retiredInstrs, rec.stats.retiredInstrs);
}

TEST(LogSizes, BitsPerProcPerKiloInstrFormula)
{
    const Recording rec = record(ModeConfig::orderOnly());
    const LogSizeReport sizes = rec.logSizes();
    const double expected =
        static_cast<double>(sizes.pi.rawBits + sizes.cs.rawBits)
        / (static_cast<double>(rec.stats.retiredInstrs) / 1000.0);
    EXPECT_DOUBLE_EQ(sizes.bitsPerProcPerKiloInstr(false), expected);
    EXPECT_DOUBLE_EQ(sizes.piBitsPerProcPerKiloInstr(false)
                         + sizes.csBitsPerProcPerKiloInstr(false),
                     expected);
}

TEST(LogSizes, CompressionNeverBreaksAccounting)
{
    const Recording rec = record(ModeConfig::orderAndSize());
    const LogSizeReport sizes = rec.logSizes();
    EXPECT_GT(sizes.pi.compressedBits, 0u);
    // LZ77 worst case is 9/8 expansion on the packed stream.
    EXPECT_LE(sizes.pi.compressedBits, sizes.pi.rawBits * 9 / 8 + 64);
}

TEST(LogSizes, PicoLogReportsZeroPi)
{
    const Recording rec = record(ModeConfig::picoLog());
    const LogSizeReport sizes = rec.logSizes();
    EXPECT_EQ(sizes.pi.rawBits, 0u);
    EXPECT_EQ(sizes.pi.compressedBits, 0u);
}

TEST(LogSizes, StratifiedUsesStrataBits)
{
    ModeConfig mode = ModeConfig::orderOnly();
    mode.stratifyChunksPerProc = 1;
    const Recording rec = record(mode);
    const LogSizeReport sizes = rec.logSizes();
    // 1 chunk/proc/stratum at 4 procs: 4 bits per stratum.
    EXPECT_EQ(sizes.pi.rawBits, rec.strata.size() * 4u);
}

TEST(LogSizes, OrderOnlySmallerThanRtrReference)
{
    // The headline claim: OrderOnly's memory-ordering log is well
    // under the ~8 bits/proc/kilo-inst Basic RTR reference.
    const Recording rec = record(ModeConfig::orderOnly());
    EXPECT_LT(rec.logSizes().bitsPerProcPerKiloInstr(true), 8.0);
}

} // namespace
} // namespace delorean
