#include "compress/lz77.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "common/errors.hpp"

namespace delorean
{

namespace
{

/** Hash of the next three bytes, for the match-finder chains. */
inline std::uint32_t
hash3(const std::uint8_t *p)
{
    const std::uint32_t v = p[0] | (p[1] << 8) | (p[2] << 16);
    return (v * 2654435761u) >> 17; // 15-bit hash
}

constexpr unsigned kHashSize = 1u << 15;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

/**
 * Length of the common prefix of @p a and @p b, up to @p limit bytes.
 * Compares eight bytes per step; the XOR of the first differing words
 * locates the exact mismatch byte, so the result is identical to a
 * byte-at-a-time scan.
 */
inline std::size_t
matchLength(const std::uint8_t *a, const std::uint8_t *b,
            std::size_t limit)
{
    std::size_t len = 0;
    while (len + 8 <= limit) {
        std::uint64_t wa, wb;
        std::memcpy(&wa, a + len, 8);
        std::memcpy(&wb, b + len, 8);
        if (wa != wb) {
            if constexpr (std::endian::native == std::endian::little)
                return len
                       + (static_cast<unsigned>(
                              std::countr_zero(wa ^ wb))
                          >> 3);
            else
                break; // fall through to the byte loop
        }
        len += 8;
    }
    while (len < limit && a[len] == b[len])
        ++len;
    return len;
}

/**
 * Shared greedy LZ77 tokenizer over @p data[0, n), starting at the
 * caller-maintained cursor @p pos. Calls @p emit_literal /
 * @p emit_match for every token, in order.
 *
 * When @p final is false, tokenization stops at the last position
 * whose greedy decision cannot depend on bytes past n: a position is
 * taken only while pos + maxMatch + 2 <= n, which saturates the match
 * limit at maxMatch AND guarantees the hash-insertion guard
 * (pos + i + 3 <= n for every covered i < advance <= maxMatch)
 * resolves the same way it would with more input appended. This is
 * what makes streamed output byte-identical to one-shot output.
 */
template <typename LitFn, typename MatchFn>
void
tokenizeSpan(const std::uint8_t *data, std::size_t n, bool final,
             const Lz77Config &cfg, std::size_t &pos,
             std::vector<std::uint32_t> &head,
             std::vector<std::uint32_t> &prev, LitFn emit_literal,
             MatchFn emit_match)
{
    const std::size_t window = std::size_t{1} << cfg.windowBits;
    prev.resize(n);

    while (final ? pos < n : pos + cfg.maxMatch + 2 <= n) {
        std::size_t best_len = 0;
        std::size_t best_dist = 0;
        if (pos + cfg.minMatch <= n) {
            // Exact hash-chain walk. Chains enumerate candidates in
            // increasing distance and hold *every* prior position
            // sharing pos's 3-byte prefix, so taking only strictly
            // longer matches reproduces the full-window greedy scan
            // bit for bit: longest match, smallest distance on ties
            // (asserted against lz77_reference in the tests). Cheap
            // exactness guards replace the old bounded probe count:
            // a candidate that disagrees at offset best_len cannot
            // beat the incumbent and is skipped without a length
            // scan, and a match reaching the position limit ends the
            // walk — no later (farther) candidate can be longer.
            const std::size_t limit =
                std::min<std::size_t>(cfg.maxMatch, n - pos);
            const std::uint32_t h = hash3(&data[pos]);
            std::uint32_t cand = head[h];
            while (cand != kNoPos) {
                const std::size_t dist = pos - cand;
                if (dist > window)
                    break;
                if (best_len == 0
                    || data[cand + best_len] == data[pos + best_len]) {
                    const std::size_t len =
                        matchLength(&data[cand], &data[pos], limit);
                    if (len > best_len) {
                        best_len = len;
                        best_dist = dist;
                        if (len >= limit)
                            break;
                    }
                }
                cand = prev[cand];
            }
        }

        const std::size_t advance =
            (best_len >= cfg.minMatch) ? best_len : 1;
        if (best_len >= cfg.minMatch)
            emit_match(best_dist, best_len);
        else
            emit_literal(data[pos]);

        // Insert every covered position into the hash chains.
        for (std::size_t i = 0; i < advance && pos + i + 3 <= n; ++i) {
            const std::uint32_t h = hash3(&data[pos + i]);
            prev[pos + i] = head[h];
            head[h] = static_cast<std::uint32_t>(pos + i);
        }
        pos += advance;
    }
}

/** One-shot tokenization of a whole buffer. */
template <typename LitFn, typename MatchFn>
void
tokenize(const std::vector<std::uint8_t> &input, const Lz77Config &cfg,
         LitFn emit_literal, MatchFn emit_match)
{
    // Reused across calls: campaigns compress thousands of logs, and
    // the head table + chain links dominated the allocator profile.
    // prev needs no clearing — a chain only ever reaches positions
    // that were inserted this call, and insertion writes prev first.
    static thread_local std::vector<std::uint32_t> head;
    static thread_local std::vector<std::uint32_t> prev;
    head.assign(kHashSize, kNoPos);
    std::size_t pos = 0;
    tokenizeSpan(input.data(), input.size(), /*final=*/true, cfg, pos,
                 head, prev, emit_literal, emit_match);
}

} // namespace

std::vector<std::uint8_t>
Lz77::compress(const std::vector<std::uint8_t> &input) const
{
    BitWriter out;
    out.write(input.size(), 64);
    tokenize(
        input, config_,
        [&](std::uint8_t lit) {
            out.write(0, 1);
            out.write(lit, 8);
        },
        [&](std::size_t dist, std::size_t len) {
            out.write(1, 1);
            out.write(dist - 1, config_.windowBits);
            out.write(len - config_.minMatch, 8);
        });
    return out.bytes();
}

std::vector<std::uint8_t>
Lz77::decompress(const std::uint8_t *input, std::size_t input_size) const
{
    BitReader in(input, static_cast<std::uint64_t>(input_size) * 8);
    const std::uint64_t size = in.read(64);

    // Corrupted-size guard: a match token (the densest encoding)
    // spends 1 + windowBits + 8 bits to produce at most maxMatch
    // bytes, so any honest stream satisfies this bound. Checking it
    // here keeps a flipped size header from reserving gigabytes.
    const std::uint64_t token_bits =
        static_cast<std::uint64_t>(input_size) * 8 - 64;
    const std::uint64_t max_out =
        (token_bits / (1 + config_.windowBits + 8) + 1)
        * config_.maxMatch;
    if (size > max_out)
        throw RecordingFormatError(
            "lz77: implausible decompressed size "
            + std::to_string(size) + " for "
            + std::to_string(input_size) + " input bytes");

    // The output size is known up front, so decode into a
    // preallocated buffer with block copies for match tokens instead
    // of a push_back per byte. Only a corrupt stream whose final
    // match overshoots the declared size ever regrows the buffer
    // (matching the historical decoder, which returned the oversized
    // output and let the caller's size cross-check reject it).
    std::vector<std::uint8_t> out(static_cast<std::size_t>(size));
    std::size_t produced = 0;
    while (produced < size) {
        if (in.read(1) == 0) {
            out[produced++] = static_cast<std::uint8_t>(in.read(8));
        } else {
            const std::size_t dist =
                static_cast<std::size_t>(in.read(config_.windowBits)) + 1;
            const std::size_t len =
                static_cast<std::size_t>(in.read(8)) + config_.minMatch;
            if (dist > produced)
                throw RecordingFormatError(
                    "lz77: match distance " + std::to_string(dist)
                    + " reaches before output start (have "
                    + std::to_string(produced) + " bytes)");
            if (produced + len > out.size())
                out.resize(produced + len);
            const std::uint8_t *src = out.data() + produced - dist;
            std::uint8_t *dst = out.data() + produced;
            if (dist >= len) {
                std::memcpy(dst, src, len);
            } else {
                // Overlapping match: the copy reads bytes it just
                // wrote (run-length style), so it must go bytewise.
                for (std::size_t i = 0; i < len; ++i)
                    dst[i] = src[i];
            }
            produced += len;
        }
    }
    return out;
}

std::vector<std::uint8_t>
Lz77::decompress(const std::vector<std::uint8_t> &input) const
{
    return decompress(input.data(), input.size());
}

std::uint64_t
Lz77::compressedBits(const std::vector<std::uint8_t> &input) const
{
    std::uint64_t bits = 0;
    tokenize(
        input, config_, [&](std::uint8_t) { bits += 1 + 8; },
        [&](std::size_t, std::size_t) {
            bits += 1 + config_.windowBits + 8;
        });
    return bits;
}

// ---- Lz77Stream -----------------------------------------------------

Lz77Stream::Lz77Stream(const Lz77Config &config)
    : config_(config), head_(kHashSize, kNoPos)
{
    out_.write(0, 64); // length header, patched by finish()
}

void
Lz77Stream::append(const std::uint8_t *data, std::size_t size)
{
    assert(!finished_);
    if (size == 0)
        return;
    buf_.insert(buf_.end(), data, data + size);
    total_in_ += size;
    drain(/*final=*/false);
    compact();
}

std::vector<std::uint8_t>
Lz77Stream::finish()
{
    assert(!finished_);
    finished_ = true;
    drain(/*final=*/true);
    std::vector<std::uint8_t> bytes = out_.bytes();
    for (unsigned i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(total_in_ >> (8 * i));
    buf_.clear();
    buf_.shrink_to_fit();
    return bytes;
}

void
Lz77Stream::drain(bool final)
{
    tokenizeSpan(
        buf_.data(), buf_.size(), final, config_, pos_, head_, prev_,
        [&](std::uint8_t lit) {
            out_.write(0, 1);
            out_.write(lit, 8);
        },
        [&](std::size_t dist, std::size_t len) {
            out_.write(1, 1);
            out_.write(dist - 1, config_.windowBits);
            out_.write(len - config_.minMatch, 8);
        });
}

// ---- lz77_reference -------------------------------------------------

namespace lz77_reference
{

namespace
{

/**
 * The pre-hash-chain greedy tokenizer: an O(window * len) scalar scan
 * over every candidate distance. Kept verbatim as the equivalence
 * oracle for the production searcher — longest match wins, smallest
 * distance breaks ties (the scan visits distances in ascending order
 * and only a strictly longer match displaces the incumbent).
 */
template <typename LitFn, typename MatchFn>
void
referenceTokenize(const std::vector<std::uint8_t> &input,
                  const Lz77Config &cfg, LitFn emit_literal,
                  MatchFn emit_match)
{
    const std::size_t n = input.size();
    const std::size_t window = std::size_t{1} << cfg.windowBits;
    std::size_t pos = 0;
    while (pos < n) {
        std::size_t best_len = 0;
        std::size_t best_dist = 0;
        const std::size_t limit =
            std::min<std::size_t>(cfg.maxMatch, n - pos);
        const std::size_t max_dist = std::min(window, pos);
        for (std::size_t dist = 1; dist <= max_dist; ++dist) {
            const std::size_t len = matchLength(
                &input[pos - dist], &input[pos], limit);
            if (len > best_len) {
                best_len = len;
                best_dist = dist;
                if (len >= limit)
                    break;
            }
        }
        if (best_len >= cfg.minMatch) {
            emit_match(best_dist, best_len);
            pos += best_len;
        } else {
            emit_literal(input[pos]);
            pos += 1;
        }
    }
}

} // namespace

std::vector<std::uint8_t>
compress(const std::vector<std::uint8_t> &input, const Lz77Config &cfg)
{
    BitWriter out;
    out.write(input.size(), 64);
    referenceTokenize(
        input, cfg,
        [&](std::uint8_t lit) {
            out.write(0, 1);
            out.write(lit, 8);
        },
        [&](std::size_t dist, std::size_t len) {
            out.write(1, 1);
            out.write(dist - 1, cfg.windowBits);
            out.write(len - cfg.minMatch, 8);
        });
    return out.bytes();
}

std::uint64_t
compressedBits(const std::vector<std::uint8_t> &input,
               const Lz77Config &cfg)
{
    std::uint64_t bits = 0;
    referenceTokenize(
        input, cfg, [&](std::uint8_t) { bits += 1 + 8; },
        [&](std::size_t, std::size_t) {
            bits += 1 + cfg.windowBits + 8;
        });
    return bits;
}

std::vector<std::uint8_t>
decompress(const std::vector<std::uint8_t> &input, const Lz77Config &cfg)
{
    // The historical decoder: bit-at-a-time extraction and a
    // push_back per output byte. Serves as the serial-baseline cost
    // model in bench/archive_io and as the output oracle for the
    // block-copy decoder.
    if (static_cast<std::uint64_t>(input.size()) * 8 < 64)
        throw BitstreamExhausted("read of 64 bits at position 0 of "
                                 + std::to_string(input.size() * 8));
    std::uint64_t pos_bits = 0;
    const std::uint64_t total_bits =
        static_cast<std::uint64_t>(input.size()) * 8;
    const auto read = [&](unsigned width) {
        if (pos_bits + width > total_bits)
            throw BitstreamExhausted(
                "read of " + std::to_string(width) + " bits at position "
                + std::to_string(pos_bits) + " of "
                + std::to_string(total_bits));
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            if ((input[pos_bits / 8] >> (pos_bits % 8)) & 1u)
                value |= (1ull << i);
            ++pos_bits;
        }
        return value;
    };

    const std::uint64_t size = read(64);
    const std::uint64_t token_bits = total_bits - 64;
    const std::uint64_t max_out =
        (token_bits / (1 + cfg.windowBits + 8) + 1) * cfg.maxMatch;
    if (size > max_out)
        throw RecordingFormatError(
            "lz77: implausible decompressed size "
            + std::to_string(size) + " for "
            + std::to_string(input.size()) + " input bytes");

    std::vector<std::uint8_t> out;
    out.reserve(size);
    while (out.size() < size) {
        if (read(1) == 0) {
            out.push_back(static_cast<std::uint8_t>(read(8)));
        } else {
            const std::size_t dist =
                static_cast<std::size_t>(read(cfg.windowBits)) + 1;
            const std::size_t len =
                static_cast<std::size_t>(read(8)) + cfg.minMatch;
            if (dist > out.size())
                throw RecordingFormatError(
                    "lz77: match distance " + std::to_string(dist)
                    + " reaches before output start (have "
                    + std::to_string(out.size()) + " bytes)");
            for (std::size_t i = 0; i < len; ++i)
                out.push_back(out[out.size() - dist]);
        }
    }
    return out;
}

} // namespace lz77_reference

void
Lz77Stream::compact()
{
    // Keep the window behind pos_ (plus pos_ itself onward); only
    // bother once a meaningful chunk can be dropped, since rebasing
    // touches the whole head table.
    const std::size_t window = std::size_t{1} << config_.windowBits;
    const std::size_t drop = pos_ > window ? pos_ - window : 0;
    if (drop < std::max<std::size_t>(window, std::size_t{1} << 16))
        return;

    const auto rebase = [drop](std::uint32_t p) {
        return (p == kNoPos || p < drop)
                   ? kNoPos
                   : static_cast<std::uint32_t>(p - drop);
    };
    // Dropped positions are unreachable anyway: the chain walk breaks
    // at dist > window and chains link monotonically older positions,
    // so mapping them to kNoPos never changes a tokenization decision.
    for (auto &h : head_)
        h = rebase(h);
    const std::size_t remain = buf_.size() - drop;
    for (std::size_t i = 0; i < remain; ++i)
        prev_[i] = rebase(prev_[i + drop]);
    prev_.resize(remain);
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(drop));
    pos_ -= drop;
}

} // namespace delorean
