#include "compress/lz77.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "common/bitstream.hpp"

namespace delorean
{

namespace
{

/** Hash of the next three bytes, for the match-finder chains. */
inline std::uint32_t
hash3(const std::uint8_t *p)
{
    const std::uint32_t v = p[0] | (p[1] << 8) | (p[2] << 16);
    return (v * 2654435761u) >> 17; // 15-bit hash
}

constexpr unsigned kHashSize = 1u << 15;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

/**
 * Length of the common prefix of @p a and @p b, up to @p limit bytes.
 * Compares eight bytes per step; the XOR of the first differing words
 * locates the exact mismatch byte, so the result is identical to a
 * byte-at-a-time scan.
 */
inline std::size_t
matchLength(const std::uint8_t *a, const std::uint8_t *b,
            std::size_t limit)
{
    std::size_t len = 0;
    while (len + 8 <= limit) {
        std::uint64_t wa, wb;
        std::memcpy(&wa, a + len, 8);
        std::memcpy(&wb, b + len, 8);
        if (wa != wb) {
            if constexpr (std::endian::native == std::endian::little)
                return len
                       + (static_cast<unsigned>(
                              std::countr_zero(wa ^ wb))
                          >> 3);
            else
                break; // fall through to the byte loop
        }
        len += 8;
    }
    while (len < limit && a[len] == b[len])
        ++len;
    return len;
}

/**
 * Shared greedy LZ77 tokenizer. Calls @p emit_literal / @p emit_match
 * for every token, in order.
 */
template <typename LitFn, typename MatchFn>
void
tokenize(const std::vector<std::uint8_t> &input, const Lz77Config &cfg,
         LitFn emit_literal, MatchFn emit_match)
{
    const std::size_t n = input.size();
    const std::size_t window = std::size_t{1} << cfg.windowBits;
    // Reused across calls: campaigns compress thousands of logs, and
    // the head table + chain links dominated the allocator profile.
    // prev needs no clearing — a chain only ever reaches positions
    // that were inserted this call, and insertion writes prev first.
    static thread_local std::vector<std::uint32_t> head;
    static thread_local std::vector<std::uint32_t> prev;
    head.assign(kHashSize, kNoPos);
    prev.resize(n);

    std::size_t pos = 0;
    while (pos < n) {
        std::size_t best_len = 0;
        std::size_t best_dist = 0;
        if (pos + cfg.minMatch <= n) {
            const std::uint32_t h = hash3(&input[pos]);
            std::uint32_t cand = head[h];
            unsigned probes = 32; // bounded chain walk
            while (cand != kNoPos && probes-- > 0) {
                const std::size_t dist = pos - cand;
                if (dist > window)
                    break;
                const std::size_t limit =
                    std::min<std::size_t>(cfg.maxMatch, n - pos);
                const std::size_t len =
                    matchLength(&input[cand], &input[pos], limit);
                if (len > best_len) {
                    best_len = len;
                    best_dist = dist;
                    if (len >= cfg.maxMatch)
                        break;
                }
                cand = prev[cand];
            }
        }

        const std::size_t advance =
            (best_len >= cfg.minMatch) ? best_len : 1;
        if (best_len >= cfg.minMatch)
            emit_match(best_dist, best_len);
        else
            emit_literal(input[pos]);

        // Insert every covered position into the hash chains.
        for (std::size_t i = 0; i < advance && pos + i + 3 <= n; ++i) {
            const std::uint32_t h = hash3(&input[pos + i]);
            prev[pos + i] = head[h];
            head[h] = static_cast<std::uint32_t>(pos + i);
        }
        pos += advance;
    }
}

} // namespace

std::vector<std::uint8_t>
Lz77::compress(const std::vector<std::uint8_t> &input) const
{
    BitWriter out;
    out.write(input.size(), 64);
    tokenize(
        input, config_,
        [&](std::uint8_t lit) {
            out.write(0, 1);
            out.write(lit, 8);
        },
        [&](std::size_t dist, std::size_t len) {
            out.write(1, 1);
            out.write(dist - 1, config_.windowBits);
            out.write(len - config_.minMatch, 8);
        });
    return out.bytes();
}

std::vector<std::uint8_t>
Lz77::decompress(const std::vector<std::uint8_t> &input) const
{
    BitReader in(input, static_cast<std::uint64_t>(input.size()) * 8);
    const std::uint64_t size = in.read(64);
    std::vector<std::uint8_t> out;
    out.reserve(size);
    while (out.size() < size) {
        if (in.read(1) == 0) {
            out.push_back(static_cast<std::uint8_t>(in.read(8)));
        } else {
            const std::size_t dist =
                static_cast<std::size_t>(in.read(config_.windowBits)) + 1;
            const std::size_t len =
                static_cast<std::size_t>(in.read(8)) + config_.minMatch;
            assert(dist <= out.size());
            for (std::size_t i = 0; i < len; ++i)
                out.push_back(out[out.size() - dist]);
        }
    }
    return out;
}

std::uint64_t
Lz77::compressedBits(const std::vector<std::uint8_t> &input) const
{
    std::uint64_t bits = 0;
    tokenize(
        input, config_, [&](std::uint8_t) { bits += 1 + 8; },
        [&](std::size_t, std::size_t) {
            bits += 1 + config_.windowBits + 8;
        });
    return bits;
}

} // namespace delorean
