/**
 * @file
 * LZ77 sliding-window compressor.
 *
 * The paper states that "all log buffers are enhanced with compression
 * hardware that uses the LZ77 algorithm" (Section 5). This module is a
 * faithful software LZ77: greedy longest-match over a sliding window,
 * emitting (literal) and (distance, length) tokens with a compact
 * bit-level encoding. It is used to report the *compressed* log sizes
 * in the Figure 6-8 reproductions, and is exact enough that
 * compress(decompress(x)) == x is asserted in the tests.
 *
 * Two front ends share the tokenizer:
 *  - Lz77: one-shot, whole-buffer calls.
 *  - Lz77Stream: chunked append() calls that compress incrementally
 *    without ever concatenating the input into one buffer; the output
 *    of finish() is byte-identical to a one-shot compress() of the
 *    same bytes, for any partition of the input.
 */

#ifndef DELOREAN_COMPRESS_LZ77_HPP_
#define DELOREAN_COMPRESS_LZ77_HPP_

#include <cstdint>
#include <vector>

#include "common/bitstream.hpp"

namespace delorean
{

/** Tuning parameters for the LZ77 compressor. */
struct Lz77Config
{
    unsigned windowBits = 12;   ///< sliding window = 4 KB, HW-friendly
    unsigned minMatch = 3;      ///< shortest emitted match
    unsigned maxMatch = 258;    ///< longest emitted match
};

/**
 * LZ77 codec. Stateless between calls; each compress() call treats its
 * input as one independent buffer (like flushing a hardware lane).
 */
class Lz77
{
  public:
    Lz77() = default;
    explicit Lz77(const Lz77Config &config) : config_(config) {}

    /** Compress @p input; returns the encoded byte stream. */
    std::vector<std::uint8_t>
    compress(const std::vector<std::uint8_t> &input) const;

    /**
     * Decompress a stream produced by compress(). Throws
     * RecordingFormatError (or the BitstreamExhausted subclass) on
     * malformed input: an implausibly large size header, a match
     * distance reaching before the start of the output, or a stream
     * that runs dry mid-token.
     */
    std::vector<std::uint8_t>
    decompress(const std::vector<std::uint8_t> &input) const;

    /**
     * Span overload: decode directly out of caller-owned storage
     * (e.g. an mmap'ed archive payload) without copying the
     * compressed bytes first.
     */
    std::vector<std::uint8_t>
    decompress(const std::uint8_t *input, std::size_t input_size) const;

    /**
     * Compressed size in bits of @p input, without materializing the
     * output (used by the log-size harnesses). Token bits only — the
     * 64-bit length header compress() prepends is excluded.
     */
    std::uint64_t
    compressedBits(const std::vector<std::uint8_t> &input) const;

  private:
    Lz77Config config_;
};

/**
 * Incremental LZ77 compressor: feed input in arbitrary chunks with
 * append(), then call finish() once for the encoded stream.
 *
 * Only a sliding window plus a not-yet-tokenizable tail of the input
 * is buffered (tokenization of a position is deferred until enough
 * lookahead has arrived to make the greedy choice identical to the
 * one-shot tokenizer's), so memory use is bounded by the window size,
 * not the total input. finish() output is byte-identical to
 * Lz77::compress() of the concatenated input.
 */
class Lz77Stream
{
  public:
    explicit Lz77Stream(const Lz77Config &config = {});

    Lz77Stream(const Lz77Stream &) = delete;
    Lz77Stream &operator=(const Lz77Stream &) = delete;

    /** Append @p size bytes of input. */
    void append(const std::uint8_t *data, std::size_t size);

    void
    append(const std::vector<std::uint8_t> &data)
    {
        append(data.data(), data.size());
    }

    /**
     * Tokenize the remaining tail and return the complete encoded
     * stream. May be called once; the stream is spent afterwards.
     */
    std::vector<std::uint8_t> finish();

    /** Total bytes appended so far. */
    std::uint64_t rawBytes() const { return total_in_; }

  private:
    /** Tokenize buffered positions; final means no more input. */
    void drain(bool final);

    /** Drop buffered bytes older than the window; rebase the chains. */
    void compact();

    Lz77Config config_;
    BitWriter out_;
    std::vector<std::uint8_t> buf_; ///< window + untokenized tail
    std::vector<std::uint32_t> head_;
    std::vector<std::uint32_t> prev_;
    std::size_t pos_ = 0;        ///< next untokenized buf_ index
    std::uint64_t total_in_ = 0; ///< bytes appended overall
    bool finished_ = false;
};

/**
 * Test/bench hook: the pre-hash-chain codec, kept verbatim.
 *
 * compress()/compressedBits() run the O(window * len) scalar greedy
 * scan the hash-chain searcher replaced; decompress() is the
 * historical bit-at-a-time decoder. The production codec is required
 * to be *byte-identical* to these on every input (the hash chain
 * finds the same greedy longest match with the same smallest-distance
 * tie-break), which the lz77 tests assert across the bench corpora.
 * bench/archive_io uses them as the serial-baseline cost model. Not
 * for production use — quadratic on repetitive input.
 */
namespace lz77_reference
{

std::vector<std::uint8_t>
compress(const std::vector<std::uint8_t> &input,
         const Lz77Config &cfg = {});

std::uint64_t compressedBits(const std::vector<std::uint8_t> &input,
                             const Lz77Config &cfg = {});

std::vector<std::uint8_t>
decompress(const std::vector<std::uint8_t> &input,
           const Lz77Config &cfg = {});

} // namespace lz77_reference

} // namespace delorean

#endif // DELOREAN_COMPRESS_LZ77_HPP_
