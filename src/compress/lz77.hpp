/**
 * @file
 * LZ77 sliding-window compressor.
 *
 * The paper states that "all log buffers are enhanced with compression
 * hardware that uses the LZ77 algorithm" (Section 5). This module is a
 * faithful software LZ77: greedy longest-match over a sliding window,
 * emitting (literal) and (distance, length) tokens with a compact
 * bit-level encoding. It is used to report the *compressed* log sizes
 * in the Figure 6-8 reproductions, and is exact enough that
 * compress(decompress(x)) == x is asserted in the tests.
 */

#ifndef DELOREAN_COMPRESS_LZ77_HPP_
#define DELOREAN_COMPRESS_LZ77_HPP_

#include <cstdint>
#include <vector>

namespace delorean
{

/** Tuning parameters for the LZ77 compressor. */
struct Lz77Config
{
    unsigned windowBits = 12;   ///< sliding window = 4 KB, HW-friendly
    unsigned minMatch = 3;      ///< shortest emitted match
    unsigned maxMatch = 258;    ///< longest emitted match
};

/**
 * LZ77 codec. Stateless between calls; each compress() call treats its
 * input as one independent buffer (like flushing a hardware lane).
 */
class Lz77
{
  public:
    Lz77() = default;
    explicit Lz77(const Lz77Config &config) : config_(config) {}

    /** Compress @p input; returns the encoded byte stream. */
    std::vector<std::uint8_t>
    compress(const std::vector<std::uint8_t> &input) const;

    /** Decompress a stream produced by compress(). */
    std::vector<std::uint8_t>
    decompress(const std::vector<std::uint8_t> &input) const;

    /**
     * Compressed size in bits of @p input, without materializing the
     * output (used by the log-size harnesses).
     */
    std::uint64_t
    compressedBits(const std::vector<std::uint8_t> &input) const;

  private:
    Lz77Config config_;
};

} // namespace delorean

#endif // DELOREAN_COMPRESS_LZ77_HPP_
