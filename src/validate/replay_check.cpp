#include "validate/replay_check.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>

#include "common/errors.hpp"
#include "core/serialize.hpp"
#include "trace/workload.hpp"
#include "validate/localizer.hpp"

namespace delorean
{

std::uint64_t
defaultReplayEventBudget(const Recording &rec)
{
    // Size the budget from parsed log content, not from the headline
    // stats (a corrupted stats field must not inflate the budget).
    const std::uint64_t commits =
        rec.fingerprint.commits.size() + rec.dma.count()
        + rec.machine.numProcs;
    const std::uint64_t budget = 5000 * commits + 1'000'000;
    return std::min<std::uint64_t>(budget, 2'000'000'000ull);
}

ReplayCheckResult
checkedReplay(const Recording &rec, const ReplayCheckOptions &opts)
{
    ReplayCheckResult result;
    DivergenceReport &report = result.report;

    try {
        validateRecording(rec);
    } catch (const RecordingFormatError &e) {
        report.kind = DivergenceKind::kFormatError;
        report.message = e.what();
        return result;
    }

    std::optional<Workload> workload;
    try {
        workload.emplace(rec.appName, rec.machine.numProcs,
                         rec.workloadSeed,
                         WorkloadScale{rec.iterationsPercent});
    } catch (const std::exception &e) {
        report.kind = DivergenceKind::kWorkloadError;
        report.message = e.what();
        return result;
    }

    EngineOptions eopts;
    eopts.replay = true;
    eopts.envSeed = opts.envSeed;
    eopts.perturb = opts.perturb;
    eopts.maxEvents =
        opts.maxEvents ? opts.maxEvents : defaultReplayEventBudget(rec);

    try {
        ChunkEngine engine(*workload, rec.machine, rec.mode, eopts);
        result.outcome = engine.replay(rec);
        result.replayRan = true;
    } catch (const ReplayError &e) {
        report.kind = DivergenceKind::kReplayError;
        report.message = e.what();
        return result;
    } catch (const std::exception &e) {
        // Anything untyped coming out of the engine is still reported
        // (not rethrown) so sweeps keep their no-crash guarantee, but
        // the message flags it as unexpected for triage.
        report.kind = DivergenceKind::kReplayError;
        report.message = std::string("unexpected replay exception: ")
                         + e.what();
        return result;
    }

    const bool matched = rec.stratified()
                             ? result.outcome.deterministicPerProc
                             : result.outcome.deterministicExact;
    if (matched) {
        result.ok = true;
        return result;
    }

    LocalizerOptions lopts;
    lopts.period = opts.localizerPeriod;
    report = localizeDivergence(rec.fingerprint,
                                result.outcome.fingerprint, &rec, lopts);
    if (report.ok()) {
        // The engine judged the replay non-deterministic but the
        // localizer found fingerprints equal — only possible for an
        // interval-replay expectation mismatch; surface it rather
        // than claim success.
        report.kind = DivergenceKind::kStateDivergence;
        report.message = "engine reported non-determinism the "
                         "localizer could not attribute";
    }
    return result;
}

} // namespace delorean
