#include "validate/replay_check.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>

#include "common/errors.hpp"
#include "core/serialize.hpp"
#include "trace/workload.hpp"
#include "validate/localizer.hpp"

namespace delorean
{

namespace
{

/**
 * Shared head of both checked entry points: reject malformed
 * recordings and rebuild the workload, reporting either failure.
 * Returns nullopt with @p result.report filled on failure.
 */
std::optional<Workload>
prepareWorkload(const Recording &rec, ReplayCheckResult &result)
{
    try {
        validateRecording(rec);
    } catch (const RecordingFormatError &e) {
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message = e.what();
        return std::nullopt;
    }

    try {
        return Workload(rec.appName, rec.machine.numProcs,
                        rec.workloadSeed,
                        WorkloadScale{rec.iterationsPercent});
    } catch (const std::exception &e) {
        result.report.kind = DivergenceKind::kWorkloadError;
        result.report.message = e.what();
        return std::nullopt;
    }
}

/**
 * Shared tail: classify a replay that ran to completion — success on
 * a matched fingerprint, otherwise localize the divergence. For
 * interval replays the reference is the expected fingerprint of
 * I(start, stop), not the full recording's — the replayed stream only
 * covers the commits inside the interval.
 */
void
classifyOutcome(const Recording &rec, const ReplayCheckOptions &opts,
                ReplayCheckResult &result)
{
    const bool matched = rec.stratified()
                             ? result.outcome.deterministicPerProc
                             : result.outcome.deterministicExact;
    if (matched) {
        result.ok = true;
        return;
    }

    ExecutionFingerprint expected = rec.fingerprint;
    if (opts.startCheckpoint != ReplayCheckOptions::kFullRun) {
        const SystemCheckpoint &start =
            rec.checkpoints[opts.startCheckpoint];
        expected =
            opts.stopCheckpoint != ReplayCheckOptions::kFullRun
                ? rec.fingerprintBetween(
                      &start, rec.checkpoints[opts.stopCheckpoint])
                : rec.fingerprintFromCheckpoint(start);
    }

    LocalizerOptions lopts;
    lopts.period = opts.localizerPeriod;
    result.report = localizeDivergence(expected,
                                       result.outcome.fingerprint, &rec,
                                       lopts);
    if (result.report.ok()) {
        // The engine judged the replay non-deterministic but the
        // localizer found fingerprints equal — only possible for an
        // interval-replay expectation mismatch; surface it rather
        // than claim success.
        result.report.kind = DivergenceKind::kStateDivergence;
        result.report.message = "engine reported non-determinism the "
                                "localizer could not attribute";
    }
}

} // namespace

std::uint64_t
defaultReplayEventBudget(const Recording &rec, unsigned replay_window)
{
    // Size the budget from parsed log content, not from the headline
    // stats (a corrupted stats field must not inflate the budget).
    const std::uint64_t commits =
        rec.fingerprint.commits.size() + rec.dma.count()
        + rec.machine.numProcs;
    const std::uint64_t window = std::max(1u, replay_window);
    const std::uint64_t budget =
        5000 * commits * window + 1'000'000 * window;
    return std::min<std::uint64_t>(budget, 2'000'000'000ull);
}

ReplayCheckResult
checkedReplay(const Recording &rec, const ReplayCheckOptions &opts)
{
    ReplayCheckResult result;

    if (opts.detectRaces
        && (opts.startCheckpoint != ReplayCheckOptions::kFullRun
            || opts.stopCheckpoint != ReplayCheckOptions::kFullRun)) {
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message = "race detection requires a full-run "
                                "replay, not an interval replay";
        return result;
    }

    const std::optional<Workload> workload = prepareWorkload(rec, result);
    if (!workload)
        return result;

    EngineOptions eopts;
    eopts.replay = true;
    eopts.envSeed = opts.envSeed;
    eopts.perturb = opts.perturb;
    eopts.replayWindow = std::max(1u, opts.replayWindow);
    eopts.honorPartialOrder = opts.honorPartialOrder;
    eopts.maxEvents =
        opts.maxEvents
            ? opts.maxEvents
            : defaultReplayEventBudget(rec, eopts.replayWindow);
    if (opts.startCheckpoint != ReplayCheckOptions::kFullRun) {
        if (opts.startCheckpoint >= rec.checkpoints.size()) {
            result.report.kind = DivergenceKind::kFormatError;
            result.report.message =
                "start checkpoint index "
                + std::to_string(opts.startCheckpoint)
                + " out of range (recording has "
                + std::to_string(rec.checkpoints.size())
                + " checkpoints)";
            return result;
        }
        eopts.startCheckpoint = &rec.checkpoints[opts.startCheckpoint];
    }
    if (opts.stopCheckpoint != ReplayCheckOptions::kFullRun) {
        if (opts.stopCheckpoint >= rec.checkpoints.size()
            || opts.startCheckpoint == ReplayCheckOptions::kFullRun
            || opts.stopCheckpoint <= opts.startCheckpoint) {
            result.report.kind = DivergenceKind::kFormatError;
            result.report.message =
                "stop checkpoint index "
                + std::to_string(opts.stopCheckpoint)
                + " is not a later checkpoint than the start";
            return result;
        }
        eopts.stopCheckpoint = &rec.checkpoints[opts.stopCheckpoint];
    }

    RaceDetector detector;
    if (opts.detectRaces)
        eopts.observer = &detector;

    try {
        ChunkEngine engine(*workload, rec.machine, rec.mode, eopts);
        result.outcome = engine.replay(rec);
        result.replayRan = true;
        if (opts.detectRaces)
            result.races = detector.report();
    } catch (const ReplayError &e) {
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message = e.what();
        return result;
    } catch (const std::exception &e) {
        // Anything untyped coming out of the engine is still reported
        // (not rethrown) so sweeps keep their no-crash guarantee, but
        // the message flags it as unexpected for triage.
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message =
            std::string("unexpected replay exception: ") + e.what();
        return result;
    }

    classifyOutcome(rec, opts, result);
    return result;
}

ReplayCheckResult
checkedParallelReplay(const Recording &rec,
                      const ParallelReplayOptions &popts,
                      const ReplayCheckOptions &opts)
{
    ReplayCheckResult result;

    const std::optional<Workload> workload = prepareWorkload(rec, result);
    if (!workload)
        return result;

    RaceDetector detector;
    ParallelReplayOptions eff = popts;
    if (opts.detectRaces)
        eff.observer = &detector;

    try {
        ParallelReplayer replayer(eff);
        result.outcome = replayer.replay(rec, *workload);
        result.replayRan = true;
        if (opts.detectRaces)
            result.races = detector.report();
    } catch (const ReplayError &e) {
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message = e.what();
        return result;
    } catch (const std::exception &e) {
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message =
            std::string("unexpected parallel-replay exception: ")
            + e.what();
        return result;
    }

    classifyOutcome(rec, opts, result);
    return result;
}

} // namespace delorean
