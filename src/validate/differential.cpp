#include "validate/differential.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <functional>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "core/recorder.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{

namespace
{

/** The four (mode, PI-flavor) configurations of one job. */
std::vector<std::pair<std::string, ModeConfig>>
runConfigs(const DifferentialJob &job)
{
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = job.stratifyChunksPerProc;
    return {
        {"order-and-size", ModeConfig::orderAndSize()},
        {"order-only", ModeConfig::orderOnly()},
        {"order-only-strat", strat},
        {"picolog", ModeConfig::picoLog()},
    };
}

/**
 * Periodic interval fingerprints of recorded vs replayed streams
 * agree at every boundary. Stratified logs are compared one
 * processor stream at a time (their global interleaving may legally
 * differ between record and replay).
 */
bool
intervalFingerprintsAgree(const ExecutionFingerprint &recorded,
                          const ExecutionFingerprint &replayed,
                          bool stratified, std::uint64_t period)
{
    const auto streamsAgree = [period](const ExecutionFingerprint &a,
                                       const ExecutionFingerprint &b) {
        return IntervalFingerprints::build(a, period).prefixes
               == IntervalFingerprints::build(b, period).prefixes;
    };
    if (!stratified)
        return streamsAgree(recorded, replayed);
    const std::size_t n = std::max(recorded.perProcAcc.size(),
                                   replayed.perProcAcc.size());
    for (std::size_t p = 0; p < n; ++p) {
        ExecutionFingerprint a, b;
        a.commits = recorded.procStream(static_cast<ProcId>(p));
        b.commits = replayed.procStream(static_cast<ProcId>(p));
        if (!streamsAgree(a, b))
            return false;
    }
    return true;
}

/**
 * A parallel replay leg agrees with the serial replay: matching
 * fingerprint (exact; per-processor streams when stratified) and
 * matching periodic interval fingerprints.
 */
bool
agreesWithSerial(const ExecutionFingerprint &serial,
                 const ExecutionFingerprint &parallel, bool stratified,
                 std::uint64_t period)
{
    const bool states = stratified ? parallel.matchesPerProc(serial)
                                   : parallel.matchesExact(serial);
    return states
           && intervalFingerprintsAgree(serial, parallel, stratified,
                                        period);
}

/** Record + round-trip + checked replay of one configuration. */
DifferentialRun
runOne(const DifferentialJob &job, const std::string &label,
       const ModeConfig &mode)
{
    DifferentialRun run;
    run.label = label;
    run.mode = mode;
    run.stratified = mode.stratifyChunksPerProc != 0;

    MachineConfig machine;
    machine.numProcs = job.numProcs;
    machine.bulk.numArbiters = job.shards;

    Recording loaded;
    try {
        Workload workload(job.app, job.numProcs, job.workloadSeed,
                          WorkloadScale{job.scalePercent});
        const Recording rec =
            Recorder(mode, machine)
                .record(workload, job.recordEnvSeed, true, {},
                        job.checkpointPeriod);

        // Serialize, reload, re-serialize: the replay below runs on
        // the *loaded* copy so the wire format itself is under test.
        std::ostringstream first;
        saveRecording(rec, first);
        std::istringstream in(first.str());
        loaded = loadRecording(in);
        std::ostringstream second;
        saveRecording(loaded, second);
        run.roundTripIdentical = first.str() == second.str();
        run.recorded = true;

        // Archive legs: segment the recording at its checkpoints,
        // read it back whole (byte identity), then replay the
        // interval from every checkpoint off the archive alone.
        if (job.checkpointPeriod != 0) {
            std::ostringstream abuf;
            writeArchive(rec, abuf);
            const std::string abytes = std::move(abuf).str();

            // The parallel segment codec must be invisible in the
            // container: re-archive with a forced serial codec and a
            // forced 4-worker codec and demand byte identity.
            std::ostringstream aserial;
            writeArchive(rec, aserial, ArchiveIoOptions{1, true});
            std::ostringstream apar;
            writeArchive(rec, apar, ArchiveIoOptions{4, true});
            run.archiveParallelWriteIdentical =
                std::move(aserial).str() == abytes
                && std::move(apar).str() == abytes;

            const ArchiveReader reader = ArchiveReader::fromBytes(
                {abytes.begin(), abytes.end()});
            run.archiveCheckpoints = reader.checkpointCount();
            std::ostringstream third;
            saveRecording(reader.readAll(), third);
            run.archiveRoundTripIdentical =
                first.str() == third.str();

            run.archiveIntervalsOk = true;
            Workload replay_workload(job.app, job.numProcs,
                                     job.workloadSeed,
                                     WorkloadScale{job.scalePercent});
            Replayer replayer;
            ReplayPerturbation perturb;
            if (job.perturbReplay) {
                perturb.enabled = true;
                perturb.seed = job.replayEnvSeed * 31 + 7;
            }
            for (std::size_t i = 0; i < reader.checkpointCount();
                 ++i) {
                const Recording view = reader.readInterval(i);
                const ReplayOutcome out = replayer.replayInterval(
                    view, 0, replay_workload, job.replayEnvSeed + i,
                    perturb);
                const bool match = run.stratified
                                       ? out.deterministicPerProc
                                       : out.deterministicExact;
                if (!match) {
                    run.archiveIntervalsOk = false;
                    break;
                }
            }

            // Ring legs. First a full-budget ring: nothing evicted,
            // so readAll() must be byte-identical to the recording
            // and every per-checkpoint view byte-identical to the
            // batch archive's view of the same interval (the two
            // containers share their slice builders; this pins it).
            // mkdtemp, not a name derived from the job: concurrent
            // checkers (ctest runs several binaries at once) may run
            // the identical job and must not share a scratch dir.
            namespace fs = std::filesystem;
            std::string tmpl =
                (fs::temp_directory_path() / "delorean-diff-ring-")
                    .string()
                + "XXXXXX";
            if (!mkdtemp(tmpl.data()))
                throw std::runtime_error(
                    "cannot create ring scratch dir " + tmpl);
            const fs::path ring_dir = tmpl;
            struct ScratchDir
            {
                fs::path p;
                ~ScratchDir()
                {
                    std::error_code ec;
                    fs::remove_all(p, ec);
                }
            } scratch{ring_dir};
            RingOptions ropts;
            ropts.budgetBytes = ~std::uint64_t{0} >> 1;
            ropts.checkpointPeriod = job.checkpointPeriod;
            const RingWriterStats full_stats =
                writeRing(rec, ring_dir.string(), ropts);
            const RingArchiveReader ring =
                RingArchiveReader::open(ring_dir.string());

            std::ostringstream whole;
            saveRecording(ring.readAll(), whole);
            run.ringRoundTripIdentical =
                std::move(whole).str() == first.str()
                && ring.checkpointCount() == reader.checkpointCount();
            run.ringIntervalsOk = run.ringRoundTripIdentical;
            for (std::size_t i = 0;
                 run.ringRoundTripIdentical
                 && i < ring.checkpointCount();
                 ++i) {
                std::ostringstream rview, aview;
                saveRecording(ring.readInterval(i), rview);
                saveRecording(reader.readInterval(i), aview);
                if (std::move(rview).str() != std::move(aview).str())
                    run.ringRoundTripIdentical = false;
            }
            if (run.ringIntervalsOk && ring.checkpointCount() > 1) {
                // One bounded replay straight off the ring; the
                // byte-identity above transfers the archive's
                // per-checkpoint replay coverage to the rest.
                const std::size_t mid =
                    (ring.checkpointCount() - 1) / 2;
                const Recording view = ring.readInterval(mid, mid + 1);
                const ReplayOutcome out = replayer.replayInterval(
                    view, 0, replay_workload, job.replayEnvSeed + mid,
                    perturb, &view.checkpoints[1]);
                run.ringIntervalsOk = run.stratified
                                          ? out.deterministicPerProc
                                          : out.deterministicExact;
            }

            // Then a tight-budget ring sized to roughly three
            // segments: eviction is actually exercised (whenever the
            // run cut more than three), and the retained window's
            // views must still byte-match the archive's over the same
            // GCC intervals.
            fs::remove_all(ring_dir);
            RingOptions topts = ropts;
            topts.budgetBytes = std::max<std::uint64_t>(
                1, 3 * (full_stats.liveBytes
                        / std::max<std::uint64_t>(
                            1, full_stats.segmentsCut)));
            const RingWriterStats tight_stats =
                writeRing(rec, ring_dir.string(), topts);
            run.ringEvicted = tight_stats.segmentsEvicted;
            const RingArchiveReader tight =
                RingArchiveReader::open(ring_dir.string());
            const std::vector<std::uint64_t> all_gccs =
                reader.checkpointGccs();
            const std::vector<std::uint64_t> kept_gccs =
                tight.checkpointGccs();
            const auto base = std::search(
                all_gccs.begin(), all_gccs.end(), kept_gccs.begin(),
                kept_gccs.end());
            // A run short enough to cut zero checkpoints has nothing
            // to window-match (both sides empty, search() == end());
            // a ring that kept none while the archive has some is a
            // real failure.
            run.ringEvictedWindowOk =
                (kept_gccs.empty() ? all_gccs.empty()
                                   : base != all_gccs.end())
                && tight_stats.worstStartLag <= topts.resolvedLag();
            const std::size_t off = static_cast<std::size_t>(
                base - all_gccs.begin());
            for (std::size_t i = 0;
                 run.ringEvictedWindowOk
                 && i + 1 < tight.checkpointCount();
                 ++i) {
                std::ostringstream rview, aview;
                saveRecording(tight.readInterval(i, i + 1), rview);
                saveRecording(reader.readInterval(off + i, off + i + 1),
                              aview);
                if (std::move(rview).str() != std::move(aview).str())
                    run.ringEvictedWindowOk = false;
            }
        }
    } catch (const std::exception &e) {
        run.error = e.what();
        return run;
    }

    run.sizes = loaded.logSizes();
    run.fingerprint = loaded.fingerprint;

    ReplayCheckOptions opts;
    opts.envSeed = job.replayEnvSeed;
    opts.localizerPeriod = job.localizerPeriod;
    if (job.perturbReplay) {
        opts.perturb.enabled = true;
        opts.perturb.seed = job.replayEnvSeed * 0x9E3779B97F4A7C15ull
                            + job.workloadSeed;
    }
    const ReplayCheckResult check = checkedReplay(loaded, opts);
    run.replayOk = check.ok;
    run.report = check.report;
    if (check.replayRan)
        run.intervalsMatch = intervalFingerprintsAgree(
            loaded.fingerprint, check.outcome.fingerprint,
            run.stratified, job.localizerPeriod);
    if (!check.replayRan)
        return run;

    // Leg 2: same engine, lookahead-window arbiter. Chunks retire in
    // logged order with up to parallelWindow commit slots overlapped;
    // the architectural outcome must match the serial replay.
    ReplayCheckOptions wopts = opts;
    wopts.replayWindow = job.parallelWindow;
    const ReplayCheckResult windowed = checkedReplay(loaded, wopts);
    run.windowedReplayOk = windowed.ok;
    if (!windowed.ok)
        run.parallelReport = windowed.report;
    if (windowed.replayRan)
        run.windowedMatchesSerial = agreesWithSerial(
            check.outcome.fingerprint, windowed.outcome.fingerprint,
            run.stratified, job.localizerPeriod);

    // Leg 3: host-parallel chunk bodies on the WorkerPool.
    ParallelReplayOptions popts;
    popts.window = job.parallelWindow;
    popts.jobs = job.parallelJobs;
    ReplayCheckOptions fopts;
    fopts.localizerPeriod = job.localizerPeriod;
    const ReplayCheckResult par =
        checkedParallelReplay(loaded, popts, fopts);
    run.parallelReplayOk = par.ok;
    if (!par.ok)
        run.parallelReport = par.report;
    if (par.replayRan)
        run.parallelMatchesSerial = agreesWithSerial(
            check.outcome.fingerprint, par.outcome.fingerprint,
            run.stratified, job.localizerPeriod);

    // Legs 4+5 (v2 partial-order recordings only): pin the serial
    // engine and the chunk-parallel replayer to the logged total
    // order. Both legs above retired under the recorded partial
    // order; the total-order replays must describe the byte-identical
    // execution, or the relaxation changed observable behavior.
    if (loaded.pi.hasMasks()) {
        run.partialOrder = true;
        ReplayCheckOptions topts = opts;
        topts.honorPartialOrder = false;
        const ReplayCheckResult total = checkedReplay(loaded, topts);
        ParallelReplayOptions tpopts = popts;
        tpopts.honorPartialOrder = false;
        const ReplayCheckResult ptotal =
            checkedParallelReplay(loaded, tpopts, fopts);
        run.totalOrderReplayOk = total.ok && ptotal.ok;
        if (!total.ok)
            run.parallelReport = total.report;
        else if (!ptotal.ok)
            run.parallelReport = ptotal.report;
        run.partialMatchesTotal =
            total.replayRan && ptotal.replayRan
            && agreesWithSerial(check.outcome.fingerprint,
                                total.outcome.fingerprint, false,
                                job.localizerPeriod)
            && agreesWithSerial(check.outcome.fingerprint,
                                ptotal.outcome.fingerprint, false,
                                job.localizerPeriod);
    }
    return run;
}

} // namespace

const DifferentialRun *
DifferentialResult::findRun(const std::string &label) const
{
    for (const DifferentialRun &r : runs)
        if (r.label == label)
            return &r;
    return nullptr;
}

std::string
DifferentialResult::describe() const
{
    std::ostringstream out;
    out << "differential " << job.app << " p=" << job.numProcs
        << " scale=" << job.scalePercent << "%: "
        << (ok() ? "OK" : "FAIL");
    for (const DifferentialRun &r : runs) {
        out << "\n  " << r.label << ": ";
        if (!r.recorded) {
            out << "record failed: " << r.error;
            continue;
        }
        out << "pi=" << r.sizes.pi.rawBits << "b cs="
            << r.sizes.cs.rawBits << "b commits="
            << r.fingerprint.commits.size() << " replay="
            << (r.replayOk ? "ok" : "DIVERGED") << " windowed="
            << (r.windowedReplayOk && r.windowedMatchesSerial
                    ? "ok"
                    : "DIVERGED")
            << " parallel="
            << (r.parallelReplayOk && r.parallelMatchesSerial
                    ? "ok"
                    : "DIVERGED");
        if (r.partialOrder)
            out << " po-vs-total="
                << (r.totalOrderReplayOk && r.partialMatchesTotal
                        ? "ok"
                        : "DIVERGED");
        if (r.archiveCheckpoints != 0 || r.archiveRoundTripIdentical)
            out << " archive="
                << (r.archiveRoundTripIdentical && r.archiveIntervalsOk
                            && r.archiveParallelWriteIdentical
                        ? "ok"
                        : "DIVERGED")
                << "(" << r.archiveCheckpoints << " ckpts)"
                << " ring="
                << (r.ringRoundTripIdentical && r.ringIntervalsOk
                            && r.ringEvictedWindowOk
                        ? "ok"
                        : "DIVERGED")
                << "(" << r.ringEvicted << " evicted)";
        out << (r.roundTripIdentical ? "" : " round-trip=NOT-IDENTICAL");
        if (!r.replayOk)
            out << "\n    " << r.report.describe();
        else if (!r.windowedReplayOk || !r.parallelReplayOk)
            out << "\n    " << r.parallelReport.describe();
    }
    for (const std::string &f : failures)
        out << "\n  cross-check: " << f;
    return out.str();
}

DifferentialResult
DifferentialChecker::check(const DifferentialJob &job) const
{
    DifferentialResult result;
    result.job = job;

    const auto configs = runConfigs(job);
    std::vector<std::function<DifferentialRun()>> tasks;
    tasks.reserve(configs.size());
    for (const auto &[label, mode] : configs) {
        tasks.push_back([&job, label = label, mode = mode] {
            return runOne(job, label, mode);
        });
    }
    result.runs = runner_.map(std::move(tasks));

    auto fail = [&result](std::string msg) {
        result.failures.push_back(std::move(msg));
    };

    // Per-run requirements first: each recording must survive the
    // wire format and replay deterministically under perturbation.
    for (const DifferentialRun &r : result.runs) {
        if (!r.recorded) {
            fail(r.label + ": record/serialize failed: " + r.error);
            continue;
        }
        if (!r.roundTripIdentical)
            fail(r.label + ": save/load/save not byte-identical");
        if (!r.replayOk) {
            fail(r.label + ": replay diverged ("
                 + divergenceKindName(r.report.kind) + ": "
                 + r.report.message + ")");
            continue;
        }
        if (!r.intervalsMatch)
            fail(r.label + ": interval fingerprints disagree with a "
                 "matching final fingerprint (localizer invariant "
                 "broken)");
        if (!r.windowedReplayOk)
            fail(r.label + ": windowed replay diverged ("
                 + divergenceKindName(r.parallelReport.kind) + ": "
                 + r.parallelReport.message + ")");
        else if (!r.windowedMatchesSerial)
            fail(r.label + ": windowed replay fingerprint differs "
                 "from serial replay");
        if (!r.parallelReplayOk)
            fail(r.label + ": chunk-parallel replay diverged ("
                 + divergenceKindName(r.parallelReport.kind) + ": "
                 + r.parallelReport.message + ")");
        else if (!r.parallelMatchesSerial)
            fail(r.label + ": chunk-parallel replay fingerprint "
                 "differs from serial replay");
        if (job.shards > 1 && !r.stratified
            && r.mode.mode != ExecMode::kPicoLog && !r.partialOrder)
            fail(r.label + ": sharded record run produced no PI "
                 "shard masks");
        if (r.partialOrder) {
            if (!r.totalOrderReplayOk)
                fail(r.label + ": total-order replay of the "
                     "partial-order recording diverged ("
                     + divergenceKindName(r.parallelReport.kind) + ": "
                     + r.parallelReport.message + ")");
            else if (!r.partialMatchesTotal)
                fail(r.label + ": partial-order and total-order "
                     "replays produced different fingerprints");
        }
        if (job.checkpointPeriod != 0) {
            if (!r.archiveRoundTripIdentical)
                fail(r.label + ": archive readAll() not "
                     "byte-identical to the recording");
            if (!r.archiveIntervalsOk)
                fail(r.label + ": interval replay off the archive "
                     "diverged from the recording");
            if (!r.archiveParallelWriteIdentical)
                fail(r.label + ": parallel-codec archive bytes differ "
                     "from the serially written container");
            if (!r.ringRoundTripIdentical)
                fail(r.label + ": ring views not byte-identical to "
                     "the batch archive's");
            if (!r.ringIntervalsOk)
                fail(r.label + ": bounded interval replay off the "
                     "ring diverged from the recording");
            if (!r.ringEvictedWindowOk)
                fail(r.label + ": evicting ring's retained window "
                     "disagrees with the batch archive");
        }
    }
    if (!result.failures.empty())
        return result;

    const DifferentialRun &oands = *result.findRun("order-and-size");
    const DifferentialRun &oo = *result.findRun("order-only");
    const DifferentialRun &strat = *result.findRun("order-only-strat");
    const DifferentialRun &pico = *result.findRun("picolog");

    // Stratification is a PI-log re-encoding, not a different
    // execution: flat and stratified OrderOnly must match exactly.
    if (!strat.fingerprint.matchesExact(oo.fingerprint))
        fail("order-only-strat fingerprint differs from order-only "
             "(stratification changed the execution)");

    // Paper log-size orderings (see header for why PI+CS, not PI).
    if (pico.sizes.pi.rawBits != 0)
        fail("picolog recorded " + std::to_string(pico.sizes.pi.rawBits)
             + " PI bits; the predefined commit order needs none");
    if (strat.sizes.pi.rawBits > oo.sizes.pi.rawBits)
        fail("stratified PI log (" + std::to_string(strat.sizes.pi.rawBits)
             + "b) larger than flat OrderOnly PI log ("
             + std::to_string(oo.sizes.pi.rawBits) + "b)");
    if (oo.totalLogBits() > oands.totalLogBits())
        fail("OrderOnly combined log (" + std::to_string(oo.totalLogBits())
             + "b) larger than Order&Size's ("
             + std::to_string(oands.totalLogBits()) + "b)");
    if (pico.totalLogBits() > oo.totalLogBits())
        fail("PicoLog combined log (" + std::to_string(pico.totalLogBits())
             + "b) larger than OrderOnly's ("
             + std::to_string(oo.totalLogBits()) + "b)");
    return result;
}

std::vector<DifferentialResult>
DifferentialChecker::checkAllApps(const DifferentialJob &base) const
{
    // Apps run sequentially; each check() already fans its four runs
    // across the worker pool.
    std::vector<DifferentialResult> results;
    for (const std::string &app : AppTable::splash2Names()) {
        DifferentialJob job = base;
        job.app = app;
        results.push_back(check(job));
    }
    return results;
}

} // namespace delorean
