#include "validate/divergence.hpp"

#include <sstream>

namespace delorean
{

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::kNone:
        return "none";
      case DivergenceKind::kFormatError:
        return "format-error";
      case DivergenceKind::kWorkloadError:
        return "workload-error";
      case DivergenceKind::kReplayError:
        return "replay-error";
      case DivergenceKind::kCommitDivergence:
        return "commit-divergence";
      case DivergenceKind::kMissingCommits:
        return "missing-commits";
      case DivergenceKind::kExtraCommits:
        return "extra-commits";
      case DivergenceKind::kStateDivergence:
        return "state-divergence";
    }
    return "unknown";
}

namespace
{

void
describeCommit(std::ostringstream &out, const CommitRecord &c)
{
    out << "proc " << c.proc << " chunk " << c.seq << " size "
        << c.size << " acc 0x" << std::hex << c.accAfter << std::dec;
}

} // namespace

std::string
DivergenceReport::describe() const
{
    std::ostringstream out;
    out << "divergence: " << divergenceKindName(kind);
    if (ok()) {
        out << " (replay deterministic)";
        return out.str();
    }
    if (!message.empty())
        out << "\n  " << message;
    if (haveCommits) {
        out << "\n  first divergent chunk: global commit #"
            << commitIndex << ", proc " << proc << ", local chunk "
            << seq;
        if (kind != DivergenceKind::kExtraCommits) {
            out << "\n  recorded: ";
            describeCommit(out, expected);
        }
        if (kind != DivergenceKind::kMissingCommits) {
            out << "\n  replayed: ";
            describeCommit(out, actual);
        }
    }
    if (!logName.empty()) {
        out << "\n  log record: " << logName;
        if (logIndex >= 0)
            out << "[" << logIndex << "]";
    }
    if (probes)
        out << "\n  localized with " << probes
            << " interval-fingerprint probes";
    return out.str();
}

} // namespace delorean
