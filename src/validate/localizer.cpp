#include "validate/localizer.hpp"

#include <algorithm>
#include <string>

namespace delorean
{

namespace
{

/** Fill @p r with the ways the final states differ. */
void
stateDivergence(const ExecutionFingerprint &a,
                const ExecutionFingerprint &b, DivergenceReport &r)
{
    r.kind = DivergenceKind::kStateDivergence;
    std::string what;
    if (a.finalMemHash != b.finalMemHash)
        what += "final memory hash differs; ";
    const std::size_t n =
        std::min(a.perProcAcc.size(), b.perProcAcc.size());
    for (std::size_t p = 0; p < n; ++p) {
        if (a.perProcAcc[p] != b.perProcAcc[p]) {
            what += "proc " + std::to_string(p) + " accumulator differs; ";
            if (r.proc == kDmaProcId)
                r.proc = static_cast<ProcId>(p);
        }
        if (a.perProcRetired[p] != b.perProcRetired[p]) {
            what += "proc " + std::to_string(p)
                    + " retired count differs; ";
            if (r.proc == kDmaProcId)
                r.proc = static_cast<ProcId>(p);
        }
    }
    if (a.perProcAcc.size() != b.perProcAcc.size())
        what += "per-proc vector sizes differ; ";
    if (what.empty())
        what = "states differ";
    r.message = "commit streams match but " + what;
}

/**
 * Binary-search the interval boundaries of two commit streams for
 * the first divergent element; fills commitIndex/expected/actual and
 * the kind. Assumes the streams differ.
 */
void
commitDivergence(const ExecutionFingerprint &a,
                 const ExecutionFingerprint &b,
                 const LocalizerOptions &opts, DivergenceReport &r)
{
    const IntervalFingerprints fa =
        IntervalFingerprints::build(a, opts.period);
    const IntervalFingerprints fb =
        IntervalFingerprints::build(b, opts.period);

    std::uint64_t probes = 0;
    const auto agree = [&](std::uint64_t k) {
        ++probes;
        return fa.coveredAt(k) == fb.coveredAt(k)
               && fa.prefixAt(k) == fb.prefixAt(k);
    };

    // Largest boundary where the prefixes still agree. Prefix
    // equality is monotone in k (each boundary hash is a function of
    // exactly the commits before it), so bisection is sound.
    std::uint64_t lo = 0;
    std::uint64_t hi =
        std::max(fa.boundaryCount(), fb.boundaryCount()) - 1;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo + 1) / 2;
        if (agree(mid))
            lo = mid;
        else
            hi = mid - 1;
    }

    // Scan only the one divergent interval.
    const std::uint64_t limit =
        std::min(a.commits.size(), b.commits.size());
    std::uint64_t i = fa.coveredAt(lo);
    while (i < limit && a.commits[i] == b.commits[i])
        ++i;

    r.probes = probes;
    r.commitIndex = i;
    r.haveCommits = true;
    if (i < limit) {
        r.kind = DivergenceKind::kCommitDivergence;
        r.expected = a.commits[i];
        r.actual = b.commits[i];
        r.proc = a.commits[i].proc;
        r.seq = a.commits[i].seq;
        r.message = "replayed commit #" + std::to_string(i)
                    + " differs from the recording";
    } else if (a.commits.size() > limit) {
        r.kind = DivergenceKind::kMissingCommits;
        r.expected = a.commits[i];
        r.proc = a.commits[i].proc;
        r.seq = a.commits[i].seq;
        r.message = "replay stopped after " + std::to_string(limit)
                    + " commits; the recording has "
                    + std::to_string(a.commits.size());
    } else {
        r.kind = DivergenceKind::kExtraCommits;
        r.actual = b.commits[i];
        r.proc = b.commits[i].proc;
        r.seq = b.commits[i].seq;
        r.message = "replay committed past the recorded stream ("
                    + std::to_string(b.commits.size()) + " vs "
                    + std::to_string(a.commits.size()) + " commits)";
    }
}

/**
 * Attribute a divergent commit to the log record that drove it.
 * @p stream_index is the commit's index: global for flat-log modes,
 * within proc @p proc's stream for stratified recordings.
 */
void
attributeLogRecord(const Recording &rec, DivergenceReport &r,
                   std::uint64_t stream_index)
{
    if (rec.stratified()) {
        // Find the stratum containing proc's (stream_index+1)-th
        // commit by accumulating that proc's per-stratum counters.
        std::uint64_t seen = 0;
        for (std::size_t s = 0; s < rec.strata.size(); ++s) {
            const Stratum &st = rec.strata[s];
            if (st.isDma || r.proc >= st.counts.size())
                continue;
            seen += st.counts[r.proc];
            if (seen > stream_index) {
                r.logName = "strata";
                r.logIndex = static_cast<std::int64_t>(s);
                return;
            }
        }
        r.logName = "strata";
        r.logIndex = -1;
        return;
    }

    if (rec.mode.mode == ExecMode::kPicoLog) {
        // No PI log: the commit order is predefined, so the only log
        // records steering chunk formation are CS truncations.
        if (r.proc < rec.cs.size()) {
            const auto &entries = rec.cs[r.proc].entries();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].seq == r.seq) {
                    r.logName =
                        "cs[" + std::to_string(r.proc) + "]";
                    r.logIndex = static_cast<std::int64_t>(i);
                    return;
                }
            }
        }
        r.logName = "(predefined order)";
        r.logIndex = -1;
        return;
    }

    // Flat PI log: the divergent commit is the (stream_index+1)-th
    // non-DMA entry (the fingerprint excludes DMA commits).
    std::uint64_t commits_seen = 0;
    for (std::size_t i = 0; i < rec.pi.entryCount(); ++i) {
        if (rec.pi.entryAt(i) == kDmaProcId)
            continue;
        if (commits_seen == stream_index) {
            r.logName = "pi";
            r.logIndex = static_cast<std::int64_t>(i);
            return;
        }
        ++commits_seen;
    }
    r.logName = "pi";
    r.logIndex = -1; // divergence beyond the log's end
}

/** Commit stream of one processor, as a standalone fingerprint. */
ExecutionFingerprint
procOnly(const ExecutionFingerprint &fp, ProcId p)
{
    ExecutionFingerprint out;
    out.commits = fp.procStream(p);
    return out;
}

} // namespace

DivergenceReport
localizeDivergence(const ExecutionFingerprint &recorded,
                   const ExecutionFingerprint &replayed,
                   const Recording *rec, const LocalizerOptions &opts)
{
    DivergenceReport r;

    if (rec && rec->stratified()) {
        // Stratified replay may legally reorder commits across
        // processors within a stratum, so the global interleaving is
        // not canonical: compare per-processor streams instead.
        if (recorded.matchesPerProc(replayed))
            return r;
        const unsigned n = static_cast<unsigned>(
            std::max(recorded.perProcAcc.size(),
                     replayed.perProcAcc.size()));
        for (ProcId p = 0; p < n; ++p) {
            const ExecutionFingerprint pa = procOnly(recorded, p);
            const ExecutionFingerprint pb = procOnly(replayed, p);
            if (pa.commits == pb.commits)
                continue;
            commitDivergence(pa, pb, opts, r);
            r.proc = p; // commitIndex is within p's stream
            r.message = "proc " + std::to_string(p)
                        + " commit stream: " + r.message;
            attributeLogRecord(*rec, r, r.commitIndex);
            return r;
        }
        stateDivergence(recorded, replayed, r);
        return r;
    }

    if (recorded.commits != replayed.commits) {
        commitDivergence(recorded, replayed, opts, r);
        if (rec)
            attributeLogRecord(*rec, r, r.commitIndex);
        return r;
    }
    if (!recorded.statesMatch(replayed)) {
        stateDivergence(recorded, replayed, r);
        return r;
    }
    return r; // kNone: fingerprints match
}

} // namespace delorean
