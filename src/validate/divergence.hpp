/**
 * @file
 * DivergenceReport: the structured answer to "did replay reproduce
 * the recording, and if not, where did it first go wrong?"
 *
 * Every path through the validation subsystem — cross-mode
 * differential checks, fault-injection sweeps, plain checked replays —
 * terminates in one of these. A report either says kNone (replay
 * deterministic) or names the failure class, the first divergent
 * chunk (processor, local chunk number, global commit index) and the
 * log record that produced it, so a divergence is actionable rather
 * than a bare boolean.
 */

#ifndef DELOREAN_VALIDATE_DIVERGENCE_HPP_
#define DELOREAN_VALIDATE_DIVERGENCE_HPP_

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/fingerprint.hpp"

namespace delorean
{

/** Failure classes a validation run can end in. */
enum class DivergenceKind : std::uint8_t
{
    kNone,             ///< replay reproduced the recording
    kFormatError,      ///< recording rejected before replay started
    kWorkloadError,    ///< workload could not be reconstructed
    kReplayError,      ///< replay raised a typed error (log ran dry,
                       ///< order violated, stall, budget)
    kCommitDivergence, ///< a commit differs from the recorded one
    kMissingCommits,   ///< replay committed a prefix, then stopped
    kExtraCommits,     ///< replay committed past the recorded stream
    kStateDivergence,  ///< same commits, different final state
};

/** Short printable name of a divergence kind. */
const char *divergenceKindName(DivergenceKind kind);

/** Structured outcome of a checked replay. */
struct DivergenceReport
{
    DivergenceKind kind = DivergenceKind::kNone;

    /// Human-readable explanation (exception text for error kinds).
    std::string message;

    // --- first divergent chunk (commit-divergence kinds) ----------------
    /// Index into the recorded global commit stream.
    std::uint64_t commitIndex = 0;
    /// Processor of the divergent chunk (kDmaProcId when unknown).
    ProcId proc = kDmaProcId;
    /// Its processor-local logical chunk number.
    ChunkSeq seq = 0;
    CommitRecord expected{}; ///< what the recording says
    CommitRecord actual{};   ///< what replay produced
    /// True when expected/actual (and commitIndex/proc/seq) are set.
    bool haveCommits = false;

    // --- log attribution --------------------------------------------------
    /// Which log drove the divergent commit: "pi", "strata",
    /// "cs[<proc>]" or "(predefined order)" for PicoLog.
    std::string logName;
    /// Index of the record in that log; -1 when not applicable.
    std::int64_t logIndex = -1;

    /// Interval-boundary comparisons the localizer's binary search
    /// used (observability: O(log n), not O(n)).
    std::uint64_t probes = 0;

    bool ok() const { return kind == DivergenceKind::kNone; }

    /** Multi-line human-readable rendering. */
    std::string describe() const;
};

} // namespace delorean

#endif // DELOREAN_VALIDATE_DIVERGENCE_HPP_
