/**
 * @file
 * Log fault injector: mutate serialized recordings, assert grace.
 *
 * rr-style robustness testing for the replay pipeline. A recording is
 * serialized, a deterministic mutation is applied to the byte stream
 * (bit flips, truncation at an arbitrary offset, 8-byte record-word
 * duplication or reordering, header corruption), and the mutant is
 * pushed through loadRecording() + checkedReplay(). The acceptable
 * outcomes are exactly:
 *
 *   - the loader rejects it with a RecordingFormatError,
 *   - the replay reproduces the recording (mutation hit dead bytes,
 *     e.g. a statistics field),
 *   - checkedReplay returns a structured DivergenceReport (typed
 *     replay error, or a localized divergence).
 *
 * Crashes, hangs (fenced by the replay event budget) and any other
 * exception type are sweep failures, counted as kUnexpected.
 */

#ifndef DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_
#define DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recording.hpp"
#include "store/ring.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{

/** Mutation classes applied to the serialized byte stream. */
enum class MutationKind : std::uint8_t
{
    kBitFlip,       ///< flip 1-8 random bits anywhere
    kTruncate,      ///< cut the stream at a random byte offset
    kDuplicateWord, ///< duplicate a random aligned 8-byte record word
    kReorderWords,  ///< swap two random aligned 8-byte record words
    kHeaderCorrupt, ///< scribble on the magic/version/config header
    // Partial-order (v2 shard mask) mutations. On a total-order
    // recording — no mask section — these return the stream unchanged,
    // which classifies as kReplayedIdentically.
    kEdgeDrop,      ///< clear one shard bit in one entry's mask
    kShardSeqSwap,  ///< swap the shard masks of two PI entries
    kDanglingShard, ///< set a shard bit outside the arbiter hierarchy
};

constexpr unsigned kMutationKinds = 8;

/** Short printable name of a mutation kind. */
const char *mutationKindName(MutationKind kind);

/**
 * Deterministically mutate @p bytes (seed => same mutant). The result
 * may be any length, including empty.
 */
std::string mutateSerialized(const std::string &bytes,
                             MutationKind kind, std::uint64_t seed);

/** How one mutant fared. */
enum class MutantOutcome : std::uint8_t
{
    kRejectedAtLoad,    ///< RecordingFormatError from the loader
    kReplayedIdentically, ///< mutation did not change replay-relevant bytes
    kDivergenceDetected, ///< structured report with a localized chunk
    kReplayErrorReported, ///< typed ReplayError converted to a report
    kUnexpected,        ///< anything else — a sweep failure
};

/** Short printable name of a mutant outcome. */
const char *mutantOutcomeName(MutantOutcome outcome);

/** One mutant's result. */
struct MutantResult
{
    MutationKind kind = MutationKind::kBitFlip;
    std::uint64_t seed = 0;
    MutantOutcome outcome = MutantOutcome::kUnexpected;
    DivergenceReport report;
};

/** Aggregate of a fault-injection sweep. */
struct FaultSweepSummary
{
    std::uint64_t total = 0;
    std::uint64_t rejectedAtLoad = 0;
    std::uint64_t replayedIdentically = 0;
    std::uint64_t divergenceDetected = 0;
    std::uint64_t replayErrorReported = 0;
    std::uint64_t unexpected = 0;
    /// The failing mutants (empty when the sweep is clean).
    std::vector<MutantResult> unexpectedResults;

    bool ok() const { return unexpected == 0; }
    void add(const MutantResult &r);
    std::string describe() const;
};

/**
 * Run one mutant: serialize-side mutation of @p serialized, then
 * load + checked replay with @p opts.
 */
MutantResult runMutant(const std::string &serialized, MutationKind kind,
                       std::uint64_t seed,
                       const ReplayCheckOptions &opts = {});

/**
 * Sweep @p mutants_per_kind mutants of every kind over @p rec.
 * Mutation seeds derive from @p seed0. Runs on the calling thread;
 * callers wanting parallelism fan runMutant() out themselves (see
 * bench/validate_sweep.cpp).
 */
FaultSweepSummary runFaultSweep(const Recording &rec,
                                unsigned mutants_per_kind,
                                std::uint64_t seed0,
                                const ReplayCheckOptions &opts = {});

// ----- archive-level fault injection (src/store container) ------------------

/**
 * Mutation classes applied to an archive byte stream. Unlike the
 * serialized-recording mutations above, these target the container's
 * structural layers: compressed segment payloads, the footer, and the
 * footer's semantic index (where the CRC is *valid* but the indexed
 * metadata lies, so the reader's cross-checks — not the checksum —
 * must catch it).
 */
enum class ArchiveMutationKind : std::uint8_t
{
    kSegmentBitFlip, ///< flip 1-8 bits inside one segment's payload
    kFooterTruncate, ///< cut the stream inside the footer or trailer
    kIndexCorrupt,   ///< scribble on the decompressed footer, then
                     ///< recompress and rebuild a *valid* trailer
};

constexpr unsigned kArchiveMutationKinds = 3;

/** Short printable name of an archive mutation kind. */
const char *archiveMutationKindName(ArchiveMutationKind kind);

/**
 * Deterministically mutate archive @p bytes (seed => same mutant).
 * @p bytes must be a well-formed archive (the mutator reads its own
 * index to aim at the right region); malformed input falls back to a
 * plain bit flip.
 */
std::vector<std::uint8_t>
mutateArchive(const std::vector<std::uint8_t> &bytes,
              ArchiveMutationKind kind, std::uint64_t seed);

/** One archive mutant's result. */
struct ArchiveMutantResult
{
    ArchiveMutationKind kind = ArchiveMutationKind::kSegmentBitFlip;
    std::uint64_t seed = 0;
    MutantOutcome outcome = MutantOutcome::kUnexpected;
    /// True when the rejection was a typed ArchiveError (so the
    /// failing section — and, for segments, the segment id — was
    /// named), rather than a generic RecordingFormatError.
    bool typedArchiveError = false;
    /// Failing segment id when typedArchiveError named one, else
    /// ArchiveError::kNoSegment.
    std::size_t segment = static_cast<std::size_t>(-1);
    std::string message;
};

/** Aggregate of an archive fault sweep. */
struct ArchiveFaultSweepSummary
{
    std::uint64_t total = 0;
    std::uint64_t rejectedAtLoad = 0;
    std::uint64_t replayedIdentically = 0;
    std::uint64_t divergenceDetected = 0;
    std::uint64_t replayErrorReported = 0;
    std::uint64_t unexpected = 0;
    std::vector<ArchiveMutantResult> unexpectedResults;

    bool ok() const { return unexpected == 0; }
    void add(const ArchiveMutantResult &r);
    std::string describe() const;
};

/**
 * Which ArchiveReader entry point a sweep pushes its mutants through.
 * Both are required to produce identical typed errors on identical
 * bytes; sweeping each path certifies that the zero-copy mmap reader
 * fences corruption exactly like the buffered one.
 */
enum class ArchiveLoadPath : std::uint8_t
{
    kBuffered, ///< ArchiveReader::fromBytes on an in-memory copy
    kMmapFile, ///< write to a temp file, ArchiveReader::fromFile with
               ///< mmap enabled (buffered fallback where unsupported)
};

/**
 * Run one archive mutant: mutate @p archive, then drive the full
 * reader pipeline — parse, readAll(), checked replay, and (when the
 * mutant still exposes checkpoints) an interval-replay leg through
 * readInterval(). Acceptable outcomes mirror runMutant(): a typed
 * rejection, an identical replay, or a structured divergence. Crashes
 * and untyped exceptions are kUnexpected.
 */
ArchiveMutantResult
runArchiveMutant(const std::vector<std::uint8_t> &archive,
                 ArchiveMutationKind kind, std::uint64_t seed,
                 const ReplayCheckOptions &opts = {},
                 ArchiveLoadPath load_path = ArchiveLoadPath::kBuffered);

/**
 * Sweep @p mutants_per_kind archive mutants of every kind over the
 * archived form of @p rec. Record @p rec with checkpoints (e.g. a
 * checkpoint period) so the interval-replay leg has seek targets.
 */
ArchiveFaultSweepSummary
runArchiveFaultSweep(const Recording &rec, unsigned mutants_per_kind,
                     std::uint64_t seed0,
                     const ReplayCheckOptions &opts = {},
                     ArchiveLoadPath load_path =
                         ArchiveLoadPath::kBuffered);

// ----- ring-level fault injection (src/store/ring directory container) ------

/**
 * Mutation classes applied to a ring *directory*. These model the
 * crash-and-rot shapes an always-on recorder actually leaves behind:
 * history holes from eviction racing a crash, a final segment torn
 * mid-write, and an index file that survived but lies about the
 * directory it describes.
 */
enum class RingMutationKind : std::uint8_t
{
    kEvictedGap, ///< delete one retained non-newest segment file
    kTornTail,   ///< truncate the newest segment file at a random byte
    kStaleIndex, ///< ring.index lies: deleted, bit-flipped, or
                 ///< rewritten with a *valid* CRC over false contents
};

constexpr unsigned kRingMutationKinds = 3;

/** Short printable name of a ring mutation kind. */
const char *ringMutationKindName(RingMutationKind kind);

/**
 * Deterministically mutate ring directory @p dir in place
 * (seed => same mutant). @p dir should be a scratch copy.
 */
void mutateRing(const std::string &dir, RingMutationKind kind,
                std::uint64_t seed);

/** One ring mutant's result. */
struct RingMutantResult
{
    RingMutationKind kind = RingMutationKind::kEvictedGap;
    std::uint64_t seed = 0;
    MutantOutcome outcome = MutantOutcome::kUnexpected;
    /// Recovery opened the ring but had to drop files or ignore the
    /// index (RingRecoveryInfo was not a clean, index-certified open).
    bool salvaged = false;
    /// Segment files recovery dropped (from RingRecoveryInfo).
    std::size_t droppedSegments = 0;
    std::string message;
};

/** Aggregate of a ring fault sweep. */
struct RingFaultSweepSummary
{
    std::uint64_t total = 0;
    std::uint64_t rejectedAtLoad = 0;
    std::uint64_t replayedIdentically = 0;
    std::uint64_t divergenceDetected = 0;
    std::uint64_t replayErrorReported = 0;
    std::uint64_t unexpected = 0;
    /// Mutants recovery salvaged (opened with drops or a dead index).
    std::uint64_t salvaged = 0;
    std::vector<RingMutantResult> unexpectedResults;

    bool ok() const { return unexpected == 0; }
    void add(const RingMutantResult &r);
    std::string describe() const;
};

/**
 * Run one ring mutant: copy @p ring_dir to a scratch directory,
 * mutate it, then drive RingArchiveReader::open plus a bounded
 * interval-replay leg over whatever window recovery retained (and an
 * unbounded leg when the mutant still reads as cleanly closed). The
 * acceptable outcomes mirror runArchiveMutant: a typed rejection, a
 * successful salvage that replays identically, or a structured
 * divergence. Crashes, hangs and untyped exceptions are kUnexpected.
 */
RingMutantResult runRingMutant(const std::string &ring_dir,
                               RingMutationKind kind,
                               std::uint64_t seed,
                               const ReplayCheckOptions &opts = {});

/**
 * Sweep @p mutants_per_kind ring mutants of every kind over @p rec,
 * recorded once into a scratch ring with @p ring_opts. Record @p rec
 * with a checkpoint period so recovery has replay starting points.
 */
RingFaultSweepSummary
runRingFaultSweep(const Recording &rec, unsigned mutants_per_kind,
                  std::uint64_t seed0,
                  const ReplayCheckOptions &opts = {},
                  const RingOptions &ring_opts = {});

} // namespace delorean

#endif // DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_
