/**
 * @file
 * Log fault injector: mutate serialized recordings, assert grace.
 *
 * rr-style robustness testing for the replay pipeline. A recording is
 * serialized, a deterministic mutation is applied to the byte stream
 * (bit flips, truncation at an arbitrary offset, 8-byte record-word
 * duplication or reordering, header corruption), and the mutant is
 * pushed through loadRecording() + checkedReplay(). The acceptable
 * outcomes are exactly:
 *
 *   - the loader rejects it with a RecordingFormatError,
 *   - the replay reproduces the recording (mutation hit dead bytes,
 *     e.g. a statistics field),
 *   - checkedReplay returns a structured DivergenceReport (typed
 *     replay error, or a localized divergence).
 *
 * Crashes, hangs (fenced by the replay event budget) and any other
 * exception type are sweep failures, counted as kUnexpected.
 */

#ifndef DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_
#define DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recording.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{

/** Mutation classes applied to the serialized byte stream. */
enum class MutationKind : std::uint8_t
{
    kBitFlip,       ///< flip 1-8 random bits anywhere
    kTruncate,      ///< cut the stream at a random byte offset
    kDuplicateWord, ///< duplicate a random aligned 8-byte record word
    kReorderWords,  ///< swap two random aligned 8-byte record words
    kHeaderCorrupt, ///< scribble on the magic/version/config header
};

constexpr unsigned kMutationKinds = 5;

/** Short printable name of a mutation kind. */
const char *mutationKindName(MutationKind kind);

/**
 * Deterministically mutate @p bytes (seed => same mutant). The result
 * may be any length, including empty.
 */
std::string mutateSerialized(const std::string &bytes,
                             MutationKind kind, std::uint64_t seed);

/** How one mutant fared. */
enum class MutantOutcome : std::uint8_t
{
    kRejectedAtLoad,    ///< RecordingFormatError from the loader
    kReplayedIdentically, ///< mutation did not change replay-relevant bytes
    kDivergenceDetected, ///< structured report with a localized chunk
    kReplayErrorReported, ///< typed ReplayError converted to a report
    kUnexpected,        ///< anything else — a sweep failure
};

/** Short printable name of a mutant outcome. */
const char *mutantOutcomeName(MutantOutcome outcome);

/** One mutant's result. */
struct MutantResult
{
    MutationKind kind = MutationKind::kBitFlip;
    std::uint64_t seed = 0;
    MutantOutcome outcome = MutantOutcome::kUnexpected;
    DivergenceReport report;
};

/** Aggregate of a fault-injection sweep. */
struct FaultSweepSummary
{
    std::uint64_t total = 0;
    std::uint64_t rejectedAtLoad = 0;
    std::uint64_t replayedIdentically = 0;
    std::uint64_t divergenceDetected = 0;
    std::uint64_t replayErrorReported = 0;
    std::uint64_t unexpected = 0;
    /// The failing mutants (empty when the sweep is clean).
    std::vector<MutantResult> unexpectedResults;

    bool ok() const { return unexpected == 0; }
    void add(const MutantResult &r);
    std::string describe() const;
};

/**
 * Run one mutant: serialize-side mutation of @p serialized, then
 * load + checked replay with @p opts.
 */
MutantResult runMutant(const std::string &serialized, MutationKind kind,
                       std::uint64_t seed,
                       const ReplayCheckOptions &opts = {});

/**
 * Sweep @p mutants_per_kind mutants of every kind over @p rec.
 * Mutation seeds derive from @p seed0. Runs on the calling thread;
 * callers wanting parallelism fan runMutant() out themselves (see
 * bench/validate_sweep.cpp).
 */
FaultSweepSummary runFaultSweep(const Recording &rec,
                                unsigned mutants_per_kind,
                                std::uint64_t seed0,
                                const ReplayCheckOptions &opts = {});

} // namespace delorean

#endif // DELOREAN_VALIDATE_FAULT_INJECTOR_HPP_
