#include "validate/fault_injector.hpp"

#include <exception>
#include <sstream>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/serialize.hpp"

namespace delorean
{

const char *
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::kBitFlip:
        return "bit-flip";
      case MutationKind::kTruncate:
        return "truncate";
      case MutationKind::kDuplicateWord:
        return "duplicate-word";
      case MutationKind::kReorderWords:
        return "reorder-words";
      case MutationKind::kHeaderCorrupt:
        return "header-corrupt";
    }
    return "unknown";
}

const char *
mutantOutcomeName(MutantOutcome outcome)
{
    switch (outcome) {
      case MutantOutcome::kRejectedAtLoad:
        return "rejected-at-load";
      case MutantOutcome::kReplayedIdentically:
        return "replayed-identically";
      case MutantOutcome::kDivergenceDetected:
        return "divergence-detected";
      case MutantOutcome::kReplayErrorReported:
        return "replay-error-reported";
      case MutantOutcome::kUnexpected:
        return "UNEXPECTED";
    }
    return "unknown";
}

std::string
mutateSerialized(const std::string &bytes, MutationKind kind,
                 std::uint64_t seed)
{
    Xoshiro256ss rng(seed ^ 0xFA017EC7ull);
    std::string out = bytes;
    if (out.empty())
        return out;
    const std::uint64_t size = out.size();
    const std::uint64_t words = size / 8;

    switch (kind) {
      case MutationKind::kBitFlip: {
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned i = 0; i < flips; ++i) {
            const std::uint64_t bit = rng.below(size * 8);
            out[bit / 8] = static_cast<char>(
                static_cast<unsigned char>(out[bit / 8])
                ^ (1u << (bit % 8)));
        }
        break;
      }
      case MutationKind::kTruncate:
        out.resize(rng.below(size));
        break;
      case MutationKind::kDuplicateWord: {
        if (words == 0)
            break;
        const std::uint64_t w = rng.below(words);
        out.insert(w * 8 + 8, bytes, w * 8, 8);
        break;
      }
      case MutationKind::kReorderWords: {
        if (words < 2)
            break;
        const std::uint64_t a = rng.below(words);
        std::uint64_t b = rng.below(words);
        if (a == b)
            b = (b + 1) % words;
        for (unsigned i = 0; i < 8; ++i)
            std::swap(out[a * 8 + i], out[b * 8 + i]);
        break;
      }
      case MutationKind::kHeaderCorrupt: {
        // Magic, version, machine and mode occupy the first
        // 20 u64 fields; scribble a random byte there.
        const std::uint64_t header =
            std::min<std::uint64_t>(size, 20 * 8);
        out[rng.below(header)] =
            static_cast<char>(rng.next() & 0xFF);
        break;
      }
    }
    return out;
}

void
FaultSweepSummary::add(const MutantResult &r)
{
    ++total;
    switch (r.outcome) {
      case MutantOutcome::kRejectedAtLoad:
        ++rejectedAtLoad;
        break;
      case MutantOutcome::kReplayedIdentically:
        ++replayedIdentically;
        break;
      case MutantOutcome::kDivergenceDetected:
        ++divergenceDetected;
        break;
      case MutantOutcome::kReplayErrorReported:
        ++replayErrorReported;
        break;
      case MutantOutcome::kUnexpected:
        ++unexpected;
        unexpectedResults.push_back(r);
        break;
    }
}

std::string
FaultSweepSummary::describe() const
{
    std::ostringstream out;
    out << "fault sweep: " << total << " mutants | rejected "
        << rejectedAtLoad << " | identical " << replayedIdentically
        << " | divergence " << divergenceDetected << " | replay-error "
        << replayErrorReported << " | UNEXPECTED " << unexpected;
    for (const MutantResult &r : unexpectedResults)
        out << "\n  " << mutationKindName(r.kind) << " seed " << r.seed
            << ": " << r.report.message;
    return out.str();
}

MutantResult
runMutant(const std::string &serialized, MutationKind kind,
          std::uint64_t seed, const ReplayCheckOptions &opts)
{
    MutantResult result;
    result.kind = kind;
    result.seed = seed;

    const std::string mutated = mutateSerialized(serialized, kind, seed);

    Recording mutant;
    try {
        std::istringstream in(mutated);
        mutant = loadRecording(in);
    } catch (const RecordingFormatError &e) {
        result.outcome = MutantOutcome::kRejectedAtLoad;
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message = e.what();
        return result;
    } catch (const std::exception &e) {
        // The loader's contract is RecordingFormatError only; any
        // other type is a hardening gap the sweep must surface.
        result.outcome = MutantOutcome::kUnexpected;
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message =
            std::string("loader threw non-format error: ") + e.what();
        return result;
    }

    ReplayCheckResult check;
    try {
        check = checkedReplay(mutant, opts);
    } catch (const std::exception &e) {
        result.outcome = MutantOutcome::kUnexpected;
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message =
            std::string("checkedReplay threw: ") + e.what();
        return result;
    }

    result.report = check.report;
    if (check.ok) {
        result.outcome = MutantOutcome::kReplayedIdentically;
        return result;
    }
    switch (check.report.kind) {
      case DivergenceKind::kFormatError:
      case DivergenceKind::kWorkloadError:
        result.outcome = MutantOutcome::kRejectedAtLoad;
        break;
      case DivergenceKind::kReplayError:
        result.outcome = MutantOutcome::kReplayErrorReported;
        break;
      case DivergenceKind::kCommitDivergence:
      case DivergenceKind::kMissingCommits:
      case DivergenceKind::kExtraCommits:
      case DivergenceKind::kStateDivergence:
        result.outcome = MutantOutcome::kDivergenceDetected;
        break;
      case DivergenceKind::kNone:
        result.outcome = MutantOutcome::kUnexpected;
        result.report.message =
            "checkedReplay returned !ok with an empty report";
        break;
    }
    return result;
}

FaultSweepSummary
runFaultSweep(const Recording &rec, unsigned mutants_per_kind,
              std::uint64_t seed0, const ReplayCheckOptions &opts)
{
    std::ostringstream buf;
    saveRecording(rec, buf);
    const std::string serialized = buf.str();

    FaultSweepSummary summary;
    for (unsigned k = 0; k < kMutationKinds; ++k) {
        for (unsigned i = 0; i < mutants_per_kind; ++i) {
            const std::uint64_t seed =
                seed0 * 1'000'003ull + k * 7919ull + i;
            summary.add(runMutant(
                serialized, static_cast<MutationKind>(k), seed, opts));
        }
    }
    return summary;
}

} // namespace delorean
