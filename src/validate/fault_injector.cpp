#include "validate/fault_injector.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "compress/lz77.hpp"
#include "core/serialize.hpp"
#include "store/archive.hpp"
#include "store/crc32.hpp"

namespace delorean
{

const char *
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::kBitFlip:
        return "bit-flip";
      case MutationKind::kTruncate:
        return "truncate";
      case MutationKind::kDuplicateWord:
        return "duplicate-word";
      case MutationKind::kReorderWords:
        return "reorder-words";
      case MutationKind::kHeaderCorrupt:
        return "header-corrupt";
      case MutationKind::kEdgeDrop:
        return "edge-drop";
      case MutationKind::kShardSeqSwap:
        return "shard-seq-swap";
      case MutationKind::kDanglingShard:
        return "dangling-shard";
    }
    return "unknown";
}

namespace
{

std::uint64_t
strU64At(const std::string &bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
    return v;
}

void
strPutU64At(std::string &bytes, std::size_t offset, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes[offset + i] = static_cast<char>(v >> (8 * i));
}

/** Where one recording's PI shard-mask section sits. */
struct MaskSection
{
    std::size_t base = 0;      ///< byte offset of the first mask word
    std::uint64_t count = 0;   ///< PI entry count (== mask count)
    unsigned shards = 1;       ///< machine numArbiters
};

/**
 * Locate the v2 shard-mask section in a serialized recording by
 * walking the fixed header layout: magic + version + machine(12) +
 * mode(7) u64s, appName string, seed, iterations, PI count, PI
 * entries, has-masks flag, masks. Returns nullopt for v1 streams,
 * total-order v2 streams, and anything too short to hold the walk.
 */
std::optional<MaskSection>
findMaskSection(const std::string &bytes)
{
    constexpr std::size_t kHeaderU64s = 21;
    if (bytes.size() < kHeaderU64s * 8 + 8)
        return std::nullopt;
    if (strU64At(bytes, 8) != 2) // recording format version
        return std::nullopt;
    MaskSection sec;
    // numArbiters is the machine header's 12th field (offset 16 + 11*8).
    sec.shards = static_cast<unsigned>(strU64At(bytes, 104));
    const std::uint64_t name_len = strU64At(bytes, kHeaderU64s * 8);
    if (name_len > bytes.size())
        return std::nullopt;
    // seed + iterations follow the name; then the PI count.
    const std::size_t pi_count_off =
        kHeaderU64s * 8 + 8 + static_cast<std::size_t>(name_len) + 16;
    if (pi_count_off + 8 > bytes.size())
        return std::nullopt;
    sec.count = strU64At(bytes, pi_count_off);
    const std::size_t flag_off =
        pi_count_off + 8 + static_cast<std::size_t>(sec.count) * 8;
    if (flag_off + 8 > bytes.size()
        || strU64At(bytes, flag_off) != 1)
        return std::nullopt;
    sec.base = flag_off + 8;
    if (sec.base + static_cast<std::size_t>(sec.count) * 8
        > bytes.size())
        return std::nullopt;
    return sec;
}

} // namespace

const char *
mutantOutcomeName(MutantOutcome outcome)
{
    switch (outcome) {
      case MutantOutcome::kRejectedAtLoad:
        return "rejected-at-load";
      case MutantOutcome::kReplayedIdentically:
        return "replayed-identically";
      case MutantOutcome::kDivergenceDetected:
        return "divergence-detected";
      case MutantOutcome::kReplayErrorReported:
        return "replay-error-reported";
      case MutantOutcome::kUnexpected:
        return "UNEXPECTED";
    }
    return "unknown";
}

std::string
mutateSerialized(const std::string &bytes, MutationKind kind,
                 std::uint64_t seed)
{
    Xoshiro256ss rng(seed ^ 0xFA017EC7ull);
    std::string out = bytes;
    if (out.empty())
        return out;
    const std::uint64_t size = out.size();
    const std::uint64_t words = size / 8;

    switch (kind) {
      case MutationKind::kBitFlip: {
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned i = 0; i < flips; ++i) {
            const std::uint64_t bit = rng.below(size * 8);
            out[bit / 8] = static_cast<char>(
                static_cast<unsigned char>(out[bit / 8])
                ^ (1u << (bit % 8)));
        }
        break;
      }
      case MutationKind::kTruncate:
        out.resize(rng.below(size));
        break;
      case MutationKind::kDuplicateWord: {
        if (words == 0)
            break;
        const std::uint64_t w = rng.below(words);
        out.insert(w * 8 + 8, bytes, w * 8, 8);
        break;
      }
      case MutationKind::kReorderWords: {
        if (words < 2)
            break;
        const std::uint64_t a = rng.below(words);
        std::uint64_t b = rng.below(words);
        if (a == b)
            b = (b + 1) % words;
        for (unsigned i = 0; i < 8; ++i)
            std::swap(out[a * 8 + i], out[b * 8 + i]);
        break;
      }
      case MutationKind::kHeaderCorrupt: {
        // Magic, version, machine and mode occupy the first
        // 21 u64 fields; scribble a random byte there.
        const std::uint64_t header =
            std::min<std::uint64_t>(size, 21 * 8);
        out[rng.below(header)] =
            static_cast<char>(rng.next() & 0xFF);
        break;
      }
      case MutationKind::kEdgeDrop: {
        const auto sec = findMaskSection(out);
        if (!sec || sec->count == 0)
            break;
        const std::size_t off =
            sec->base
            + static_cast<std::size_t>(rng.below(sec->count)) * 8;
        std::uint64_t mask = strU64At(out, off);
        if (mask == 0)
            break;
        // Clear a random set bit: the ordering edges through that
        // shard's arbiter vanish. An emptied mask must be rejected at
        // load; a still-valid one must replay identically or surface
        // as a localized divergence / typed replay error.
        unsigned nth =
            static_cast<unsigned>(rng.below(std::popcount(mask)));
        std::uint64_t m = mask;
        while (nth--)
            m &= m - 1;
        mask &= ~(m & ~(m - 1));
        strPutU64At(out, off, mask);
        break;
      }
      case MutationKind::kShardSeqSwap: {
        const auto sec = findMaskSection(out);
        if (!sec || sec->count < 2)
            break;
        const std::uint64_t a = rng.below(sec->count);
        std::uint64_t b = rng.below(sec->count);
        if (a == b)
            b = (b + 1) % sec->count;
        // Each mask stays individually valid, but the entries change
        // shard queues — the per-shard sequences the masks encode no
        // longer match the order the entries were actually granted.
        const std::size_t oa =
            sec->base + static_cast<std::size_t>(a) * 8;
        const std::size_t ob =
            sec->base + static_cast<std::size_t>(b) * 8;
        const std::uint64_t ma = strU64At(out, oa);
        strPutU64At(out, oa, strU64At(out, ob));
        strPutU64At(out, ob, ma);
        break;
      }
      case MutationKind::kDanglingShard: {
        const auto sec = findMaskSection(out);
        if (!sec || sec->count == 0 || sec->shards >= 64)
            break;
        const std::size_t off =
            sec->base
            + static_cast<std::size_t>(rng.below(sec->count)) * 8;
        // Name a shard outside the hierarchy; the loader's mask range
        // check must reject this.
        const std::uint64_t mask =
            strU64At(out, off)
            | (1ull << (sec->shards
                        + rng.below(64 - sec->shards)));
        strPutU64At(out, off, mask);
        break;
      }
    }
    return out;
}

void
FaultSweepSummary::add(const MutantResult &r)
{
    ++total;
    switch (r.outcome) {
      case MutantOutcome::kRejectedAtLoad:
        ++rejectedAtLoad;
        break;
      case MutantOutcome::kReplayedIdentically:
        ++replayedIdentically;
        break;
      case MutantOutcome::kDivergenceDetected:
        ++divergenceDetected;
        break;
      case MutantOutcome::kReplayErrorReported:
        ++replayErrorReported;
        break;
      case MutantOutcome::kUnexpected:
        ++unexpected;
        unexpectedResults.push_back(r);
        break;
    }
}

std::string
FaultSweepSummary::describe() const
{
    std::ostringstream out;
    out << "fault sweep: " << total << " mutants | rejected "
        << rejectedAtLoad << " | identical " << replayedIdentically
        << " | divergence " << divergenceDetected << " | replay-error "
        << replayErrorReported << " | UNEXPECTED " << unexpected;
    for (const MutantResult &r : unexpectedResults)
        out << "\n  " << mutationKindName(r.kind) << " seed " << r.seed
            << ": " << r.report.message;
    return out.str();
}

MutantResult
runMutant(const std::string &serialized, MutationKind kind,
          std::uint64_t seed, const ReplayCheckOptions &opts)
{
    MutantResult result;
    result.kind = kind;
    result.seed = seed;

    const std::string mutated = mutateSerialized(serialized, kind, seed);

    Recording mutant;
    try {
        std::istringstream in(mutated);
        mutant = loadRecording(in);
    } catch (const RecordingFormatError &e) {
        result.outcome = MutantOutcome::kRejectedAtLoad;
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message = e.what();
        return result;
    } catch (const std::exception &e) {
        // The loader's contract is RecordingFormatError only; any
        // other type is a hardening gap the sweep must surface.
        result.outcome = MutantOutcome::kUnexpected;
        result.report.kind = DivergenceKind::kFormatError;
        result.report.message =
            std::string("loader threw non-format error: ") + e.what();
        return result;
    }

    ReplayCheckResult check;
    try {
        check = checkedReplay(mutant, opts);
    } catch (const std::exception &e) {
        result.outcome = MutantOutcome::kUnexpected;
        result.report.kind = DivergenceKind::kReplayError;
        result.report.message =
            std::string("checkedReplay threw: ") + e.what();
        return result;
    }

    result.report = check.report;
    if (check.ok) {
        result.outcome = MutantOutcome::kReplayedIdentically;
        return result;
    }
    switch (check.report.kind) {
      case DivergenceKind::kFormatError:
      case DivergenceKind::kWorkloadError:
        result.outcome = MutantOutcome::kRejectedAtLoad;
        break;
      case DivergenceKind::kReplayError:
        result.outcome = MutantOutcome::kReplayErrorReported;
        break;
      case DivergenceKind::kCommitDivergence:
      case DivergenceKind::kMissingCommits:
      case DivergenceKind::kExtraCommits:
      case DivergenceKind::kStateDivergence:
        result.outcome = MutantOutcome::kDivergenceDetected;
        break;
      case DivergenceKind::kNone:
        result.outcome = MutantOutcome::kUnexpected;
        result.report.message =
            "checkedReplay returned !ok with an empty report";
        break;
    }
    return result;
}

FaultSweepSummary
runFaultSweep(const Recording &rec, unsigned mutants_per_kind,
              std::uint64_t seed0, const ReplayCheckOptions &opts)
{
    std::ostringstream buf;
    saveRecording(rec, buf);
    const std::string serialized = buf.str();

    FaultSweepSummary summary;
    for (unsigned k = 0; k < kMutationKinds; ++k) {
        for (unsigned i = 0; i < mutants_per_kind; ++i) {
            const std::uint64_t seed =
                seed0 * 1'000'003ull + k * 7919ull + i;
            summary.add(runMutant(
                serialized, static_cast<MutationKind>(k), seed, opts));
        }
    }
    return summary;
}

// ----- archive-level fault injection ----------------------------------------

const char *
archiveMutationKindName(ArchiveMutationKind kind)
{
    switch (kind) {
      case ArchiveMutationKind::kSegmentBitFlip:
        return "segment-bit-flip";
      case ArchiveMutationKind::kFooterTruncate:
        return "footer-truncate";
      case ArchiveMutationKind::kIndexCorrupt:
        return "index-corrupt";
    }
    return "unknown";
}

namespace
{

void
flipBits(std::vector<std::uint8_t> &bytes, std::size_t begin,
         std::size_t end, Xoshiro256ss &rng)
{
    if (end <= begin)
        return;
    const unsigned flips = 1 + static_cast<unsigned>(rng.below(8));
    const std::uint64_t span = (end - begin) * 8;
    for (unsigned i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.below(span);
        bytes[begin + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

std::uint64_t
u64At(const std::vector<std::uint8_t> &bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
    return v;
}

void
putU64At(std::vector<std::uint8_t> &bytes, std::size_t offset,
         std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

std::vector<std::uint8_t>
mutateArchive(const std::vector<std::uint8_t> &bytes,
              ArchiveMutationKind kind, std::uint64_t seed)
{
    Xoshiro256ss rng(seed ^ 0xA2C817EC7ull);
    std::vector<std::uint8_t> out = bytes;
    if (out.size() < 56) {
        // Too small to carry any structure; degrade to a bit flip.
        flipBits(out, 0, out.size(), rng);
        return out;
    }
    const std::size_t trailer = out.size() - 40;
    const std::uint64_t footer_offset = u64At(out, trailer);

    switch (kind) {
      case ArchiveMutationKind::kSegmentBitFlip: {
        // Aim at one segment's compressed payload via the archive's
        // own index so the flip never lands in footer or trailer.
        try {
            const ArchiveReader reader = ArchiveReader::fromBytes(out);
            const auto &segs = reader.segments();
            const ArchiveSegmentInfo &seg =
                segs[static_cast<std::size_t>(rng.below(segs.size()))];
            const std::size_t begin =
                static_cast<std::size_t>(seg.fileOffset) + 40;
            flipBits(out, begin,
                     begin + static_cast<std::size_t>(seg.compBytes),
                     rng);
        } catch (const std::exception &) {
            flipBits(out, 0, out.size(), rng);
        }
        break;
      }
      case ArchiveMutationKind::kFooterTruncate: {
        // Cut somewhere inside the footer or trailer region.
        const std::size_t begin = std::min<std::size_t>(
            static_cast<std::size_t>(footer_offset), out.size());
        out.resize(begin + rng.below(out.size() - begin));
        break;
      }
      case ArchiveMutationKind::kIndexCorrupt: {
        // Scribble on the *decompressed* footer, then recompress and
        // rebuild a consistent trailer (sizes + CRC all valid), so
        // the checksum layer passes and the reader's semantic
        // cross-checks are what must catch the lie.
        try {
            const std::uint64_t comp_size = u64At(out, trailer + 8);
            const Lz77 codec;
            std::vector<std::uint8_t> raw =
                codec.decompress(std::vector<std::uint8_t>(
                    out.begin() + static_cast<long>(footer_offset),
                    out.begin()
                        + static_cast<long>(footer_offset
                                            + comp_size)));
            if (raw.empty())
                break;
            // Half the mutants aim at the first segment's structural
            // index fields (endGcc, file offset, sizes, CRC, log bit
            // positions) — a one-byte scribble anywhere else in the
            // footer almost always lands in checkpoint memory words,
            // which only the replay legs can judge. Walk the footer
            // layout: machine + mode + appName + seed + iterations +
            // stats + per-proc finals + memory hash + segment count.
            std::size_t idx0 = raw.size();
            if (raw.size() >= 160) {
                const auto rawU64 = [&raw](std::size_t off) {
                    std::uint64_t v = 0;
                    for (int i = 0; i < 8; ++i)
                        v |= static_cast<std::uint64_t>(raw[off + i])
                             << (8 * i);
                    return v;
                };
                // machine (12 u64s) + mode (7 u64s) precede appName.
                const std::uint64_t name_len = rawU64(152);
                if (name_len < raw.size()) {
                    std::size_t off = 160
                                      + static_cast<std::size_t>(
                                          name_len)
                                      + 16 + 64;
                    if (off + 8 <= raw.size()) {
                        const std::uint64_t procs = rawU64(off);
                        off += 8
                               + static_cast<std::size_t>(procs) * 16
                               + 8 + 8;
                        if (off + 56 <= raw.size())
                            idx0 = off;
                    }
                }
            }
            const std::size_t pos =
                (idx0 + 56 <= raw.size() && rng.below(2) == 0)
                    ? idx0 + static_cast<std::size_t>(rng.below(56))
                    : static_cast<std::size_t>(rng.below(raw.size()));
            raw[pos] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
            Lz77Stream stream;
            stream.append(raw);
            const std::vector<std::uint8_t> comp = stream.finish();
            out.resize(static_cast<std::size_t>(footer_offset));
            out.insert(out.end(), comp.begin(), comp.end());
            const std::size_t new_trailer = out.size();
            out.resize(out.size() + 40);
            putU64At(out, new_trailer, footer_offset);
            putU64At(out, new_trailer + 8, comp.size());
            putU64At(out, new_trailer + 16, raw.size());
            putU64At(out, new_trailer + 24,
                     crc32(comp.data(), comp.size()));
            putU64At(out, new_trailer + 32,
                     u64At(bytes, trailer + 32)); // end magic
        } catch (const std::exception &) {
            flipBits(out, static_cast<std::size_t>(footer_offset),
                     out.size(), rng);
        }
        break;
      }
    }
    return out;
}

void
ArchiveFaultSweepSummary::add(const ArchiveMutantResult &r)
{
    ++total;
    switch (r.outcome) {
      case MutantOutcome::kRejectedAtLoad:
        ++rejectedAtLoad;
        break;
      case MutantOutcome::kReplayedIdentically:
        ++replayedIdentically;
        break;
      case MutantOutcome::kDivergenceDetected:
        ++divergenceDetected;
        break;
      case MutantOutcome::kReplayErrorReported:
        ++replayErrorReported;
        break;
      case MutantOutcome::kUnexpected:
        ++unexpected;
        unexpectedResults.push_back(r);
        break;
    }
}

std::string
ArchiveFaultSweepSummary::describe() const
{
    std::ostringstream out;
    out << "archive fault sweep: " << total << " mutants | rejected "
        << rejectedAtLoad << " | identical " << replayedIdentically
        << " | divergence " << divergenceDetected << " | replay-error "
        << replayErrorReported << " | UNEXPECTED " << unexpected;
    for (const ArchiveMutantResult &r : unexpectedResults)
        out << "\n  " << archiveMutationKindName(r.kind) << " seed "
            << r.seed << ": " << r.message;
    return out.str();
}

namespace
{

/** Severity order for combining the readAll and interval legs. */
int
outcomeSeverity(MutantOutcome outcome)
{
    switch (outcome) {
      case MutantOutcome::kReplayedIdentically:
        return 0;
      case MutantOutcome::kRejectedAtLoad:
        return 1;
      case MutantOutcome::kReplayErrorReported:
        return 2;
      case MutantOutcome::kDivergenceDetected:
        return 3;
      case MutantOutcome::kUnexpected:
        return 4;
    }
    return 4;
}

/**
 * Classify one recording pulled out of a mutant archive: checked
 * replay with every failure fenced, exactly like runMutant's tail.
 */
MutantOutcome
classifyRecording(const Recording &rec, const ReplayCheckOptions &opts,
                  std::string &message)
{
    ReplayCheckResult check;
    try {
        check = checkedReplay(rec, opts);
    } catch (const std::exception &e) {
        message = std::string("checkedReplay threw: ") + e.what();
        return MutantOutcome::kUnexpected;
    }
    if (check.ok)
        return MutantOutcome::kReplayedIdentically;
    message = check.report.message;
    switch (check.report.kind) {
      case DivergenceKind::kFormatError:
      case DivergenceKind::kWorkloadError:
        return MutantOutcome::kRejectedAtLoad;
      case DivergenceKind::kReplayError:
        return MutantOutcome::kReplayErrorReported;
      case DivergenceKind::kCommitDivergence:
      case DivergenceKind::kMissingCommits:
      case DivergenceKind::kExtraCommits:
      case DivergenceKind::kStateDivergence:
        return MutantOutcome::kDivergenceDetected;
      case DivergenceKind::kNone:
        message = "checkedReplay returned !ok with an empty report";
        return MutantOutcome::kUnexpected;
    }
    return MutantOutcome::kUnexpected;
}

#if defined(__unix__) || defined(__APPLE__)
#define DELOREAN_FAULT_TMPFILE 1
#else
#define DELOREAN_FAULT_TMPFILE 0
#endif

#if DELOREAN_FAULT_TMPFILE
/**
 * Scratch file for the mmap sweep leg. Unlinked on destruction; on
 * POSIX an mmap of the file stays valid after the unlink, so the
 * reader may outlive this object.
 */
struct TempArchiveFile
{
    std::string path;
    bool ok = false;

    explicit TempArchiveFile(const std::vector<std::uint8_t> &bytes)
    {
        char name[] = "/tmp/delorean-mutant-XXXXXX";
        const int fd = ::mkstemp(name);
        if (fd < 0)
            return;
        path = name;
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t w = ::write(fd, bytes.data() + off,
                                      bytes.size() - off);
            if (w <= 0) {
                ::close(fd);
                return;
            }
            off += static_cast<std::size_t>(w);
        }
        ::close(fd);
        ok = true;
    }

    ~TempArchiveFile()
    {
        if (!path.empty())
            ::unlink(path.c_str());
    }
};
#endif

/** Open the mutant through the requested reader entry point. */
ArchiveReader
loadMutant(const std::vector<std::uint8_t> &mutated,
           ArchiveLoadPath load_path)
{
#if DELOREAN_FAULT_TMPFILE
    if (load_path == ArchiveLoadPath::kMmapFile) {
        const TempArchiveFile tmp(mutated);
        if (tmp.ok)
            return ArchiveReader::fromFile(tmp.path, {});
    }
#else
    (void)load_path;
#endif
    return ArchiveReader::fromBytes(mutated);
}

} // namespace

ArchiveMutantResult
runArchiveMutant(const std::vector<std::uint8_t> &archive,
                 ArchiveMutationKind kind, std::uint64_t seed,
                 const ReplayCheckOptions &opts,
                 ArchiveLoadPath load_path)
{
    ArchiveMutantResult result;
    result.kind = kind;
    result.seed = seed;

    const std::vector<std::uint8_t> mutated =
        mutateArchive(archive, kind, seed);

    // Leg 1: parse + readAll + checked replay.
    Recording full;
    std::size_t checkpoints = 0;
    std::optional<ArchiveReader> reader;
    try {
        reader = loadMutant(mutated, load_path);
        checkpoints = reader->checkpointCount();
        full = reader->readAll();
    } catch (const ArchiveError &e) {
        result.outcome = MutantOutcome::kRejectedAtLoad;
        result.typedArchiveError = true;
        result.segment = e.segment();
        result.message = e.what();
        return result;
    } catch (const RecordingFormatError &e) {
        // validateRecording() inside readAll — still a typed, fenced
        // rejection, just without section attribution.
        result.outcome = MutantOutcome::kRejectedAtLoad;
        result.message = e.what();
        return result;
    } catch (const std::exception &e) {
        result.outcome = MutantOutcome::kUnexpected;
        result.message =
            std::string("archive reader threw non-format error: ")
            + e.what();
        return result;
    }

    result.outcome = classifyRecording(full, opts, result.message);
    if (result.outcome == MutantOutcome::kUnexpected)
        return result;

    // Leg 2: interval replay through the (possibly lying) index. Only
    // reachable when the mutant still parses; a corrupt index must
    // surface as a typed rejection or a localized divergence here,
    // never a crash.
    if (checkpoints > 0) {
        const std::size_t from =
            static_cast<std::size_t>(seed % checkpoints);
        MutantOutcome interval = MutantOutcome::kReplayedIdentically;
        std::string interval_message;
        try {
            const Recording view = reader->readInterval(from);
            ReplayCheckOptions iopts = opts;
            iopts.startCheckpoint = 0;
            // The race detector needs the complete commit history;
            // detector sweeps still fence this leg, just detector-off.
            iopts.detectRaces = false;
            interval =
                classifyRecording(view, iopts, interval_message);
        } catch (const ArchiveError &e) {
            interval = MutantOutcome::kRejectedAtLoad;
            result.typedArchiveError = true;
            result.segment = e.segment();
            interval_message = e.what();
        } catch (const RecordingFormatError &e) {
            interval = MutantOutcome::kRejectedAtLoad;
            interval_message = e.what();
        } catch (const std::exception &e) {
            interval = MutantOutcome::kUnexpected;
            interval_message =
                std::string("readInterval threw non-format error: ")
                + e.what();
        }
        if (outcomeSeverity(interval) > outcomeSeverity(result.outcome)
            || (interval != MutantOutcome::kReplayedIdentically
                && result.message.empty())) {
            result.outcome = interval;
            result.message = interval_message;
        }
    }
    return result;
}

ArchiveFaultSweepSummary
runArchiveFaultSweep(const Recording &rec, unsigned mutants_per_kind,
                     std::uint64_t seed0,
                     const ReplayCheckOptions &opts,
                     ArchiveLoadPath load_path)
{
    std::ostringstream buf;
    writeArchive(rec, buf);
    const std::string s = std::move(buf).str();
    const std::vector<std::uint8_t> archive(s.begin(), s.end());

    ArchiveFaultSweepSummary summary;
    for (unsigned k = 0; k < kArchiveMutationKinds; ++k) {
        for (unsigned i = 0; i < mutants_per_kind; ++i) {
            const std::uint64_t seed =
                seed0 * 1'000'003ull + k * 104'729ull + i;
            summary.add(runArchiveMutant(
                archive, static_cast<ArchiveMutationKind>(k), seed,
                opts, load_path));
        }
    }
    return summary;
}

// ----- ring-level fault injection -------------------------------------------

const char *
ringMutationKindName(RingMutationKind kind)
{
    switch (kind) {
      case RingMutationKind::kEvictedGap:
        return "evicted-gap";
      case RingMutationKind::kTornTail:
        return "torn-tail";
      case RingMutationKind::kStaleIndex:
        return "stale-index";
    }
    return "unknown";
}

namespace
{

namespace fs = std::filesystem;

/** Segment files of @p dir, name-sorted (== segId-sorted). */
std::vector<fs::path>
ringSegmentFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind("seg-", 0) == 0)
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

/**
 * Rewrite ring.index with a *valid* CRC over falsified contents: flip
 * the clean flag or perturb one live-set entry, then recompute the
 * checksum. The reader's scan cross-check — not the CRC — must catch
 * the lie.
 */
void
writeLyingIndex(const std::string &path, Xoshiro256ss &rng)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    constexpr std::size_t kPreamble = 40;
    if (bytes.size() < kPreamble + 16)
        return; // too short to lie about; leave as-is
    std::uint8_t *blob = bytes.data() + kPreamble;
    const std::size_t blob_size = bytes.size() - kPreamble;

    auto u64_at = [&](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(blob[off + i]) << (8 * i);
        return v;
    };
    auto put_at = [&](std::size_t off, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            blob[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    };

    const std::uint64_t count = u64_at(8);
    const std::size_t entries_end = 16 + 16 * count;
    bool lied = false;
    if (count > 0 && entries_end <= blob_size && rng.next() % 2 == 0) {
        // Falsify one retained entry: wrong size or wrong id.
        const std::size_t victim = rng.next() % count;
        const std::size_t off =
            16 + 16 * victim + (rng.next() % 2 ? 8 : 0);
        put_at(off, u64_at(off) + 1 + rng.next() % 1024);
        lied = true;
    }
    if (!lied)
        put_at(0, u64_at(0) ^ 1); // flip the clean flag
    // Recompute the preamble CRC so the checksum passes.
    std::uint64_t c = crc32(blob, blob_size);
    for (int i = 0; i < 8; ++i)
        bytes[32 + i] = static_cast<std::uint8_t>(c >> (8 * i));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

void
mutateRing(const std::string &dir, RingMutationKind kind,
           std::uint64_t seed)
{
    Xoshiro256ss rng(seed ^ 0x51BAD5EEDull);
    const std::vector<fs::path> segs = ringSegmentFiles(dir);
    switch (kind) {
      case RingMutationKind::kEvictedGap: {
        if (segs.empty())
            return;
        // Never the newest: model history rotting out from under the
        // window, not a tail crash (that is kTornTail's job).
        const std::size_t victims =
            segs.size() > 1 ? segs.size() - 1 : 1;
        fs::remove(segs[rng.next() % victims]);
        break;
      }
      case RingMutationKind::kTornTail: {
        if (segs.empty())
            return;
        const fs::path &tail = segs.back();
        const std::uintmax_t size = fs::file_size(tail);
        fs::resize_file(tail, size ? rng.next() % size : 0);
        break;
      }
      case RingMutationKind::kStaleIndex: {
        const std::string index = dir + "/ring.index";
        switch (rng.next() % 3) {
          case 0:
            fs::remove(index);
            break;
          case 1: {
            // Scribble: CRC (or structure) check must reject it.
            std::fstream f(index, std::ios::binary | std::ios::in
                                      | std::ios::out);
            if (!f)
                break;
            f.seekg(0, std::ios::end);
            const std::uint64_t size =
                static_cast<std::uint64_t>(f.tellg());
            const unsigned flips = 1 + rng.next() % 8;
            for (unsigned i = 0; i < flips && size; ++i) {
                const std::uint64_t off = rng.next() % size;
                f.seekg(static_cast<std::streamoff>(off));
                char byte = 0;
                f.read(&byte, 1);
                byte ^= static_cast<char>(1u << (rng.next() % 8));
                f.seekp(static_cast<std::streamoff>(off));
                f.write(&byte, 1);
            }
            break;
          }
          default:
            writeLyingIndex(index, rng);
            break;
        }
        break;
      }
    }
}

void
RingFaultSweepSummary::add(const RingMutantResult &r)
{
    ++total;
    if (r.salvaged)
        ++salvaged;
    switch (r.outcome) {
      case MutantOutcome::kRejectedAtLoad:
        ++rejectedAtLoad;
        break;
      case MutantOutcome::kReplayedIdentically:
        ++replayedIdentically;
        break;
      case MutantOutcome::kDivergenceDetected:
        ++divergenceDetected;
        break;
      case MutantOutcome::kReplayErrorReported:
        ++replayErrorReported;
        break;
      case MutantOutcome::kUnexpected:
        ++unexpected;
        unexpectedResults.push_back(r);
        break;
    }
}

std::string
RingFaultSweepSummary::describe() const
{
    std::ostringstream out;
    out << "ring fault sweep: " << total << " mutants | rejected "
        << rejectedAtLoad << " | identical " << replayedIdentically
        << " | divergence " << divergenceDetected << " | replay-error "
        << replayErrorReported << " | salvaged " << salvaged
        << " | UNEXPECTED " << unexpected;
    for (const RingMutantResult &r : unexpectedResults)
        out << "\n  " << ringMutationKindName(r.kind) << " seed "
            << r.seed << ": " << r.message;
    return out.str();
}

RingMutantResult
runRingMutant(const std::string &ring_dir, RingMutationKind kind,
              std::uint64_t seed, const ReplayCheckOptions &opts)
{
    RingMutantResult result;
    result.kind = kind;
    result.seed = seed;

    // Scratch copy, deterministic name per (kind, seed).
    const fs::path scratch =
        fs::temp_directory_path()
        / ("delorean-ring-mutant-"
           + std::to_string(static_cast<unsigned>(kind)) + "-"
           + std::to_string(seed));
    std::error_code ec;
    fs::remove_all(scratch, ec);
    try {
        fs::copy(ring_dir, scratch, fs::copy_options::recursive);
        mutateRing(scratch.string(), kind, seed);
    } catch (const std::exception &e) {
        fs::remove_all(scratch, ec);
        result.message =
            std::string("mutation setup failed: ") + e.what();
        return result;
    }

    std::optional<RingArchiveReader> ring;
    try {
        ring = RingArchiveReader::open(scratch.string());
    } catch (const ArchiveError &e) {
        result.outcome = MutantOutcome::kRejectedAtLoad;
        result.message = e.what();
        fs::remove_all(scratch, ec);
        return result;
    } catch (const std::exception &e) {
        result.outcome = MutantOutcome::kUnexpected;
        result.message =
            std::string("ring open threw non-archive error: ")
            + e.what();
        fs::remove_all(scratch, ec);
        return result;
    }

    result.salvaged = !ring->recovery().usedIndex
                      || ring->recovery().droppedSegments > 0;
    result.droppedSegments = ring->recovery().droppedSegments;

    // Replay whatever window recovery retained. A window too small to
    // bound (fewer than two checkpoints, e.g. a lone tail survivor)
    // has nothing to verify: the salvage itself is the result.
    result.outcome = MutantOutcome::kReplayedIdentically;
    const std::size_t checkpoints = ring->checkpointCount();
    if (checkpoints >= 2) {
        const std::size_t from = seed % (checkpoints - 1);
        try {
            const Recording view =
                ring->readInterval(from, from + 1);
            ReplayCheckOptions iopts = opts;
            iopts.startCheckpoint = 0;
            iopts.stopCheckpoint = 1;
            iopts.detectRaces = false;
            result.outcome =
                classifyRecording(view, iopts, result.message);
        } catch (const ArchiveError &e) {
            result.outcome = MutantOutcome::kRejectedAtLoad;
            result.message = e.what();
        } catch (const RecordingFormatError &e) {
            result.outcome = MutantOutcome::kRejectedAtLoad;
            result.message = e.what();
        } catch (const std::exception &e) {
            result.outcome = MutantOutcome::kUnexpected;
            result.message = std::string(
                                 "ring readInterval threw non-format "
                                 "error: ")
                             + e.what();
        }
    }

    // Unbounded leg: only meaningful when the mutant still claims a
    // clean close (a lying index may); it must either replay or fail
    // typed.
    if (result.outcome != MutantOutcome::kUnexpected
        && ring->recovery().clean && checkpoints >= 1) {
        MutantOutcome tail = MutantOutcome::kReplayedIdentically;
        std::string tail_message;
        try {
            const Recording view =
                ring->readInterval(checkpoints - 1);
            ReplayCheckOptions iopts = opts;
            iopts.startCheckpoint = 0;
            iopts.detectRaces = false;
            tail = classifyRecording(view, iopts, tail_message);
        } catch (const ArchiveError &e) {
            tail = MutantOutcome::kRejectedAtLoad;
            tail_message = e.what();
        } catch (const RecordingFormatError &e) {
            tail = MutantOutcome::kRejectedAtLoad;
            tail_message = e.what();
        } catch (const std::exception &e) {
            tail = MutantOutcome::kUnexpected;
            tail_message =
                std::string("ring unbounded read threw non-format "
                            "error: ")
                + e.what();
        }
        if (outcomeSeverity(tail) > outcomeSeverity(result.outcome)) {
            result.outcome = tail;
            result.message = tail_message;
        }
    }

    fs::remove_all(scratch, ec);
    return result;
}

RingFaultSweepSummary
runRingFaultSweep(const Recording &rec, unsigned mutants_per_kind,
                  std::uint64_t seed0, const ReplayCheckOptions &opts,
                  const RingOptions &ring_opts)
{
    const fs::path source =
        fs::temp_directory_path()
        / ("delorean-ring-sweep-" + std::to_string(seed0));
    std::error_code ec;
    fs::remove_all(source, ec);
    writeRing(rec, source.string(), ring_opts);

    RingFaultSweepSummary summary;
    for (unsigned k = 0; k < kRingMutationKinds; ++k) {
        for (unsigned i = 0; i < mutants_per_kind; ++i) {
            const std::uint64_t seed =
                seed0 * 1'000'003ull + k * 104'729ull + i;
            summary.add(runRingMutant(source.string(),
                                      static_cast<RingMutationKind>(k),
                                      seed, opts));
        }
    }
    fs::remove_all(source, ec);
    return summary;
}

} // namespace delorean
