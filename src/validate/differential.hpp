/**
 * @file
 * DifferentialChecker: one workload, every mode, cross-checked.
 *
 * Records a single workload under all three DeLorean modes —
 * Order&Size, OrderOnly and PicoLog — plus both PI-log flavors of
 * OrderOnly (flat per-commit PI and stratified per-interval counters),
 * replays each recording under perturbed timing, and cross-checks the
 * four runs against each other:
 *
 *   - every run must serialize/load/re-serialize byte-identically and
 *     replay deterministically (checkedReplay);
 *   - within every run, the periodic interval fingerprints of the
 *     recorded and replayed commit streams must agree at every
 *     boundary (per-processor streams for stratified logs, whose
 *     global interleaving is not canonical);
 *   - serial and parallel replay describe the same execution: both
 *     the lookahead-window arbiter (replayWindow > 1) and the
 *     host-parallel chunk-body replayer must reproduce the serial
 *     replay's fingerprint and interval fingerprints byte-identically
 *     (per-processor streams for stratified logs);
 *   - flat and stratified OrderOnly recordings describe the *same*
 *     execution (identical fingerprints — commits, per-processor
 *     state and final memory hash), because stratification only
 *     re-encodes the PI log;
 *   - log-size ordering invariants from the paper: PicoLog writes no
 *     PI bits at all (predefined commit order), the stratified PI log
 *     is no larger than the flat OrderOnly PI log, and the combined
 *     OrderOnly log (PI+CS) is no larger than Order&Size's (which
 *     logs a size for every chunk rather than only truncated ones).
 *
 * Note the last invariant is deliberately stated over PI+CS, not PI
 * alone: chunking differs slightly across modes, so the raw PI bit
 * count alone is not ordered (empirically, ocean at 4 processors
 * records 675 OrderOnly PI bits vs 624 Order&Size PI bits while the
 * combined logs are 1027 vs 1470).
 *
 * Final states are NOT compared across modes: the SPLASH-2 workload
 * models contain data races whose outcome legitimately depends on the
 * commit interleaving, and the mode determines where chunks are cut.
 * Different modes therefore record different (all valid) executions;
 * what DeLorean guarantees — and what this checker verifies — is
 * that each recorded execution replays deterministically.
 */

#ifndef DELOREAN_VALIDATE_DIFFERENTIAL_HPP_
#define DELOREAN_VALIDATE_DIFFERENTIAL_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recording.hpp"
#include "sim/campaign.hpp"
#include "validate/divergence.hpp"

namespace delorean
{

/** One differential job: the workload and knobs shared by all runs. */
struct DifferentialJob
{
    std::string app = "fft";
    unsigned numProcs = 4;
    std::uint64_t workloadSeed = 20080621;
    unsigned scalePercent = 10;
    std::uint64_t recordEnvSeed = 1;
    /// Replay environment seed — different from recordEnvSeed so
    /// determinism is demonstrated, not inherited from timing luck.
    std::uint64_t replayEnvSeed = 99;
    /// Chunks per processor per stratum for the stratified PI run.
    unsigned stratifyChunksPerProc = 3;
    /// Apply Section 6.2.1 timing perturbation to the replays.
    bool perturbReplay = true;
    /// Commits per localizer interval fingerprint.
    std::uint64_t localizerPeriod = 32;
    /// Lookahead window used for the windowed-arbiter and the
    /// chunk-parallel replay legs.
    unsigned parallelWindow = 8;
    /// WorkerPool width for the chunk-parallel leg; 0 = DELOREAN_JOBS.
    unsigned parallelJobs = 0;
    /// Take a system checkpoint every this many global commits during
    /// the record run, then archive the recording (src/store) and
    /// replay the interval from every checkpoint straight off the
    /// archive. Also drives the ring legs: a full-budget and a
    /// tight-budget (evicting) ring archive whose interval views must
    /// byte-match the batch archive's. 0 disables both container leg
    /// families.
    std::uint64_t checkpointPeriod = 40;
    /// Arbiter shard count (MachineConfig::bulk.numArbiters). Above 1
    /// the flat-PI runs record shard masks (format v2 partial order)
    /// and two extra legs pin the serial and chunk-parallel replays to
    /// the logged total order, asserting the partial-order replays
    /// produce byte-identical fingerprints. Must be a power of two in
    /// [1, 64].
    unsigned shards = 1;
};

/** One (mode, PI-flavor) recording + checked replay. */
struct DifferentialRun
{
    std::string label;       ///< "order-and-size", "order-only",
                             ///< "order-only-strat", "picolog"
    ModeConfig mode;
    bool stratified = false;
    bool recorded = false;   ///< record + serialize round trip ran
    bool roundTripIdentical = false; ///< save/load/save byte-equal
    bool replayOk = false;   ///< checkedReplay succeeded (serial)
    /// Recorded vs replayed periodic interval fingerprints agree at
    /// every boundary (localizerPeriod commits apart).
    bool intervalsMatch = false;
    /// Replay with the lookahead-window arbiter (replayWindow =
    /// job.parallelWindow) succeeded.
    bool windowedReplayOk = false;
    /// Windowed replay's fingerprint AND interval fingerprints agree
    /// with the serial replay's (exactly; per-processor streams for
    /// stratified logs, whose global retire order is legally relaxed).
    bool windowedMatchesSerial = false;
    /// checkedParallelReplay (host-parallel chunk bodies) succeeded.
    bool parallelReplayOk = false;
    /// Chunk-parallel replay's fingerprint AND interval fingerprints
    /// agree with the serial replay's (same comparison rule).
    bool parallelMatchesSerial = false;
    /// Archive legs (job.checkpointPeriod != 0): the archived
    /// recording read back whole is byte-identical under
    /// saveRecording().
    bool archiveRoundTripIdentical = false;
    /// Interval replay straight off the archive reproduced the
    /// recording from *every* checkpoint (per-processor comparison
    /// for stratified logs).
    bool archiveIntervalsOk = false;
    /// The container written with a multi-thread segment codec is
    /// byte-identical to the one written serially (ioThreads = 1) —
    /// the parallel data plane must never change the bytes.
    bool archiveParallelWriteIdentical = false;
    /// Checkpoints the record run took (archive segments minus one).
    std::size_t archiveCheckpoints = 0;
    /// Ring legs (job.checkpointPeriod != 0): a full-budget ring of
    /// the recording reads back whole byte-identically AND every
    /// per-checkpoint interval view off the ring is byte-identical to
    /// the batch archive's view of the same interval.
    bool ringRoundTripIdentical = false;
    /// A bounded interval replay straight off the ring reproduced the
    /// recording (per-processor comparison for stratified logs).
    bool ringIntervalsOk = false;
    /// A tight-budget ring (eviction exercised) still serves interval
    /// views byte-identical to the archive's over the GCC window it
    /// retained, and its worst replay-start lag stayed within the
    /// configured bound.
    bool ringEvictedWindowOk = false;
    /// Segments the tight-budget ring evicted.
    std::uint64_t ringEvicted = 0;
    /// True when the recording carries PI shard masks (job.shards > 1
    /// and a flat-PI mode), enabling the total-order legs below.
    bool partialOrder = false;
    /// Serial + chunk-parallel replays pinned to the logged total
    /// order (honorPartialOrder = false) both succeeded.
    bool totalOrderReplayOk = false;
    /// Both total-order replays produced fingerprints (and interval
    /// fingerprints) byte-identical to the partial-order serial
    /// replay's.
    bool partialMatchesTotal = false;
    DivergenceReport report; ///< failure detail when !replayOk
    DivergenceReport parallelReport; ///< ditto for the parallel legs
    LogSizeReport sizes;
    ExecutionFingerprint fingerprint;
    std::string error;       ///< exception text when !recorded

    /** Combined memory-ordering log size (PI + CS), raw bits. */
    std::uint64_t
    totalLogBits() const
    {
        return sizes.pi.rawBits + sizes.cs.rawBits;
    }
};

/** Outcome of one differential job: the runs plus the cross-checks. */
struct DifferentialResult
{
    DifferentialJob job;
    std::vector<DifferentialRun> runs;
    /// Human-readable cross-check violations; empty when ok().
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }

    const DifferentialRun *findRun(const std::string &label) const;

    /** Multi-line human-readable rendering. */
    std::string describe() const;
};

/**
 * Runs differential jobs, fanning the per-mode record/replay tasks
 * across a CampaignRunner worker pool.
 */
class DifferentialChecker
{
  public:
    /** @param jobs worker count; 0 uses campaignJobs(). */
    explicit DifferentialChecker(unsigned jobs = 0) : runner_(jobs) {}

    /** Run the four mode configurations of @p job and cross-check. */
    DifferentialResult check(const DifferentialJob &job) const;

    /**
     * Run one job per SPLASH-2 application (AppTable::splash2Names),
     * with @p base providing every non-app knob.
     */
    std::vector<DifferentialResult>
    checkAllApps(const DifferentialJob &base = {}) const;

  private:
    CampaignRunner runner_;
};

} // namespace delorean

#endif // DELOREAN_VALIDATE_DIFFERENTIAL_HPP_
