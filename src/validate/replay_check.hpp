/**
 * @file
 * Checked replay: replay a Recording with every failure mode fenced.
 *
 * The contract the fault injector and the replay_check CLI rely on:
 * for ANY byte string that parses as a Recording, checkedReplay()
 * terminates in bounded time and returns either success or a
 * structured DivergenceReport — never a crash, a hang, or a silent
 * wrong answer. Malformed recordings are rejected by
 * validateRecording(); replays that cannot follow the log raise
 * typed ReplayErrors (converted to reports); replays that run but
 * produce a different execution are localized to the first divergent
 * chunk; and a shrunken event budget converts any livelock a corrupt
 * log could cause into a prompt ReplayBudgetExceeded.
 */

#ifndef DELOREAN_VALIDATE_REPLAY_CHECK_HPP_
#define DELOREAN_VALIDATE_REPLAY_CHECK_HPP_

#include <cstdint>

#include "analysis/race_detector.hpp"
#include "core/engine.hpp"
#include "core/recording.hpp"
#include "sim/parallel_replay.hpp"
#include "validate/divergence.hpp"

namespace delorean
{

/** Knobs for a checked replay. */
struct ReplayCheckOptions
{
    /// Environment (device/noise) seed — deliberately different from
    /// typical record seeds so determinism is not timing luck.
    std::uint64_t envSeed = 99;
    /// Replay event budget; 0 derives one from the recording's size
    /// (defaultReplayEventBudget).
    std::uint64_t maxEvents = 0;
    /// Commits per localizer interval fingerprint.
    std::uint64_t localizerPeriod = 64;
    /// Timing perturbation (Section 6.2.1) applied to the replay.
    ReplayPerturbation perturb{};
    /// Lookahead window for the replay arbiter
    /// (EngineOptions::replayWindow); 1 fully serializes replay. The
    /// derived event budget scales with this so a stalled parallel
    /// replay still fails in milliseconds.
    unsigned replayWindow = 1;
    /// EngineOptions::honorPartialOrder: replay v2 shard-masked PI
    /// logs under the recorded partial order. False pins the replay to
    /// the logged total order (always valid). Differential legs toggle
    /// this to assert the two produce byte-identical fingerprints.
    bool honorPartialOrder = true;

    static constexpr std::size_t kFullRun =
        static_cast<std::size_t>(-1);
    /// Replay only I(checkpoints[startCheckpoint].gcc, ...) instead
    /// of the whole run (interval replay, Appendix B). Index into
    /// Recording::checkpoints; kFullRun replays from the start. The
    /// divergence classification then compares against the expected
    /// interval fingerprint, not the full recording's.
    std::size_t startCheckpoint = kFullRun;
    /// Bound the interval at checkpoints[stopCheckpoint].gcc (must be
    /// greater than startCheckpoint). kFullRun runs to program end.
    /// Only meaningful for the serial engine (checkedReplay).
    std::size_t stopCheckpoint = kFullRun;
    /// Attach the happens-before race detector (analysis/) to the
    /// replay and fill ReplayCheckResult::races. Requires a full-run
    /// replay: combining with startCheckpoint/stopCheckpoint is
    /// rejected as a kFormatError report before the replay starts.
    bool detectRaces = false;
};

/** Outcome of a checked replay. */
struct ReplayCheckResult
{
    /// True iff the replay ran and reproduced the recording's
    /// fingerprint (exactly; per-processor for stratified logs).
    bool ok = false;
    /// kNone when ok; otherwise the classified failure.
    DivergenceReport report;
    /// Engine outcome; meaningful only when replayRan.
    ReplayOutcome outcome;
    /// True when the engine ran to completion (even if divergent).
    bool replayRan = false;
    /// Race-detector output; meaningful only when the options asked
    /// for detection and the replay ran to completion.
    RaceReport races;
};

/**
 * Event budget scaled to the recording's actual size: generous per
 * commit (a healthy replay uses a few dozen events per commit, this
 * allows thousands) yet small enough that a corrupted log failing to
 * make progress dies in milliseconds instead of the global 2e9-event
 * safety valve. A lookahead window keeps up to @p replay_window
 * chunks in flight, each generating its own slot-occupancy and retry
 * events while the log head stalls, so the budget grows linearly with
 * the window — a livelocked W=8 replay dies as promptly as a serial
 * one instead of taking 8x the events to hit the fence.
 */
std::uint64_t defaultReplayEventBudget(const Recording &rec,
                                       unsigned replay_window = 1);

/** Replay @p rec under the contract described in the file header. */
ReplayCheckResult checkedReplay(const Recording &rec,
                                const ReplayCheckOptions &opts = {});

/**
 * Chunk-parallel (host-parallel, architectural) replay of @p rec
 * under the same contract as checkedReplay(): bounded time, typed
 * failures converted to structured reports, divergences localized.
 * The instruction budget fences livelock the way maxEvents does for
 * the engine. @p opts contributes the localizer period (envSeed and
 * perturbation do not apply — the architectural replayer has no
 * timing to perturb).
 */
ReplayCheckResult
checkedParallelReplay(const Recording &rec,
                      const ParallelReplayOptions &popts = {},
                      const ReplayCheckOptions &opts = {});

} // namespace delorean

#endif // DELOREAN_VALIDATE_REPLAY_CHECK_HPP_
