/**
 * @file
 * Checked replay: replay a Recording with every failure mode fenced.
 *
 * The contract the fault injector and the replay_check CLI rely on:
 * for ANY byte string that parses as a Recording, checkedReplay()
 * terminates in bounded time and returns either success or a
 * structured DivergenceReport — never a crash, a hang, or a silent
 * wrong answer. Malformed recordings are rejected by
 * validateRecording(); replays that cannot follow the log raise
 * typed ReplayErrors (converted to reports); replays that run but
 * produce a different execution are localized to the first divergent
 * chunk; and a shrunken event budget converts any livelock a corrupt
 * log could cause into a prompt ReplayBudgetExceeded.
 */

#ifndef DELOREAN_VALIDATE_REPLAY_CHECK_HPP_
#define DELOREAN_VALIDATE_REPLAY_CHECK_HPP_

#include <cstdint>

#include "core/engine.hpp"
#include "core/recording.hpp"
#include "validate/divergence.hpp"

namespace delorean
{

/** Knobs for a checked replay. */
struct ReplayCheckOptions
{
    /// Environment (device/noise) seed — deliberately different from
    /// typical record seeds so determinism is not timing luck.
    std::uint64_t envSeed = 99;
    /// Replay event budget; 0 derives one from the recording's size
    /// (defaultReplayEventBudget).
    std::uint64_t maxEvents = 0;
    /// Commits per localizer interval fingerprint.
    std::uint64_t localizerPeriod = 64;
    /// Timing perturbation (Section 6.2.1) applied to the replay.
    ReplayPerturbation perturb{};
};

/** Outcome of a checked replay. */
struct ReplayCheckResult
{
    /// True iff the replay ran and reproduced the recording's
    /// fingerprint (exactly; per-processor for stratified logs).
    bool ok = false;
    /// kNone when ok; otherwise the classified failure.
    DivergenceReport report;
    /// Engine outcome; meaningful only when replayRan.
    ReplayOutcome outcome;
    /// True when the engine ran to completion (even if divergent).
    bool replayRan = false;
};

/**
 * Event budget scaled to the recording's actual size: generous per
 * commit (a healthy replay uses a few dozen events per commit, this
 * allows thousands) yet small enough that a corrupted log failing to
 * make progress dies in milliseconds instead of the global 2e9-event
 * safety valve.
 */
std::uint64_t defaultReplayEventBudget(const Recording &rec);

/** Replay @p rec under the contract described in the file header. */
ReplayCheckResult checkedReplay(const Recording &rec,
                                const ReplayCheckOptions &opts = {});

} // namespace delorean

#endif // DELOREAN_VALIDATE_REPLAY_CHECK_HPP_
