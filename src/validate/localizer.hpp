/**
 * @file
 * Divergence localizer: name the first divergent chunk.
 *
 * Given the recorded and replayed execution fingerprints, build
 * periodic interval fingerprints (prefix hashes of the commit stream,
 * core/fingerprint.hpp) and binary-search over interval boundaries
 * for the last boundary where the two streams still agree — the
 * software analogue of bisecting between periodic hardware
 * checkpoints (Appendix B). Only the final partial interval is then
 * scanned element-wise, so localization costs O(log n) boundary
 * probes plus one interval, not a full-stream walk.
 *
 * When the Recording is supplied, the divergent commit is traced back
 * to the log record that drove it: the PI entry for flat-log modes,
 * the stratum for stratified recordings (where the global order is
 * not canonical and per-processor streams are compared instead), or
 * the predefined round-robin order for PicoLog.
 */

#ifndef DELOREAN_VALIDATE_LOCALIZER_HPP_
#define DELOREAN_VALIDATE_LOCALIZER_HPP_

#include <cstdint>

#include "core/recording.hpp"
#include "validate/divergence.hpp"

namespace delorean
{

/** Localizer tuning. */
struct LocalizerOptions
{
    /// Commits per interval fingerprint (binary-search granularity).
    std::uint64_t period = 64;
};

/**
 * Compare @p recorded against @p replayed and return a report naming
 * the first divergence. Returns kind kNone when the fingerprints
 * match (exactly, or per-processor when @p rec is stratified).
 * @p rec may be null; it is only used to attribute the divergent
 * commit to a log record.
 */
DivergenceReport
localizeDivergence(const ExecutionFingerprint &recorded,
                   const ExecutionFingerprint &replayed,
                   const Recording *rec,
                   const LocalizerOptions &opts = {});

} // namespace delorean

#endif // DELOREAN_VALIDATE_LOCALIZER_HPP_
