/**
 * @file
 * Global memory-access order capture.
 *
 * The conventional recorders (FDR, RTR, Strata) observe the
 * interleaved sequence of coherence events of an SC machine. The SC
 * interleaved executor emits this sequence through an AccessSink; the
 * baseline recorders in src/baselines consume it.
 */

#ifndef DELOREAN_SIM_ACCESS_ORDER_HPP_
#define DELOREAN_SIM_ACCESS_ORDER_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace delorean
{

/** One memory operation in global (SC) order. */
struct AccessRecord
{
    ProcId proc = 0;
    Addr line = 0;          ///< line address (HW race detection granularity)
    bool isWrite = false;
    bool isRead = false;    ///< AMOs are both read and write
    InstrCount instrIndex = 0; ///< per-processor dynamic instruction count
    InstrCount memopIndex = 0; ///< per-processor memory-operation count
};

/** Consumer of the global access order. */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;
    virtual void onAccess(const AccessRecord &record) = 0;
};

/** Sink that stores every access (use only for bounded runs). */
class VectorAccessSink : public AccessSink
{
  public:
    void
    onAccess(const AccessRecord &record) override
    {
        records_.push_back(record);
    }

    const std::vector<AccessRecord> &records() const { return records_; }

  private:
    std::vector<AccessRecord> records_;
};

} // namespace delorean

#endif // DELOREAN_SIM_ACCESS_ORDER_HPP_
