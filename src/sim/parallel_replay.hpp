/**
 * @file
 * Chunk-parallel replay engine (Section 3.3's observation made
 * concrete): the PI log constrains only the *commit order* of chunks,
 * so chunk bodies from different processors can execute concurrently
 * during replay — only their retirement must follow the log.
 *
 * ParallelReplayer is the host-parallel counterpart of
 * ChunkEngine::replay(). It drops the cycle-accurate memory system
 * (caches, directory, arbiter timing) and replays architecturally: a
 * lookahead window dispatches the next W chunk bodies — one per
 * processor, respecting per-processor program order — onto the
 * campaign WorkerPool, where they execute optimistically against the
 * committed memory image. A serial retire pass then commits them
 * strictly in logged order (PI log for Order&Size/OrderOnly, the
 * predefined round-robin for PicoLog, per-stratum budgets for
 * stratified logs), value-validating each body's read set first; a
 * body that observed since-overwritten values is re-executed inline
 * at its retire turn, exactly like a hardware squash-and-replay.
 *
 * Determinism: retire order is a pure function of the recording (for
 * stratified logs the canonical lowest-processor order within each
 * stratum), and every retired body is validated against — or
 * re-executed on — the committed memory at its turn, so the replayed
 * fingerprint is byte-identical at any worker count and any window
 * width: exact for flat logs, per-processor-stream for stratified
 * ones (whose global interleaving is legally relaxed).
 */

#ifndef DELOREAN_SIM_PARALLEL_REPLAY_HPP_
#define DELOREAN_SIM_PARALLEL_REPLAY_HPP_

#include <cstdint>

#include "core/engine.hpp"
#include "core/recording.hpp"
#include "trace/workload.hpp"

namespace delorean
{

/** Knobs of a chunk-parallel replay. */
struct ParallelReplayOptions
{
    /// Lookahead window: maximum chunk bodies in flight per wave (one
    /// per processor). 1 executes bodies one at a time.
    unsigned window = 8;
    /// WorkerPool width; 0 uses campaignJobs() (DELOREAN_JOBS).
    unsigned jobs = 0;
    /// Executed-instruction budget; 0 derives one from the recording
    /// so a corrupted log fails with ReplayBudgetExceeded promptly.
    std::uint64_t maxInstrs = 0;
    /// For v2 partial-order recordings (PI shard masks), retire under
    /// exactly the recorded per-shard + program-order constraints
    /// instead of the logged total order. The fingerprint is filled
    /// positionally, so it stays byte-identical to a total-order
    /// replay. False forces the classic total-order cursor (the log's
    /// entry sequence is always a valid linearization).
    bool honorPartialOrder = true;
    /// Replay-time analysis plugin (see core/replay_observer.hpp).
    /// Borrowed, never owned; callbacks are re-sequenced into
    /// canonical commit order on the coordinator thread, so the event
    /// stream is byte-identical at any jobs/window/shard setting.
    ReplayObserver *observer = nullptr;
};

/**
 * Instruction budget for a chunk-parallel replay of @p rec, derived
 * from parsed log content (never the headline stats): speculative
 * execution plus squash re-execution stay well under 4x the recorded
 * work, so anything past that is a corrupt log spinning.
 */
std::uint64_t defaultParallelReplayInstrBudget(const Recording &rec);

/** Replays recordings with chunk bodies executing in parallel. */
class ParallelReplayer
{
  public:
    explicit ParallelReplayer(const ParallelReplayOptions &opts = {})
        : opts_(opts)
    {
    }

    /**
     * Replay @p rec; the workload is rebuilt from its metadata. The
     * recording should already have passed validateRecording() (the
     * checked entry points do this); inconsistencies encountered
     * mid-replay raise typed ReplayErrors.
     */
    ReplayOutcome replay(const Recording &rec) const;

    /** Replay with an explicitly provided (matching) workload. */
    ReplayOutcome replay(const Recording &rec,
                         const Workload &workload) const;

  private:
    ParallelReplayOptions opts_;
};

} // namespace delorean

#endif // DELOREAN_SIM_PARALLEL_REPLAY_HPP_
