#include "sim/interleaved_executor.hpp"

#include <algorithm>
#include <cassert>

#include "memory/cache.hpp"
#include "memory/memory_state.hpp"
#include "trace/devices.hpp"
#include "trace/layout.hpp"

namespace delorean
{

namespace
{

/** Extra serialization charged for a special system instruction. */
constexpr double kSpecialSysCost = 50.0;

} // namespace

InterleavedResult
InterleavedExecutor::run(const Workload &workload, std::uint64_t env_seed,
                         AccessSink *sink) const
{
    const unsigned n = workload.numProcs();
    const ThreadProgram &prog = workload.program();
    const TimingModel timing(machine_, model_);

    MemoryState mem;
    workload.initializeMemory(mem);
    CacheHierarchy caches(machine_);
    Directory dir;

    InterruptSource irq(workload.profile(), n, env_seed);
    DmaEngine dma(workload.profile(), env_seed);
    IoDevice io(env_seed);

    std::vector<ThreadContext> ctxs(n);
    std::vector<double> clock(n, 0.0);
    std::vector<InstrCount> memops(n, 0);
    for (ProcId p = 0; p < n; ++p)
        prog.initContext(ctxs[p], p);

    InstrCount total_instrs = 0;
    InterleavedResult result;

    auto applyDma = [&](const DmaTransfer &xfer) {
        for (std::size_t i = 0; i < xfer.wordAddrs.size(); ++i) {
            const Addr word = wordOf(xfer.wordAddrs[i]);
            mem.store(word, xfer.values[i]);
            const Addr line = lineOf(xfer.wordAddrs[i]);
            for (ProcId p = 0; p < n; ++p)
                caches.l1(p).invalidate(line);
            dir.countControlMessage();
        }
        dir.countLineTransfer();
    };

    while (true) {
        // Pick the runnable thread with the smallest local clock.
        ProcId next = n;
        for (ProcId p = 0; p < n; ++p) {
            if (ctxs[p].done)
                continue;
            if (next == n || clock[p] < clock[next])
                next = p;
        }
        if (next == n)
            break; // all threads finished

        ThreadContext &ctx = ctxs[next];

        InterruptEvent ie;
        if (irq.poll(next, ctx.retired, ie))
            prog.deliverInterrupt(ctx, ie.type, ie.data);

        DmaTransfer xfer;
        if (dma.poll(total_instrs, xfer))
            applyDma(xfer);

        const Instr in = prog.generate(ctx);
        std::uint64_t load_value = 0;
        double cost = 0.0;

        switch (in.op) {
          case Op::kCompute:
            cost = timing.computeCost();
            result.costCompute += cost;
            break;
          case Op::kSpecialSys:
            cost = timing.computeCost() + kSpecialSysCost;
            break;
          case Op::kIoLoad:
            load_value = io.read(in.addr);
            ++ctx.ioLoadCount;
            cost = timing.memCost(in.op, HitLevel::kMemory);
            break;
          case Op::kIoStore:
            cost = timing.memCost(in.op, HitLevel::kMemory);
            break;
          case Op::kLoad:
          case Op::kStore:
          case Op::kAmoSwap:
          case Op::kAmoFetchAdd: {
            const Addr word = wordOf(in.addr);
            const Addr line = lineOf(in.addr);
            const bool write = writesMemory(in.op);
            const bool read = returnsValue(in.op);

            const HitLevel level = caches.access(next, line);
            if (level != HitLevel::kL1)
                dir.countLineTransfer();
            dir.addSharer(next, line);
            cost = timing.memCost(in.op, level);
            switch (level) {
              case HitLevel::kL1:
                ++result.l1Hits;
                result.costL1 += cost;
                break;
              case HitLevel::kL2:
                ++result.l2Hits;
                result.costL2 += cost;
                break;
              case HitLevel::kMemory:
                ++result.memHits;
                result.costMem += cost;
                break;
            }
            if (in.op == Op::kAmoSwap || in.op == Op::kAmoFetchAdd)
                result.costAmo += cost;

            if (read)
                load_value = mem.load(word);
            if (in.op == Op::kStore)
                mem.store(word, in.value);
            else if (in.op == Op::kAmoSwap)
                mem.store(word, in.value);
            else if (in.op == Op::kAmoFetchAdd)
                mem.store(word, load_value + in.value);
            if (write) {
                // MESI-style: invalidations only when someone else
                // actually holds a copy (once per ownership episode).
                if (dir.sharersOf(line) & ~(1ull << next)) {
                    dir.commitWrite(next, line);
                    caches.invalidateOthers(next, line);
                }
            }

            if (sink) {
                AccessRecord rec;
                rec.proc = next;
                rec.line = line;
                rec.isWrite = write;
                rec.isRead = read;
                rec.instrIndex = ctx.retired;
                rec.memopIndex = memops[next];
                sink->onAccess(rec);
            }
            ++memops[next];
            break;
          }
        }

        prog.observe(ctx, in, load_value);
        clock[next] += cost;
        ++total_instrs;
    }

    result.totalInstrs = total_instrs;
    result.perProcInstrs.resize(n);
    result.perProcAcc.resize(n);
    double max_clock = 0.0;
    for (ProcId p = 0; p < n; ++p) {
        result.perProcInstrs[p] = ctxs[p].retired;
        result.perProcAcc[p] = ctxs[p].acc;
        max_clock = std::max(max_clock, clock[p]);
    }
    result.cycles = static_cast<Cycle>(max_clock);
    result.finalMemHash = mem.hash();
    result.traffic = dir.traffic();
    return result;
}

} // namespace delorean
