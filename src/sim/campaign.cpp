#include "sim/campaign.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/recorder.hpp"
#include "trace/workload.hpp"

namespace delorean
{

unsigned
campaignJobs()
{
    if (const char *env = std::getenv("DELOREAN_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

CampaignRunner::CampaignRunner(unsigned jobs)
    : jobs_(jobs ? jobs : campaignJobs())
{
}

void
CampaignRunner::run(std::vector<std::function<void()>> tasks) const
{
    if (tasks.empty())
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, tasks.size()));
    if (workers <= 1) {
        for (auto &task : tasks)
            task();
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            try {
                tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> guard(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto &thread : threads)
        thread.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

WorkerPool::WorkerPool(unsigned jobs)
    : jobs_(jobs ? jobs : campaignJobs())
{
    threads_.reserve(jobs_ > 0 ? jobs_ - 1 : 0);
    for (unsigned t = 0; t + 1 < jobs_; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> guard(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

/**
 * Execute tasks [first, size) as claimed from next_. @p size is
 * captured under the pool mutex by every participant, so a worker
 * whose first claim overshoots the batch never touches @p tasks at
 * all (the batch may already be retired by then). A participant with
 * executed-but-unaccounted tasks keeps the batch alive: runBatch()
 * cannot observe completed_ == size until every execution has been
 * accounted, so element access inside the loop is safe.
 */
void
WorkerPool::drainFrom(std::vector<std::function<void()>> *tasks,
                      std::size_t size, std::size_t first)
{
    std::size_t done = 0;
    for (std::size_t i = first; i < size;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
        try {
            (*tasks)[i]();
        } catch (...) {
            std::lock_guard<std::mutex> guard(mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        ++done;
    }
    if (done) {
        std::lock_guard<std::mutex> guard(mu_);
        completed_ += done;
        if (completed_ == size)
            done_cv_.notify_all();
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::vector<std::function<void()>> *tasks = nullptr;
        std::size_t size = 0;
        std::size_t first = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (!batch_)
                continue; // batch drained and retired before we woke
            tasks = batch_;
            size = batch_->size();
            // First claim under the lock: batch_ != nullptr here, so
            // the index provably belongs to this batch.
            first = next_.fetch_add(1, std::memory_order_relaxed);
        }
        drainFrom(tasks, size, first);
    }
}

void
WorkerPool::runBatch(std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    if (threads_.empty()) {
        std::exception_ptr error;
        for (auto &task : tasks) {
            try {
                task();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    {
        std::lock_guard<std::mutex> guard(mu_);
        batch_ = &tasks;
        completed_ = 0;
        first_error_ = nullptr;
        next_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    work_cv_.notify_all();
    drainFrom(&tasks, tasks.size(),
              next_.fetch_add(1, std::memory_order_relaxed));

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock,
                      [this, &tasks] { return completed_ == tasks.size(); });
        batch_ = nullptr;
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// Recording cache
// ---------------------------------------------------------------------------

namespace
{

void
appendField(std::string &key, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64 "|", v);
    key += buf;
}

} // namespace

std::string
recordJobKey(const RecordJob &job)
{
    std::string key = job.app;
    key += '|';
    appendField(key, job.workloadSeed);
    appendField(key, job.scalePercent);
    appendField(key, job.envSeed);
    appendField(key, job.logging);

    const MachineConfig &m = job.machine;
    appendField(key, m.numProcs);
    appendField(key, static_cast<std::uint64_t>(m.proc.ghz * 1000));
    appendField(key, m.proc.fetchWidth);
    appendField(key, m.proc.issueWidth);
    appendField(key, m.proc.commitWidth);
    appendField(key, m.proc.robSize);
    appendField(key, m.proc.branchPenalty);
    appendField(key, m.proc.branchMissPerMille);
    appendField(key, m.mem.l1SizeBytes);
    appendField(key, m.mem.l1Ways);
    appendField(key, m.mem.l1RoundTrip);
    appendField(key, m.mem.l1Mshrs);
    appendField(key, m.mem.l2SizeBytes);
    appendField(key, m.mem.l2Ways);
    appendField(key, m.mem.l2RoundTrip);
    appendField(key, m.mem.l2Mshrs);
    appendField(key, m.mem.memRoundTrip);
    appendField(key, m.bulk.signatureBits);
    appendField(key, m.bulk.commitArbitration);
    appendField(key, m.bulk.maxConcurrentCommits);
    appendField(key, m.bulk.simultaneousChunks);
    appendField(key, m.bulk.numArbiters);
    appendField(key, m.bulk.numDirectories);
    appendField(key, m.bulk.collisionBackoffThreshold);
    appendField(key, m.bulk.exactDisambiguation);

    const ModeConfig &mode = job.mode;
    appendField(key, static_cast<std::uint64_t>(mode.mode));
    appendField(key, mode.chunkSize);
    appendField(key, mode.varSizeTruncatePercent);
    appendField(key, mode.csDistanceBits);
    appendField(key, mode.csSizeBits);
    appendField(key, mode.piProcIdBits);
    appendField(key, mode.stratifyChunksPerProc);
    return key;
}

const Recording &
RecordingCache::record(const RecordJob &job, bool *fresh)
{
    return recordWith(
        job,
        [&job] {
            const Workload workload(job.app, job.machine.numProcs,
                                    job.workloadSeed,
                                    WorkloadScale{job.scalePercent});
            const Recorder recorder(job.mode, job.machine);
            return recorder.record(workload, job.envSeed, job.logging);
        },
        fresh);
}

const Recording &
RecordingCache::recordWith(const RecordJob &job,
                           const std::function<Recording()> &run,
                           bool *fresh)
{
    Entry *entry;
    {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = entries_.find(recordJobKey(job));
        if (it == entries_.end()) {
            it = entries_
                     .emplace(recordJobKey(job),
                              std::make_unique<Entry>())
                     .first;
        }
        entry = it->second.get();
    }

    std::lock_guard<std::mutex> guard(entry->mu);
    if (!entry->done) {
        entry->rec = run();
        entry->done = true;
        ++misses_;
        if (fresh)
            *fresh = true;
    } else {
        ++hits_;
        if (fresh)
            *fresh = false;
    }
    return entry->rec;
}

// ---------------------------------------------------------------------------
// BENCH_campaign.json
// ---------------------------------------------------------------------------

std::string
campaignReportPath()
{
    if (const char *env = std::getenv("DELOREAN_BENCH_JSON"))
        if (*env)
            return env;
    return "BENCH_campaign.json";
}

namespace
{

/**
 * Parse the top level of `{ "key": <value>, ... }` into (key, raw
 * value text) pairs, preserving order. Values are captured verbatim
 * (objects by brace matching, respecting strings). Returns false on
 * anything unexpected, in which case the caller starts fresh.
 */
bool
parseTopLevel(const std::string &text,
              std::vector<std::pair<std::string, std::string>> &out)
{
    std::size_t i = 0;
    const auto skipWs = [&] {
        while (i < text.size()
               && std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };

    skipWs();
    if (i >= text.size() || text[i] != '{')
        return false;
    ++i;
    for (;;) {
        skipWs();
        if (i >= text.size())
            return false;
        if (text[i] == '}')
            return true;
        if (text[i] != '"')
            return false;
        ++i;
        std::string key;
        while (i < text.size() && text[i] != '"') {
            if (text[i] == '\\')
                return false; // escaped keys: not ours, start fresh
            key += text[i++];
        }
        if (i >= text.size())
            return false;
        ++i; // closing quote
        skipWs();
        if (i >= text.size() || text[i] != ':')
            return false;
        ++i;
        skipWs();
        if (i >= text.size() || text[i] != '{')
            return false;
        const std::size_t start = i;
        int depth = 0;
        bool in_string = false;
        for (; i < text.size(); ++i) {
            const char c = text[i];
            if (in_string) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}') {
                if (--depth == 0) {
                    ++i;
                    break;
                }
            }
        }
        if (depth != 0)
            return false;
        out.emplace_back(key, text.substr(start, i - start));
        skipWs();
        if (i < text.size() && text[i] == ',')
            ++i;
    }
}

std::string
formatEntry(const CampaignReport &r)
{
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "    \"jobs\": %u,\n"
                  "    \"job_count\": %" PRIu64 ",\n"
                  "    \"wall_seconds\": %.3f,\n"
                  "    \"sim_cycles\": %" PRIu64 ",\n"
                  "    \"sim_instrs\": %" PRIu64 ",\n"
                  "    \"sim_cycles_per_sec\": %.0f,\n"
                  "    \"sim_instrs_per_sec\": %.0f,\n"
                  "    \"cache_hits\": %" PRIu64 ",\n"
                  "    \"cache_misses\": %" PRIu64 "\n"
                  "  }",
                  r.jobs, r.jobCount, r.wallSeconds, r.simCycles,
                  r.simInstrs, r.simCyclesPerSecond(),
                  r.simInstrsPerSecond(), r.cacheHits, r.cacheMisses);
    return buf;
}

} // namespace

void
writeCampaignReport(const CampaignReport &report, const std::string &path)
{
    std::vector<std::pair<std::string, std::string>> entries;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            std::vector<std::pair<std::string, std::string>> parsed;
            if (parseTopLevel(ss.str(), parsed))
                entries = std::move(parsed);
        }
    }

    const std::string value = formatEntry(report);
    bool replaced = false;
    for (auto &[key, raw] : entries) {
        if (key == report.harness) {
            raw = value;
            replaced = true;
            break;
        }
    }
    if (!replaced)
        entries.emplace_back(report.harness, value);

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return; // reporting must never fail a harness
    out << "{\n";
    for (std::size_t k = 0; k < entries.size(); ++k) {
        out << "  \"" << entries[k].first << "\": " << entries[k].second
            << (k + 1 < entries.size() ? ",\n" : "\n");
    }
    out << "}\n";
}

} // namespace delorean
