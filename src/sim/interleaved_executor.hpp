/**
 * @file
 * Interleaved (non-chunked) multiprocessor executor.
 *
 * Executes a workload under a conventional consistency model — the RC
 * and SC comparison machines of Section 5, which "do not support
 * BulkSC, speculative tasking, or logs". Threads are interleaved at
 * instruction granularity by advancing the thread with the smallest
 * local clock, with per-instruction costs from TimingModel. Optionally
 * emits the global memory-access order for the baseline recorders.
 */

#ifndef DELOREAN_SIM_INTERLEAVED_EXECUTOR_HPP_
#define DELOREAN_SIM_INTERLEAVED_EXECUTOR_HPP_

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "memory/directory.hpp"
#include "sim/access_order.hpp"
#include "sim/timing_model.hpp"
#include "trace/workload.hpp"

namespace delorean
{

/** Outcome of an interleaved execution. */
struct InterleavedResult
{
    Cycle cycles = 0;              ///< max processor clock at the end
    InstrCount totalInstrs = 0;
    std::vector<InstrCount> perProcInstrs;
    std::uint64_t finalMemHash = 0;
    std::vector<std::uint64_t> perProcAcc;
    TrafficStats traffic;

    // Cost decomposition (cycles summed over all processors).
    double costCompute = 0;
    double costL1 = 0;
    double costL2 = 0;
    double costMem = 0;
    double costAmo = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t memHits = 0;

    /** Instructions per cycle across the whole machine. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(totalInstrs)
                            / static_cast<double>(cycles)
                      : 0.0;
    }
};

/** RC / SC baseline machine. */
class InterleavedExecutor
{
  public:
    /**
     * @param machine machine parameters (Table 5)
     * @param model consistency model to execute under
     */
    InterleavedExecutor(const MachineConfig &machine,
                        ConsistencyModel model)
        : machine_(machine), model_(model)
    {
    }

    /**
     * Run @p workload to completion.
     *
     * @param env_seed environment (device) randomness seed
     * @param sink optional consumer of the global access order
     */
    InterleavedResult run(const Workload &workload, std::uint64_t env_seed,
                          AccessSink *sink = nullptr) const;

  private:
    MachineConfig machine_;
    ConsistencyModel model_;
};

} // namespace delorean

#endif // DELOREAN_SIM_INTERLEAVED_EXECUTOR_HPP_
