/**
 * @file
 * Campaign runner: fans independent simulation jobs across host cores.
 *
 * Every figure/table harness runs an (application x mode x scale)
 * grid of ChunkEngine record/replay jobs. Each job is an independent
 * single-threaded discrete-event simulation, so a campaign is
 * embarrassingly parallel — but the *output* must not depend on how
 * the host schedules it. The runner therefore keys every result by
 * job index, not completion order: slot i of the result vector is
 * always filled by job i, making harness output bit-identical at any
 * worker count (`DELOREAN_JOBS=1` and `=64` print the same bytes).
 *
 * A per-campaign RecordingCache deduplicates identical initial
 * executions — keyed on (workload, seed, scale, machine, mode,
 * environment) — so harnesses that record once and replay/measure
 * many variants stop re-recording the same execution. Concurrent
 * requests for one key block on a per-entry mutex and the recording
 * runs exactly once.
 *
 * Campaign throughput (wall-clock, simulated cycles/sec and
 * instructions/sec) is reported through CampaignReport and merged
 * into BENCH_campaign.json, the cross-PR performance ledger.
 */

#ifndef DELOREAN_SIM_CAMPAIGN_HPP_
#define DELOREAN_SIM_CAMPAIGN_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "core/recording.hpp"

namespace delorean
{

/**
 * Worker count for campaigns: the DELOREAN_JOBS environment variable
 * if set to a positive integer, otherwise the host's hardware
 * concurrency (at least 1).
 */
unsigned campaignJobs();

/** Thread-pool executor with deterministic, index-keyed results. */
class CampaignRunner
{
  public:
    /** @param jobs worker count; 0 uses campaignJobs(). */
    explicit CampaignRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every task, fanning across min(jobs, tasks) workers.
     * Tasks run in any order; call-site result slots (captured by
     * index) make the outcome order-independent. The first exception
     * thrown by a task is rethrown here after all workers drain.
     */
    void run(std::vector<std::function<void()>> tasks) const;

    /** run() wrapper collecting each task's return value by index. */
    template <typename R>
    std::vector<R>
    map(std::vector<std::function<R()>> tasks) const
    {
        std::vector<R> results(tasks.size());
        std::vector<std::function<void()>> wrapped;
        wrapped.reserve(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            wrapped.push_back(
                [&results, &tasks, i] { results[i] = tasks[i](); });
        }
        run(std::move(wrapped));
        return results;
    }

  private:
    unsigned jobs_;
};

/**
 * Persistent variant of the campaign substrate: a fixed set of worker
 * threads executing batches of index-keyed tasks. CampaignRunner
 * spawns threads per run() call, which is fine for campaigns whose
 * tasks last seconds; schedulers that dispatch thousands of small
 * batches (the chunk-parallel replayer's per-wave fan-out) need
 * workers that survive between batches. Results are index-keyed
 * exactly like CampaignRunner's, so batch outcomes are independent of
 * worker count; the first exception a batch raises is rethrown from
 * runBatch() after the batch drains. With one job the pool spawns no
 * threads and runBatch() runs inline on the caller.
 */
class WorkerPool
{
  public:
    /** @param jobs worker count; 0 uses campaignJobs(). */
    explicit WorkerPool(unsigned jobs = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every task in @p tasks, fanning across the pool's
     * workers (the caller participates). Blocks until the batch
     * drains; rethrows the first task exception.
     */
    void runBatch(std::vector<std::function<void()>> &tasks);

  private:
    void workerLoop();
    void drainFrom(std::vector<std::function<void()>> *tasks,
                   std::size_t size, std::size_t first);

    unsigned jobs_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::function<void()>> *batch_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t completed_ = 0;
    bool stop_ = false;
    std::atomic<std::size_t> next_{0};
    std::exception_ptr first_error_;
};

/** Everything that identifies one initial execution (record run). */
struct RecordJob
{
    std::string app;               ///< AppTable application name
    std::uint64_t workloadSeed = 0;
    unsigned scalePercent = 100;   ///< WorkloadScale::iterationsPercent
    MachineConfig machine;
    ModeConfig mode;
    std::uint64_t envSeed = 1;
    bool logging = true;           ///< false = plain BulkSC machine
};

/** Cache key covering every architectural input of a RecordJob. */
std::string recordJobKey(const RecordJob &job);

/**
 * Per-campaign recording cache. Thread-safe; each distinct key is
 * recorded exactly once, concurrent requesters wait for the result.
 * References stay valid for the cache's lifetime.
 */
class RecordingCache
{
  public:
    /**
     * Return the recording for @p job, running the initial execution
     * on first use. @p fresh (optional) reports whether this call did
     * the recording — callers accounting simulated work should only
     * count fresh results.
     */
    const Recording &record(const RecordJob &job, bool *fresh = nullptr);

    /**
     * record() with a caller-supplied initial execution: @p run is
     * invoked (exactly once per distinct key, under the entry lock)
     * to produce the recording. This is how the streaming service
     * records with a checkpoint period and an incremental archive
     * hook while still deduplicating identical sessions: the functor
     * runs only on the first request for a key; every later request
     * (and every concurrent one, once the entry lock releases) gets
     * the cached recording and @p fresh = false. The functor must
     * produce a recording determined by @p job alone.
     */
    const Recording &
    recordWith(const RecordJob &job,
               const std::function<Recording()> &run,
               bool *fresh = nullptr);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    struct Entry
    {
        std::mutex mu;
        bool done = false;
        Recording rec;
    };

    std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/** Throughput accounting for one harness campaign. */
struct CampaignReport
{
    std::string harness;
    unsigned jobs = 1;            ///< worker-pool width used
    std::uint64_t jobCount = 0;   ///< tasks executed
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;  ///< simulated cycles across all runs
    std::uint64_t simInstrs = 0;  ///< generated instructions, ditto
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    double
    simCyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simCycles) / wallSeconds
                   : 0.0;
    }

    double
    simInstrsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simInstrs) / wallSeconds
                   : 0.0;
    }
};

/**
 * Report destination: the DELOREAN_BENCH_JSON environment variable if
 * set, else "BENCH_campaign.json" in the working directory.
 */
std::string campaignReportPath();

/**
 * Merge @p report into the JSON object at @p path (one key per
 * harness; an existing entry for the same harness is replaced, other
 * harnesses' entries are preserved). An unreadable or malformed file
 * is replaced wholesale.
 */
void writeCampaignReport(const CampaignReport &report,
                         const std::string &path = campaignReportPath());

} // namespace delorean

#endif // DELOREAN_SIM_CAMPAIGN_HPP_
