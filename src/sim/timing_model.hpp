/**
 * @file
 * Processor/memory timing model.
 *
 * This is a calibrated throughput model, not an out-of-order pipeline
 * (see DESIGN.md "Timing model honesty"). Each dynamic instruction
 * contributes a fractional cycle cost: a base retire cost, an average
 * branch-misprediction penalty, and — for memory operations — the
 * miss latency of the level that serviced it divided by the
 * consistency model's effective memory-level parallelism:
 *
 *  - RC and chunked execution overlap load *and* store misses deeply
 *    (speculative execution across fences / chunk atomicity).
 *  - Aggressive SC speculates loads (same load MLP) but store misses
 *    retire nearly serially from the store buffer even with exclusive
 *    prefetching, and atomics drain it.
 *
 * The divisors below were calibrated so that SC lands near the
 * paper's ~0.79x RC on the evaluated workloads; the chunked modes use
 * the RC parameters (BulkSC performs like RC, Appendix A).
 */

#ifndef DELOREAN_SIM_TIMING_MODEL_HPP_
#define DELOREAN_SIM_TIMING_MODEL_HPP_

#include "common/config.hpp"
#include "memory/cache.hpp"
#include "trace/instr.hpp"

namespace delorean
{

/** Consistency model whose overlap rules the timing model applies. */
enum class ConsistencyModel : std::uint8_t
{
    kRC,      ///< release consistency, speculation across fences
    kSC,      ///< aggressive SC: speculative loads, exclusive prefetch
    kChunked, ///< BulkSC chunk execution (RC-like overlap)
};

/** Per-access / per-instruction cycle cost calculator. */
class TimingModel
{
  public:
    TimingModel(const MachineConfig &config, ConsistencyModel model)
        : cfg_(config), model_(model)
    {
    }

    /** Cost of a non-memory instruction (retire + branch component). */
    double
    computeCost() const
    {
        return baseCost();
    }

    /**
     * Cost of a memory instruction serviced at @p level.
     * @param op the instruction kind (store/load/AMO/uncached)
     */
    double
    memCost(Op op, HitLevel level) const
    {
        if (op == Op::kIoLoad || op == Op::kIoStore)
            return baseCost() + kUncachedLatency;

        const double lat = latencyOf(level);
        const bool amo = op == Op::kAmoSwap || op == Op::kAmoFetchAdd;
        if (amo) {
            // Atomics pay the full round trip; under SC they also
            // drain the store buffer.
            return baseCost() + lat
                   + (model_ == ConsistencyModel::kSC ? kScDrainPenalty
                                                      : 0.0);
        }
        const bool write = writesMemory(op);
        return baseCost() + lat / mlp(write);
    }

    ConsistencyModel model() const { return model_; }

  private:
    static constexpr double kUncachedLatency = 400.0;
    static constexpr double kScDrainPenalty = 10.0;

    double
    baseCost() const
    {
        return 1.0 / cfg_.proc.issueWidth
               + cfg_.proc.branchMissPerMille / 1000.0
                     * static_cast<double>(cfg_.proc.branchPenalty);
    }

    double
    latencyOf(HitLevel level) const
    {
        switch (level) {
          case HitLevel::kL1:
            return static_cast<double>(cfg_.mem.l1RoundTrip);
          case HitLevel::kL2:
            return static_cast<double>(cfg_.mem.l2RoundTrip);
          case HitLevel::kMemory:
            return static_cast<double>(cfg_.mem.memRoundTrip);
        }
        return 0.0;
    }

    double
    mlp(bool write) const
    {
        switch (model_) {
          case ConsistencyModel::kRC:
          case ConsistencyModel::kChunked:
            // Loads limited by dependence chains; stores retire from a
            // deep write buffer bounded by MSHRs.
            return write ? 8.0 : 3.5;
          case ConsistencyModel::kSC:
            // Speculative loads keep the load MLP; store misses drain
            // more slowly from the store buffer despite exclusive
            // prefetching (calibrated to land SC near the paper's
            // ~0.79x RC on these workloads).
            return write ? 1.2 : 3.5;
        }
        return 1.0;
    }

    MachineConfig cfg_;
    ConsistencyModel model_;
};

} // namespace delorean

#endif // DELOREAN_SIM_TIMING_MODEL_HPP_
