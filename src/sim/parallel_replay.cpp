#include "sim/parallel_replay.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "core/pi_log.hpp"
#include "core/replay_observer.hpp"
#include "core/stratifier.hpp"
#include "memory/memory_state.hpp"
#include "sim/campaign.hpp"
#include "trace/instr.hpp"
#include "trace/thread_program.hpp"

namespace delorean
{

namespace
{

/** One speculatively executed chunk body. */
struct ChunkBody
{
    ChunkSeq seq = 0;
    ThreadContext startCtx; ///< after boundary interrupt delivery
    ThreadContext endCtx;
    InstrCount target = 0;
    InstrCount size = 0;
    /// Buffered stores, program order, word granular.
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    /// Values observed from committed memory (own-store forwards are
    /// not recorded: they cannot go stale). Revalidated at retire.
    std::vector<std::pair<Addr, std::uint64_t>> reads;
    /// Program-order cached-access trace for the attached observer
    /// (empty when no observer is attached). Rebuilt on squash
    /// re-execution, so it always reflects the retired execution.
    std::vector<MemAccess> trace;
    bool valid = false; ///< body has been executed
};

/** Per-processor replay state (coordinator-owned). */
struct ProcReplay
{
    ThreadContext ctx; ///< architectural: after the last retired chunk
    ChunkSeq nextSeq = 0;
    bool finished = false;
    bool hasPending = false;
    ChunkBody pending;
    std::unordered_map<ChunkSeq, CsEntry> cs;
    std::unordered_map<ChunkSeq, InterruptRecord> irq;
};

/// Instructions executed between flushes into the shared budget
/// counter (keeps the atomic off the per-instruction path).
constexpr std::uint64_t kBudgetFlush = 8192;

void
chargeBudget(std::atomic<std::uint64_t> &executed, std::uint64_t amount,
             std::uint64_t budget)
{
    if (executed.fetch_add(amount, std::memory_order_relaxed) + amount
        > budget) {
        throw ReplayBudgetExceeded(
            "chunk-parallel replay exceeded its "
            + std::to_string(budget) + "-instruction budget");
    }
}

/**
 * Execute one chunk body read-only against @p mem. Mirrors the
 * architectural effects of ChunkEngine::buildChunk's replay path:
 * loads forward from the body's own stores first, I/O loads come
 * from the recorded log, AMOs load-then-store, and the body ends at
 * its CS target, at a hard (chunk-truncating) instruction, or at
 * program end. Safe to run concurrently with other bodies: @p mem is
 * only read, and all mutation is confined to @p b and its contexts.
 */
void
executeBody(const ThreadProgram &prog, const IoLog &io,
            const MemoryState &mem, ProcId p, ChunkBody &b,
            std::atomic<std::uint64_t> &executed, std::uint64_t budget,
            bool tracing)
{
    ThreadContext ctx = b.startCtx;
    std::unordered_map<Addr, std::uint64_t> write_map;
    b.reads.clear();
    b.writes.clear();
    b.trace.clear();

    InstrCount i = 0;
    std::uint64_t unflushed = 0;
    while (i < b.target) {
        if (prog.done(ctx))
            break;
        const Instr in = prog.generate(ctx);
        std::uint64_t value = 0;

        switch (in.op) {
          case Op::kLoad:
          case Op::kStore:
          case Op::kAmoSwap:
          case Op::kAmoFetchAdd: {
            const Addr word = wordOf(in.addr);
            if (returnsValue(in.op)) {
                const auto it = write_map.find(word);
                if (it != write_map.end()) {
                    value = it->second;
                } else {
                    value = mem.load(word);
                    b.reads.emplace_back(word, value);
                }
            }
            if (writesMemory(in.op)) {
                std::uint64_t stored = in.value;
                if (in.op == Op::kAmoFetchAdd)
                    stored = value + in.value;
                b.writes.emplace_back(word, stored);
                write_map[word] = stored;
            }
            if (tracing) {
                MemAccess a;
                a.addr = in.addr;
                a.kind = in.op == Op::kLoad      ? AccessKind::kLoad
                         : in.op == Op::kStore   ? AccessKind::kStore
                         : in.op == Op::kAmoSwap ? AccessKind::kAmoSwap
                                                 : AccessKind::kAmoFetchAdd;
                a.value = returnsValue(in.op) ? value : in.value;
                b.trace.push_back(a);
            }
            break;
          }
          case Op::kIoLoad:
            if (ctx.ioLoadCount >= io.countFor(p))
                throw ReplayLogExhausted(
                    "I/O log for proc " + std::to_string(p)
                    + " has only " + std::to_string(io.countFor(p))
                    + " values");
            value = io.valueAt(p, ctx.ioLoadCount);
            ++ctx.ioLoadCount;
            break;
          case Op::kIoStore:
          case Op::kSpecialSys:
          case Op::kCompute:
            break;
        }

        prog.observe(ctx, in, value);
        ++i;
        if (++unflushed == kBudgetFlush) {
            chargeBudget(executed, unflushed, budget);
            unflushed = 0;
        }
        if (truncatesChunk(in.op))
            break;
    }
    if (unflushed)
        chargeBudget(executed, unflushed, budget);

    b.size = i;
    b.endCtx = ctx;
    b.valid = true;
}

} // namespace

std::uint64_t
defaultParallelReplayInstrBudget(const Recording &rec)
{
    // Derived from parsed log content, not the headline stats, so a
    // corrupted stats field cannot inflate it. A clean replay executes
    // each recorded instruction once plus at most one squash
    // re-execution per chunk; 4x recorded work is already pathological.
    std::uint64_t recorded = 0;
    for (const CommitRecord &c : rec.fingerprint.commits)
        recorded += c.size;
    return 4 * recorded + 1'000'000;
}

ReplayOutcome
ParallelReplayer::replay(const Recording &rec) const
{
    Workload workload(rec.appName, rec.machine.numProcs,
                      rec.workloadSeed,
                      WorkloadScale{rec.iterationsPercent});
    return replay(rec, workload);
}

ReplayOutcome
ParallelReplayer::replay(const Recording &rec,
                         const Workload &workload) const
{
    const auto wall_start = std::chrono::steady_clock::now();
    const unsigned n = rec.machine.numProcs;
    const ThreadProgram &prog = workload.program();
    const unsigned window = std::max(1u, opts_.window);
    const std::uint64_t budget =
        opts_.maxInstrs ? opts_.maxInstrs
                        : defaultParallelReplayInstrBudget(rec);
    const bool pico = rec.mode.mode == ExecMode::kPicoLog;

    if (rec.cs.size() < n)
        throw ReplayError("recording carries " + std::to_string(rec.cs.size())
                          + " CS logs for " + std::to_string(n)
                          + " processors");

    MemoryState mem;
    workload.initializeMemory(mem);

    std::vector<ProcReplay> procs(n);
    for (ProcId p = 0; p < n; ++p) {
        prog.initContext(procs[p].ctx, p);
        for (const CsEntry &e : rec.cs[p].entries())
            procs[p].cs.emplace(e.seq, e);
        for (const InterruptRecord &e : rec.interrupts.entries(p))
            procs[p].irq.emplace(e.chunkSeq, e);
    }

    std::unique_ptr<PiLogCursor> pi;
    std::unique_ptr<StrataCursor> strata;
    std::unique_ptr<PartialOrderCursor> po;
    if (!pico) {
        if (rec.stratified())
            strata = std::make_unique<StrataCursor>(rec.strata, n);
        else if (rec.pi.hasMasks() && opts_.honorPartialOrder)
            po = std::make_unique<PartialOrderCursor>(
                rec.pi, n, rec.machine.bulk.numArbiters);
        else
            pi = std::make_unique<PiLogCursor>(rec.pi);
    }
    ProcId rr = 0;            // PicoLog round-robin pointer
    std::uint64_t gcc = 0;    // PicoLog global commit count (DMA slots)
    std::size_t dma_idx = 0;

    // Observer plumbing: bodies collect traces only when an observer
    // is attached; the hub re-sequences out-of-order retires into the
    // canonical commit order (for stratified logs a precomputed
    // linearization, since in-stratum retire order is timing-free here
    // but kept identical to the serial engine's canonical table).
    ObserverHub hub(opts_.observer);
    const bool tracing = hub.enabled();
    std::unique_ptr<StrataCanonicalOrder> strata_order;
    if (tracing && rec.stratified() && !pico)
        strata_order = std::make_unique<StrataCanonicalOrder>(
            computeStrataCanonicalOrder(rec.strata, n));

    WorkerPool pool(opts_.jobs);
    std::atomic<std::uint64_t> executed{0};
    EngineStats stats;
    ExecutionFingerprint fp;
    // Partial-order retirement is out-of-order w.r.t. the log's entry
    // sequence, so commits land positionally: pre-size the commit
    // stream and write each record at the commit position its log
    // entry occupies among non-DMA entries.
    if (po)
        fp.commits.resize(po->chunkEntryCount());

    const auto allFinished = [&] {
        for (const ProcReplay &pr : procs)
            if (!pr.finished)
                return false;
        return true;
    };

    // Dispatch priority: the order processors are due at the log
    // head. Stragglers are appended so a window wider than the log's
    // near-term needs still fills up (their bodies are validated at
    // retire like any other).
    const auto dispatchOrder = [&] {
        std::vector<ProcId> order;
        std::vector<bool> seen(n, false);
        const auto push = [&](ProcId p) {
            if (p < n && !seen[p]) {
                seen[p] = true;
                order.push_back(p);
            }
        };
        if (pico) {
            for (unsigned k = 0; k < n; ++k)
                push((rr + k) % n);
        } else if (strata) {
            for (ProcId p = 0; p < n; ++p)
                if (strata->remainingFor(p) > 0)
                    push(p);
            for (ProcId p = 0; p < n; ++p)
                push(p);
        } else if (po) {
            // Enabled heads first (they can retire as soon as their
            // bodies finish), then processors with any entries left.
            for (ProcId p = 0; p < n; ++p)
                if (po->procReady(p))
                    push(p);
            for (ProcId p = 0; p < n; ++p)
                if (po->procHasEntries(p))
                    push(p);
            for (ProcId p = 0; p < n; ++p)
                push(p);
        } else {
            const std::size_t limit = std::min<std::size_t>(
                rec.pi.entryCount(),
                pi->position() + 4ull * window);
            for (std::size_t i = pi->position();
                 i < limit && order.size() < n; ++i)
                push(rec.pi.entryAt(i)); // kDmaProcId filtered by push
            for (ProcId p = 0; p < n; ++p)
                push(p);
        }
        return order;
    };

    const auto readyBody = [&](ProcId p) {
        const ProcReplay &pr = procs[p];
        return pr.hasPending && pr.pending.valid;
    };

    // @p obs_pos: canonical commit position for the observer.
    const auto applyDma = [&](std::uint64_t obs_pos) {
        if (dma_idx >= rec.dma.count())
            throw ReplayLogExhausted(
                "DMA log exhausted during chunk-parallel replay");
        const DmaTransfer &xfer = rec.dma.transferAt(dma_idx++);
        for (std::size_t i = 0; i < xfer.wordAddrs.size(); ++i)
            mem.store(wordOf(xfer.wordAddrs[i]), xfer.values[i]);
        if (tracing)
            hub.dmaRetired(obs_pos, xfer);
    };

    // @p fp_pos: commit position for partial-order retirement (writes
    // into the pre-sized stream); SIZE_MAX appends in retire order.
    // @p obs_pos: canonical commit position for the observer.
    const auto retireChunk = [&](ProcId p, std::size_t fp_pos,
                                 std::uint64_t obs_pos) {
        ProcReplay &pr = procs[p];
        ChunkBody &b = pr.pending;
        // Value-based read validation: a body that executed against a
        // memory image later commits overwrote is re-executed at its
        // retire turn — the software analogue of squash-and-replay.
        bool stale = false;
        for (const auto &[word, value] : b.reads) {
            if (mem.load(word) != value) {
                stale = true;
                break;
            }
        }
        if (stale) {
            ++stats.squashes;
            executeBody(prog, rec.io, mem, p, b, executed, budget,
                        tracing);
        }
        for (const auto &[word, value] : b.writes)
            mem.store(word, value);
        const CommitRecord commit{p, b.seq, b.size, b.endCtx.acc};
        if (fp_pos != static_cast<std::size_t>(-1))
            fp.commits[fp_pos] = commit;
        else
            fp.commits.push_back(commit);
        stats.retiredInstrs += b.size;
        ++stats.committedChunks;
        pr.ctx = b.endCtx;
        pr.nextSeq = b.seq + 1;
        pr.hasPending = false;
        if (tracing)
            hub.chunkRetired(obs_pos, p, b.seq, b.size,
                             std::move(b.trace));
    };

    // Retire everything the log allows. The order is a pure function
    // of the recording: PI order for flat logs, the predefined
    // round-robin for PicoLog, and for stratified logs the canonical
    // lowest-processor order within each stratum — so the global
    // commit stream is independent of worker count and window width.
    const auto retirePass = [&]() -> bool {
        bool any = false;
        for (;;) {
            if (pico) {
                if (dma_idx < rec.dma.count()
                    && rec.dma.slotAt(dma_idx) == gcc) {
                    applyDma(gcc);
                    ++gcc;
                    any = true;
                    continue;
                }
                for (unsigned guard = 0;
                     guard < n && procs[rr].finished; ++guard)
                    rr = (rr + 1) % n;
                if (procs[rr].finished || !readyBody(rr))
                    break;
                retireChunk(rr, static_cast<std::size_t>(-1), gcc);
                rr = (rr + 1) % n;
                ++gcc;
                any = true;
                continue;
            }
            if (strata) {
                if (strata->atEnd())
                    break;
                if (strata->isDmaSlot()) {
                    std::uint64_t obs_pos = 0;
                    if (strata_order) {
                        if (dma_idx >= strata_order->dmaPos.size())
                            throw ReplayError(
                                "strata log names fewer DMA slots "
                                "than transfers committed");
                        obs_pos = strata_order->dmaPos[dma_idx];
                    }
                    applyDma(obs_pos);
                    strata->consumeDma();
                    any = true;
                    continue;
                }
                ProcId p = n;
                for (ProcId q = 0; q < n; ++q) {
                    if (strata->remainingFor(q) > 0) {
                        p = q;
                        break;
                    }
                }
                if (p == n || !readyBody(p))
                    break;
                for (ProcId q = 0; q < n; ++q) {
                    if (q != p && strata->remainingFor(q) > 0) {
                        ++stats.strataRelaxedRetires;
                        break;
                    }
                }
                std::uint64_t obs_pos = 0;
                if (strata_order) {
                    const ChunkSeq seq = procs[p].pending.seq;
                    if (seq >= strata_order->chunkPos[p].size())
                        throw ReplayError(
                            "strata log names fewer chunks for proc "
                            + std::to_string(p)
                            + " than were committed");
                    obs_pos = strata_order->chunkPos[p][seq];
                }
                retireChunk(p, static_cast<std::size_t>(-1), obs_pos);
                strata->consume(p);
                any = true;
                continue;
            }
            if (po) {
                if (po->atEnd())
                    break;
                if (po->dmaReady()) {
                    const std::size_t entry =
                        po->consumeProc(kDmaProcId);
                    applyDma(entry);
                    any = true;
                    continue;
                }
                // Retire every enabled head whose body is ready; each
                // consumption can enable further entries, so sweep
                // until a full pass retires nothing.
                bool did = false;
                for (ProcId p = 0; p < n; ++p) {
                    if (!po->procReady(p) || !readyBody(p))
                        continue;
                    const std::size_t low = po->lowWatermark();
                    const std::size_t entry = po->consumeProc(p);
                    if (entry != low)
                        ++stats.poRelaxedRetires;
                    retireChunk(p, po->chunkPosOf(entry), entry);
                    did = true;
                    any = true;
                }
                if (!did)
                    break;
                continue;
            }
            if (pi->atEnd())
                break;
            const ProcId e = pi->peek();
            if (e == kDmaProcId) {
                applyDma(pi->position());
                pi->next();
                any = true;
                continue;
            }
            if (e >= n)
                throw ReplayError("PI log names processor "
                                  + std::to_string(e) + " of "
                                  + std::to_string(n));
            if (!readyBody(e))
                break;
            retireChunk(e, static_cast<std::size_t>(-1),
                        pi->position());
            pi->next();
            any = true;
        }
        return any;
    };

    hub.begin(rec);

    std::vector<std::function<void()>> tasks;
    while (!allFinished()) {
        bool progress = false;

        // ----- dispatch wave: fill the lookahead window --------------
        unsigned inflight = 0;
        for (const ProcReplay &pr : procs)
            inflight += pr.hasPending;
        std::vector<ProcId> to_run;
        for (const ProcId p : dispatchOrder()) {
            if (inflight >= window)
                break;
            ProcReplay &pr = procs[p];
            if (pr.finished || pr.hasPending)
                continue;
            if (prog.done(pr.ctx)) {
                pr.finished = true;
                progress = true;
                continue;
            }
            const ChunkSeq seq = pr.nextSeq;
            ChunkBody body;
            body.seq = seq;
            body.startCtx = pr.ctx;
            // Interrupt delivery at the logical chunk boundary — a
            // pure function of the chunk seq, as in the engine.
            const auto irq_it = pr.irq.find(seq);
            if (irq_it != pr.irq.end())
                prog.deliverInterrupt(body.startCtx,
                                      irq_it->second.type,
                                      irq_it->second.data);
            if (prog.done(body.startCtx)) {
                pr.ctx = body.startCtx;
                pr.finished = true;
                progress = true;
                continue;
            }
            const auto cs_it = pr.cs.find(seq);
            if (cs_it != pr.cs.end()) {
                const CsEntry &e = cs_it->second;
                body.target = (rec.mode.mode == ExecMode::kOrderAndSize
                               && e.maxSize)
                                  ? rec.mode.chunkSize
                                  : e.size;
            } else {
                body.target = rec.mode.chunkSize;
            }
            if (body.target == 0) {
                // A zero-size CS entry can only come from a corrupt
                // log; the engine discards such a chunk too.
                pr.finished = true;
                progress = true;
                continue;
            }
            pr.pending = std::move(body);
            pr.hasPending = true;
            to_run.push_back(p);
            ++inflight;
            progress = true;
        }
        if (!to_run.empty()) {
            tasks.clear();
            for (const ProcId p : to_run) {
                tasks.push_back([&, p] {
                    executeBody(prog, rec.io, mem, p, procs[p].pending,
                                executed, budget, tracing);
                });
            }
            pool.runBatch(tasks);
            stats.replayWindowOccupancy.add(
                static_cast<double>(inflight));
        }

        // ----- retire in logged order --------------------------------
        progress = retirePass() || progress;
        if (!progress)
            throw ReplayStalled(
                "chunk-parallel replay made no progress (log head "
                "cannot be satisfied)");
    }

    hub.end();

    for (ProcId p = 0; p < n; ++p) {
        fp.perProcAcc.push_back(procs[p].ctx.acc);
        fp.perProcRetired.push_back(procs[p].ctx.retired);
    }
    fp.finalMemHash = mem.hash();

    stats.executedInstrs = executed.load(std::memory_order_relaxed);
    stats.generatedInstrs = stats.executedInstrs;
    stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();

    ReplayOutcome outcome;
    outcome.fingerprint = fp;
    outcome.stats = stats;
    outcome.deterministicExact = fp.matchesExact(rec.fingerprint);
    outcome.deterministicPerProc = fp.matchesPerProc(rec.fingerprint);
    return outcome;
}

} // namespace delorean
