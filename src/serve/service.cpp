#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <istream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include <sys/stat.h>
#include <sys/types.h>

#include "core/recorder.hpp"
#include "validate/replay_check.hpp"

namespace delorean
{

namespace
{

/** Stable short name for archive files and the ledger. */
std::string
fnv1aHex(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Mode label for the ledger: exec mode plus the stratification. */
std::string
serveModeLabel(const ModeConfig &mode)
{
    std::string label = execModeName(mode.mode);
    if (mode.stratifyChunksPerProc)
        label += "/strat" + std::to_string(mode.stratifyChunksPerProc);
    return label;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

/**
 * Counting-semaphore admission gate. Workers acquire a slot before
 * touching any session resources and release it when the session
 * completes; the high-water mark is reported for observability.
 */
class Gate
{
  public:
    explicit Gate(unsigned capacity) : capacity_(capacity) {}

    void
    acquire()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return inflight_ < capacity_; });
        ++inflight_;
        peak_ = std::max(peak_, inflight_);
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inflight_;
        }
        cv_.notify_one();
    }

    unsigned
    peak()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return peak_;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    unsigned capacity_;
    unsigned inflight_ = 0;
    unsigned peak_ = 0;
};

struct GateHold
{
    explicit GateHold(Gate &gate) : gate_(gate) { gate_.acquire(); }
    ~GateHold() { gate_.release(); }
    GateHold(const GateHold &) = delete;
    GateHold &operator=(const GateHold &) = delete;
    Gate &gate_;
};

} // namespace

const char *
serveClassName(ServeClass cls)
{
    switch (cls) {
    case ServeClass::kRecord:
        return "record";
    case ServeClass::kReplay:
        return "replay";
    case ServeClass::kValidate:
        return "validate";
    }
    return "unknown";
}

// ----- job parsing ----------------------------------------------------------

bool
parseServeJob(const std::string &line, ServeJob &job, std::string &error)
{
    error.clear();
    std::istringstream in(line);
    std::string cls;
    in >> cls;
    if (cls.empty() || cls[0] == '#')
        return false; // blank or comment line; no error

    ServeJob parsed;
    if (cls == "record")
        parsed.cls = ServeClass::kRecord;
    else if (cls == "replay")
        parsed.cls = ServeClass::kReplay;
    else if (cls == "validate")
        parsed.cls = ServeClass::kValidate;
    else {
        error = "unknown session class \"" + cls + "\"";
        return false;
    }

    bool have_app = false;
    std::string mode_name = "ordersize";
    unsigned strat = 4;
    std::string tok;
    while (in >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0
            || eq + 1 == tok.size()) {
            error = "malformed field \"" + tok
                    + "\" (expected key=value)";
            return false;
        }
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        const auto number = [&](std::uint64_t &out_v) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                error = "field " + key + " needs a number, got \""
                        + value + "\"";
                return false;
            }
            out_v = v;
            return true;
        };
        std::uint64_t v = 0;
        if (key == "app") {
            parsed.record.app = value;
            have_app = true;
        } else if (key == "seed") {
            if (!number(v))
                return false;
            parsed.record.workloadSeed = v;
        } else if (key == "scale") {
            if (!number(v))
                return false;
            parsed.record.scalePercent = static_cast<unsigned>(v);
        } else if (key == "procs") {
            if (!number(v))
                return false;
            parsed.record.machine.numProcs =
                static_cast<unsigned>(v);
        } else if (key == "mode") {
            mode_name = value;
        } else if (key == "strat") {
            if (!number(v))
                return false;
            strat = static_cast<unsigned>(v);
        } else if (key == "env") {
            if (!number(v))
                return false;
            parsed.record.envSeed = v;
        } else if (key == "renv") {
            if (!number(v))
                return false;
            parsed.replayEnvSeed = v;
        } else if (key == "window") {
            if (!number(v))
                return false;
            parsed.replayWindow = static_cast<unsigned>(v);
        } else {
            error = "unknown field \"" + key + "\"";
            return false;
        }
    }
    if (!have_app) {
        error = "missing required field app=";
        return false;
    }

    if (mode_name == "ordersize") {
        parsed.record.mode = ModeConfig::orderAndSize();
    } else if (mode_name == "orderonly") {
        parsed.record.mode = ModeConfig::orderOnly();
    } else if (mode_name == "stratified") {
        parsed.record.mode = ModeConfig::orderOnly();
        parsed.record.mode.stratifyChunksPerProc = strat;
    } else if (mode_name == "picolog") {
        parsed.record.mode = ModeConfig::picoLog();
    } else {
        error = "unknown mode \"" + mode_name + "\"";
        return false;
    }

    job = std::move(parsed);
    return true;
}

std::vector<ServeJob>
parseServeJobs(std::istream &in)
{
    std::vector<ServeJob> jobs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        ServeJob job;
        std::string error;
        if (parseServeJob(line, job, error))
            jobs.push_back(std::move(job));
        else if (!error.empty())
            throw std::runtime_error("job line "
                                     + std::to_string(lineno) + ": "
                                     + error);
    }
    return jobs;
}

std::vector<std::size_t>
serveDispatchOrder(const std::vector<ServeJob> &jobs)
{
    constexpr unsigned kClasses = 3;
    std::vector<std::vector<std::size_t>> queues(kClasses);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        queues[static_cast<unsigned>(jobs[i].cls)].push_back(i);
    std::vector<std::size_t> order;
    order.reserve(jobs.size());
    std::vector<std::size_t> heads(kClasses, 0);
    while (order.size() < jobs.size())
        for (unsigned c = 0; c < kClasses; ++c)
            if (heads[c] < queues[c].size())
                order.push_back(queues[c][heads[c]++]);
    return order;
}

// ----- report ---------------------------------------------------------------

std::uint64_t
ServeReport::okCount() const
{
    std::uint64_t ok = 0;
    for (const ServeSessionResult &r : sessions)
        ok += r.ok ? 1 : 0;
    return ok;
}

std::uint64_t
ServeReport::archiveBytesTotal() const
{
    std::uint64_t bytes = 0;
    for (const ServeRecordingInfo &r : recordings)
        bytes += r.archiveBytes;
    return bytes;
}

std::string
ServeReport::ledgerJson(bool include_throughput) const
{
    std::string out = "{\n  \"harness\": \"delorean_serve\",\n";
    out += "  \"sessions\": " + std::to_string(sessions.size()) + ",\n";
    out += "  \"ok\": " + std::to_string(okCount()) + ",\n";
    out += "  \"cache_hits\": " + std::to_string(cacheHits) + ",\n";
    out += "  \"cache_misses\": " + std::to_string(cacheMisses) + ",\n";
    out += "  \"session\": [";
    // One line per session, submission order. No per-session "fresh"
    // or timing: which session recorded is scheduling-dependent.
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        const ServeSessionResult &r = sessions[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"ok\": ";
        out += r.ok ? "true" : "false";
        out += ", \"error\": \"";
        appendEscaped(out, r.error);
        out += "\"}";
    }
    out += "\n  ],\n";
    out += "  \"recordings\": [";
    for (std::size_t i = 0; i < recordings.size(); ++i) {
        const ServeRecordingInfo &r = recordings[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"id\": \"" + fnv1aHex(r.key) + "\", \"app\": \"";
        appendEscaped(out, r.app);
        out += "\", \"mode\": \"";
        appendEscaped(out, r.modeName);
        out += "\", \"sessions\": " + std::to_string(r.sessions);
        out += ", \"archived\": ";
        out += r.archivePath.empty() ? "false" : "true";
        out += ", \"archive_bytes\": "
               + std::to_string(r.archiveBytes);
        out += ", \"archive_segments\": "
               + std::to_string(r.archiveSegments);
        // Ring counters are deterministic (eviction depends only on
        // segment sizes and the budget), so they belong in the
        // worker-count-invariant ledger.
        out += ", \"ring\": ";
        out += r.ringPath.empty() ? "false" : "true";
        out += ", \"ring_bytes\": " + std::to_string(r.ringBytes);
        out += ", \"ring_segments\": "
               + std::to_string(r.ringSegments);
        out += ", \"ring_evicted\": " + std::to_string(r.ringEvicted);
        out += "}";
    }
    out += "\n  ]";
    if (include_throughput) {
        char buf[256];
        const double wall = wallSeconds > 0.0 ? wallSeconds : 1e-9;
        std::snprintf(
            buf, sizeof buf,
            ",\n  \"throughput\": {\n"
            "    \"jobs\": %u,\n"
            "    \"max_inflight\": %u,\n"
            "    \"peak_inflight\": %u,\n"
            "    \"wall_seconds\": %.6g,\n"
            "    \"sessions_per_second\": %.6g,\n"
            "    \"archive_mb_per_second\": %.6g\n  }",
            jobs, maxInflight, peakInflight, wallSeconds,
            static_cast<double>(sessions.size()) / wall,
            static_cast<double>(archiveBytesTotal()) / 1e6 / wall);
        out += buf;
    }
    out += "\n}\n";
    return out;
}

// ----- service --------------------------------------------------------------

ServeService::ServeService(const ServeOptions &opts) : opts_(opts) {}

ServeReport
ServeService::run(const std::vector<ServeJob> &jobs)
{
    const auto start = std::chrono::steady_clock::now();
    const unsigned width = opts_.jobs ? opts_.jobs : campaignJobs();
    const unsigned inflight =
        opts_.maxInflight ? opts_.maxInflight : width;

    // Best-effort; the per-archive open reports a usable error when
    // the directory is still missing. (Each ring writer creates its
    // own per-recording directory under ringDir.)
    if (!opts_.archiveDir.empty())
        ::mkdir(opts_.archiveDir.c_str(), 0755);
    if (!opts_.ringDir.empty())
        ::mkdir(opts_.ringDir.c_str(), 0755);

    ServeReport report;
    report.sessions.resize(jobs.size());
    report.jobs = width;
    report.maxInflight = inflight;

    RecordingCache cache;
    Gate gate(inflight);
    std::mutex info_mu; // guards infos + progress stream
    std::map<std::string, ServeRecordingInfo> infos;
    std::size_t completed = 0;

    /**
     * Resolve a session's recording through the cache; the first
     * session for a key records with the segment-period checkpoint
     * cadence and streams the enabled containers — the .dla archive
     * and/or the always-on ring — while the simulation runs, both fed
     * from the same engine checkpoint hook.
     */
    const auto ensure_recorded = [&](const RecordJob &rj,
                                     bool *fresh) -> const Recording & {
        return cache.recordWith(
            rj,
            [&]() -> Recording {
                const Workload workload(
                    rj.app, rj.machine.numProcs, rj.workloadSeed,
                    WorkloadScale{rj.scalePercent});
                const Recorder recorder(rj.mode, rj.machine);
                const std::string key = recordJobKey(rj);

                std::string ring_path;
                std::unique_ptr<RingArchiveWriter> ring;
                if (!opts_.ringDir.empty()) {
                    RingOptions ropts;
                    ropts.budgetBytes = opts_.ringBudgetBytes;
                    ropts.checkpointPeriod = opts_.checkpointPeriod;
                    ropts.maxReplayLag = opts_.ringMaxReplayLag;
                    ropts.io = opts_.archiveIo;
                    ring_path = opts_.ringDir + "/" + fnv1aHex(key)
                                + ".ring";
                    ring = std::make_unique<RingArchiveWriter>(
                        ring_path, ropts);
                }

                std::string path, tmp;
                std::ofstream out;
                std::unique_ptr<StreamingArchiveWriter> writer;
                if (!opts_.archiveDir.empty()) {
                    path = opts_.archiveDir + "/" + fnv1aHex(key)
                           + ".dla";
                    tmp = path + ".tmp";
                    out.open(tmp, std::ios::binary);
                    if (!out)
                        throw std::runtime_error("cannot open " + tmp
                                                 + " for write");
                    writer = std::make_unique<StreamingArchiveWriter>(
                        out, opts_.archiveIo);
                }

                std::function<void(const Recording &)> hook;
                if (writer || ring)
                    hook = [&writer, &ring](const Recording &r) {
                        if (writer)
                            writer->onCheckpoint(r);
                        if (ring)
                            ring->onCheckpoint(r);
                    };
                Recording rec = recorder.record(
                    workload, rj.envSeed, rj.logging, {},
                    opts_.checkpointPeriod, std::move(hook));

                if (ring) {
                    ring->close(rec);
                    const RingWriterStats rs = ring->stats();
                    std::lock_guard<std::mutex> lock(info_mu);
                    ServeRecordingInfo &info = infos[key];
                    info.ringBytes = rs.liveBytes;
                    info.ringSegments = rs.segmentsCut;
                    info.ringEvicted = rs.segmentsEvicted;
                    info.ringPath = ring_path;
                }
                if (!writer)
                    return rec;

                writer->close(rec);
                const std::uint64_t bytes =
                    static_cast<std::uint64_t>(out.tellp());
                out.close();
                if (!out)
                    throw std::runtime_error("failed to write "
                                             + tmp);
                if (opts_.verifyArchives) {
                    std::ostringstream ref(std::ios::binary);
                    writeArchive(rec, ref, opts_.archiveIo);
                    std::ifstream back(tmp, std::ios::binary);
                    std::ostringstream got(std::ios::binary);
                    got << back.rdbuf();
                    if (std::move(got).str()
                        != std::move(ref).str())
                        throw std::runtime_error(
                            "streamed archive for " + rj.app
                            + " differs from the batch writer");
                }
                if (std::rename(tmp.c_str(), path.c_str()) != 0)
                    throw std::runtime_error("cannot rename " + tmp);
                {
                    std::lock_guard<std::mutex> lock(info_mu);
                    ServeRecordingInfo &info = infos[key];
                    info.archiveBytes = bytes;
                    info.archiveSegments = writer->segmentCount();
                    info.archivePath = path;
                }
                return rec;
            },
            fresh);
    };

    const auto run_session = [&](std::size_t idx) {
        const auto t0 = std::chrono::steady_clock::now();
        const ServeJob &job = jobs[idx];
        ServeSessionResult &r = report.sessions[idx];
        try {
            bool fresh = false;
            const Recording &rec =
                ensure_recorded(job.record, &fresh);
            r.fresh = fresh;
            switch (job.cls) {
            case ServeClass::kRecord:
                r.ok = true;
                break;
            case ServeClass::kReplay: {
                const Replayer replayer;
                const ReplayOutcome out = replayer.replay(
                    rec, job.replayEnvSeed, {}, job.replayWindow);
                r.ok = out.deterministicExact
                       || (rec.stratified()
                           && out.deterministicPerProc);
                if (!r.ok)
                    r.error = "replay diverged";
                break;
            }
            case ServeClass::kValidate: {
                ReplayCheckOptions vopts;
                vopts.envSeed = job.replayEnvSeed;
                vopts.replayWindow = job.replayWindow;
                const ReplayCheckResult res =
                    checkedReplay(rec, vopts);
                r.ok = res.ok;
                if (!res.ok)
                    r.error = divergenceKindName(res.report.kind);
                break;
            }
            }
        } catch (const std::exception &e) {
            r.ok = false;
            r.error = e.what();
        }
        r.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

        std::lock_guard<std::mutex> lock(info_mu);
        const std::string key = recordJobKey(job.record);
        ServeRecordingInfo &info = infos[key];
        info.app = job.record.app;
        info.modeName = serveModeLabel(job.record.mode);
        ++info.sessions;
        ++completed;
        if (opts_.progress) {
            std::string line = "{\"event\": \"session\", \"index\": "
                               + std::to_string(idx)
                               + ", \"class\": \"";
            line += serveClassName(job.cls);
            line += "\", \"app\": \"";
            appendEscaped(line, job.record.app);
            line += "\", \"ok\": ";
            line += r.ok ? "true" : "false";
            line += ", \"completed\": " + std::to_string(completed)
                    + ", \"total\": "
                    + std::to_string(jobs.size()) + "}";
            *opts_.progress << line << std::endl;
        }
    };

    // Fair dispatch: the pool claims tasks in vector order, so
    // ordering the vector round-robin-by-class IS the schedule.
    const std::vector<std::size_t> order = serveDispatchOrder(jobs);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(order.size());
    for (const std::size_t idx : order)
        tasks.push_back([&run_session, &gate, idx] {
            GateHold hold(gate);
            run_session(idx);
        });
    WorkerPool pool(width);
    pool.runBatch(tasks);

    for (auto &entry : infos) {
        entry.second.key = entry.first;
        report.recordings.push_back(std::move(entry.second));
    }
    report.cacheHits = cache.hits();
    report.cacheMisses = cache.misses();
    report.peakInflight = gate.peak();
    report.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return report;
}

} // namespace delorean
