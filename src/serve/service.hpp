/**
 * @file
 * Streaming record/replay service: a pipelined multi-session daemon.
 *
 * A *session* is one unit of client work over a recording identified
 * by a RecordJob: record it (and stream its archive to disk while the
 * simulation still runs), replay it, or run a checked validation
 * replay. The service multiplexes many heterogeneous sessions over
 * one WorkerPool:
 *
 *  - **Content-addressed dedupe.** Every session resolves its initial
 *    execution through a RecordingCache keyed on the full RecordJob,
 *    so N sessions over the same (app, seed, scale, machine, mode,
 *    env) pay for exactly one simulation — whichever session arrives
 *    first records; the rest reuse the recording.
 *  - **Incremental archive emission.** The recording session streams
 *    the .dla archive through a StreamingArchiveWriter wired into the
 *    engine's checkpoint hook, overlapping LZ77/CRC/file I/O with the
 *    rest of the simulation. The streamed bytes are byte-identical to
 *    writeArchiveFile() of the finished recording.
 *  - **Always-on ring emission.** With a ring directory set, each
 *    distinct recording also streams a rotating segmented ring
 *    (store/ring) through the same checkpoint hook: a bounded-budget
 *    sliding window that stays replayable — and crash-recoverable —
 *    while the session is still recording. Ring counters (segments
 *    cut, evicted, retained bytes) are deterministic and appear in
 *    the ledger.
 *  - **Fair scheduling.** Sessions dispatch in round-robin order
 *    across the three session classes, FIFO within each class, so a
 *    burst of record jobs cannot starve queued validations.
 *  - **Admission control.** At most maxInflight sessions hold
 *    resources concurrently; excess workers block at the gate.
 *  - **Deterministic ledger.** The final JSON ledger (sessions in
 *    submission order, recordings keyed and sorted by cache key) is
 *    byte-identical at any worker count; wall-clock throughput lives
 *    in a separable section that benchmarks opt into.
 */

#ifndef DELOREAN_SERVE_SERVICE_HPP_
#define DELOREAN_SERVE_SERVICE_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "store/archive.hpp"
#include "store/ring.hpp"

namespace delorean
{

/** What a session does with its recording. */
enum class ServeClass
{
    kRecord,   ///< record (and archive, when an archive dir is set)
    kReplay,   ///< plain deterministic replay
    kValidate, ///< checkedReplay with full divergence fencing
};

const char *serveClassName(ServeClass cls);

/** One client session. */
struct ServeJob
{
    ServeClass cls = ServeClass::kRecord;
    RecordJob record;                 ///< identifies the recording
    std::uint64_t replayEnvSeed = 99; ///< replay/validate env seed
    unsigned replayWindow = 1;        ///< replay arbiter lookahead
};

/**
 * Parse one job-file line into @p job. Format (class first, then
 * key=value fields in any order):
 *
 *   record   app=radix seed=7 scale=30 procs=8 mode=ordersize env=1
 *   replay   app=radix seed=7 scale=30 mode=orderonly renv=5 window=2
 *   validate app=fft mode=stratified strat=4 renv=9
 *
 * modes: ordersize | orderonly | stratified | picolog (stratified
 * takes strat=<chunks per proc per stratum>, default 4). Omitted
 * fields keep ServeJob/RecordJob defaults. Empty lines and lines
 * starting with '#' return false with an empty @p error; malformed
 * lines return false with a diagnostic.
 */
bool parseServeJob(const std::string &line, ServeJob &job,
                   std::string &error);

/**
 * Parse a whole job stream (one job per line). Throws
 * std::runtime_error naming the first malformed line.
 */
std::vector<ServeJob> parseServeJobs(std::istream &in);

/**
 * Dispatch order: round-robin across classes in enum order, FIFO
 * within each class. Returns submission indices into @p jobs.
 */
std::vector<std::size_t>
serveDispatchOrder(const std::vector<ServeJob> &jobs);

/** Service knobs. */
struct ServeOptions
{
    /// Worker-pool width; 0 uses campaignJobs() (DELOREAN_JOBS).
    unsigned jobs = 0;

    /// Admission bound: sessions concurrently past the gate; 0 means
    /// "as wide as the pool" (the gate never binds).
    unsigned maxInflight = 0;

    /// Directory for streamed .dla archives (created if missing);
    /// empty disables archive emission.
    std::string archiveDir;

    /// Checkpoint (= archive segment) period in global commits for
    /// recordings made by the service.
    std::uint64_t checkpointPeriod = 50;

    /// Directory for always-on ring archives (created if missing);
    /// each distinct recording streams a rotating segmented ring into
    /// <ringDir>/<id>.ring while the simulation runs. Empty disables
    /// ring emission.
    std::string ringDir;

    /// Per-recording ring disk budget (RingOptions::budgetBytes).
    std::uint64_t ringBudgetBytes = 4u << 20;

    /// Ring replay-start lag bound in commits; 0 resolves to the
    /// tightest feasible bound, 2 * checkpointPeriod
    /// (RingOptions::maxReplayLag).
    std::uint64_t ringMaxReplayLag = 0;

    /// Cross-check every streamed archive against the batch writer's
    /// bytes (writeArchive of the finished recording); a mismatch
    /// fails the recording session.
    bool verifyArchives = false;

    /// Codec/I/O knobs for the streaming writers.
    ArchiveIoOptions archiveIo{};

    /// Live progress: one JSON line per completed session (completion
    /// order, so only for humans/monitors — the ledger is the
    /// deterministic artifact). Null disables.
    std::ostream *progress = nullptr;
};

/** Outcome of one session, in submission order. */
struct ServeSessionResult
{
    bool ok = false;
    /// Classified failure (exception text or divergence kind); empty
    /// when ok.
    std::string error;
    /// This session performed the initial execution. Scheduling-
    /// dependent at jobs > 1 (excluded from the ledger); the *count*
    /// of fresh sessions equals the distinct-key count and is not.
    bool fresh = false;
    double seconds = 0.0; ///< session wall time (throughput only)
};

/** Everything known about one distinct recording the service made. */
struct ServeRecordingInfo
{
    std::string key;          ///< recordJobKey — the sort key
    std::string app;
    std::string modeName;
    std::uint64_t archiveBytes = 0;   ///< 0 when not archived
    std::uint64_t archiveSegments = 0;
    std::string archivePath;          ///< empty when not archived
    std::uint64_t ringBytes = 0;      ///< retained ring bytes
    std::uint64_t ringSegments = 0;   ///< ring segments cut
    std::uint64_t ringEvicted = 0;    ///< ring segments evicted
    std::string ringPath;             ///< empty when no ring
    std::uint64_t sessions = 0;       ///< sessions resolving to this key
};

/** Service outcome. */
struct ServeReport
{
    std::vector<ServeSessionResult> sessions; ///< submission order
    std::vector<ServeRecordingInfo> recordings; ///< sorted by key
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    unsigned jobs = 1;         ///< pool width used
    unsigned maxInflight = 0;  ///< admission bound used
    unsigned peakInflight = 0; ///< high-water sessions past the gate
    double wallSeconds = 0.0;

    std::uint64_t okCount() const;
    std::uint64_t archiveBytesTotal() const;

    /**
     * The JSON ledger. Without @p include_throughput the text is
     * byte-identical at any ServeOptions::jobs; with it, a trailing
     * "throughput" section adds wall-clock figures.
     */
    std::string ledgerJson(bool include_throughput = false) const;
};

/** The multiplexer. One run() per instance. */
class ServeService
{
  public:
    explicit ServeService(const ServeOptions &opts = {});

    /** Execute every session; blocks until all complete. */
    ServeReport run(const std::vector<ServeJob> &jobs);

  private:
    ServeOptions opts_;
};

} // namespace delorean

#endif // DELOREAN_SERVE_SERVICE_HPP_
