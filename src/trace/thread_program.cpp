#include "trace/thread_program.hpp"

#include <algorithm>
#include <cassert>

namespace delorean
{

namespace
{

/// Kernel region geometry: a per-processor slice plus a shared slice.
constexpr std::uint64_t kKernelWordsPerProc = 2048;
constexpr std::uint64_t kKernelSharedWords = 4096;

/// DMA buffer region size in words.
constexpr std::uint64_t kDmaRegionWords = 4096;

/// Kernel instructions injected by a first-touch trap handler.
constexpr std::uint16_t kTrapHandlerLen = 24;

/// Status polls per I/O burst.
constexpr std::uint32_t kIoPollsPerBurst = 2;

} // namespace

ThreadProgram::ThreadProgram(const AppProfile &profile, unsigned num_procs,
                             std::uint64_t base_seed)
    : profile_(profile), num_procs_(num_procs), base_seed_(base_seed)
{
    assert(num_procs_ >= 1);
}

void
ThreadProgram::initContext(ThreadContext &ctx, ProcId proc) const
{
    ctx = ThreadContext{};
    ctx.proc = proc;
    std::uint64_t seed = base_seed_ ^ (0x1234'5678'9ABC'DEF0ull + proc);
    ctx.rng.seed(splitMix64(seed));
    ctx.acc = mix64(proc + 1);
    beginIteration(ctx);
}

void
ThreadProgram::beginIteration(ThreadContext &ctx) const
{
    if (ctx.iter >= profile_.iterations) {
        ctx.done = true;
        ctx.state = ThreadState::kDone;
        return;
    }
    ctx.workRemaining = static_cast<std::uint32_t>(
        profile_.workPerIter / 2 + ctx.rng.below(profile_.workPerIter));
    // Long-range working-set relocation happens here, between
    // iterations, rather than access by access.
    ctx.privCursor =
        static_cast<std::uint32_t>(ctx.rng.below(profile_.privateWords));
    ctx.sharedCursor = static_cast<std::uint32_t>(
        ctx.rng.below(profile_.sharedWords
                      / std::max(1u, num_procs_)));
    ctx.privStoreBase =
        static_cast<std::uint32_t>(ctx.rng.below(profile_.privateWords));
    ctx.sharedStoreBase = static_cast<std::uint32_t>(
        ctx.rng.below(profile_.sharedWords
                      / std::max(1u, num_procs_)));
    ctx.pendingBarrier = profile_.barrierEveryIters != 0 && ctx.iter != 0
                         && ctx.iter % profile_.barrierEveryIters == 0;
    ctx.pendingLock = ctx.rng.chancePerMille(profile_.lockPerMille);
    if (ctx.pendingLock) {
        // Skew lock choice toward a small hot subset so contention
        // concentrates (strongly in raytrace/cholesky-like profiles).
        if (ctx.rng.chancePerMille(600)) {
            const std::uint32_t hot =
                std::max<std::uint32_t>(1, profile_.numLocks / 8);
            ctx.lockId = static_cast<std::uint32_t>(ctx.rng.below(hot));
        } else {
            ctx.lockId =
                static_cast<std::uint32_t>(ctx.rng.below(profile_.numLocks));
        }
    }
    ctx.pendingSyscall = profile_.isCommercial
                         && ctx.rng.chancePerMille(profile_.syscallPerMille);
    ctx.pendingIo = profile_.isCommercial
                    && ctx.rng.chancePerMille(profile_.ioPerMille);
    // Seeded-race burst: a store then a load of every race word, with
    // no synchronization. Emitted before anything else the iteration
    // does (including barrier arrival), so every processor pair has
    // unordered conflicting accesses on every race word.
    ctx.raceRemaining = 2 * profile_.seededRaceWords;
    ctx.state =
        ctx.pendingBarrier ? ThreadState::kBarArrive : ThreadState::kWork;
}

void
ThreadProgram::afterWorkTransition(ThreadContext &ctx) const
{
    if (ctx.pendingLock) {
        ctx.state = ThreadState::kLockTest;
    } else if (ctx.pendingSyscall) {
        ctx.state = ThreadState::kSyscall;
    } else if (ctx.pendingIo) {
        ctx.state = ThreadState::kIoCmd;
    } else {
        ++ctx.iter;
        beginIteration(ctx);
    }
}

std::uint64_t
ThreadProgram::storeValue(ThreadContext &ctx) const
{
    return mix64(ctx.acc ^ ctx.rng.next());
}

namespace
{

/**
 * Move @p cursor: usually one word forward (stride), otherwise a jump
 * within a +-2048-word working window. Window-local jumps keep the
 * lines a chunk touches clustered over consecutive cache sets — the
 * dominant behaviour of real code — so speculative lines rarely pile
 * up in one set. Long-range relocation happens at iteration
 * boundaries instead (beginIteration).
 */
std::uint32_t
moveCursor(Xoshiro256ss &rng, std::uint32_t cursor, std::uint64_t span,
           unsigned locality_pm)
{
    if (rng.chancePerMille(locality_pm))
        return static_cast<std::uint32_t>((cursor + 1) % span);
    constexpr std::int64_t kWindow = 2048;
    std::int64_t next = static_cast<std::int64_t>(cursor) - kWindow
                        + static_cast<std::int64_t>(rng.below(2 * kWindow));
    const std::int64_t s = static_cast<std::int64_t>(span);
    next = ((next % s) + s) % s;
    return static_cast<std::uint32_t>(next);
}

} // namespace

Addr
ThreadProgram::pickPrivateAddr(ThreadContext &ctx,
                               unsigned locality_pm) const
{
    ctx.privCursor = moveCursor(ctx.rng, ctx.privCursor,
                                profile_.privateWords, locality_pm);
    return AddressLayout::privateWord(ctx.proc, ctx.privCursor);
}

Addr
ThreadProgram::pickSharedAddr(ThreadContext &ctx, bool prefer_hot,
                              unsigned locality_pm) const
{
    if (prefer_hot) {
        // Inside a critical section, contended data belongs to the
        // lock that protects it; outside, the globally hot set.
        if (ctx.state == ThreadState::kCritical) {
            const std::uint64_t per_lock =
                std::max<std::uint64_t>(8, profile_.hotWords
                                               / std::max<std::uint32_t>(
                                                   1, profile_.numLocks));
            return AddressLayout::sharedWord(
                profile_.sharedWords + ctx.lockId * per_lock
                + ctx.rng.below(per_lock));
        }
        return AddressLayout::sharedWord(AddressLayout::stripedIndex(
            ctx.rng.below(profile_.hotWords), ctx.proc));
    }

    // Partitioned shared array: mostly this processor's slice, with
    // occasional remote accesses (consumer reads, boundary exchange).
    const std::uint64_t slice = profile_.sharedWords / num_procs_;
    ProcId owner = ctx.proc;
    if (ctx.rng.chancePerMille(profile_.remotePerMille))
        owner = static_cast<ProcId>(ctx.rng.below(num_procs_));
    ctx.sharedCursor =
        moveCursor(ctx.rng, ctx.sharedCursor, slice, locality_pm);
    return AddressLayout::sharedWord(AddressLayout::stripedIndex(
        owner * slice + ctx.sharedCursor, ctx.proc));
}

Instr
ThreadProgram::kernelInstr(ThreadContext &ctx) const
{
    Addr addr;
    if (ctx.rng.chancePerMille(700)) {
        addr = AddressLayout::kernelWord(
            ctx.proc * kKernelWordsPerProc
            + ctx.rng.below(kKernelWordsPerProc));
    } else {
        addr = AddressLayout::kernelWord(AddressLayout::stripedIndex(
            num_procs_ * kKernelWordsPerProc
                + ctx.rng.below(kKernelSharedWords),
            ctx.proc));
    }
    if (ctx.rng.chancePerMille(400))
        return Instr{Op::kStore, addr, storeValue(ctx)};
    return Instr{Op::kLoad, addr, 0};
}

Instr
ThreadProgram::workInstr(ThreadContext &ctx, bool in_critical) const
{
    // Bursty sub-phases modulate the memory-op density and locality.
    if (ctx.workPhaseLeft == 0) {
        ctx.workPhase = static_cast<std::uint8_t>(ctx.rng.below(4));
        ctx.workPhaseLeft =
            static_cast<std::uint16_t>(150 + ctx.rng.below(400));
    }
    --ctx.workPhaseLeft;

    std::uint32_t memop_pm = profile_.memOpPerMille;
    std::uint32_t locality_pm = profile_.localityPerMille;
    std::uint32_t store_pm = profile_.storePerMille;
    switch (ctx.workPhase) {
      case 1: // compute-heavy
        memop_pm /= 3;
        break;
      case 2: // streaming
        locality_pm = 950;
        break;
      case 3: // scatter: pointer chasing is read-dominated
        locality_pm = 150;
        store_pm /= 4;
        break;
      default:
        break;
    }

    if (!ctx.rng.chancePerMille(memop_pm))
        return Instr{Op::kCompute, 0, 0};

    // Commercial workloads occasionally consume DMA-delivered data.
    if (profile_.isCommercial && !in_critical
        && ctx.rng.chancePerMille(15)) {
        return Instr{Op::kLoad,
                     AddressLayout::dmaWord(ctx.rng.below(kDmaRegionWords)),
                     0};
    }

    const std::uint32_t shared_pm =
        in_critical ? profile_.csSharedPerMille : profile_.sharedPerMille;

    const bool is_store = ctx.rng.chancePerMille(store_pm);

    Addr addr;
    if (is_store && !in_critical && ctx.rng.chancePerMille(850)) {
        // Most stores land in a small, heavily reused window (stack
        // frame / output tile), keeping dirty-line counts per chunk
        // low; the remainder fall through to the load paths below.
        if (ctx.rng.chancePerMille(shared_pm)) {
            const std::uint64_t slice =
                profile_.sharedWords / num_procs_;
            ProcId owner = ctx.proc;
            if (ctx.rng.chancePerMille(profile_.remotePerMille))
                owner = static_cast<ProcId>(ctx.rng.below(num_procs_));
            addr = AddressLayout::sharedWord(AddressLayout::stripedIndex(
                owner * slice
                    + (ctx.sharedStoreBase + ctx.rng.below(192)) % slice,
                ctx.proc));
        } else {
            addr = AddressLayout::privateWord(
                ctx.proc, (ctx.privStoreBase + ctx.rng.below(192))
                              % profile_.privateWords);
        }
        return Instr{Op::kStore, addr, storeValue(ctx)};
    }

    if (ctx.rng.chancePerMille(shared_pm)) {
        const bool hot =
            in_critical || ctx.rng.chancePerMille(profile_.hotPerMille);
        addr = pickSharedAddr(ctx, hot, locality_pm);
    } else {
        addr = pickPrivateAddr(ctx, locality_pm);
        // First-touch trap: inject a kernel handler, then re-issue the
        // faulting access. Deterministic: mappedSegs is architectural.
        const unsigned seg = AddressLayout::privateSegment(addr);
        if (!ctx.mappedSegs.test(seg)) {
            ctx.mappedSegs.set(seg);
            ctx.pendingAccess =
                is_store ? Instr{Op::kStore, addr, storeValue(ctx)}
                         : Instr{Op::kLoad, addr, 0};
            ctx.hasPendingAccess = true;
            ctx.trapRemaining = kTrapHandlerLen;
            return kernelInstr(ctx);
        }
    }

    if (is_store)
        return Instr{Op::kStore, addr, storeValue(ctx)};
    return Instr{Op::kLoad, addr, 0};
}

Instr
ThreadProgram::generate(ThreadContext &ctx) const
{
    assert(!ctx.done);

    // Interrupt handler preempts everything; traps and their stashed
    // access come next; then the phase machine.
    if (ctx.handlerRemaining > 0)
        return kernelInstr(ctx);
    if (ctx.trapRemaining > 0)
        return kernelInstr(ctx);
    if (ctx.hasPendingAccess) {
        ctx.hasPendingAccess = false;
        return ctx.pendingAccess;
    }
    if (ctx.raceRemaining > 0) {
        const std::uint32_t step =
            2 * profile_.seededRaceWords - ctx.raceRemaining;
        const Addr addr = AddressLayout::raceWord(step / 2);
        if ((step & 1) == 0)
            return Instr{Op::kStore, addr, storeValue(ctx)};
        return Instr{Op::kLoad, addr, 0};
    }

    switch (ctx.state) {
      case ThreadState::kWork:
        return workInstr(ctx, false);
      case ThreadState::kCritical:
        return workInstr(ctx, true);
      case ThreadState::kLockTest:
        return Instr{Op::kLoad, AddressLayout::lockWord(ctx.lockId), 0};
      case ThreadState::kLockTas:
        return Instr{Op::kAmoSwap, AddressLayout::lockWord(ctx.lockId), 1};
      case ThreadState::kUnlock:
        return Instr{Op::kStore, AddressLayout::lockWord(ctx.lockId), 0};
      case ThreadState::kBarArrive:
        return Instr{Op::kAmoFetchAdd, AddressLayout::barrierCount(), 1};
      case ThreadState::kBarReset:
        return Instr{Op::kStore, AddressLayout::barrierCount(), 0};
      case ThreadState::kBarRelease:
        return Instr{Op::kStore, AddressLayout::barrierGen(),
                     ctx.barrierGenSeen + 1};
      case ThreadState::kBarSpin:
        return Instr{Op::kLoad, AddressLayout::barrierGen(), 0};
      case ThreadState::kSyscall:
        return Instr{Op::kSpecialSys, 0, 0};
      case ThreadState::kKernel:
        return kernelInstr(ctx);
      case ThreadState::kIoCmd:
        return Instr{Op::kIoStore, AddressLayout::ioPort(ctx.proc),
                     storeValue(ctx)};
      case ThreadState::kIoStatus:
        return Instr{Op::kIoLoad, AddressLayout::ioPort(ctx.proc), 0};
      case ThreadState::kIterStart:
      case ThreadState::kIterEnd:
      case ThreadState::kDone:
        break;
    }
    assert(false && "generate() called in a non-emitting state");
    return Instr{};
}

void
ThreadProgram::observe(ThreadContext &ctx, const Instr &instr,
                       std::uint64_t load_value) const
{
    if (returnsValue(instr.op))
        ctx.acc = mix64(ctx.acc ^ load_value);
    ++ctx.retired;

    // Injected kernel work (interrupt handler / trap) does not advance
    // the phase machine.
    if (ctx.handlerRemaining > 0) {
        --ctx.handlerRemaining;
        return;
    }
    if (ctx.trapRemaining > 0) {
        --ctx.trapRemaining;
        return;
    }
    // Seeded-race burst instructions do not advance the phase machine.
    if (ctx.raceRemaining > 0) {
        --ctx.raceRemaining;
        return;
    }

    switch (ctx.state) {
      case ThreadState::kWork:
        if (ctx.workRemaining > 0)
            --ctx.workRemaining;
        if (ctx.workRemaining == 0)
            afterWorkTransition(ctx);
        break;
      case ThreadState::kCritical:
        if (ctx.subRemaining > 0)
            --ctx.subRemaining;
        if (ctx.subRemaining == 0)
            ctx.state = ThreadState::kUnlock;
        break;
      case ThreadState::kLockTest:
        if (load_value == 0)
            ctx.state = ThreadState::kLockTas;
        break;
      case ThreadState::kLockTas:
        if (load_value == 0) {
            ctx.state = ThreadState::kCritical;
            ctx.subRemaining = std::max<std::uint32_t>(1, profile_.csLen);
        } else {
            ctx.state = ThreadState::kLockTest;
        }
        break;
      case ThreadState::kUnlock:
        ctx.pendingLock = false;
        afterWorkTransition(ctx);
        break;
      case ThreadState::kBarArrive:
        if (load_value == num_procs_ - 1)
            ctx.state = ThreadState::kBarReset;
        else
            ctx.state = ThreadState::kBarSpin;
        break;
      case ThreadState::kBarReset:
        ctx.state = ThreadState::kBarRelease;
        break;
      case ThreadState::kBarRelease:
        ++ctx.barrierGenSeen;
        ctx.pendingBarrier = false;
        ctx.state = ThreadState::kWork;
        break;
      case ThreadState::kBarSpin:
        if (load_value != ctx.barrierGenSeen) {
            ctx.barrierGenSeen = load_value;
            ctx.pendingBarrier = false;
            ctx.state = ThreadState::kWork;
        }
        break;
      case ThreadState::kSyscall:
        ctx.pendingSyscall = false;
        ctx.state = ThreadState::kKernel;
        ctx.subRemaining = std::max<std::uint32_t>(1, profile_.syscallLen);
        break;
      case ThreadState::kKernel:
        if (ctx.subRemaining > 0)
            --ctx.subRemaining;
        if (ctx.subRemaining == 0)
            afterWorkTransition(ctx);
        break;
      case ThreadState::kIoCmd:
        ctx.state = ThreadState::kIoStatus;
        ctx.ioRemaining = kIoPollsPerBurst;
        break;
      case ThreadState::kIoStatus:
        if (ctx.ioRemaining > 0)
            --ctx.ioRemaining;
        if (ctx.ioRemaining == 0) {
            ctx.pendingIo = false;
            afterWorkTransition(ctx);
        }
        break;
      case ThreadState::kIterStart:
      case ThreadState::kIterEnd:
      case ThreadState::kDone:
        assert(false && "observe() in a non-emitting state");
        break;
    }
}

void
ThreadProgram::deliverInterrupt(ThreadContext &ctx, std::uint8_t type,
                                std::uint64_t data) const
{
    ctx.handlerRemaining =
        static_cast<std::uint16_t>(ctx.handlerRemaining
                                   + interruptHandlerLen(type));
    ctx.acc = mix64(ctx.acc ^ data ^ (static_cast<std::uint64_t>(type) << 56));
}

} // namespace delorean
