/**
 * @file
 * Value-dependent per-thread instruction generator.
 *
 * The generator is driven by the executor in a fetch/observe protocol:
 *
 *   Instr in = program.generate(ctx);       // may step ctx.rng
 *   value = <executor performs the access>;
 *   program.observe(ctx, in, value);        // control flow reacts
 *
 * Both calls are deterministic functions of ctx (and, for observe, the
 * loaded value), so replaying the same interleaving reproduces the
 * same dynamic instruction stream — and a different interleaving
 * genuinely produces a different one (spin counts, lock hand-offs and
 * barrier release orders all depend on observed values).
 */

#ifndef DELOREAN_TRACE_THREAD_PROGRAM_HPP_
#define DELOREAN_TRACE_THREAD_PROGRAM_HPP_

#include "trace/app_profile.hpp"
#include "trace/instr.hpp"
#include "trace/layout.hpp"
#include "trace/thread_context.hpp"

namespace delorean
{

/** Generator of one thread's dynamic instruction stream. */
class ThreadProgram
{
  public:
    /**
     * @param profile application parameters
     * @param num_procs thread/processor count (barrier width)
     * @param base_seed workload seed; each thread derives its own
     */
    ThreadProgram(const AppProfile &profile, unsigned num_procs,
                  std::uint64_t base_seed);

    /** Initialize @p ctx as processor @p proc's starting state. */
    void initContext(ThreadContext &ctx, ProcId proc) const;

    /** True once the thread has finished all iterations. */
    bool done(const ThreadContext &ctx) const { return ctx.done; }

    /** Produce the next dynamic instruction (steps ctx). */
    Instr generate(ThreadContext &ctx) const;

    /**
     * Feed back the access result. @p load_value is meaningful only
     * for load-like ops (see returnsValue()); pass 0 otherwise.
     * Increments ctx.retired.
     */
    void observe(ThreadContext &ctx, const Instr &instr,
                 std::uint64_t load_value) const;

    /**
     * Deliver an interrupt at a chunk boundary: the thread executes a
     * kernel handler before resuming. Length depends on @p type; the
     * device @p data is folded into the accumulator.
     */
    void deliverInterrupt(ThreadContext &ctx, std::uint8_t type,
                          std::uint64_t data) const;

    /** Handler length in instructions for interrupt @p type. */
    static std::uint16_t
    interruptHandlerLen(std::uint8_t type)
    {
        return static_cast<std::uint16_t>(80 + (type & 3u) * 40u);
    }

    const AppProfile &profile() const { return profile_; }
    unsigned numProcs() const { return num_procs_; }

  private:
    Instr workInstr(ThreadContext &ctx, bool in_critical) const;
    Instr kernelInstr(ThreadContext &ctx) const;
    Addr pickPrivateAddr(ThreadContext &ctx, unsigned locality_pm) const;
    Addr pickSharedAddr(ThreadContext &ctx, bool prefer_hot,
                        unsigned locality_pm) const;
    std::uint64_t storeValue(ThreadContext &ctx) const;
    void beginIteration(ThreadContext &ctx) const;
    void afterWorkTransition(ThreadContext &ctx) const;

    AppProfile profile_;
    unsigned num_procs_;
    std::uint64_t base_seed_;
};

} // namespace delorean

#endif // DELOREAN_TRACE_THREAD_PROGRAM_HPP_
