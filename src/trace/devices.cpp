#include "trace/devices.hpp"

#include "trace/layout.hpp"

namespace delorean
{

namespace
{

/** Roughly exponential interval with the given mean (never zero). */
InstrCount
drawInterval(Xoshiro256ss &rng, std::uint64_t mean)
{
    // Sum of two uniforms in [mean/2, mean) gives a cheap unimodal
    // spread around the mean without calling into libm.
    return 1 + rng.below(mean) / 2 + rng.below(mean) / 2 + mean / 2;
}

constexpr std::uint64_t kDmaRegionWords = 4096;

} // namespace

InterruptSource::InterruptSource(const AppProfile &profile,
                                 unsigned num_procs, std::uint64_t env_seed)
    : mean_instrs_(profile.irqMeanInstrs),
      env_rng_(mix64(env_seed)),
      next_due_(num_procs, 0)
{
    for (auto &due : next_due_)
        due = mean_instrs_ ? drawInterval(env_rng_, mean_instrs_) : 0;
}

bool
InterruptSource::poll(ProcId proc, InstrCount instrs_executed,
                      InterruptEvent &out)
{
    if (!enabled() || instrs_executed < next_due_[proc])
        return false;
    out.type = static_cast<std::uint8_t>(env_rng_.below(4));
    out.data = env_rng_.next();
    next_due_[proc] = instrs_executed + drawInterval(env_rng_, mean_instrs_);
    return true;
}

DmaEngine::DmaEngine(const AppProfile &profile, std::uint64_t env_seed)
    : mean_instrs_(profile.dmaMeanInstrs),
      burst_words_(profile.dmaBurstWords),
      env_rng_(mix64(env_seed + 0x0D0Au))
{
    if (enabled())
        next_due_ = drawInterval(env_rng_, mean_instrs_);
}

bool
DmaEngine::poll(InstrCount total_instrs, DmaTransfer &out)
{
    if (!enabled() || total_instrs < next_due_)
        return false;
    out.wordAddrs.clear();
    out.values.clear();
    const std::uint64_t start = env_rng_.below(kDmaRegionWords);
    for (std::uint32_t i = 0; i < burst_words_; ++i) {
        out.wordAddrs.push_back(
            AddressLayout::dmaWord((start + i) % kDmaRegionWords));
        out.values.push_back(env_rng_.next());
    }
    next_due_ = total_instrs + drawInterval(env_rng_, mean_instrs_);
    return true;
}

} // namespace delorean
