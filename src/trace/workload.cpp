#include "trace/workload.hpp"

#include <algorithm>

#include "trace/layout.hpp"

namespace delorean
{

Workload::Workload(const std::string &app_name, unsigned num_procs,
                   std::uint64_t seed, WorkloadScale scale)
    : Workload(AppTable::byName(app_name), num_procs, seed, scale)
{
}

Workload::Workload(const AppProfile &profile, unsigned num_procs,
                   std::uint64_t seed, WorkloadScale scale)
    : profile_(profile), num_procs_(num_procs), seed_(seed),
      iterations_percent_(scale.iterationsPercent)
{
    profile_.iterations = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(profile_.iterations)
               * scale.iterationsPercent / 100));
    program_ =
        std::make_unique<ThreadProgram>(profile_, num_procs_, seed_);
}

void
Workload::initializeMemory(MemoryState &mem) const
{
    for (std::uint32_t l = 0; l < profile_.numLocks; ++l)
        mem.store(wordOf(AddressLayout::lockWord(l)), 0);
    mem.store(wordOf(AddressLayout::barrierCount()), 0);
    mem.store(wordOf(AddressLayout::barrierGen()), 0);
}

} // namespace delorean
