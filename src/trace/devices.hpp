/**
 * @file
 * Environment device models: interrupt source, I/O device, DMA engine.
 *
 * Devices are *non-deterministic* with respect to the program: they
 * are driven by an environment RNG that is seeded differently in the
 * initial execution and in every replay run. During recording their
 * outputs flow into the input logs (Interrupt, I/O, DMA); during
 * replay the logs — never the devices — supply the values. A replay
 * that consulted the devices instead of the logs would fail the
 * fingerprint check, which is how the tests prove the input logs are
 * load-bearing.
 */

#ifndef DELOREAN_TRACE_DEVICES_HPP_
#define DELOREAN_TRACE_DEVICES_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/app_profile.hpp"

namespace delorean
{

/** A pending interrupt for one processor. */
struct InterruptEvent
{
    std::uint8_t type = 0;
    std::uint64_t data = 0;
};

/**
 * Per-processor interrupt timer. Interrupt arrivals are spaced by an
 * exponential-ish random number of *globally committed instructions*
 * (a convenient clock that both executors share).
 */
class InterruptSource
{
  public:
    InterruptSource(const AppProfile &profile, unsigned num_procs,
                    std::uint64_t env_seed);

    /** True if the profile generates interrupts at all. */
    bool enabled() const { return mean_instrs_ != 0; }

    /**
     * Poll for an interrupt on @p proc given that @p instrs_executed
     * instructions have been executed by that processor so far.
     * Returns true at most once per due interval and fills @p out.
     */
    bool poll(ProcId proc, InstrCount instrs_executed, InterruptEvent &out);

  private:
    std::uint64_t mean_instrs_;
    Xoshiro256ss env_rng_;
    std::vector<InstrCount> next_due_;
};

/** One DMA transfer: a burst of word writes. */
struct DmaTransfer
{
    std::vector<Addr> wordAddrs;
    std::vector<std::uint64_t> values;
};

/**
 * DMA engine: periodically produces a burst of writes into the DMA
 * buffer region. The chunk engine treats it as a pseudo-processor
 * that requests a commit slot from the arbiter (Section 3.3).
 */
class DmaEngine
{
  public:
    DmaEngine(const AppProfile &profile, std::uint64_t env_seed);

    bool enabled() const { return mean_instrs_ != 0; }

    /**
     * Poll given the machine-wide total of executed instructions;
     * returns true when a transfer is due and fills @p out.
     */
    bool poll(InstrCount total_instrs, DmaTransfer &out);

  private:
    std::uint64_t mean_instrs_;
    std::uint32_t burst_words_;
    Xoshiro256ss env_rng_;
    InstrCount next_due_ = 0;
};

/** I/O device: supplies values for uncached I/O loads. */
class IoDevice
{
  public:
    explicit IoDevice(std::uint64_t env_seed) : env_rng_(env_seed) {}

    /** Value returned by an I/O load from @p port. */
    std::uint64_t
    read(Addr port)
    {
        return mix64(env_rng_.next() ^ port);
    }

  private:
    Xoshiro256ss env_rng_;
};

} // namespace delorean

#endif // DELOREAN_TRACE_DEVICES_HPP_
