/**
 * @file
 * Application profiles for the synthetic workload generator.
 *
 * The paper evaluates 11 SPLASH-2 applications (all but Volrend),
 * SPECjbb2000 and SPECweb2005. We cannot run the real binaries inside
 * this repo, so each application is modelled by a parameter vector
 * that captures the behaviour the paper's experiments are sensitive
 * to: memory-op density, working-set sizes, sharing degree and
 * hotness (which drive chunk conflicts and squashes), lock/barrier
 * structure (which drives commit-order pressure), spatial locality
 * (which drives cache behaviour and overflow truncation), and system
 * activity (interrupts, I/O, syscalls, DMA) for the commercial
 * workloads. See DESIGN.md Section 2 for the substitution rationale.
 */

#ifndef DELOREAN_TRACE_APP_PROFILE_HPP_
#define DELOREAN_TRACE_APP_PROFILE_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace delorean
{

/** Parameter vector describing one application. */
struct AppProfile
{
    std::string name;

    // --- Volume -------------------------------------------------------
    /// Outer iterations per thread. All threads run the same count so
    /// barrier episodes align. Scaled by WorkloadScale.
    std::uint32_t iterations = 50;
    /// Mean dynamic instructions of private/shared work per iteration.
    std::uint32_t workPerIter = 2000;

    // --- Instruction mix ----------------------------------------------
    std::uint32_t memOpPerMille = 350;  ///< memory ops in compute work
    std::uint32_t storePerMille = 300;  ///< stores among memory ops
    std::uint32_t sharedPerMille = 150; ///< shared-region among mem ops

    // --- Working sets / locality ---------------------------------------
    std::uint32_t sharedWords = 1 << 16;  ///< shared region (words)
    std::uint32_t privateWords = 1 << 14; ///< per-thread region (words)
    std::uint32_t hotWords = 256;         ///< contended shared subset
    std::uint32_t hotPerMille = 100;      ///< shared accesses to hot set
    std::uint32_t localityPerMille = 700; ///< P(sequential next access)
    /// Shared data is partitioned per processor (the dominant SPLASH-2
    /// pattern); this is the fraction of shared accesses that cross
    /// into another processor's partition.
    std::uint32_t remotePerMille = 200;

    // --- Synchronization -----------------------------------------------
    std::uint32_t numLocks = 16;
    std::uint32_t lockPerMille = 80; ///< P(critical section)/iteration
    std::uint32_t csLen = 40;        ///< critical-section instructions
    std::uint32_t csSharedPerMille = 300; ///< CS accesses to shared data
    std::uint32_t barrierEveryIters = 0;  ///< 0 = no barriers

    // --- Seeded data races ----------------------------------------------
    /// Number of deliberately racy words (AddressLayout::raceWord).
    /// When nonzero, every thread stores then loads each race word at
    /// the top of every iteration with no synchronization, creating
    /// deterministic cross-thread data races on exactly these words.
    /// 0 (the default, and all stock profiles) seeds none. Selected at
    /// runtime with the "<app>~r<K>" name suffix, e.g. "fft~r3".
    std::uint32_t seededRaceWords = 0;

    // --- System activity (commercial workloads) -------------------------
    bool isCommercial = false;
    std::uint32_t ioPerMille = 0;      ///< P(I/O burst)/iteration
    std::uint32_t syscallPerMille = 0; ///< P(syscall)/iteration
    std::uint32_t syscallLen = 120;    ///< kernel instrs per syscall
    std::uint32_t irqMeanInstrs = 0;   ///< mean instrs between IRQs
    std::uint32_t dmaMeanInstrs = 0;   ///< mean instrs between DMAs
    std::uint32_t dmaBurstWords = 64;  ///< words per DMA transfer
};

/** The full application table used in the evaluation. */
class AppTable
{
  public:
    /** Names of the 11 SPLASH-2 applications (paper order). */
    static const std::vector<std::string> &splash2Names();

    /** All names: SPLASH-2 + sjbb2k + sweb2005. */
    static const std::vector<std::string> &allNames();

    /**
     * Profile for @p name; throws std::out_of_range if unknown.
     *
     * A "~r<K>" suffix (K in [1, 64]) derives a seeded-race variant of
     * the base profile with seededRaceWords = K and the suffixed name,
     * e.g. byName("fft~r3"). Derived profiles are cached so the
     * returned reference stays valid for the process lifetime.
     * Malformed suffixes throw std::out_of_range like any unknown
     * name.
     */
    static const AppProfile &byName(const std::string &name);
};

/**
 * Machine-readable known-race manifest for @p profile: the sorted
 * addresses of every word the generator deliberately races on. Empty
 * for stock (race-free) profiles. Detector tests assert that the set
 * of reported racy words equals this manifest exactly.
 */
std::vector<std::uint64_t> seededRaceManifest(const AppProfile &profile);

} // namespace delorean

#endif // DELOREAN_TRACE_APP_PROFILE_HPP_
