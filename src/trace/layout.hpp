/**
 * @file
 * Simulated physical address-space layout.
 *
 * Regions are widely separated so region membership is a simple range
 * check. Synchronization words (locks, barrier counter/generation)
 * each live on their own cache line to avoid accidental false sharing;
 * false sharing, where a profile wants it, is created inside the
 * shared-data region instead.
 */

#ifndef DELOREAN_TRACE_LAYOUT_HPP_
#define DELOREAN_TRACE_LAYOUT_HPP_

#include "common/types.hpp"

namespace delorean
{

/** Address-space layout helper; pure functions of region bases. */
class AddressLayout
{
  public:
    static constexpr Addr kSharedBase = 0x1000'0000;
    static constexpr Addr kPrivateBase = 0x2000'0000;
    static constexpr Addr kPrivateSpan = 0x0100'0000; ///< per processor
    /// The private region hosts up to 64 processors (the serializer's
    /// numProcs ceiling), so the remaining regions start past
    /// kPrivateBase + 64 * kPrivateSpan.
    static constexpr Addr kLockBase = 0x6000'0000;
    static constexpr Addr kBarrierBase = 0x6100'0000;
    /// Seeded-race words (AppProfile::seededRaceWords) live in their
    /// own region so the known-race manifest is a pure function of the
    /// profile and the detector can tell them from ordinary data.
    static constexpr Addr kRaceBase = 0x6200'0000;
    static constexpr Addr kKernelBase = 0x7000'0000;
    static constexpr Addr kDmaBase = 0x7800'0000;
    static constexpr Addr kIoBase = 0x8000'0000;

    /** i-th word of the shared data region. */
    static constexpr Addr
    sharedWord(std::uint64_t i)
    {
        return kSharedBase + i * kWordBytes;
    }

    /** i-th word of processor @p proc's private region. */
    static constexpr Addr
    privateWord(ProcId proc, std::uint64_t i)
    {
        return kPrivateBase + proc * kPrivateSpan + i * kWordBytes;
    }

    /** Lock word @p id (one per cache line). */
    static constexpr Addr
    lockWord(std::uint32_t id)
    {
        return kLockBase + static_cast<Addr>(id) * kLineBytes;
    }

    /** Central barrier arrival counter. */
    static constexpr Addr barrierCount() { return kBarrierBase; }

    /** Central barrier generation (sense) word. */
    static constexpr Addr
    barrierGen()
    {
        return kBarrierBase + kLineBytes;
    }

    /** i-th seeded-race word (one per cache line). */
    static constexpr Addr
    raceWord(std::uint32_t i)
    {
        return kRaceBase + static_cast<Addr>(i) * kLineBytes;
    }

    /** i-th word of the kernel region (handlers, syscalls). */
    static constexpr Addr
    kernelWord(std::uint64_t i)
    {
        return kKernelBase + i * kWordBytes;
    }

    /** i-th word of the DMA buffer region. */
    static constexpr Addr
    dmaWord(std::uint64_t i)
    {
        return kDmaBase + i * kWordBytes;
    }

    /** i-th uncached I/O port address. */
    static constexpr Addr
    ioPort(std::uint64_t i)
    {
        return kIoBase + i * kWordBytes;
    }

    /** True for uncached (I/O space) addresses. */
    static constexpr bool isUncached(Addr addr) { return addr >= kIoBase; }

    /** True for shared-region addresses. */
    static constexpr bool
    isShared(Addr addr)
    {
        return addr >= kSharedBase && addr < kPrivateBase;
    }

    /** True for private-region addresses. */
    static constexpr bool
    isPrivate(Addr addr)
    {
        return addr >= kPrivateBase && addr < kLockBase;
    }

    /** True for lock words. */
    static constexpr bool
    isLock(Addr addr)
    {
        return addr >= kLockBase && addr < kBarrierBase;
    }

    /** True for the barrier counter/generation words. */
    static constexpr bool
    isBarrier(Addr addr)
    {
        return addr >= kBarrierBase && addr < kRaceBase;
    }

    /** True for seeded-race words. */
    static constexpr bool
    isRace(Addr addr)
    {
        return addr >= kRaceBase && addr < kKernelBase;
    }

    /** True for DMA buffer addresses. */
    static constexpr bool
    isDma(Addr addr)
    {
        return addr >= kDmaBase && addr < kIoBase;
    }

    /** Lock id of a lock-region address. */
    static constexpr std::uint32_t
    lockIdOf(Addr addr)
    {
        return static_cast<std::uint32_t>((addr - kLockBase) / kLineBytes);
    }

    /// Word lanes per stripe group (8 words = two 32 B lines).
    static constexpr std::uint64_t kLaneCount = 8;

    /**
     * Stripe a shared word index onto processor @p proc's word lane
     * within an 8-word group. The generator routes every cross-thread
     * shared-data access (partition, hot set, remote stores, kernel
     * shared slice) through this so concurrent threads contend on
     * *lines* — driving chunk conflicts, squashes and strata cuts —
     * while never touching the same *word* unsynchronized. That keeps
     * the stock applications free of word-level data races, which the
     * happens-before detector (src/analysis) asserts. Word-shared data
     * stays word-shared only where a happens-before edge protects it
     * (per-lock critical-section regions) or where a race is wanted
     * (raceWord). Lanes wrap at kLaneCount processors; detector tests
     * keep numProcs <= kLaneCount.
     */
    static constexpr std::uint64_t
    stripedIndex(std::uint64_t idx, ProcId proc)
    {
        return (idx & ~(kLaneCount - 1)) | (proc % kLaneCount);
    }

    /**
     * Page-like "segment" index of a private-region address, used by
     * the first-touch trap model. 8 KB segments.
     */
    static constexpr unsigned
    privateSegment(Addr addr)
    {
        return static_cast<unsigned>(((addr - kPrivateBase) % kPrivateSpan)
                                     >> 13);
    }
};

} // namespace delorean

#endif // DELOREAN_TRACE_LAYOUT_HPP_
