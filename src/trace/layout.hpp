/**
 * @file
 * Simulated physical address-space layout.
 *
 * Regions are widely separated so region membership is a simple range
 * check. Synchronization words (locks, barrier counter/generation)
 * each live on their own cache line to avoid accidental false sharing;
 * false sharing, where a profile wants it, is created inside the
 * shared-data region instead.
 */

#ifndef DELOREAN_TRACE_LAYOUT_HPP_
#define DELOREAN_TRACE_LAYOUT_HPP_

#include "common/types.hpp"

namespace delorean
{

/** Address-space layout helper; pure functions of region bases. */
class AddressLayout
{
  public:
    static constexpr Addr kSharedBase = 0x1000'0000;
    static constexpr Addr kPrivateBase = 0x2000'0000;
    static constexpr Addr kPrivateSpan = 0x0100'0000; ///< per processor
    /// The private region hosts up to 64 processors (the serializer's
    /// numProcs ceiling), so the remaining regions start past
    /// kPrivateBase + 64 * kPrivateSpan.
    static constexpr Addr kLockBase = 0x6000'0000;
    static constexpr Addr kBarrierBase = 0x6100'0000;
    static constexpr Addr kKernelBase = 0x7000'0000;
    static constexpr Addr kDmaBase = 0x7800'0000;
    static constexpr Addr kIoBase = 0x8000'0000;

    /** i-th word of the shared data region. */
    static constexpr Addr
    sharedWord(std::uint64_t i)
    {
        return kSharedBase + i * kWordBytes;
    }

    /** i-th word of processor @p proc's private region. */
    static constexpr Addr
    privateWord(ProcId proc, std::uint64_t i)
    {
        return kPrivateBase + proc * kPrivateSpan + i * kWordBytes;
    }

    /** Lock word @p id (one per cache line). */
    static constexpr Addr
    lockWord(std::uint32_t id)
    {
        return kLockBase + static_cast<Addr>(id) * kLineBytes;
    }

    /** Central barrier arrival counter. */
    static constexpr Addr barrierCount() { return kBarrierBase; }

    /** Central barrier generation (sense) word. */
    static constexpr Addr
    barrierGen()
    {
        return kBarrierBase + kLineBytes;
    }

    /** i-th word of the kernel region (handlers, syscalls). */
    static constexpr Addr
    kernelWord(std::uint64_t i)
    {
        return kKernelBase + i * kWordBytes;
    }

    /** i-th word of the DMA buffer region. */
    static constexpr Addr
    dmaWord(std::uint64_t i)
    {
        return kDmaBase + i * kWordBytes;
    }

    /** i-th uncached I/O port address. */
    static constexpr Addr
    ioPort(std::uint64_t i)
    {
        return kIoBase + i * kWordBytes;
    }

    /** True for uncached (I/O space) addresses. */
    static constexpr bool isUncached(Addr addr) { return addr >= kIoBase; }

    /** True for shared-region addresses. */
    static constexpr bool
    isShared(Addr addr)
    {
        return addr >= kSharedBase && addr < kPrivateBase;
    }

    /** True for private-region addresses. */
    static constexpr bool
    isPrivate(Addr addr)
    {
        return addr >= kPrivateBase && addr < kLockBase;
    }

    /**
     * Page-like "segment" index of a private-region address, used by
     * the first-touch trap model. 8 KB segments.
     */
    static constexpr unsigned
    privateSegment(Addr addr)
    {
        return static_cast<unsigned>(((addr - kPrivateBase) % kPrivateSpan)
                                     >> 13);
    }
};

} // namespace delorean

#endif // DELOREAN_TRACE_LAYOUT_HPP_
