/**
 * @file
 * Dynamic instruction representation for the workload model.
 *
 * Workloads are deterministic per-thread instruction *generators*
 * whose control flow depends on loaded values (spin locks, barriers,
 * flag polling). The executors — chunked or interleaved — drive the
 * generator one instruction at a time, perform the memory access, and
 * feed the observed value back. The categories below are exactly the
 * ones DeLorean's exceptional-event handling (Table 4) distinguishes.
 */

#ifndef DELOREAN_TRACE_INSTR_HPP_
#define DELOREAN_TRACE_INSTR_HPP_

#include <cstdint>

#include "common/types.hpp"

namespace delorean
{

/** Dynamic instruction kinds. */
enum class Op : std::uint8_t
{
    kCompute,     ///< no memory access
    kLoad,        ///< cached word load
    kStore,       ///< cached word store
    kAmoSwap,     ///< atomic swap, returns old value (test-and-set)
    kAmoFetchAdd, ///< atomic fetch-add, returns old value
    kIoLoad,      ///< uncached I/O load: truncates chunk, value logged
    kIoStore,     ///< uncached I/O store: truncates chunk
    kSpecialSys,  ///< special system instruction: truncates chunk
};

/** True if the op reads or writes simulated memory. */
constexpr bool
isMemOp(Op op)
{
    return op != Op::kCompute && op != Op::kSpecialSys;
}

/** True if the op returns a value to the program (load-like). */
constexpr bool
returnsValue(Op op)
{
    return op == Op::kLoad || op == Op::kAmoSwap
           || op == Op::kAmoFetchAdd || op == Op::kIoLoad;
}

/** True if the op writes memory. */
constexpr bool
writesMemory(Op op)
{
    return op == Op::kStore || op == Op::kAmoSwap
           || op == Op::kAmoFetchAdd || op == Op::kIoStore;
}

/**
 * True if the op is "hard to undo" and deterministically truncates the
 * running chunk (Section 4.2.2).
 */
constexpr bool
truncatesChunk(Op op)
{
    return op == Op::kIoLoad || op == Op::kIoStore
           || op == Op::kSpecialSys;
}

/** One dynamic instruction produced by a thread program. */
struct Instr
{
    Op op = Op::kCompute;
    Addr addr = 0;           ///< byte address (mem ops only)
    std::uint64_t value = 0; ///< store value / AMO operand
};

} // namespace delorean

#endif // DELOREAN_TRACE_INSTR_HPP_
