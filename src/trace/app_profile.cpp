#include "trace/app_profile.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "trace/layout.hpp"

namespace delorean
{

namespace
{

/**
 * Build the application table. Parameters are tuned so the qualitative
 * per-application behaviour of the paper's evaluation emerges:
 * raytrace's squashes concentrate on a few hot locks (high PicoLog
 * stall), radix's conflicts are spread wide (low stall, long chunks),
 * cholesky/fmm are task-queue codes with high commit pressure, ocean
 * has a big working set (more overflow truncation), fft/lu are
 * barrier-structured with little data sharing, and the commercial
 * workloads add interrupts, I/O, syscalls and DMA.
 */
std::map<std::string, AppProfile>
buildTable()
{
    std::map<std::string, AppProfile> t;

    {
        AppProfile p;
        p.name = "barnes";
        p.workPerIter = 6600;
        p.memOpPerMille = 380;
        p.storePerMille = 250;
        p.sharedPerMille = 90;
        p.sharedWords = 1 << 16;
        p.hotWords = 512;
        p.hotPerMille = 25;
        p.numLocks = 32;
        p.lockPerMille = 70;
        p.csLen = 30;
        p.barrierEveryIters = 8;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "cholesky";
        p.workPerIter = 5400;
        p.memOpPerMille = 400;
        p.storePerMille = 280;
        p.sharedPerMille = 120;
        p.sharedWords = 1 << 15;
        p.hotWords = 96;       // task queue head: very hot
        p.hotPerMille = 55;
        p.numLocks = 6;
        p.lockPerMille = 100;  // frequent task-queue locking
        p.csLen = 60;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "fft";
        p.workPerIter = 7800;
        p.memOpPerMille = 420;
        p.storePerMille = 330;
        p.sharedPerMille = 50;
        p.sharedWords = 1 << 17;
        p.hotWords = 64;
        p.hotPerMille = 8;    // all-to-all but staggered: few conflicts
        p.localityPerMille = 850;
        p.numLocks = 4;
        p.lockPerMille = 10;
        p.barrierEveryIters = 4;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "fmm";
        p.workPerIter = 6000;
        p.memOpPerMille = 370;
        p.storePerMille = 240;
        p.sharedPerMille = 100;
        p.sharedWords = 1 << 16;
        p.hotWords = 128;
        p.hotPerMille = 40;
        p.numLocks = 12;
        p.lockPerMille = 140;
        p.csLen = 50;
        p.barrierEveryIters = 10;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "lu";
        p.workPerIter = 7200;
        p.memOpPerMille = 430;
        p.storePerMille = 320;
        p.sharedPerMille = 60;
        p.sharedWords = 1 << 16;
        p.hotWords = 64;
        p.hotPerMille = 10;
        p.localityPerMille = 880; // blocked dense kernel
        p.numLocks = 2;
        p.lockPerMille = 10;
        p.barrierEveryIters = 4;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "ocean";
        p.workPerIter = 7800;
        p.memOpPerMille = 450;
        p.storePerMille = 340;
        p.sharedPerMille = 80;
        p.sharedWords = 1 << 18; // large grids: cache pressure
        p.privateWords = 1 << 16;
        p.hotWords = 128;
        p.hotPerMille = 12;
        p.localityPerMille = 820;
        p.numLocks = 4;
        p.lockPerMille = 20;
        p.barrierEveryIters = 2; // barrier heavy
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "radiosity";
        p.workPerIter = 5700;
        p.memOpPerMille = 360;
        p.storePerMille = 260;
        p.sharedPerMille = 110;
        p.sharedWords = 1 << 15;
        p.hotWords = 160;
        p.hotPerMille = 45;
        p.numLocks = 24;       // distributed task queues
        p.lockPerMille = 160;
        p.csLen = 45;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "radix";
        p.workPerIter = 7200;
        p.memOpPerMille = 480;
        p.storePerMille = 420;  // permutation phase: store heavy
        p.sharedPerMille = 140;
        p.sharedWords = 1 << 17;
        p.hotWords = 4096;      // conflicts spread over many procs
        p.hotPerMille = 60;
        p.localityPerMille = 350; // scattered writes
        p.numLocks = 4;
        p.lockPerMille = 15;
        p.barrierEveryIters = 6;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "raytrace";
        p.workPerIter = 5100;
        p.memOpPerMille = 390;
        p.storePerMille = 200;
        p.sharedPerMille = 90;
        p.sharedWords = 1 << 16;
        p.hotWords = 32;        // ray-ID counter lock: squashes
        p.hotPerMille = 65;    // concentrate on few processors
        p.numLocks = 3;
        p.lockPerMille = 260;   // very lock heavy
        p.csLen = 35;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "water-ns";
        p.workPerIter = 6300;
        p.memOpPerMille = 360;
        p.storePerMille = 270;
        p.sharedPerMille = 75;
        p.sharedWords = 1 << 15;
        p.hotWords = 256;
        p.hotPerMille = 28;
        p.numLocks = 16;
        p.lockPerMille = 180;
        p.csLen = 40;
        p.barrierEveryIters = 8;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "water-sp";
        p.workPerIter = 6600;
        p.memOpPerMille = 350;
        p.storePerMille = 260;
        p.sharedPerMille = 50;
        p.sharedWords = 1 << 15;
        p.hotWords = 128;
        p.hotPerMille = 16;
        p.numLocks = 16;
        p.lockPerMille = 90;
        p.csLen = 35;
        p.barrierEveryIters = 8;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "sjbb2k";
        p.isCommercial = true;
        p.workPerIter = 6000;
        p.memOpPerMille = 400;
        p.storePerMille = 300;
        p.sharedPerMille = 110;
        p.sharedWords = 1 << 17; // warehouses
        p.hotWords = 384;
        p.hotPerMille = 35;
        p.localityPerMille = 550;
        p.numLocks = 48;
        p.lockPerMille = 140;
        p.csLen = 55;
        p.ioPerMille = 30;
        p.syscallPerMille = 90;
        p.syscallLen = 140;
        p.irqMeanInstrs = 60000;
        p.dmaMeanInstrs = 90000;
        t[p.name] = p;
    }
    {
        AppProfile p;
        p.name = "sweb2005";
        p.isCommercial = true;
        p.workPerIter = 5400;
        p.memOpPerMille = 410;
        p.storePerMille = 280;
        p.sharedPerMille = 130;
        p.sharedWords = 1 << 17;
        p.hotWords = 512;
        p.hotPerMille = 40;
        p.localityPerMille = 500;
        p.numLocks = 64;
        p.lockPerMille = 160;
        p.csLen = 50;
        p.ioPerMille = 80;      // network + disk heavy
        p.syscallPerMille = 160;
        p.syscallLen = 160;
        p.irqMeanInstrs = 35000;
        p.dmaMeanInstrs = 50000;
        p.dmaBurstWords = 128;
        t[p.name] = p;
    }

    return t;
}

const std::map<std::string, AppProfile> &
table()
{
    static const std::map<std::string, AppProfile> t = buildTable();
    return t;
}

} // namespace

const std::vector<std::string> &
AppTable::splash2Names()
{
    static const std::vector<std::string> names = {
        "barnes", "cholesky", "fft",      "fmm",      "lu",      "ocean",
        "radiosity", "radix", "raytrace", "water-ns", "water-sp",
    };
    return names;
}

const std::vector<std::string> &
AppTable::allNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n = splash2Names();
        n.push_back("sjbb2k");
        n.push_back("sweb2005");
        return n;
    }();
    return names;
}

namespace
{

/// Largest seededRaceWords the "~r<K>" suffix accepts. Keeps the race
/// region (and per-iteration race traffic) small and bounded.
constexpr std::uint32_t kMaxSeededRaceWords = 64;

/**
 * Parse a "<base>~r<K>" seeded-race variant name. Returns true and
 * fills @p base / @p k only for a well-formed suffix with K in
 * [1, kMaxSeededRaceWords]; anything else (including a bare "~r" or
 * trailing junk) is treated as an ordinary — unknown — name.
 */
bool
parseRaceVariant(const std::string &name, std::string &base,
                 std::uint32_t &k)
{
    const std::size_t tilde = name.rfind("~r");
    if (tilde == std::string::npos || tilde == 0
        || tilde + 2 >= name.size())
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = tilde + 2; i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (value > kMaxSeededRaceWords)
            return false;
    }
    if (value == 0)
        return false;
    base = name.substr(0, tilde);
    k = static_cast<std::uint32_t>(value);
    return true;
}

} // namespace

const AppProfile &
AppTable::byName(const std::string &name)
{
    {
        const auto it = table().find(name);
        if (it != table().end())
            return it->second;
    }
    std::string base;
    std::uint32_t k = 0;
    if (parseRaceVariant(name, base, k)) {
        // Derived profiles are cached (std::map references are stable)
        // so the returned reference lives as long as the stock ones.
        static std::mutex mu;
        static std::map<std::string, AppProfile> variants;
        const AppProfile &stock = table().at(base); // may throw
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = variants.try_emplace(name, stock);
        if (inserted) {
            it->second.name = name;
            it->second.seededRaceWords = k;
        }
        return it->second;
    }
    return table().at(name); // throws std::out_of_range
}

std::vector<std::uint64_t>
seededRaceManifest(const AppProfile &profile)
{
    std::vector<std::uint64_t> words;
    words.reserve(profile.seededRaceWords);
    for (std::uint32_t i = 0; i < profile.seededRaceWords; ++i)
        words.push_back(AddressLayout::raceWord(i));
    std::sort(words.begin(), words.end());
    return words;
}

} // namespace delorean
