/**
 * @file
 * Checkpointable per-thread architectural context.
 *
 * The context is the *complete* architectural state of a thread's
 * program: RNG, phase machine, synchronization state, accumulator.
 * Chunk squash = restore a saved copy; chunk checkpoint = take a copy.
 * Everything the generator does is a deterministic function of this
 * state plus the values loaded from memory, which is what makes
 * deterministic replay a provable property (Appendix B, Observation 1).
 */

#ifndef DELOREAN_TRACE_THREAD_CONTEXT_HPP_
#define DELOREAN_TRACE_THREAD_CONTEXT_HPP_

#include <bitset>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/instr.hpp"

namespace delorean
{

/** Phase machine states of the workload generator. */
enum class ThreadState : std::uint8_t
{
    kIterStart,  ///< decide what this iteration does
    kWork,       ///< private/shared compute loop
    kLockTest,   ///< spinning: load lock word
    kLockTas,    ///< saw it free: try atomic swap
    kCritical,   ///< inside critical section
    kUnlock,     ///< store releasing the lock
    kBarArrive,  ///< fetch-add on barrier counter
    kBarReset,   ///< last arriver: reset counter
    kBarRelease, ///< last arriver: bump generation
    kBarSpin,    ///< waiting: load generation word
    kSyscall,    ///< special system instruction
    kKernel,     ///< kernel-region work (syscall body)
    kIoCmd,      ///< uncached store initiating I/O
    kIoStatus,   ///< uncached loads polling the device
    kIterEnd,    ///< bookkeeping, advance to next iteration
    kDone,       ///< program finished
};

/** Complete architectural state of one simulated thread. */
struct ThreadContext
{
    ProcId proc = 0;

    /// Program RNG — *architectural*: checkpointed and restored with
    /// the rest of the context, unlike the environment RNG.
    Xoshiro256ss rng;

    /// Dataflow accumulator folding every loaded value; the heart of
    /// the execution fingerprint.
    std::uint64_t acc = 0;

    /// Dynamic instructions retired (committed stream position).
    InstrCount retired = 0;

    ThreadState state = ThreadState::kIterStart;
    std::uint32_t iter = 0;          ///< current outer iteration
    std::uint32_t workRemaining = 0; ///< instrs left in kWork
    std::uint32_t subRemaining = 0;  ///< instrs left in CS / kernel body
    std::uint32_t lockId = 0;        ///< lock being acquired/held
    std::uint64_t barrierGenSeen = 0;///< barrier sense
    std::uint32_t ioRemaining = 0;   ///< status polls left in I/O burst

    // Pending-iteration activity flags, decided at kIterStart.
    bool pendingBarrier = false;
    bool pendingLock = false;
    bool pendingSyscall = false;
    bool pendingIo = false;

    // Strided-access cursors (spatial locality).
    std::uint32_t privCursor = 0;
    std::uint32_t sharedCursor = 0;

    // Store windows: writes concentrate in small, heavily reused
    // regions (stack frames, output tiles), relocated per iteration.
    // This keeps the count of distinct dirty lines per chunk low, so
    // speculative-line overflow stays the rare event it is in the
    // paper (Section 4.2.3).
    std::uint32_t privStoreBase = 0;
    std::uint32_t sharedStoreBase = 0;

    // Bursty work phases (compute-heavy / streaming / scatter):
    // produces realistic chunk-to-chunk duration variance, which is
    // what makes PicoLog's round-robin commit order hurt.
    std::uint8_t workPhase = 0;
    std::uint16_t workPhaseLeft = 0;

    // First-touch trap model: injected kernel work, then the stashed
    // access that faulted is re-issued.
    std::uint16_t trapRemaining = 0;
    bool hasPendingAccess = false;
    Instr pendingAccess;

    // Interrupt handler: injected kernel work preempting any state.
    std::uint16_t handlerRemaining = 0;

    /// Architectural count of I/O loads executed; indexes the I/O log
    /// during replay. Restored on squash so a re-executed chunk
    /// re-reads the same logged values.
    std::uint64_t ioLoadCount = 0;

    bool done = false;

    /// Seeded-race instructions left in this iteration's burst
    /// (2 * AppProfile::seededRaceWords at iteration start: a store
    /// then a load of each race word, deliberately unsynchronized).
    std::uint32_t raceRemaining = 0;

    /// 8 KB segments already touched (first-touch trap model). Kept
    /// LAST so the engine's per-instruction rollback snapshot can
    /// cover every other field with one small prefix copy: generate()
    /// sets at most one segment bit per call (and never clears any),
    /// so the rollback undoes that single bit instead of copying the
    /// whole bitset on every instruction.
    std::bitset<2048> mappedSegs;

    /** Fingerprint contribution of this thread's final state. */
    std::uint64_t
    stateHash() const
    {
        std::uint64_t h = acc;
        h = mix64(h ^ retired);
        h = mix64(h ^ (static_cast<std::uint64_t>(iter) << 32
                       ^ static_cast<std::uint64_t>(proc)));
        return h;
    }
};

} // namespace delorean

#endif // DELOREAN_TRACE_THREAD_CONTEXT_HPP_
