/**
 * @file
 * Workload: an application profile bound to a machine width, with the
 * initial memory image and a thread program per processor.
 */

#ifndef DELOREAN_TRACE_WORKLOAD_HPP_
#define DELOREAN_TRACE_WORKLOAD_HPP_

#include <memory>
#include <string>

#include "memory/memory_state.hpp"
#include "trace/app_profile.hpp"
#include "trace/thread_program.hpp"

namespace delorean
{

/** Scaling knobs so tests/benches can size runs to their budget. */
struct WorkloadScale
{
    /// Multiplier (percent) applied to the profile's iteration count.
    /// 100 = the profile default.
    unsigned iterationsPercent = 100;

    /** Convenience: quick runs for unit tests. */
    static WorkloadScale tiny() { return WorkloadScale{10}; }
};

/** An application instance ready to execute on @p numProcs threads. */
class Workload
{
  public:
    /**
     * @param app_name one of AppTable::allNames()
     * @param num_procs machine width
     * @param seed workload seed (architectural; part of the recording)
     * @param scale run-length scaling
     */
    Workload(const std::string &app_name, unsigned num_procs,
             std::uint64_t seed, WorkloadScale scale = {});

    /**
     * Build a workload from an arbitrary profile (fuzzing, custom
     * application models). The profile's name need not be in
     * AppTable; such recordings cannot be replayed through the
     * one-argument Replayer::replay overload (pass the workload).
     */
    Workload(const AppProfile &profile, unsigned num_procs,
             std::uint64_t seed, WorkloadScale scale = {});

    /**
     * Write the architected initial values (lock words free, barrier
     * counter/generation zero) into @p mem. Must run before execution
     * and before any replay that starts from the initial state.
     */
    void initializeMemory(MemoryState &mem) const;

    const AppProfile &profile() const { return profile_; }
    const ThreadProgram &program() const { return *program_; }
    unsigned numProcs() const { return num_procs_; }
    std::uint64_t seed() const { return seed_; }
    unsigned iterationsPercent() const { return iterations_percent_; }
    const std::string &name() const { return profile_.name; }

  private:
    AppProfile profile_;
    unsigned num_procs_;
    std::uint64_t seed_;
    unsigned iterations_percent_;
    std::unique_ptr<ThreadProgram> program_;
};

} // namespace delorean

#endif // DELOREAN_TRACE_WORKLOAD_HPP_
