#include "store/archive.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "compress/lz77.hpp"
#include "core/serialize.hpp"
#include "core/serialize_detail.hpp"
#include "core/stratifier.hpp"
#include "sim/campaign.hpp"
#include "store/archive_detail.hpp"
#include "store/crc32.hpp"

namespace delorean
{

using serialize_detail::getCheckpoint;
using serialize_detail::getMachine;
using serialize_detail::getMode;
using serialize_detail::getString;
using serialize_detail::getU64;
using serialize_detail::putCheckpoint;
using serialize_detail::putMachine;
using serialize_detail::putMode;
using serialize_detail::putString;

namespace
{

constexpr std::uint64_t kArchiveMagic = 0x766372416F4C6544ull;  // "DeLoArcv"
constexpr std::uint64_t kSegmentMagic = 0x2E6765536F4C6544ull;  // "DeLoSeg."
constexpr std::uint64_t kArchiveEndMagic = 0x5A6372416F4C6544ull; // "DeLoArcZ"
// v2: machine footer carries bulk.numArbiters (12 u64s) and PI slices
// carry an optional shard-mask section for partial-order recordings.
constexpr std::uint64_t kArchiveVersion = 2;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kSegmentHeaderBytes = 40;
constexpr std::size_t kTrailerBytes = 40;
constexpr std::uint64_t kMaxSegments = 1u << 20;

} // namespace

using namespace archive_detail;

// ----- shared container internals (store/archive_detail.hpp) ----------------

namespace archive_detail
{

Boundary
boundaryAtCheckpoint(const Recording &rec, const SystemCheckpoint &ckpt,
                     std::size_t segment)
{
    Boundary b;
    b.gcc = ckpt.gcc;
    b.dmaIdx = ckpt.dmaConsumed;
    b.committed = ckpt.committedChunks;
    for (const ThreadContext &ctx : ckpt.contexts)
        b.ioIdx.push_back(ctx.ioLoadCount);
    for (const ChunkSeq c : ckpt.committedChunks)
        b.chunkCommits += c;
    if (rec.stratified()) {
        // Find the stratum boundary matching this checkpoint. The
        // stratifier force-cuts at every checkpoint
        // (Stratifier::cutAtCheckpoint), so an exact match exists for
        // any recorder-produced recording.
        std::uint64_t chunks = 0;
        std::size_t dmas = 0;
        std::size_t idx = 0;
        while (chunks < b.chunkCommits || dmas < b.dmaIdx) {
            if (idx >= rec.strata.size())
                throw RecordingFormatError(
                    "checkpoint at GCC " + std::to_string(ckpt.gcc)
                    + " (segment " + std::to_string(segment)
                    + ") does not align with a stratum boundary");
            const Stratum &s = rec.strata[idx++];
            if (s.isDma) {
                ++dmas;
            } else {
                for (const auto c : s.counts)
                    chunks += c;
            }
        }
        if (chunks != b.chunkCommits || dmas != b.dmaIdx)
            throw RecordingFormatError(
                "checkpoint at GCC " + std::to_string(ckpt.gcc)
                + " (segment " + std::to_string(segment)
                + ") splits a stratum");
        b.strataIdx = idx;
    }
    return b;
}

Boundary
boundaryAtEnd(const Recording &rec)
{
    Boundary b;
    b.chunkCommits = rec.fingerprint.commits.size();
    b.gcc = b.chunkCommits + rec.dma.count();
    b.strataIdx = rec.strata.size();
    b.dmaIdx = rec.dma.count();
    const unsigned n = rec.machine.numProcs;
    b.committed.assign(n, 0);
    for (const CommitRecord &c : rec.fingerprint.commits)
        if (c.proc < n)
            b.committed[c.proc] =
                std::max<ChunkSeq>(b.committed[c.proc], c.seq + 1);
    for (ProcId p = 0; p < n; ++p)
        b.ioIdx.push_back(rec.io.countFor(p));
    return b;
}

/** Serialize the log slices between boundaries @p lo and @p hi. */
std::string
buildSegmentPayload(const Recording &rec, const Boundary &lo,
                    const Boundary &hi)
{
    std::ostringstream out(std::ios::binary);
    const auto put = [&out](std::uint64_t v) {
        serialize_detail::putU64(out, v);
    };
    const unsigned n = rec.machine.numProcs;

    // PI slice (flat modes; empty for stratified and PicoLog).
    std::uint64_t pi_lo = 0;
    std::uint64_t pi_hi = 0;
    if (!rec.stratified() && rec.mode.mode != ExecMode::kPicoLog) {
        pi_lo = std::min<std::uint64_t>(lo.gcc, rec.pi.entryCount());
        pi_hi = std::min<std::uint64_t>(hi.gcc, rec.pi.entryCount());
    }
    put(pi_hi - pi_lo);
    put(rec.pi.hasMasks() ? 1 : 0);
    for (std::uint64_t i = pi_lo; i < pi_hi; ++i)
        put(rec.pi.entryAt(i));
    if (rec.pi.hasMasks())
        for (std::uint64_t i = pi_lo; i < pi_hi; ++i)
            put(rec.pi.maskAt(i));

    // Strata slice.
    put(hi.strataIdx - lo.strataIdx);
    for (std::size_t i = lo.strataIdx; i < hi.strataIdx; ++i) {
        const Stratum &s = rec.strata[i];
        put(s.isDma ? 1 : 0);
        put(s.counts.size());
        for (const auto c : s.counts)
            put(c);
    }

    // CS slices: per-proc entries with seq in [lo, hi).
    for (ProcId p = 0; p < n; ++p) {
        std::vector<const CsEntry *> slice;
        for (const CsEntry &e : rec.cs[p].entries())
            if (e.seq >= lo.committed[p] && e.seq < hi.committed[p])
                slice.push_back(&e);
        put(slice.size());
        for (const CsEntry *e : slice) {
            put(e->seq);
            put(e->size);
            put(e->maxSize ? 1 : 0);
        }
    }

    // Interrupt slices (same per-proc chunk-seq windows).
    for (ProcId p = 0; p < n; ++p) {
        std::vector<const InterruptRecord *> slice;
        for (const InterruptRecord &e : rec.interrupts.entries(p))
            if (e.chunkSeq >= lo.committed[p]
                && e.chunkSeq < hi.committed[p])
                slice.push_back(&e);
        put(slice.size());
        for (const InterruptRecord *e : slice) {
            put(e->chunkSeq);
            put(e->type);
            put(e->data);
        }
    }

    // I/O slices: dense per-proc index windows.
    for (ProcId p = 0; p < n; ++p) {
        put(hi.ioIdx[p] - lo.ioIdx[p]);
        for (std::uint64_t i = lo.ioIdx[p]; i < hi.ioIdx[p]; ++i)
            put(rec.io.valueAt(p, i));
    }

    // DMA slice.
    put(hi.dmaIdx - lo.dmaIdx);
    for (std::size_t i = lo.dmaIdx; i < hi.dmaIdx; ++i) {
        const DmaTransfer &t = rec.dma.transferAt(i);
        put(rec.dma.slotAt(i));
        put(t.wordAddrs.size());
        for (std::size_t k = 0; k < t.wordAddrs.size(); ++k) {
            put(t.wordAddrs[k]);
            put(t.values[k]);
        }
    }

    // Fingerprint commit slice.
    put(hi.chunkCommits - lo.chunkCommits);
    for (std::uint64_t i = lo.chunkCommits; i < hi.chunkCommits; ++i) {
        const CommitRecord &c = rec.fingerprint.commits[i];
        put(c.proc);
        put(c.seq);
        put(c.size);
        put(c.accAfter);
    }
    return std::move(out).str();
}

} // namespace archive_detail

namespace
{

/**
 * Replay the recorder's variable-width log packing for the slice
 * between @p prev and @p cur onto the scratch logs, so the scratch
 * write pointers land exactly where a hardware recorder's would at
 * the boundary. Shared by the batch and streaming writers — the
 * footer's per-segment bit positions must agree bit-for-bit.
 */
void
advanceScratchLogs(const Recording &rec, const Boundary &prev,
                   const Boundary &cur, PiLog &scratch_pi,
                   std::vector<CsLog> &scratch_cs)
{
    const unsigned n = rec.machine.numProcs;
    if (!rec.stratified() && rec.mode.mode != ExecMode::kPicoLog) {
        for (std::uint64_t g = prev.gcc;
             g < std::min<std::uint64_t>(cur.gcc, rec.pi.entryCount());
             ++g) {
            if (rec.pi.hasMasks())
                scratch_pi.appendWithMask(rec.pi.entryAt(g),
                                          rec.pi.maskAt(g));
            else
                scratch_pi.append(rec.pi.entryAt(g));
        }
    }
    for (ProcId p = 0; p < n; ++p)
        for (const CsEntry &e : rec.cs[p].entries())
            if (e.seq >= prev.committed[p]
                && e.seq < cur.committed[p]) {
                if (rec.mode.mode == ExecMode::kOrderAndSize)
                    scratch_cs[p].appendCommittedSize(e.seq, e.size,
                                                      e.maxSize);
                else
                    scratch_cs[p].appendTruncation(e.seq, e.size);
            }
}

/**
 * Serialize the footer: recording metadata plus the per-segment
 * index. Shared by the batch and streaming writers.
 */
std::string
buildFooterRaw(const Recording &rec,
               const std::vector<ArchiveSegmentInfo> &segments)
{
    std::ostringstream footer(std::ios::binary);
    putMachine(footer, rec.machine);
    putMode(footer, rec.mode);
    putString(footer, rec.appName);
    serialize_detail::putU64(footer, rec.workloadSeed);
    serialize_detail::putU64(footer, rec.iterationsPercent);
    serialize_detail::putU64(footer, rec.stats.totalCycles);
    serialize_detail::putU64(footer, rec.stats.retiredInstrs);
    serialize_detail::putU64(footer, rec.stats.executedInstrs);
    serialize_detail::putU64(footer, rec.stats.committedChunks);
    serialize_detail::putU64(footer, rec.stats.squashes);
    serialize_detail::putU64(footer, rec.stats.overflowTruncations);
    serialize_detail::putU64(footer, rec.stats.collisionTruncations);
    serialize_detail::putU64(footer, rec.stats.hardTruncations);
    serialize_detail::putU64(footer, rec.fingerprint.perProcAcc.size());
    for (std::size_t p = 0; p < rec.fingerprint.perProcAcc.size();
         ++p) {
        serialize_detail::putU64(footer, rec.fingerprint.perProcAcc[p]);
        serialize_detail::putU64(footer,
                                 rec.fingerprint.perProcRetired[p]);
    }
    serialize_detail::putU64(footer, rec.fingerprint.finalMemHash);
    serialize_detail::putU64(footer, segments.size());
    for (const ArchiveSegmentInfo &info : segments) {
        serialize_detail::putU64(footer, info.endGcc);
        serialize_detail::putU64(footer, info.fileOffset);
        serialize_detail::putU64(footer, info.rawBytes);
        serialize_detail::putU64(footer, info.compBytes);
        serialize_detail::putU64(footer, info.crc32);
        serialize_detail::putU64(footer, info.piBitsEnd);
        serialize_detail::putU64(footer, info.strataBitsEnd);
        serialize_detail::putU64(footer, info.csBitsEnd.size());
        for (const std::uint64_t bits : info.csBitsEnd)
            serialize_detail::putU64(footer, bits);
        serialize_detail::putU64(footer, info.hasCheckpoint ? 1 : 0);
        if (info.hasCheckpoint)
            putCheckpoint(footer, info.checkpoint);
    }
    return std::move(footer).str();
}

} // namespace

namespace archive_detail
{

SegmentSlice
parseSegmentPayload(const std::vector<std::uint8_t> &raw, unsigned n)
{
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(raw.data()),
                    raw.size()),
        std::ios::binary);
    SegmentSlice s;
    const std::uint64_t pi_count = getU64(in);
    const std::uint64_t pi_masked = getU64(in);
    if (pi_masked > 1)
        throw RecordingFormatError("PI mask flag "
                                   + std::to_string(pi_masked)
                                   + " is not a boolean");
    s.piHasMasks = pi_masked != 0;
    for (std::uint64_t i = 0; i < pi_count; ++i)
        s.pi.push_back(static_cast<ProcId>(getU64(in)));
    if (s.piHasMasks)
        for (std::uint64_t i = 0; i < pi_count; ++i)
            s.piMasks.push_back(getU64(in));
    const std::uint64_t strata_count = getU64(in);
    for (std::uint64_t i = 0; i < strata_count; ++i) {
        Stratum st;
        st.isDma = getU64(in) != 0;
        const std::uint64_t c = getU64(in);
        if (c > 64)
            throw RecordingFormatError("stratum counter count "
                                       + std::to_string(c)
                                       + " outside [0, 64]");
        for (std::uint64_t k = 0; k < c; ++k)
            st.counts.push_back(static_cast<std::uint8_t>(getU64(in)));
        s.strata.push_back(std::move(st));
    }
    s.cs.resize(n);
    for (unsigned p = 0; p < n; ++p) {
        const std::uint64_t c = getU64(in);
        for (std::uint64_t k = 0; k < c; ++k) {
            CsEntry e;
            e.seq = getU64(in);
            e.size = getU64(in);
            e.maxSize = getU64(in) != 0;
            s.cs[p].push_back(e);
        }
    }
    s.interrupts.resize(n);
    for (unsigned p = 0; p < n; ++p) {
        const std::uint64_t c = getU64(in);
        for (std::uint64_t k = 0; k < c; ++k) {
            InterruptRecord e;
            e.chunkSeq = getU64(in);
            e.type = static_cast<std::uint8_t>(getU64(in));
            e.data = getU64(in);
            s.interrupts[p].push_back(e);
        }
    }
    s.io.resize(n);
    for (unsigned p = 0; p < n; ++p) {
        const std::uint64_t c = getU64(in);
        for (std::uint64_t k = 0; k < c; ++k)
            s.io[p].push_back(getU64(in));
    }
    const std::uint64_t dma_count = getU64(in);
    for (std::uint64_t i = 0; i < dma_count; ++i) {
        const std::uint64_t slot = getU64(in);
        const std::uint64_t words = getU64(in);
        DmaTransfer t;
        for (std::uint64_t k = 0; k < words; ++k) {
            t.wordAddrs.push_back(getU64(in));
            t.values.push_back(getU64(in));
        }
        s.dma.emplace_back(std::move(t), slot);
    }
    const std::uint64_t commits = getU64(in);
    for (std::uint64_t i = 0; i < commits; ++i) {
        CommitRecord c;
        c.proc = static_cast<ProcId>(getU64(in));
        c.seq = getU64(in);
        c.size = getU64(in);
        c.accAfter = getU64(in);
        s.commits.push_back(c);
    }
    return s;
}

std::vector<std::uint8_t>
compressPayload(const std::string &raw)
{
    Lz77Stream stream;
    stream.append(reinterpret_cast<const std::uint8_t *>(raw.data()),
                  raw.size());
    return stream.finish();
}

std::uint64_t
readU64At(const std::uint8_t *bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
    return v;
}

void
runIndexed(WorkerPool &pool,
           std::vector<std::function<void()>> tasks,
           std::vector<std::exception_ptr> &errors)
{
    errors.assign(tasks.size(), nullptr);
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        wrapped.push_back([&tasks, &errors, i] {
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.runBatch(wrapped);
}

} // namespace archive_detail

// ----- options --------------------------------------------------------------

unsigned
defaultArchiveIoThreads()
{
    return campaignJobs();
}

unsigned
ArchiveIoOptions::resolvedIoThreads() const
{
    return ioThreads ? ioThreads : defaultArchiveIoThreads();
}

// ----- errors ---------------------------------------------------------------

const char *
archiveSectionName(ArchiveSection section)
{
    switch (section) {
    case ArchiveSection::kFileHeader:
        return "file header";
    case ArchiveSection::kSegment:
        return "segment";
    case ArchiveSection::kFooter:
        return "footer";
    case ArchiveSection::kTrailer:
        return "trailer";
    case ArchiveSection::kCheckpointIndex:
        return "checkpoint index";
    }
    return "unknown";
}

namespace
{

std::string
archiveErrorMessage(ArchiveSection section, std::size_t segment,
                    const std::string &what)
{
    std::string msg = "archive ";
    msg += archiveSectionName(section);
    if (section == ArchiveSection::kSegment
        && segment != ArchiveError::kNoSegment)
        msg += " " + std::to_string(segment);
    msg += ": " + what;
    return msg;
}

} // namespace

ArchiveError::ArchiveError(ArchiveSection section, std::size_t segment,
                           const std::string &what)
    : RecordingFormatError(archiveErrorMessage(section, segment, what)),
      section_(section), segment_(segment)
{
}

CheckpointOutOfRangeError::CheckpointOutOfRangeError(
    std::size_t index, std::size_t available, const std::string &what)
    : ArchiveError(ArchiveSection::kCheckpointIndex,
                   ArchiveError::kNoSegment, what),
      index_(index), available_(available)
{
}

// ----- writer ---------------------------------------------------------------

void
ArchiveWriter::putBytes(const std::uint8_t *data, std::size_t size)
{
    out_->write(reinterpret_cast<const char *>(data),
                static_cast<std::streamsize>(size));
    offset_ += size;
}

void
ArchiveWriter::putU64(std::uint64_t v)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    putBytes(bytes, 8);
}

void
ArchiveWriter::write(const Recording &rec)
{
    if (!segments_.empty())
        throw std::logic_error("ArchiveWriter::write called twice");
    for (std::size_t i = 1; i < rec.checkpoints.size(); ++i)
        if (rec.checkpoints[i].gcc <= rec.checkpoints[i - 1].gcc)
            throw RecordingFormatError(
                "checkpoints are not in ascending GCC order");

    putU64(kArchiveMagic);
    putU64(kArchiveVersion);

    const unsigned n = rec.machine.numProcs;

    // Exact per-proc log write-pointer positions at each boundary:
    // scratch logs replicate the recorder's variable-width packing.
    PiLog scratch_pi(n);
    if (rec.pi.hasMasks())
        scratch_pi.enableMasks(rec.pi.maskBits());
    std::vector<CsLog> scratch_cs(n, CsLog(rec.mode));
    const unsigned strata_counter_bits =
        rec.stratified()
            ? Stratifier(n, rec.mode.stratifyChunksPerProc)
                  .counterBits()
            : 0;

    Boundary zero; // state before the first segment
    zero.committed.assign(n, 0);
    zero.ioIdx.assign(n, 0);

    // Boundary chain first, serially: checkpoint-alignment errors
    // surface here in segment order, exactly as they always have.
    const std::size_t seg_count = rec.checkpoints.size() + 1;
    std::vector<Boundary> bounds;
    bounds.reserve(seg_count + 1);
    bounds.push_back(std::move(zero));
    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i)
        bounds.push_back(
            boundaryAtCheckpoint(rec, rec.checkpoints[i], i));
    bounds.push_back(boundaryAtEnd(rec));

    // Fan payload build + LZ77 + CRC across the codec pool. Segments
    // are independent given their boundaries; the commit loop below
    // emits them in segment order, so the container bytes are
    // identical at any ioThreads (and with ioThreads=1 the pool runs
    // inline on this thread — the serial path *is* the 1-thread
    // case). The first failing segment's error is rethrown, lowest
    // index first, independent of worker scheduling.
    struct PackedSegment
    {
        std::uint64_t rawBytes = 0;
        std::vector<std::uint8_t> comp;
        std::uint64_t crc = 0;
    };
    std::vector<PackedSegment> packed(seg_count);
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(seg_count);
        for (std::size_t i = 0; i < seg_count; ++i) {
            tasks.push_back([&rec, &bounds, &packed, i] {
                const std::string raw = buildSegmentPayload(
                    rec, bounds[i], bounds[i + 1]);
                PackedSegment &seg = packed[i];
                seg.rawBytes = raw.size();
                seg.comp = compressPayload(raw);
                seg.crc = crc32(seg.comp.data(), seg.comp.size());
            });
        }
        WorkerPool pool(io_.resolvedIoThreads());
        std::vector<std::exception_ptr> errors;
        runIndexed(pool, std::move(tasks), errors);
        for (const std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
    }

    for (std::size_t i = 0; i < seg_count; ++i) {
        const bool tail = i == rec.checkpoints.size();
        const Boundary &prev = bounds[i];
        const Boundary &cur = bounds[i + 1];
        PackedSegment &seg = packed[i];

        ArchiveSegmentInfo info;
        info.endGcc = cur.gcc;
        info.fileOffset = offset_;
        info.rawBytes = seg.rawBytes;
        info.compBytes = seg.comp.size();
        info.crc32 = seg.crc;
        advanceScratchLogs(rec, prev, cur, scratch_pi, scratch_cs);
        info.piBitsEnd = scratch_pi.sizeBits();
        info.strataBitsEnd = static_cast<std::uint64_t>(cur.strataIdx)
                             * n * strata_counter_bits;
        for (ProcId p = 0; p < n; ++p)
            info.csBitsEnd.push_back(scratch_cs[p].sizeBits());
        if (!tail) {
            info.hasCheckpoint = true;
            info.checkpoint = rec.checkpoints[i];
        }

        putU64(kSegmentMagic);
        putU64(i);
        putU64(info.rawBytes);
        putU64(info.compBytes);
        putU64(info.crc32);
        putBytes(seg.comp.data(), seg.comp.size());
        segments_.push_back(std::move(info));
        // Committed; release the payload instead of holding every
        // segment's compressed bytes until the loop ends.
        std::vector<std::uint8_t>().swap(seg.comp);
    }

    // Footer: metadata + segment index, compressed like the segments.
    const std::string footer_raw = buildFooterRaw(rec, segments_);
    const std::vector<std::uint8_t> footer_comp =
        compressPayload(footer_raw);
    const std::uint64_t footer_offset = offset_;
    putBytes(footer_comp.data(), footer_comp.size());

    putU64(footer_offset);
    putU64(footer_comp.size());
    putU64(footer_raw.size());
    putU64(crc32(footer_comp.data(), footer_comp.size()));
    putU64(kArchiveEndMagic);

    if (!*out_)
        throw std::runtime_error("failed to write archive");
}

void
writeArchive(const Recording &rec, std::ostream &out,
             const ArchiveIoOptions &io)
{
    ArchiveWriter writer(out, io);
    writer.write(rec);
}

void
writeArchiveFile(const Recording &rec, const std::string &path,
                 const ArchiveIoOptions &io)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for write");
    writeArchive(rec, out, io);
}

// ----- streaming writer -----------------------------------------------------

/**
 * Two-thread pipeline. The *feeder* (recording) thread cuts segment
 * payloads synchronously — boundary math, buildSegmentPayload and the
 * scratch-log replication all read the live recording, which keeps
 * growing after each hook returns — and pushes owned Pending items
 * onto `staging`. The *flusher* thread compresses, CRCs and writes a
 * snatched batch; while it runs, the feeder keeps staging without
 * blocking (double buffering). Handoff is by join: the feeder only
 * touches `flushing`, `segments`, the pool and the stream after
 * observing flush_done and joining, so no mutex is needed.
 */
struct StreamingArchiveWriter::Impl
{
    std::ostream *out;
    ArchiveIoOptions io;
    std::uint64_t offset = 0;

    bool initialized = false;
    bool is_closed = false;

    // Scratch logs replicating the recorder's bit packing (footer
    // bit-position index); see ArchiveWriter::write.
    unsigned n = 0;
    unsigned strata_counter_bits = 0;
    PiLog scratch_pi{1};
    std::vector<CsLog> scratch_cs;

    Boundary last;                 ///< frontier at the last cut
    std::uint64_t last_gcc = 0;    ///< last checkpoint GCC
    std::size_t fed = 0;           ///< checkpoints consumed
    std::size_t staged = 0;        ///< segments cut so far

    /// A cut segment between payload build and file commit.
    struct Pending
    {
        ArchiveSegmentInfo info; ///< compBytes/crc/offset filled late
        std::string raw;
    };
    std::vector<Pending> staging;  ///< feeder-owned accumulation
    std::vector<Pending> flushing; ///< flusher-owned batch
    std::thread flusher;
    std::atomic<bool> flush_done{true};
    std::exception_ptr flush_error;
    std::unique_ptr<WorkerPool> pool;
    std::vector<ArchiveSegmentInfo> segments; ///< committed, in order

    explicit Impl(std::ostream &o, const ArchiveIoOptions &opts)
        : out(&o), io(opts)
    {
    }

    ~Impl()
    {
        if (flusher.joinable())
            flusher.join();
    }

    void
    putBytes(const std::uint8_t *data, std::size_t size)
    {
        out->write(reinterpret_cast<const char *>(data),
                   static_cast<std::streamsize>(size));
        offset += size;
    }

    void
    putU64(std::uint64_t v)
    {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
        putBytes(bytes, 8);
    }

    void
    ensureInit(const Recording &rec)
    {
        if (initialized)
            return;
        n = rec.machine.numProcs;
        scratch_pi = PiLog(n);
        if (rec.pi.hasMasks())
            scratch_pi.enableMasks(rec.pi.maskBits());
        scratch_cs.assign(n, CsLog(rec.mode));
        strata_counter_bits =
            rec.stratified()
                ? Stratifier(n, rec.mode.stratifyChunksPerProc)
                      .counterBits()
                : 0;
        last = Boundary{};
        last.committed.assign(n, 0);
        last.ioIdx.assign(n, 0);
        putU64(kArchiveMagic);
        putU64(kArchiveVersion);
        initialized = true;
    }

    /** Rethrow a flusher failure on the feeder thread. */
    void
    rethrowFlushError()
    {
        if (flush_error) {
            is_closed = true; // poisoned: the stream is mid-segment
            std::exception_ptr e = flush_error;
            flush_error = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Compress the current `flushing` batch over the codec pool, then
     * commit the segments to the stream in order. Runs on the flusher
     * thread (or inline from close() for the final drain).
     */
    void
    flushBatch()
    {
        const std::size_t count = flushing.size();
        std::vector<std::vector<std::uint8_t>> comp(count);
        if (!pool)
            pool = std::make_unique<WorkerPool>(io.resolvedIoThreads());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            tasks.push_back([this, &comp, i] {
                comp[i] = compressPayload(flushing[i].raw);
            });
        std::vector<std::exception_ptr> errors;
        runIndexed(*pool, std::move(tasks), errors);
        for (const std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
        for (std::size_t i = 0; i < count; ++i) {
            Pending &p = flushing[i];
            p.info.fileOffset = offset;
            p.info.compBytes = comp[i].size();
            p.info.crc32 = crc32(comp[i].data(), comp[i].size());
            putU64(kSegmentMagic);
            putU64(segments.size());
            putU64(p.info.rawBytes);
            putU64(p.info.compBytes);
            putU64(p.info.crc32);
            putBytes(comp[i].data(), comp[i].size());
            segments.push_back(std::move(p.info));
            std::vector<std::uint8_t>().swap(comp[i]);
        }
        flushing.clear();
        if (!*out)
            throw std::runtime_error("failed to write archive");
    }

    /**
     * Hand staged work to the flusher. Non-blocking while a batch is
     * in flight; when the flusher is idle, join it, surface its
     * error (if any), and launch it on the accumulated batch.
     */
    void
    pump()
    {
        if (!flush_done.load(std::memory_order_acquire))
            return; // flusher busy; keep accumulating
        if (flusher.joinable())
            flusher.join();
        rethrowFlushError();
        if (staging.empty())
            return;
        flushing = std::move(staging);
        staging.clear();
        flush_done.store(false, std::memory_order_release);
        flusher = std::thread([this] {
            try {
                flushBatch();
            } catch (...) {
                flush_error = std::current_exception();
            }
            flush_done.store(true, std::memory_order_release);
        });
    }

    /** Block until the flusher is idle and its batch is committed. */
    void
    drain()
    {
        if (flusher.joinable())
            flusher.join();
        rethrowFlushError();
        if (!staging.empty()) {
            flushing = std::move(staging);
            staging.clear();
            flushBatch();
        }
    }

    /** Cut the segment (last, hi] and stage it for the flusher. */
    void
    stage(const Recording &rec, const Boundary &hi,
          const SystemCheckpoint *ckpt)
    {
        Pending p;
        p.raw = buildSegmentPayload(rec, last, hi);
        p.info.endGcc = hi.gcc;
        p.info.rawBytes = p.raw.size();
        advanceScratchLogs(rec, last, hi, scratch_pi, scratch_cs);
        p.info.piBitsEnd = scratch_pi.sizeBits();
        p.info.strataBitsEnd =
            static_cast<std::uint64_t>(hi.strataIdx) * n
            * strata_counter_bits;
        for (ProcId q = 0; q < n; ++q)
            p.info.csBitsEnd.push_back(scratch_cs[q].sizeBits());
        if (ckpt) {
            p.info.hasCheckpoint = true;
            p.info.checkpoint = *ckpt;
        }
        staging.push_back(std::move(p));
        last = hi;
        ++staged;
    }

    /** Consume every not-yet-streamed checkpoint of @p rec. */
    void
    feed(const Recording &rec)
    {
        ensureInit(rec);
        while (fed < rec.checkpoints.size()) {
            const SystemCheckpoint &ckpt = rec.checkpoints[fed];
            if (fed > 0 && ckpt.gcc <= last_gcc)
                throw RecordingFormatError(
                    "checkpoints are not in ascending GCC order");
            Boundary hi = boundaryAtCheckpoint(rec, ckpt, fed);
            stage(rec, hi, &ckpt);
            last_gcc = ckpt.gcc;
            ++fed;
        }
    }
};

StreamingArchiveWriter::StreamingArchiveWriter(
    std::ostream &out, const ArchiveIoOptions &io)
    : impl_(std::make_unique<Impl>(out, io))
{
}

StreamingArchiveWriter::~StreamingArchiveWriter() = default;

void
StreamingArchiveWriter::onCheckpoint(const Recording &rec)
{
    if (impl_->is_closed)
        throw std::logic_error(
            "StreamingArchiveWriter used after close");
    impl_->feed(rec);
    impl_->pump();
}

void
StreamingArchiveWriter::close(const Recording &rec)
{
    Impl &im = *impl_;
    if (im.is_closed)
        throw std::logic_error(
            "StreamingArchiveWriter::close called twice");
    im.feed(rec);
    im.stage(rec, boundaryAtEnd(rec), nullptr); // tail segment
    im.drain();

    const std::string footer_raw = buildFooterRaw(rec, im.segments);
    const std::vector<std::uint8_t> footer_comp =
        compressPayload(footer_raw);
    const std::uint64_t footer_offset = im.offset;
    im.putBytes(footer_comp.data(), footer_comp.size());
    im.putU64(footer_offset);
    im.putU64(footer_comp.size());
    im.putU64(footer_raw.size());
    im.putU64(crc32(footer_comp.data(), footer_comp.size()));
    im.putU64(kArchiveEndMagic);
    if (!*im.out)
        throw std::runtime_error("failed to write archive");
    im.out->flush();
    im.is_closed = true;
}

bool
StreamingArchiveWriter::closed() const
{
    return impl_->is_closed;
}

std::size_t
StreamingArchiveWriter::segmentCount() const
{
    return impl_->staged;
}

// ----- reader ---------------------------------------------------------------

bool
ArchiveReader::looksLikeArchive(const std::uint8_t *bytes,
                                std::size_t size)
{
    if (size < 8)
        return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return v == kArchiveMagic;
}

bool
ArchiveReader::fileLooksLikeArchive(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::uint8_t head[8];
    in.read(reinterpret_cast<char *>(head), 8);
    return in && looksLikeArchive(head, 8);
}

ArchiveReader::ArchiveReader(ArchiveReader &&) noexcept = default;
ArchiveReader &
ArchiveReader::operator=(ArchiveReader &&) noexcept = default;
ArchiveReader::~ArchiveReader() = default;

ArchiveReader
ArchiveReader::fromBytes(std::vector<std::uint8_t> bytes,
                         const ArchiveIoOptions &io)
{
    ArchiveReader reader;
    reader.owned_ = std::move(bytes);
    reader.data_ = reader.owned_.data();
    reader.size_ = reader.owned_.size();
    reader.io_ = io;
    reader.parse();
    return reader;
}

ArchiveReader
ArchiveReader::fromFile(const std::string &path,
                        const ArchiveIoOptions &io)
{
    if (io.mmapReads) {
        ArchiveReader reader;
        if (reader.map_.open(path)) {
            reader.data_ = reader.map_.data();
            reader.size_ = reader.map_.size();
            reader.io_ = io;
            reader.parse();
            return reader;
        }
        // Fall through to the buffered path: mapping is best-effort
        // and both paths parse and fail identically.
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return fromBytes(std::move(bytes), io);
}

WorkerPool &
ArchiveReader::ioPool() const
{
    if (!pool_)
        pool_ = std::make_unique<WorkerPool>(io_.resolvedIoThreads());
    return *pool_;
}

void
ArchiveReader::parse()
{
    if (size_ < kHeaderBytes
        || readU64At(data_, 0) != kArchiveMagic)
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "not a DeLorean archive");
    if (readU64At(data_, 8) != kArchiveVersion)
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "unsupported archive version "
                               + std::to_string(readU64At(data_, 8)));
    if (size_ < kHeaderBytes + kTrailerBytes)
        throw ArchiveError(ArchiveSection::kTrailer,
                           ArchiveError::kNoSegment,
                           "file too small for a trailer");

    const std::size_t trailer = size_ - kTrailerBytes;
    if (readU64At(data_, trailer + 32) != kArchiveEndMagic)
        throw ArchiveError(ArchiveSection::kTrailer,
                           ArchiveError::kNoSegment,
                           "end magic missing (truncated archive?)");
    const std::uint64_t footer_offset = readU64At(data_, trailer);
    const std::uint64_t footer_comp = readU64At(data_, trailer + 8);
    const std::uint64_t footer_raw = readU64At(data_, trailer + 16);
    const std::uint64_t footer_crc = readU64At(data_, trailer + 24);
    if (footer_offset < kHeaderBytes || footer_comp > size_
        || footer_offset + footer_comp > trailer)
        throw ArchiveError(ArchiveSection::kTrailer,
                           ArchiveError::kNoSegment,
                           "footer location out of bounds");

    if (crc32(data_ + footer_offset,
              static_cast<std::size_t>(footer_comp))
        != footer_crc)
        throw ArchiveError(ArchiveSection::kFooter,
                           ArchiveError::kNoSegment,
                           "footer CRC mismatch");

    std::vector<std::uint8_t> raw;
    try {
        const Lz77 codec;
        raw = codec.decompress(
            data_ + footer_offset,
            static_cast<std::size_t>(footer_comp));
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kFooter,
                           ArchiveError::kNoSegment, e.what());
    }
    if (raw.size() != footer_raw)
        throw ArchiveError(ArchiveSection::kFooter,
                           ArchiveError::kNoSegment,
                           "footer decompressed size mismatch");

    try {
        std::istringstream in(
            std::string(reinterpret_cast<const char *>(raw.data()),
                        raw.size()),
            std::ios::binary);
        machine_ = getMachine(in);
        mode_ = getMode(in);
        validateRecordingConfigs(machine_, mode_);
        app_name_ = getString(in);
        workload_seed_ = getU64(in);
        iterations_percent_ = static_cast<unsigned>(getU64(in));
        for (int k = 0; k < 8; ++k)
            stats_[k] = getU64(in);
        const std::uint64_t procs = getU64(in);
        if (procs != machine_.numProcs)
            throw RecordingFormatError(
                "fingerprint per-proc count does not match numProcs");
        for (std::uint64_t p = 0; p < procs; ++p) {
            per_proc_acc_.push_back(getU64(in));
            per_proc_retired_.push_back(getU64(in));
        }
        final_mem_hash_ = getU64(in);
        const std::uint64_t seg_count = getU64(in);
        if (seg_count == 0 || seg_count > kMaxSegments)
            throw RecordingFormatError(
                "segment count " + std::to_string(seg_count)
                + " outside [1, " + std::to_string(kMaxSegments)
                + "]");
        for (std::uint64_t i = 0; i < seg_count; ++i) {
            ArchiveSegmentInfo info;
            info.endGcc = getU64(in);
            info.fileOffset = getU64(in);
            info.rawBytes = getU64(in);
            info.compBytes = getU64(in);
            info.crc32 = getU64(in);
            info.piBitsEnd = getU64(in);
            info.strataBitsEnd = getU64(in);
            const std::uint64_t cs_count = getU64(in);
            if (cs_count != machine_.numProcs)
                throw RecordingFormatError(
                    "segment " + std::to_string(i)
                    + " CS bit-position count does not match numProcs");
            for (std::uint64_t p = 0; p < cs_count; ++p)
                info.csBitsEnd.push_back(getU64(in));
            info.hasCheckpoint = getU64(in) != 0;
            if (info.hasCheckpoint) {
                info.checkpoint = getCheckpoint(in);
                if (info.checkpoint.contexts.size()
                    != machine_.numProcs)
                    throw RecordingFormatError(
                        "segment " + std::to_string(i)
                        + " checkpoint context count does not match "
                          "numProcs");
                if (info.checkpoint.gcc != info.endGcc)
                    throw RecordingFormatError(
                        "segment " + std::to_string(i)
                        + " checkpoint GCC disagrees with the index");
            }
            segments_.push_back(std::move(info));
        }
    } catch (const ArchiveError &) {
        throw;
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kFooter,
                           ArchiveError::kNoSegment, e.what());
    }

    // Index sanity: offsets in bounds, boundaries ascending, only the
    // tail segment may lack a checkpoint.
    std::uint64_t prev_gcc = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const ArchiveSegmentInfo &info = segments_[i];
        if (info.fileOffset < kHeaderBytes
            || info.compBytes > size_
            || info.fileOffset + kSegmentHeaderBytes + info.compBytes
                   > footer_offset)
            throw ArchiveError(ArchiveSection::kFooter,
                               ArchiveError::kNoSegment,
                               "segment " + std::to_string(i)
                                   + " location out of bounds");
        if (i > 0 && info.endGcc < prev_gcc)
            throw ArchiveError(ArchiveSection::kFooter,
                               ArchiveError::kNoSegment,
                               "segment boundaries not ascending");
        prev_gcc = info.endGcc;
        const bool tail = i + 1 == segments_.size();
        if (tail == info.hasCheckpoint)
            throw ArchiveError(
                ArchiveSection::kFooter, ArchiveError::kNoSegment,
                tail ? "tail segment carries a checkpoint"
                     : "non-tail segment "
                           + std::to_string(i)
                           + " lacks a checkpoint");
    }
}

std::size_t
ArchiveReader::checkpointCount() const
{
    return segments_.size() - 1;
}

std::vector<std::uint64_t>
ArchiveReader::checkpointGccs() const
{
    std::vector<std::uint64_t> gccs;
    for (const ArchiveSegmentInfo &info : segments_)
        if (info.hasCheckpoint)
            gccs.push_back(info.checkpoint.gcc);
    return gccs;
}

const SystemCheckpoint &
ArchiveReader::checkpointAt(std::size_t index) const
{
    if (index >= checkpointCount())
        throw CheckpointOutOfRangeError(
            index, checkpointCount(),
            "checkpoint " + std::to_string(index) + " of "
                + std::to_string(checkpointCount()));
    return segments_[index].checkpoint;
}

std::vector<std::uint8_t>
ArchiveReader::segmentPayload(std::size_t index) const
{
    const ArchiveSegmentInfo &info = segments_[index];
    const std::size_t off =
        static_cast<std::size_t>(info.fileOffset);
    if (readU64At(data_, off) != kSegmentMagic)
        throw ArchiveError(ArchiveSection::kSegment, index,
                           "segment magic missing at offset "
                               + std::to_string(off));
    if (readU64At(data_, off + 8) != index)
        throw ArchiveError(ArchiveSection::kSegment, index,
                           "segment header id "
                               + std::to_string(readU64At(data_,
                                                          off + 8))
                               + " disagrees with the index");
    if (readU64At(data_, off + 16) != info.rawBytes
        || readU64At(data_, off + 24) != info.compBytes
        || readU64At(data_, off + 32) != info.crc32)
        throw ArchiveError(ArchiveSection::kSegment, index,
                           "segment header disagrees with the footer "
                           "index");
    const std::uint8_t *payload = data_ + off + kSegmentHeaderBytes;
    if (crc32(payload, static_cast<std::size_t>(info.compBytes))
        != info.crc32)
        throw ArchiveError(ArchiveSection::kSegment, index,
                           "payload CRC mismatch");
    std::vector<std::uint8_t> raw;
    try {
        const Lz77 codec;
        raw = codec.decompress(
            payload, static_cast<std::size_t>(info.compBytes));
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kSegment, index, e.what());
    }
    if (raw.size() != info.rawBytes)
        throw ArchiveError(ArchiveSection::kSegment, index,
                           "decompressed size mismatch");
    return raw;
}

namespace archive_detail
{

SegmentSlice
decodeSegment(const std::vector<std::uint8_t> &raw, unsigned num_procs,
              std::size_t index)
{
    try {
        return parseSegmentPayload(raw, num_procs);
    } catch (const ArchiveError &) {
        throw;
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kSegment, index, e.what());
    }
}

Recording
skeletonRecording(const MachineConfig &machine, const ModeConfig &mode,
                  const std::string &app, std::uint64_t seed,
                  unsigned iterations)
{
    Recording rec;
    rec.machine = machine;
    rec.mode = mode;
    rec.appName = app;
    rec.workloadSeed = seed;
    rec.iterationsPercent = iterations;
    rec.pi = PiLog(machine.numProcs);
    rec.cs.assign(machine.numProcs, CsLog(mode));
    rec.interrupts = InterruptLog(machine.numProcs);
    rec.io = IoLog(machine.numProcs);
    return rec;
}

void
appendSlice(Recording &rec, const SegmentSlice &slice,
            std::vector<std::uint64_t> &io_base, std::size_t segment,
            bool use_masks)
{
    const unsigned n = rec.machine.numProcs;
    const bool masked = use_masks && slice.piHasMasks;
    if (masked && !rec.pi.hasMasks()) {
        if (rec.pi.entryCount() != 0)
            throw ArchiveError(ArchiveSection::kSegment, segment,
                               "PI mask section appears mid-stream");
        if (rec.machine.bulk.numArbiters < 2)
            throw ArchiveError(ArchiveSection::kSegment, segment,
                               "PI masks present with a single arbiter");
        rec.pi.enableMasks(rec.machine.bulk.numArbiters);
    }
    if (use_masks && !slice.piHasMasks && rec.pi.hasMasks()
        && !slice.pi.empty())
        throw ArchiveError(ArchiveSection::kSegment, segment,
                           "PI mask section ends mid-stream");
    for (std::size_t i = 0; i < slice.pi.size(); ++i) {
        const ProcId p = slice.pi[i];
        if (p >= n && p != kDmaProcId)
            throw ArchiveError(ArchiveSection::kSegment, segment,
                               "PI entry names proc "
                                   + std::to_string(p));
        if (masked) {
            const std::uint64_t mask = slice.piMasks[i];
            const unsigned shards = rec.machine.bulk.numArbiters;
            if (mask == 0
                || (shards < 64 && mask >= (1ull << shards)))
                throw ArchiveError(ArchiveSection::kSegment, segment,
                                   "PI shard mask out of range");
            rec.pi.appendWithMask(p, mask);
        } else {
            rec.pi.append(p);
        }
    }
    for (const Stratum &s : slice.strata)
        rec.strata.push_back(s);
    for (ProcId p = 0; p < n; ++p) {
        for (const CsEntry &e : slice.cs[p]) {
            if (rec.mode.mode == ExecMode::kOrderAndSize)
                rec.cs[p].appendCommittedSize(e.seq, e.size, e.maxSize);
            else
                rec.cs[p].appendTruncation(e.seq, e.size);
        }
        for (const InterruptRecord &e : slice.interrupts[p])
            rec.interrupts.append(p, e);
        for (std::size_t k = 0; k < slice.io[p].size(); ++k)
            rec.io.append(p, io_base[p] + k, slice.io[p][k]);
        io_base[p] += slice.io[p].size();
    }
    for (const auto &[xfer, slot] : slice.dma)
        rec.dma.append(xfer, slot);
    for (const CommitRecord &c : slice.commits)
        rec.fingerprint.commits.push_back(c);
}

void
appendSyntheticPrefix(Recording &rec, const SystemCheckpoint &start)
{
    const unsigned n = rec.machine.numProcs;
    std::uint64_t chunk0 = 0;
    for (const ChunkSeq c : start.committedChunks)
        chunk0 += c;
    const std::size_t dma0 = start.dmaConsumed;

    if (rec.stratified()) {
        for (std::size_t i = 0; i < dma0; ++i) {
            Stratum s;
            s.isDma = true;
            s.counts.assign(n, 0);
            rec.strata.push_back(std::move(s));
        }
        std::vector<std::uint64_t> need(start.committedChunks.begin(),
                                        start.committedChunks.end());
        const std::uint64_t cap = std::max<std::uint64_t>(
            1, rec.mode.stratifyChunksPerProc);
        bool any = true;
        while (any) {
            any = false;
            Stratum s;
            s.counts.assign(n, 0);
            for (unsigned p = 0; p < n; ++p) {
                const std::uint64_t take =
                    std::min<std::uint64_t>(need[p], cap);
                s.counts[p] = static_cast<std::uint8_t>(take);
                need[p] -= take;
                any = any || take;
            }
            if (any)
                rec.strata.push_back(std::move(s));
        }
    } else if (rec.mode.mode != ExecMode::kPicoLog) {
        for (std::size_t i = 0; i < dma0; ++i)
            rec.pi.append(kDmaProcId);
        for (std::uint64_t i = 0; i < start.gcc - dma0; ++i)
            rec.pi.append(0);
    }
    for (std::size_t i = 0; i < dma0; ++i)
        rec.dma.append(DmaTransfer{}, 0);
    rec.fingerprint.commits.assign(static_cast<std::size_t>(chunk0),
                                   CommitRecord{});
}

} // namespace archive_detail

Recording
ArchiveReader::readAll() const
{
    Recording rec = skeletonRecording(machine_, mode_, app_name_,
                                      workload_seed_,
                                      iterations_percent_);
    std::vector<std::uint64_t> io_base(machine_.numProcs, 0);

    // CRC + decompress + parse every segment in parallel, then append
    // in segment order. Each segment's decode error (or successful
    // slice) lands in its own slot, and the append loop consumes the
    // slots in order — the first error to surface is the one the old
    // serial decode-then-append loop would have hit, at any ioThreads.
    const std::size_t count = segments_.size();
    std::vector<SegmentSlice> slices(count);
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            tasks.push_back([this, &slices, i] {
                slices[i] = decodeSegment(segmentPayload(i),
                                          machine_.numProcs, i);
            });
        std::vector<std::exception_ptr> errors;
        runIndexed(ioPool(), std::move(tasks), errors);
        for (std::size_t i = 0; i < count; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
            appendSlice(rec, slices[i], io_base, i,
                        /*use_masks=*/true);
            slices[i] = SegmentSlice(); // free as we go
            if (segments_[i].hasCheckpoint)
                rec.checkpoints.push_back(segments_[i].checkpoint);
        }
    }
    rec.fingerprint.perProcAcc = per_proc_acc_;
    rec.fingerprint.perProcRetired = per_proc_retired_;
    rec.fingerprint.finalMemHash = final_mem_hash_;
    rec.stats.totalCycles = stats_[0];
    rec.stats.retiredInstrs = stats_[1];
    rec.stats.executedInstrs = stats_[2];
    rec.stats.committedChunks = stats_[3];
    rec.stats.squashes = stats_[4];
    rec.stats.overflowTruncations = stats_[5];
    rec.stats.collisionTruncations = stats_[6];
    rec.stats.hardTruncations = stats_[7];
    validateRecording(rec);
    return rec;
}

Recording
ArchiveReader::readInterval(std::size_t from, std::size_t to) const
{
    if (from >= checkpointCount())
        throw CheckpointOutOfRangeError(
            from, checkpointCount(),
            "interval start checkpoint " + std::to_string(from)
                + " of " + std::to_string(checkpointCount()));
    const std::size_t last_seg =
        to == kToEnd ? segments_.size() - 1 : to;
    if (to != kToEnd && (to <= from || to >= checkpointCount()))
        throw CheckpointOutOfRangeError(
            to, checkpointCount(),
            "interval [" + std::to_string(from) + ", "
                + std::to_string(to)
                + ") is not a valid checkpoint pair");

    Recording rec = skeletonRecording(machine_, mode_, app_name_,
                                      workload_seed_,
                                      iterations_percent_);
    const unsigned n = machine_.numProcs;
    const SystemCheckpoint &start = segments_[from].checkpoint;

    // Synthetic prefix (consumed by the replay skip logic), then only
    // the segments covering the interval.
    appendSyntheticPrefix(rec, start);
    std::vector<std::uint64_t> io_base;
    for (const ThreadContext &ctx : start.contexts)
        io_base.push_back(ctx.ioLoadCount);
    const std::size_t first = from + 1;
    const std::size_t count = last_seg - from;
    std::vector<SegmentSlice> slices(count);
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t k = 0; k < count; ++k)
            tasks.push_back([this, &slices, first, n, k] {
                slices[k] = decodeSegment(segmentPayload(first + k),
                                          n, first + k);
            });
        std::vector<std::exception_ptr> errors;
        runIndexed(ioPool(), std::move(tasks), errors);
        for (std::size_t k = 0; k < count; ++k) {
            if (errors[k])
                std::rethrow_exception(errors[k]);
            appendSlice(rec, slices[k], io_base, first + k,
                        /*use_masks=*/false);
            slices[k] = SegmentSlice();
        }
    }

    rec.fingerprint.perProcAcc = per_proc_acc_;
    rec.fingerprint.perProcRetired = per_proc_retired_;
    rec.fingerprint.finalMemHash = final_mem_hash_;
    rec.checkpoints.push_back(start);
    if (to != kToEnd)
        rec.checkpoints.push_back(segments_[to].checkpoint);
    validateRecording(rec);
    return rec;
}

} // namespace delorean
