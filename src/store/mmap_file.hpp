/**
 * @file
 * Read-only memory-mapped file wrapper for the zero-copy archive read
 * path.
 *
 * MappedFile maps a whole file PROT_READ/MAP_PRIVATE and exposes it as
 * a byte span; ArchiveReader decodes segment payloads and verifies
 * CRCs directly out of the mapping, so a seek-to-interval replay never
 * copies the container through a buffered read. Mapping is strictly
 * best-effort: open() returns false on any failure (no such file,
 * platform without mmap, map quota, ...) and the caller falls back to
 * buffered reads — the two paths are required to produce identical
 * bytes and identical typed errors, which tests/test_archive_faults
 * asserts.
 *
 * A zero-byte file "maps" successfully as an empty span (mmap itself
 * rejects length 0), so the empty-input error behavior matches the
 * buffered path exactly.
 */

#ifndef DELOREAN_STORE_MMAP_FILE_HPP_
#define DELOREAN_STORE_MMAP_FILE_HPP_

#include <cstddef>
#include <cstdint>
#include <string>

namespace delorean
{

/** Read-only mapping of one file. Movable, not copyable. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;

    /**
     * Map @p path read-only. Returns false (and stays unmapped) on
     * any failure; a previous mapping is released first. True on
     * platforms without mmap support is never returned.
     */
    bool open(const std::string &path);

    /** Release the mapping (idempotent). */
    void close();

    /** True after a successful open(), including a 0-byte file. */
    bool mapped() const { return mapped_; }

    /** Start of the mapped bytes (nullptr for a 0-byte file). */
    const std::uint8_t *data() const { return data_; }

    std::size_t size() const { return size_; }

    /** True when the build has an mmap implementation at all. */
    static bool supported();

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
};

} // namespace delorean

#endif // DELOREAN_STORE_MMAP_FILE_HPP_
